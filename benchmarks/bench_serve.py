"""Serving throughput benchmark: candidates/sec vs ``max_batch``.

Scores a fixed stream of guidance candidates on OTA1 through a real
:class:`repro.serve.ModelRegistry` checkpoint and the
:class:`repro.serve.ScoringService`, sweeping ``max_batch`` over
1 / 2 / 4 / 8 / 16 / 32, and records throughput into the ``serve``
section of ``BENCH_perf.json`` (the rest of the file — the pipeline
stages written by ``bench_perf.py`` — is preserved).

Expected shape: throughput rises monotonically with ``max_batch``.
The union forward amortizes per-forward Python and small-array
overhead, and since the model cache-blocks the union internally
(``DEFAULT_CACHE_BLOCK`` replicas per pass, working set held under
L2), larger waves keep paying off rather than thrashing the cache;
``forward_block`` merely caps the dispatch wave the service hands the
model at once.

Standalone usage (no pytest required)::

    python benchmarks/bench_serve.py --check

``--check`` fails (a) when any swept throughput drops below 1/3 of the
committed baseline's (CI's 3x gate, mirroring the stage-time gate of
``bench_perf.py``), (b) when the sweep is not monotone within
``MONOTONE_TOLERANCE`` (each step must retain at least ``1 - tol`` of
its predecessor's throughput), and (c) when the largest batch fails to
beat ``max_batch=1`` outright — the batching win the serving layer
exists for.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro import build_benchmark, generic_40nm, place_benchmark
from repro.graph import build_hetero_graph
from repro.model.gnn3d import Gnn3d
from repro.perf.timing import load_bench_json
from repro.router import RoutingGrid
from repro.serve import (
    ModelRegistry,
    ScoreRequest,
    ScoringService,
    ServeConfig,
)

DEFAULT_OUT = REPO_ROOT / "BENCH_perf.json"
BATCH_SWEEP = (1, 2, 4, 8, 16, 32)
NUM_CANDIDATES = 64
# Best-of-N over the interleaved sweep.  Adjacent steps differ by only
# a few percent, so the min needs this many samples to converge past
# scheduler noise on a 1-vCPU runner; a full sweep pass costs ~0.5 s.
REPEATS = 25
# Each sweep step must retain at least (1 - tol) of its predecessor's
# throughput.  The curve is genuinely flat past forward_block (profiled
# per-candidate cost is identical — the model cache-blocks internally),
# so adjacent steps sit within measurement noise of each other; a
# strict >= would flake.  12% clears the observed best-of-N jitter on
# a noisy shared runner while still catching a real cliff (e.g. cache
# thrash past forward_block).
MONOTONE_TOLERANCE = 0.12


def measure(candidates: int = NUM_CANDIDATES,
            repeats: int = REPEATS) -> dict:
    """Sweep max_batch over a fixed candidate stream; return the record."""
    circuit = build_benchmark("OTA1")
    placement = place_benchmark(circuit, variant="A", seed=0, iterations=150)
    graph = build_hetero_graph(RoutingGrid(placement, generic_40nm()))
    model = Gnn3d(graph.ap_features.shape[1], graph.module_features.shape[1])

    rng = np.random.default_rng(0)
    stream = [rng.uniform(0.5, 2.0, size=(graph.num_aps, 3))
              for _ in range(candidates)]

    best: dict[int, float] = {b: float("inf") for b in BATCH_SWEEP}
    with tempfile.TemporaryDirectory() as tmp:
        registry = ModelRegistry(tmp)
        registry.save("ota1", model, graph)
        # One checkpoint-loaded model shared by every swept service:
        # scoring is tape-free (read-only), and separate model copies
        # would give each sweep point its own allocation-layout luck —
        # a systematic per-point offset that best-of-N cannot average
        # away and that the monotone gate would misread as a cliff.
        served, _ = registry.load("ota1", graph=graph)
        services = {}
        for max_batch in BATCH_SWEEP:
            service = ScoringService(ServeConfig(max_batch=max_batch,
                                                 max_queue=candidates))
            service.register("ota1", served, graph)
            # Warm the union-plan cache so steady-state is measured.
            list(service.score_stream(
                ScoreRequest("ota1", g) for g in stream[:max_batch]))
            services[max_batch] = service
        # Round-robin best-of-N: interleaving the sweep keeps slow machine
        # phases (page cache, noisy neighbours) from biasing whichever
        # batch size happens to be measured last.
        for _ in range(repeats):
            for max_batch, service in services.items():
                start = time.perf_counter()
                results = list(service.score_stream(
                    ScoreRequest("ota1", g) for g in stream))
                elapsed = time.perf_counter() - start
                assert all(r.status == "ok" for r in results)
                best[max_batch] = min(best[max_batch], elapsed)
    throughput = {str(b): round(candidates / t, 2) for b, t in best.items()}

    t1 = throughput[str(BATCH_SWEEP[0])]
    t_max = throughput[str(BATCH_SWEEP[-1])]
    return {
        "candidates": candidates,
        "circuit": "OTA1",
        "max_batch_sweep": list(BATCH_SWEEP),
        "throughput_per_sec": throughput,
        "speedup_max_vs_1": round(t_max / t1, 2),
    }


def check(current: dict, baseline: dict | None,
          max_ratio: float = 3.0,
          tolerance: float = MONOTONE_TOLERANCE) -> list[str]:
    """3x regression gate plus the monotone-throughput invariant."""
    problems: list[str] = []
    if current["speedup_max_vs_1"] <= 1.0:
        sweep = current["max_batch_sweep"]
        problems.append(
            f"no batching win: max_batch={sweep[-1]} is "
            f"{current['speedup_max_vs_1']}x max_batch=1 (need > 1x)")
    tp = current["throughput_per_sec"]
    sweep = current["max_batch_sweep"]
    for prev, nxt in zip(sweep, sweep[1:]):
        tp_prev, tp_next = float(tp[str(prev)]), float(tp[str(nxt)])
        if tp_next < tp_prev * (1.0 - tolerance):
            problems.append(
                f"throughput not monotone: max_batch={nxt} "
                f"({tp_next} candidates/s) dropped more than "
                f"{tolerance:.0%} below max_batch={prev} "
                f"({tp_prev} candidates/s)")
    if baseline is None:
        return problems
    base = baseline.get("throughput_per_sec", {})
    for key, base_tp in base.items():
        cur_tp = current["throughput_per_sec"].get(key)
        if cur_tp is None:
            problems.append(f"max_batch={key} missing from current sweep")
        elif cur_tp * max_ratio < float(base_tp):
            problems.append(
                f"max_batch={key} throughput regressed "
                f"{float(base_tp) / cur_tp:.1f}x ({base_tp} -> {cur_tp} "
                f"candidates/s, limit {max_ratio:.1f}x)")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--candidates", type=int, default=NUM_CANDIDATES)
    parser.add_argument("--out", default=str(DEFAULT_OUT),
                        help="BENCH_perf.json to update in place")
    parser.add_argument("--baseline", default=str(DEFAULT_OUT),
                        help="committed record to compare against")
    parser.add_argument("--check", action="store_true",
                        help="fail on >3x throughput regression, a "
                             "non-monotone sweep, or no batching win")
    args = parser.parse_args(argv)

    baseline_serve = None
    if args.check:
        committed = load_bench_json(args.baseline)
        if committed is not None:
            baseline_serve = committed.get("serve")
            if baseline_serve is None:
                print(f"no serve section in {args.baseline}; skipping "
                      f"regression check")

    serve = measure(args.candidates)
    problems = check(serve, baseline_serve) if args.check else []

    out_path = Path(args.out)
    payload = load_bench_json(out_path) or {}
    payload["serve"] = serve
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
    print(f"wrote serve section of {out_path}")
    for key in serve["throughput_per_sec"]:
        print(f"  max_batch={key}: "
              f"{serve['throughput_per_sec'][key]} candidates/s")
    print(f"  speedup {serve['max_batch_sweep'][-1]} vs 1: "
          f"{serve['speedup_max_vs_1']}x")

    if problems:
        print("SERVE PERF REGRESSION:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
