"""Serving throughput benchmark: candidates/sec vs ``max_batch``.

Scores a fixed stream of guidance candidates on OTA1 through a real
:class:`repro.serve.ModelRegistry` checkpoint and the
:class:`repro.serve.ScoringService`, sweeping ``max_batch`` over
1 / 2 / 4 / 8, and records throughput into the ``serve`` section of
``BENCH_perf.json`` (the rest of the file — the pipeline stages written
by ``bench_perf.py`` — is preserved).

Expected shape: throughput rises monotonically with ``max_batch``.  Up
to ``forward_block`` candidates the gain comes from the union forward
amortizing per-forward Python and small-array overhead; beyond it the
service caps forwards at the cache-efficient block size and the gain
comes from coalescing per-wave dispatch overhead over more requests.

Standalone usage (no pytest required)::

    python benchmarks/bench_serve.py --check

``--check`` fails (a) when any swept throughput drops below 1/3 of the
committed baseline's (CI's 3x gate, mirroring the stage-time gate of
``bench_perf.py``) and (b) when ``max_batch=8`` fails to beat
``max_batch=1`` — the monotone batching win the serving layer exists
for.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro import build_benchmark, generic_40nm, place_benchmark
from repro.graph import build_hetero_graph
from repro.model.gnn3d import Gnn3d
from repro.perf.timing import load_bench_json
from repro.router import RoutingGrid
from repro.serve import (
    ModelRegistry,
    ScoreRequest,
    ScoringService,
    ServeConfig,
)

DEFAULT_OUT = REPO_ROOT / "BENCH_perf.json"
BATCH_SWEEP = (1, 2, 4, 8)
NUM_CANDIDATES = 64
# Best-of-N over the interleaved sweep.  The 4-vs-8 gap is only a few
# percent, so the min needs this many samples to converge past
# scheduler noise on a 1-vCPU runner; a full sweep pass costs ~0.5 s.
REPEATS = 15


def measure(candidates: int = NUM_CANDIDATES,
            repeats: int = REPEATS) -> dict:
    """Sweep max_batch over a fixed candidate stream; return the record."""
    circuit = build_benchmark("OTA1")
    placement = place_benchmark(circuit, variant="A", seed=0, iterations=150)
    graph = build_hetero_graph(RoutingGrid(placement, generic_40nm()))
    model = Gnn3d(graph.ap_features.shape[1], graph.module_features.shape[1])

    rng = np.random.default_rng(0)
    stream = [rng.uniform(0.5, 2.0, size=(graph.num_aps, 3))
              for _ in range(candidates)]

    best: dict[int, float] = {b: float("inf") for b in BATCH_SWEEP}
    with tempfile.TemporaryDirectory() as tmp:
        registry = ModelRegistry(tmp)
        registry.save("ota1", model, graph)
        services = {}
        for max_batch in BATCH_SWEEP:
            service = ScoringService(ServeConfig(max_batch=max_batch,
                                                 max_queue=candidates))
            service.register_checkpoint("ota1", registry, "ota1", graph)
            # Warm the union-plan cache so steady-state is measured.
            list(service.score_stream(
                ScoreRequest("ota1", g) for g in stream[:max_batch]))
            services[max_batch] = service
        # Round-robin best-of-N: interleaving the sweep keeps slow machine
        # phases (page cache, noisy neighbours) from biasing whichever
        # batch size happens to be measured last.
        for _ in range(repeats):
            for max_batch, service in services.items():
                start = time.perf_counter()
                results = list(service.score_stream(
                    ScoreRequest("ota1", g) for g in stream))
                elapsed = time.perf_counter() - start
                assert all(r.status == "ok" for r in results)
                best[max_batch] = min(best[max_batch], elapsed)
    throughput = {str(b): round(candidates / t, 2) for b, t in best.items()}

    t1, t8 = throughput[str(BATCH_SWEEP[0])], throughput[str(BATCH_SWEEP[-1])]
    return {
        "candidates": candidates,
        "circuit": "OTA1",
        "max_batch_sweep": list(BATCH_SWEEP),
        "throughput_per_sec": throughput,
        "speedup_batch8_vs_1": round(t8 / t1, 2),
    }


def check(current: dict, baseline: dict | None,
          max_ratio: float = 3.0) -> list[str]:
    """3x throughput-regression gate plus the monotone-gain invariant."""
    problems: list[str] = []
    if current["speedup_batch8_vs_1"] <= 1.0:
        problems.append(
            f"no batching win: max_batch=8 is "
            f"{current['speedup_batch8_vs_1']}x max_batch=1 (need > 1x)")
    if baseline is None:
        return problems
    base = baseline.get("throughput_per_sec", {})
    for key, base_tp in base.items():
        cur_tp = current["throughput_per_sec"].get(key)
        if cur_tp is None:
            problems.append(f"max_batch={key} missing from current sweep")
        elif cur_tp * max_ratio < float(base_tp):
            problems.append(
                f"max_batch={key} throughput regressed "
                f"{float(base_tp) / cur_tp:.1f}x ({base_tp} -> {cur_tp} "
                f"candidates/s, limit {max_ratio:.1f}x)")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--candidates", type=int, default=NUM_CANDIDATES)
    parser.add_argument("--out", default=str(DEFAULT_OUT),
                        help="BENCH_perf.json to update in place")
    parser.add_argument("--baseline", default=str(DEFAULT_OUT),
                        help="committed record to compare against")
    parser.add_argument("--check", action="store_true",
                        help="fail on >3x throughput regression or a "
                             "non-monotone batching win")
    args = parser.parse_args(argv)

    baseline_serve = None
    if args.check:
        committed = load_bench_json(args.baseline)
        if committed is not None:
            baseline_serve = committed.get("serve")
            if baseline_serve is None:
                print(f"no serve section in {args.baseline}; skipping "
                      f"regression check")

    serve = measure(args.candidates)
    problems = check(serve, baseline_serve) if args.check else []

    out_path = Path(args.out)
    payload = load_bench_json(out_path) or {}
    payload["serve"] = serve
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
    print(f"wrote serve section of {out_path}")
    for key in serve["throughput_per_sec"]:
        print(f"  max_batch={key}: "
              f"{serve['throughput_per_sec'][key]} candidates/s")
    print(f"  speedup 8 vs 1: {serve['speedup_batch8_vs_1']}x")

    if problems:
        print("SERVE PERF REGRESSION:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
