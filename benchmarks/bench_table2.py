"""Table 2: post-layout comparison of all methods on all benchmark cells.

Regenerates the paper's headline table: Schematic / MagicalRoute [16] /
GeniusRoute [11] / AnalogFold (Ours) on OTA1-{A,B,C}, OTA2-{A,B,C},
OTA3-{A,B}, OTA4-{A,B}, plus the normalized-average block.

Expected shape (paper): AnalogFold beats both baselines on the normalized
averages of every metric (offset & noise ratios < 1, CMRR/BW/gain ratios
> 1); GeniusRoute is roughly at parity with MagicalRoute except for offset;
MagicalRoute is the fastest per-design route.

Scale via REPRO_SCALE (smoke/fast/full/paper); default fast.
"""

from conftest import write_result

from repro.eval.compare import evaluate_cell, normalized_averages, wins_against
from repro.eval.tables import format_table2

#: The paper's Table 2 cells.
CELLS = [
    ("OTA1", "A"), ("OTA1", "B"), ("OTA1", "C"),
    ("OTA2", "A"), ("OTA2", "B"), ("OTA2", "C"),
    ("OTA3", "A"), ("OTA3", "B"),
    ("OTA4", "A"), ("OTA4", "B"),
]


def test_table2(benchmark, scale):
    results = []

    def run_all_cells():
        results.clear()
        for i, (circuit, variant) in enumerate(CELLS):
            results.append(evaluate_cell(circuit, variant, scale=scale, seed=i))
        return results

    benchmark.pedantic(run_all_cells, rounds=1, iterations=1)

    table = format_table2(results)
    averages = normalized_averages(results)
    wins = wins_against(results, "analogfold", "magical")

    lines = [table, "", "AnalogFold wins vs MagicalRoute per metric "
             f"(out of {len(results)} cells): {wins}"]
    write_result("table2.txt", "\n".join(lines) + "\n")

    for metric, ratio in averages["analogfold"].items():
        benchmark.extra_info[f"analogfold_{metric}"] = round(ratio, 4)

    # Shape assertions (loose: stochastic pipeline at reduced scale).
    fold = averages["analogfold"]
    # AnalogFold must not lose on the offset average, the paper's
    # largest-margin metric (paper ratio: 0.546 vs 1.000).
    assert fold["offset_uv"] <= 1.05, f"offset ratio {fold['offset_uv']}"
    # And must be at least at parity overall: strictly better on at least
    # two of the five normalized metric averages.
    better = sum([
        fold["offset_uv"] < 0.999,
        fold["cmrr_db"] > 1.001,
        fold["bandwidth_mhz"] > 1.0,
        fold["gain_db"] > 1.0,
        fold["noise_uvrms"] < 1.0,
    ])
    assert better >= 2, f"AnalogFold better on only {better}/5 averages"
