"""Extension: the full method comparison on a topology outside Table 1.

Runs the folded-cascode OTA (``repro.netlist.extensions``) through the
same MagicalRoute / AnalogFold comparison to show the pipeline is not
over-fit to the paper's four benchmarks.
"""

from conftest import write_result

from repro import (
    AnalogFold,
    AnalogFoldConfig,
    DatasetConfig,
    FoMWeights,
    generic_40nm,
)
from repro.baselines import route_magical
from repro.core import RelaxationConfig
from repro.model import Gnn3dConfig, TrainConfig
from repro.netlist.extensions import build_folded_cascode
from repro.placement import place_benchmark


def test_ext_folded_cascode(benchmark, scale):
    circuit = build_folded_cascode()
    tech = generic_40nm()
    placement = place_benchmark(circuit, variant="A", seed=0,
                                iterations=scale.placement_iterations)

    def run_both():
        magical, magical_time = route_magical(circuit, placement, tech)
        fold = AnalogFold(
            circuit, placement, tech,
            config=AnalogFoldConfig(
                dataset=DatasetConfig(num_samples=scale.dataset_samples,
                                      seed=0),
                gnn=Gnn3dConfig(seed=0),
                training=TrainConfig(epochs=scale.train_epochs, seed=0),
                relaxation=RelaxationConfig(
                    n_restarts=scale.relax_restarts,
                    pool_size=scale.relax_pool,
                    n_derive=min(3, scale.relax_pool), seed=0),
            ),
        )
        return magical, magical_time, fold.run()

    magical, magical_time, fold_result = benchmark.pedantic(
        run_both, rounds=1, iterations=1)

    weights = FoMWeights()
    fom_magical = weights.fom(magical.metrics)
    fom_fold = weights.fom(fold_result.metrics)
    lines = ["Extension: folded-cascode OTA (outside the paper's Table 1)",
             f"MagicalRoute [{magical_time:.2f}s]: {magical.metrics}",
             f"  FoM {fom_magical:.3f}",
             f"AnalogFold: {fold_result.metrics}",
             f"  FoM {fom_fold:.3f}"]
    write_result("ext_folded_cascode.txt", "\n".join(lines) + "\n")

    benchmark.extra_info["fom_magical"] = round(fom_magical, 3)
    benchmark.extra_info["fom_analogfold"] = round(fom_fold, 3)
    assert fold_result.routing.success
    assert fom_fold <= fom_magical + 1e-9  # candidate set includes db best
