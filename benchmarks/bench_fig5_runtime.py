"""Figure 5: runtime breakdown of the AnalogFold flow on OTA1.

Regenerates the paper's pie chart as a text table.  Expected shape: model
training dominates total runtime (paper: 80.22%), database construction
plus inference stages are minor, guided detailed routing is a small
fraction (paper: 2.22%).

Note: at reduced REPRO_SCALE the training share shrinks (fewer epochs);
the assertion only requires training to be the single largest ML stage.
"""

import time

from conftest import write_result

from repro import (
    AnalogFold,
    AnalogFoldConfig,
    DatasetConfig,
    build_benchmark,
    generic_40nm,
    place_benchmark,
)
from repro.core import RelaxationConfig
from repro.eval.runtime import runtime_breakdown, runtime_breakdown_table
from repro.model import Gnn3dConfig, TrainConfig


def test_fig5_runtime_breakdown(benchmark, scale):
    circuit = build_benchmark("OTA1")
    tech = generic_40nm()

    place_start = time.perf_counter()
    placement = place_benchmark(circuit, variant="A", seed=0,
                                iterations=scale.placement_iterations)
    placement_seconds = time.perf_counter() - place_start

    fold = AnalogFold(
        circuit, placement, tech,
        config=AnalogFoldConfig(
            dataset=DatasetConfig(num_samples=scale.dataset_samples, seed=0),
            gnn=Gnn3dConfig(seed=0),
            training=TrainConfig(epochs=max(scale.train_epochs, 10), seed=0),
            relaxation=RelaxationConfig(
                n_restarts=scale.relax_restarts, pool_size=scale.relax_pool,
                n_derive=min(3, scale.relax_pool), seed=0),
        ),
    )

    result = benchmark.pedantic(fold.run, rounds=1, iterations=1)

    table = runtime_breakdown_table(result, placement_seconds)
    write_result("fig5_runtime.txt", table + "\n")
    fractions = runtime_breakdown(result, placement_seconds)
    for stage, frac in fractions.items():
        benchmark.extra_info[stage] = round(frac, 4)
    # Hot-path seconds from the pipeline's StageTimer — the same timers
    # bench_perf.py records into BENCH_perf.json.
    for stage, stats in result.stage_stats.items():
        benchmark.extra_info[f"timer_{stage}_s"] = round(stats["seconds"], 4)

    # Shape: guided routing is a small slice; at representative scales
    # (fast and above) training is the largest ML stage, as in the paper.
    assert fractions["guided_routing"] < 0.5
    assert abs(sum(fractions.values()) - 1.0) < 1e-9
    if scale.train_epochs >= 20:
        assert fractions["model_training"] >= fractions["guide_generation"]
