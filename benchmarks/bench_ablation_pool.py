"""Ablation: pool-assisted relaxation vs plain multi-start L-BFGS.

Section 4.3's claim: noisy restarts from a pool of the lowest-potential
solutions escape local optima that independent random restarts get stuck
in.  Same restart budget, same seeds; compare the best final potential.
"""

from conftest import write_result
from _shared import cached_database

from repro.core import PotentialFunction, PotentialRelaxer, RelaxationConfig
from repro.model import Gnn3d, Gnn3dConfig, TrainConfig, Trainer


def test_ablation_pool(benchmark, scale):
    samples = min(scale.dataset_samples, 30)
    _, _, _, database = cached_database(samples)
    graph = database.graph
    model = Gnn3d(
        graph.ap_features.shape[1], graph.module_features.shape[1],
        Gnn3dConfig(seed=0),
    )
    Trainer(model, graph,
            TrainConfig(epochs=max(scale.train_epochs, 10), val_fraction=0.0,
                        patience=0, seed=0)).fit(database.train_samples())
    potential = PotentialFunction(model, graph)

    restarts = max(scale.relax_restarts, 10)

    def run_both():
        out = {}
        for label, p_relax in (("pool", 0.6), ("multistart", 0.0)):
            best = []
            for seed in range(3):
                relaxer = PotentialRelaxer(RelaxationConfig(
                    n_restarts=restarts, pool_size=4, n_derive=1,
                    p_relax=p_relax, seed_points=0, maxiter=20, seed=seed))
                best.append(relaxer.run(potential)[0].potential)
            out[label] = best
        return out

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    pool_mean = sum(results["pool"]) / len(results["pool"])
    plain_mean = sum(results["multistart"]) / len(results["multistart"])
    lines = ["Ablation: pool-assisted relaxation vs plain multi-start",
             f"pool        best potentials: {results['pool']}",
             f"multi-start best potentials: {results['multistart']}",
             f"pool mean {pool_mean:.4f} vs multi-start mean {plain_mean:.4f}"]
    write_result("ablation_pool.txt", "\n".join(lines) + "\n")

    benchmark.extra_info["pool_mean"] = round(pool_mean, 4)
    benchmark.extra_info["multistart_mean"] = round(plain_mean, 4)
    # Shape: pool assistance is at least as good on average (ties allowed;
    # both use identical budgets).
    assert pool_mean <= plain_mean + 0.05
