"""Ablation: cost-aware distance (Eq. 1) vs plain Euclidean distance.

Eq. 1 is what couples the guidance C into the network's geometry; with a
plain Euclidean distance the prediction is constant in C, dV/dC vanishes,
and potential relaxation has nothing to optimize.  This bench makes that
failure mode measurable.
"""

import numpy as np
from conftest import write_result
from _shared import cached_database

from repro.core import PotentialFunction, PotentialRelaxer, RelaxationConfig
from repro.model import Gnn3d, Gnn3dConfig, TrainConfig, Trainer


def _trained_potential(database, use_cost_distance: bool, epochs: int):
    graph = database.graph
    model = Gnn3d(
        graph.ap_features.shape[1], graph.module_features.shape[1],
        Gnn3dConfig(seed=0, use_cost_distance=use_cost_distance),
    )
    Trainer(model, graph, TrainConfig(epochs=epochs, val_fraction=0.0,
                                      patience=0, seed=0)).fit(
        database.train_samples())
    # Negligible barrier so the measured gradient isolates the *model's*
    # dV/dC (the barrier gradient is nonzero everywhere by construction).
    return PotentialFunction(model, graph, barrier_r=1e-9)


def test_ablation_cost_distance(benchmark, scale):
    samples = min(scale.dataset_samples, 30)
    _, _, _, database = cached_database(samples)
    epochs = max(scale.train_epochs // 2, 5)

    def run_both():
        return (_trained_potential(database, True, epochs),
                _trained_potential(database, False, epochs))

    pot_cost, pot_plain = benchmark.pedantic(run_both, rounds=1, iterations=1)

    x = np.full(pot_cost.num_variables, 1.5)
    # Strip the barrier contribution: compare model-gradient magnitudes by
    # evaluating far from the boundary where the barrier gradient is tiny.
    _, grad_cost = pot_cost.value_and_grad(x)
    _, grad_plain = pot_plain.value_and_grad(x)
    norm_cost = float(np.linalg.norm(grad_cost))
    norm_plain = float(np.linalg.norm(grad_plain))

    # Relaxation under the plain model cannot move the *prediction*.
    relaxer = PotentialRelaxer(RelaxationConfig(
        n_restarts=3, pool_size=2, n_derive=1, maxiter=10, seed=0))
    best_plain = relaxer.run(pot_plain)[0]
    pred_before = pot_plain.predicted_metrics(x)
    pred_after = pot_plain.predicted_metrics(best_plain.guidance.reshape(-1))
    pred_shift = float(np.abs(pred_after - pred_before).max())

    lines = ["Ablation: cost-aware distance (Eq. 1) vs plain Euclidean",
             f"|dV/dC| with cost-aware distance: {norm_cost:.6f}",
             f"|dV/dC| with plain distance:      {norm_plain:.6f}",
             f"prediction shift achievable by relaxation (plain): "
             f"{pred_shift:.2e}"]
    write_result("ablation_distance.txt", "\n".join(lines) + "\n")

    benchmark.extra_info["grad_norm_cost_aware"] = round(norm_cost, 6)
    benchmark.extra_info["grad_norm_plain"] = round(norm_plain, 6)
    assert norm_cost > 10.0 * norm_plain, (
        "cost-aware distance should be the dominant dV/dC path")
    assert pred_shift < 1e-9, "plain-distance prediction must be constant in C"
