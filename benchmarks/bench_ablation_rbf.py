"""Ablation: RBF distance expansion (Eq. 2-3) vs raw distances.

Paper claim: feeding raw distances leaves the initially near-linear
network on a plateau; RBF expansion decorrelates initial messages and
trains faster.  We train twin models (same seed, same data) and compare
the training-loss trajectory.
"""

from conftest import write_result
from _shared import cached_database

from repro.model import Gnn3d, Gnn3dConfig, TrainConfig, Trainer


def _train(database, use_rbf: bool, epochs: int) -> list[float]:
    graph = database.graph
    model = Gnn3d(
        graph.ap_features.shape[1], graph.module_features.shape[1],
        Gnn3dConfig(seed=0, use_rbf=use_rbf),
    )
    trainer = Trainer(model, graph,
                      TrainConfig(epochs=epochs, val_fraction=0.0, patience=0,
                                  seed=0))
    return trainer.fit(database.train_samples()).train_loss


def test_ablation_rbf(benchmark, scale):
    samples = min(scale.dataset_samples, 30)
    _, _, _, database = cached_database(samples)
    epochs = max(scale.train_epochs, 10)

    def run_both():
        return _train(database, True, epochs), _train(database, False, epochs)

    with_rbf, without_rbf = benchmark.pedantic(run_both, rounds=1, iterations=1)

    lines = ["Ablation: RBF expansion vs raw distance",
             f"{'epoch':>5} {'with RBF':>12} {'raw distance':>12}"]
    for i, (a, b) in enumerate(zip(with_rbf, without_rbf)):
        lines.append(f"{i:>5} {a:>12.5f} {b:>12.5f}")
    write_result("ablation_rbf.txt", "\n".join(lines) + "\n")

    benchmark.extra_info["final_loss_rbf"] = round(with_rbf[-1], 5)
    benchmark.extra_info["final_loss_raw"] = round(without_rbf[-1], 5)
    # Shape: the RBF model must train at least as well (small tolerance for
    # run-to-run noise in the tiny-data regime).
    assert with_rbf[-1] <= without_rbf[-1] * 1.25
