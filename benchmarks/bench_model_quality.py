"""Supplementary: 3DGNN surrogate quality (the paper's accuracy claim).

The paper's method rests on the 3DGNN making "accurate predictions on
post-layout performance".  This bench trains the surrogate at the current
scale and scores held-out ranking quality (Kendall's tau between predicted
and measured FoM) — the property potential relaxation actually consumes.
"""

import math

from conftest import write_result
from _shared import cached_database

from repro.model import Gnn3d, Gnn3dConfig, TrainConfig, Trainer
from repro.model.evaluation import evaluate_surrogate, format_quality_report


def test_model_quality(benchmark, scale):
    samples_budget = max(min(scale.dataset_samples, 60), 12)
    _, _, _, database = cached_database(samples_budget)
    graph = database.graph
    all_samples = database.train_samples()
    n_test = max(len(all_samples) // 5, 3)
    train, test = all_samples[:-n_test], all_samples[-n_test:]

    def train_and_score():
        model = Gnn3d(
            graph.ap_features.shape[1], graph.module_features.shape[1],
            Gnn3dConfig(seed=0),
        )
        Trainer(model, graph,
                TrainConfig(epochs=max(scale.train_epochs, 15),
                            val_fraction=0.0, patience=0, seed=0)).fit(train)
        return evaluate_surrogate(model, graph, test)

    quality = benchmark.pedantic(train_and_score, rounds=1, iterations=1)

    report = format_quality_report(quality)
    write_result("model_quality.txt", report + "\n")
    benchmark.extra_info["kendall_tau"] = round(quality.fom_kendall_tau, 3)
    benchmark.extra_info["mean_mae"] = round(quality.mean_mae, 4)

    # Shape: the surrogate must keep the normalized regression error
    # bounded, and must not be *significantly* anti-correlated with the
    # true FoM ranking.  At reduced scales the held-out set is small (a
    # handful of samples), so tau itself is noise-dominated; the principled
    # check is a one-sided significance test against anti-correlation.
    assert quality.mean_mae < 1.5
    # z-score of tau under H0 (no association), normal approximation.
    n = quality.num_samples
    tau = quality.fom_kendall_tau
    var = 2.0 * (2 * n + 5) / (9.0 * n * (n - 1))
    z = tau / math.sqrt(var)
    benchmark.extra_info["tau_z_score"] = round(z, 3)
    assert z > -1.96, (
        f"surrogate significantly anti-correlated: tau={tau:.3f}, z={z:.2f}")
