"""Table 1: benchmark circuit statistics.

Regenerates the paper's Table 1 (device counts per benchmark) and times
netlist construction.  Expected shape: OTA1/OTA2 report 6/8/2/0/25 and
OTA3/OTA4 report 16/10/6/4/36 — ours match exactly by construction.
"""

from conftest import write_result

from repro.eval.tables import format_table1
from repro.netlist import BENCHMARKS, build_benchmark

#: Paper's Table 1 rows.
PAPER_TABLE1 = {
    "OTA1": (6, 8, 2, 0, 25),
    "OTA2": (6, 8, 2, 0, 25),
    "OTA3": (16, 10, 6, 4, 36),
    "OTA4": (16, 10, 6, 4, 36),
}


def test_table1(benchmark):
    def build_all():
        return {name: build_benchmark(name) for name in BENCHMARKS}

    circuits = benchmark(build_all)

    for name, expected in PAPER_TABLE1.items():
        measured = circuits[name].stats().as_row()
        assert measured == expected, f"{name}: {measured} != paper {expected}"

    table = format_table1()
    write_result("table1.txt", table + "\n\npaper rows matched exactly\n")
    benchmark.extra_info["rows_match_paper"] = True
