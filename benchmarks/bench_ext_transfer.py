"""Extension: guidance generality across placements.

The paper motivates AnalogFold partly by GeniusRoute's biased, poorly
generalizing guidance ("the model's performance may be largely compromised
when handling designs of varying sizes or aspect ratios").  This bench
makes that claim measurable on our substrate: train GeniusRoute's VAE on
the OTA1-A database, then apply its decoded map to the *different*
placement OTA1-B, versus AnalogFold re-derived on B (per-design, as the
paper's method is defined).
"""

from conftest import write_result

from repro import (
    AnalogFold,
    AnalogFoldConfig,
    DatasetConfig,
    FoMWeights,
    build_benchmark,
    generic_40nm,
    place_benchmark,
)
from repro.baselines import GeniusRoute, GeniusRouteConfig, route_magical
from repro.core import RelaxationConfig
from repro.core.dataset import route_and_measure
from repro.model import Gnn3dConfig, TrainConfig


def test_ext_guidance_transfer(benchmark, scale):
    circuit = build_benchmark("OTA1")
    tech = generic_40nm()
    placement_a = place_benchmark(circuit, variant="A", seed=0,
                                  iterations=scale.placement_iterations)
    placement_b = place_benchmark(circuit, variant="B", seed=0,
                                  iterations=scale.placement_iterations)

    def run_transfer():
        # Train AnalogFold on A (its database also feeds GeniusRoute).
        fold_a = AnalogFold(
            circuit, placement_a, tech,
            config=AnalogFoldConfig(
                dataset=DatasetConfig(num_samples=scale.dataset_samples,
                                      seed=0),
                gnn=Gnn3dConfig(seed=0),
                training=TrainConfig(epochs=scale.train_epochs, seed=0),
                relaxation=RelaxationConfig(
                    n_restarts=scale.relax_restarts,
                    pool_size=scale.relax_pool,
                    n_derive=min(3, scale.relax_pool), seed=0),
            ),
        )
        fold_a.build_database()

        genius = GeniusRoute(circuit, placement_a, tech,
                             config=GeniusRouteConfig(seed=0))
        genius.fit(fold_a.database)
        # Transfer: decode the A-trained map but route placement B.
        genius_b = GeniusRoute(circuit, placement_b, tech,
                               config=GeniusRouteConfig(seed=0))
        genius_b.vae = genius.vae
        genius_b.training_seconds = genius.training_seconds
        guidance_b = genius_b.generate_guidance(fold_a.database)
        genius_transfer = route_and_measure(
            circuit, placement_b, tech, guidance_b)

        # AnalogFold re-derives on B (the paper's per-design protocol).
        fold_b = AnalogFold(
            circuit, placement_b, tech,
            config=AnalogFoldConfig(
                dataset=DatasetConfig(num_samples=scale.dataset_samples,
                                      seed=1),
                gnn=Gnn3dConfig(seed=1),
                training=TrainConfig(epochs=scale.train_epochs, seed=1),
                relaxation=RelaxationConfig(
                    n_restarts=scale.relax_restarts,
                    pool_size=scale.relax_pool,
                    n_derive=min(3, scale.relax_pool), seed=1),
            ),
        )
        fold_result = fold_b.run()
        magical_b, _ = route_magical(circuit, placement_b, tech)
        return genius_transfer, fold_result, magical_b

    genius_transfer, fold_result, magical_b = benchmark.pedantic(
        run_transfer, rounds=1, iterations=1)

    weights = FoMWeights()
    fom_genius = weights.fom(genius_transfer.metrics)
    fom_fold = weights.fom(fold_result.metrics)
    fom_magical = weights.fom(magical_b.metrics)

    lines = ["Extension: guidance transfer from placement A to placement B",
             f"GeniusRoute (A-trained map on B): {genius_transfer.metrics}",
             f"  FoM {fom_genius:.3f}",
             f"AnalogFold (re-derived on B):     {fold_result.metrics}",
             f"  FoM {fom_fold:.3f}",
             f"MagicalRoute on B (reference):    {magical_b.metrics}",
             f"  FoM {fom_magical:.3f}"]
    write_result("ext_transfer.txt", "\n".join(lines) + "\n")

    benchmark.extra_info["fom_genius_transfer"] = round(fom_genius, 3)
    benchmark.extra_info["fom_analogfold"] = round(fom_fold, 3)
    # Shape: the per-design AnalogFold must beat the transferred 2D map.
    assert fom_fold <= fom_genius + 0.1
