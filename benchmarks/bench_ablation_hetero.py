"""Ablation: heterogeneous typed edges vs a homogeneous shared message MLP.

Section 4.1's claim: separating E_PP / E_MP / E_MM message functions fuses
physical and logical information better than a single shared function.
Twin models trained on the same data; compare held-out prediction error.
"""

from conftest import write_result
from _shared import cached_database

from repro.model import Gnn3d, Gnn3dConfig, TrainConfig, Trainer
from repro.nn import Tensor


def _eval(model, graph, samples) -> float:
    total = 0.0
    for s in samples:
        pred = model(graph, Tensor(s.guidance)).numpy()
        total += float(((pred - s.targets) ** 2).mean())
    return total / max(len(samples), 1)


def test_ablation_heterogeneous(benchmark, scale):
    samples = min(scale.dataset_samples, 30)
    _, _, _, database = cached_database(samples)
    graph = database.graph
    all_samples = database.train_samples()
    split = max(len(all_samples) - max(len(all_samples) // 5, 2), 2)
    train, test = all_samples[:split], all_samples[split:]
    epochs = max(scale.train_epochs, 10)

    def run_both():
        out = {}
        for label, hetero in (("hetero", True), ("homo", False)):
            model = Gnn3d(
                graph.ap_features.shape[1], graph.module_features.shape[1],
                Gnn3dConfig(seed=0, heterogeneous=hetero),
            )
            Trainer(model, graph,
                    TrainConfig(epochs=epochs, val_fraction=0.0, patience=0,
                                seed=0)).fit(train)
            out[label] = (_eval(model, graph, test), model.num_parameters())
        return out

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    (err_het, params_het) = results["hetero"]
    (err_hom, params_hom) = results["homo"]
    lines = ["Ablation: heterogeneous vs homogeneous message passing",
             f"heterogeneous: test MSE {err_het:.5f}  ({params_het} params)",
             f"homogeneous:   test MSE {err_hom:.5f}  ({params_hom} params)"]
    write_result("ablation_hetero.txt", "\n".join(lines) + "\n")

    benchmark.extra_info["mse_hetero"] = round(err_het, 5)
    benchmark.extra_info["mse_homo"] = round(err_hom, 5)
    assert params_het > params_hom
    # Shape: typed edges should not be clearly worse on held-out data.
    assert err_het <= err_hom * 1.5
