"""Figure 6: GeniusRoute vs AnalogFold routing solutions.

Regenerates the paper's side-by-side layout comparison as ASCII art and
checks the measured relationship: AnalogFold's routed solution must score
a figure of merit at least as good as GeniusRoute's on the same placement.
"""

from conftest import write_result

from repro import (
    AnalogFold,
    AnalogFoldConfig,
    DatasetConfig,
    FoMWeights,
    RoutingGrid,
    build_benchmark,
    generic_40nm,
    place_benchmark,
)
from repro.baselines import GeniusRoute, GeniusRouteConfig
from repro.core import RelaxationConfig
from repro.eval.visualize import render_layout
from repro.model import Gnn3dConfig, TrainConfig


def test_fig6_layout_comparison(benchmark, scale):
    circuit = build_benchmark("OTA1")
    placement = place_benchmark(circuit, variant="A", seed=0,
                                iterations=scale.placement_iterations)
    tech = generic_40nm()

    fold = AnalogFold(
        circuit, placement, tech,
        config=AnalogFoldConfig(
            dataset=DatasetConfig(num_samples=scale.dataset_samples, seed=0),
            gnn=Gnn3dConfig(seed=0),
            training=TrainConfig(epochs=scale.train_epochs, seed=0),
            relaxation=RelaxationConfig(
                n_restarts=scale.relax_restarts, pool_size=scale.relax_pool,
                n_derive=min(3, scale.relax_pool), seed=0),
        ),
    )

    def run_both():
        fold_result = fold.run()
        genius = GeniusRoute(circuit, placement, tech,
                             config=GeniusRouteConfig(seed=0))
        genius.fit(fold.database)
        genius_sample, _ = genius.run(fold.database)
        return fold_result, genius_sample

    fold_result, genius_sample = benchmark.pedantic(
        run_both, rounds=1, iterations=1)

    grid = RoutingGrid(placement, tech)
    art = ["=== (a) GeniusRoute routing solution (M1/M2) ==="]
    art.append(render_layout(genius_sample.result, grid, layer=0))
    art.append(render_layout(genius_sample.result, grid, layer=1))
    art.append("")
    art.append("=== (b) AnalogFold routing solution (M1/M2) ===")
    art.append(render_layout(fold_result.routing, grid, layer=0))
    art.append(render_layout(fold_result.routing, grid, layer=1))
    art.append("")
    art.append(f"GeniusRoute metrics: {genius_sample.metrics}")
    art.append(f"AnalogFold metrics:  {fold_result.metrics}")
    write_result("fig6_layouts.txt", "\n".join(art) + "\n")

    weights = FoMWeights()
    fom_fold = weights.fom(fold_result.metrics)
    fom_genius = weights.fom(genius_sample.metrics)
    benchmark.extra_info["fom_analogfold"] = round(fom_fold, 3)
    benchmark.extra_info["fom_geniusroute"] = round(fom_genius, 3)
    assert fold_result.routing.success and genius_sample.result.success
    assert fom_fold <= fom_genius + 0.25, (
        f"AnalogFold FoM {fom_fold:.3f} clearly worse than "
        f"GeniusRoute {fom_genius:.3f}")
