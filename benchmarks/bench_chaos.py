"""Serving chaos harness: availability under injected failure.

Drives a real :class:`repro.serve.ServeCluster` (worker processes,
pipes, SIGKILLs — nothing simulated) through a deterministic fault
schedule while an open-loop load generator submits guidance-scoring
requests:

* **worker kills** — SIGKILL at fixed request ordinals; the supervisor
  restarts the slot with backoff and the dispatcher re-dispatches the
  stranded in-flight work, so killed requests still come back ``ok``;
* **slow-forward stall** — a ``serve_stall`` fault wedges one request's
  forward far past its deadline; the request times out, the hung worker
  is detected and killed, the pool keeps serving;
* **checkpoint corruption** — a new registry version is tampered with
  on disk, then rolled over to; the cluster must quarantine it, roll
  back, and keep serving the prior version (a later clean rollover must
  succeed mid-load, zero-downtime);
* **queue flood** — a submission burst far beyond ``max_queue``; the
  cluster sheds earliest-deadline-first instead of failing closed.

The run writes a ``chaos`` section into ``BENCH_perf.json`` (the other
sections are preserved) with availability, error-budget use, latency
percentiles, recovery times, and loss accounting.  ``--check`` gates:

* availability = ok / (ok + failed + timeout) >= 99%;
* zero lost acknowledged requests: every ack reaches exactly one
  terminal outcome (``ok + failed + timeout + shed + rejected ==
  submitted``);
* the corrupt rollover quarantined, the clean rollover served, and
  every kill has a recorded recovery time.

Standalone usage (no pytest required)::

    python benchmarks/bench_chaos.py --scale smoke --check
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro import build_benchmark, generic_40nm, place_benchmark
from repro.graph import build_hetero_graph
from repro.model.gnn3d import Gnn3d, Gnn3dConfig
from repro.perf.timing import load_bench_json
from repro.reliability import FaultPlan
from repro.router import RoutingGrid
from repro.serve import (
    ClusterConfig,
    ModelRegistry,
    ServeCluster,
    ServeConfig,
)

DEFAULT_OUT = REPO_ROOT / "BENCH_perf.json"

#: Deterministic chaos schedules.  Ordinals are submission indices; the
#: stall unit is a dispatcher acknowledgement ordinal (identical
#: numbering, since the steady phase acknowledges in submission order).
SCALES = {
    "smoke": {
        "requests": 240,
        "workers": 2,
        "kill_at": (40, 170),
        "corrupt_rollover_at": 80,
        "clean_rollover_at": 130,
        "stall_unit": 200,
        "flood": 48,
        "deadline_s": 3.0,
        "stall_seconds": 12.0,
        "hang_grace_s": 0.3,
        "max_queue": 16,
        "worker_window": 2,
        "placement_iterations": 100,
    },
    "full": {
        "requests": 600,
        "workers": 3,
        "kill_at": (60, 220, 520),
        "corrupt_rollover_at": 120,
        "clean_rollover_at": 300,
        "stall_unit": 420,
        "flood": 96,
        "deadline_s": 3.0,
        "stall_seconds": 12.0,
        "hang_grace_s": 0.3,
        "max_queue": 24,
        "worker_window": 2,
        "placement_iterations": 150,
    },
}

#: Availability floor the --check gate enforces.
AVAILABILITY_FLOOR = 0.99


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values), q))


def _tamper(registry_root: Path, name: str, version: str) -> None:
    weights = registry_root / name / version / "weights.npz"
    weights.write_bytes(weights.read_bytes()[:-16] + b"chaos-corruption")


def measure(scale: str) -> dict:
    """Run the chaos schedule at ``scale``; return the record."""
    spec = SCALES[scale]
    circuit = build_benchmark("OTA1")
    placement = place_benchmark(circuit, variant="A", seed=0,
                                iterations=spec["placement_iterations"])
    graph = build_hetero_graph(RoutingGrid(placement, generic_40nm()))

    def make_model(seed: int) -> Gnn3d:
        return Gnn3d(graph.ap_features.shape[1],
                     graph.module_features.shape[1],
                     Gnn3dConfig(hidden=8, num_layers=1, rbf_centers=4,
                                 seed=seed))

    rng = np.random.default_rng(0)
    stream = [rng.uniform(0.5, 2.0, size=(graph.num_aps, 3))
              for _ in range(spec["requests"] + spec["flood"])]

    stall_plan = FaultPlan(
        stage="serve_stall", fail_units=frozenset({spec["stall_unit"]}),
        stall_seconds=spec["stall_seconds"])

    record: dict = {"scale": scale, "requests": spec["requests"],
                    "flood": spec["flood"], "workers": spec["workers"]}
    events: dict = {"kills": 0, "stalls_injected": 1, "corrupt_rollover": None,
                    "clean_rollover": None}
    wall_start = time.perf_counter()
    with tempfile.TemporaryDirectory() as tmp:
        registry_root = Path(tmp) / "registry"
        registry = ModelRegistry(registry_root)
        registry.save("ota1", make_model(seed=3), graph)
        cluster = ServeCluster(
            registry,
            ClusterConfig(
                workers=spec["workers"],
                max_queue=spec["max_queue"],
                worker_window=spec["worker_window"],
                default_deadline_s=spec["deadline_s"],
                hang_grace_s=spec["hang_grace_s"],
                serve=ServeConfig(max_batch=spec["worker_window"],
                                  max_queue=spec["max_queue"])),
            fault_plans=(stall_plan,))
        cluster.add_endpoint("ota1", "ota1", graph)
        with cluster:
            # -- steady open-loop load with the fault schedule ------------
            for index in range(spec["requests"]):
                if index in spec["kill_at"]:
                    victim = events["kills"] % spec["workers"]
                    cluster.kill_worker(victim)
                    events["kills"] += 1
                if index == spec["corrupt_rollover_at"]:
                    bad = registry.save("ota1", make_model(seed=9), graph)
                    _tamper(registry_root, "ota1", bad.version)
                    outcome = cluster.rollover("ota1")
                    events["corrupt_rollover"] = {
                        "ok": outcome.ok,
                        "quarantined": outcome.quarantined,
                        "serving": cluster.versions["ota1"]}
                if index == spec["clean_rollover_at"]:
                    good = registry.save("ota1", make_model(seed=11), graph)
                    outcome = cluster.rollover("ota1")
                    events["clean_rollover"] = {
                        "ok": outcome.ok,
                        "to_version": outcome.to_version,
                        "expected": good.version,
                        "reason": outcome.reason}
                cluster.submit("ota1", stream[index],
                               request_id=f"req-{index}")
                # Open-loop pacing: admission outruns scoring, so yield
                # pump cycles whenever the pipeline is saturated instead
                # of letting the steady phase shed.
                while cluster.outstanding() >= spec["max_queue"]:
                    cluster.pump()
            steady = cluster.drain()
            # -- queue flood: shed, don't fail closed ---------------------
            for index in range(spec["flood"]):
                cluster.submit(
                    "ota1", stream[spec["requests"] + index],
                    request_id=f"flood-{index}")
            flood = cluster.drain()
            stats = cluster.stats
            recoveries = cluster.recovery_times()
            serving_version = cluster.versions["ota1"]
    wall_s = time.perf_counter() - wall_start

    results = steady + flood
    ok_latencies = sorted(r.latency_s for r in results if r.status == "ok")
    served = stats.ok + stats.failed + stats.timeout
    availability = stats.ok / served if served else 0.0
    lost = stats.submitted - stats.accounted()
    record.update({
        "outcomes": {"ok": stats.ok, "failed": stats.failed,
                     "timeout": stats.timeout, "shed": stats.shed,
                     "rejected": stats.rejected},
        "submitted": stats.submitted,
        "lost_requests": lost,
        "availability": round(availability, 5),
        "error_budget_used": round(1.0 - availability, 5),
        "redispatched": stats.redispatched,
        "duplicates_dropped": stats.duplicates,
        "restarts": stats.restarts,
        "hung_kills": stats.hung_kills,
        "latency_s": {"p50": round(_percentile(ok_latencies, 50), 4),
                      "p95": round(_percentile(ok_latencies, 95), 4),
                      "p99": round(_percentile(ok_latencies, 99), 4)},
        "recovery_s": {
            "count": len(recoveries),
            "mean": round(float(np.mean(recoveries)), 4) if recoveries
            else None,
            "max": round(max(recoveries), 4) if recoveries else None},
        "events": events,
        "serving_version": serving_version,
        "wall_s": round(wall_s, 2),
    })
    return record


def check(record: dict) -> list[str]:
    """The chaos gate: absolute availability/zero-loss invariants."""
    problems: list[str] = []
    if record["availability"] < AVAILABILITY_FLOOR:
        problems.append(
            f"availability {record['availability']:.4f} < "
            f"{AVAILABILITY_FLOOR:.2f} under injected failure")
    if record["lost_requests"] != 0:
        problems.append(
            f"{record['lost_requests']} acknowledged request(s) lost "
            f"(submitted {record['submitted']}, outcomes "
            f"{record['outcomes']})")
    if record["restarts"] < len(SCALES[record["scale"]]["kill_at"]):
        problems.append(
            f"only {record['restarts']} restart(s) for "
            f"{len(SCALES[record['scale']]['kill_at'])} kill(s)")
    if record["recovery_s"]["count"] < 1:
        problems.append("no recovery time was recorded after kills")
    corrupt = record["events"]["corrupt_rollover"]
    if corrupt is None or corrupt["ok"] or not corrupt["quarantined"]:
        problems.append(
            f"corrupt rollover was not quarantined: {corrupt}")
    clean = record["events"]["clean_rollover"]
    if clean is None or not clean["ok"] \
            or clean["to_version"] != clean["expected"]:
        problems.append(f"clean rollover failed: {clean}")
    if record["outcomes"]["shed"] < 1:
        problems.append(
            "the queue flood shed nothing — load-shedding is dead code")
    if record["outcomes"]["timeout"] < 1:
        problems.append(
            "the stall injected no timeout — deadline path is dead code")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="smoke", choices=sorted(SCALES))
    parser.add_argument("--out", default=str(DEFAULT_OUT),
                        help="BENCH_perf.json to update in place")
    parser.add_argument("--check", action="store_true",
                        help="fail when availability < 99%%, any "
                             "acknowledged request is lost, or a chaos "
                             "scenario did not exercise its path")
    args = parser.parse_args(argv)

    chaos = measure(args.scale)

    out_path = Path(args.out)
    payload = load_bench_json(out_path) or {}
    payload["chaos"] = chaos
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
    print(f"wrote chaos section of {out_path}")
    print(f"  availability: {chaos['availability']:.4f} "
          f"(outcomes {chaos['outcomes']})")
    print(f"  lost: {chaos['lost_requests']}  "
          f"redispatched: {chaos['redispatched']}  "
          f"duplicates dropped: {chaos['duplicates_dropped']}")
    print(f"  restarts: {chaos['restarts']} "
          f"(hung kills {chaos['hung_kills']}), recovery "
          f"{chaos['recovery_s']}")
    print(f"  latency p50/p95/p99: {chaos['latency_s']['p50']}/"
          f"{chaos['latency_s']['p95']}/{chaos['latency_s']['p99']} s")
    print(f"  rollovers: corrupt={chaos['events']['corrupt_rollover']} "
          f"clean={chaos['events']['clean_rollover']}")
    print(f"  wall: {chaos['wall_s']}s")

    problems = check(chaos) if args.check else []
    if problems:
        print("CHAOS GATE FAILED:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
