"""Figure 2(b): potential relaxation trajectory.

Regenerates the relaxation loop of Figure 2(b): L-BFGS restarts over the
trained potential with a pool of the lowest-potential solutions.  Expected
shape: best-so-far potential is monotone non-increasing over restarts and
improves on the best random initialization.
"""

import numpy as np
from conftest import write_result

from repro import (
    AnalogFold,
    AnalogFoldConfig,
    DatasetConfig,
    PotentialFunction,
    PotentialRelaxer,
    RelaxationConfig,
    build_benchmark,
    generic_40nm,
    place_benchmark,
)
from repro.model import Gnn3dConfig, TrainConfig


def test_fig2_relaxation_trajectory(benchmark, scale):
    circuit = build_benchmark("OTA1")
    placement = place_benchmark(circuit, variant="A", seed=0,
                                iterations=scale.placement_iterations)
    fold = AnalogFold(
        circuit, placement, generic_40nm(),
        config=AnalogFoldConfig(
            dataset=DatasetConfig(num_samples=scale.dataset_samples, seed=0),
            gnn=Gnn3dConfig(seed=0),
            training=TrainConfig(epochs=scale.train_epochs, seed=0),
        ),
    )
    fold.train()
    potential = PotentialFunction(fold.model, fold.database.graph)

    relaxer = PotentialRelaxer(RelaxationConfig(
        n_restarts=max(6, scale.relax_restarts),
        pool_size=scale.relax_pool,
        n_derive=1, seed=0))

    best = benchmark.pedantic(
        lambda: relaxer.run(potential)[0], rounds=1, iterations=1)

    trajectory = relaxer.trace.best_per_restart
    rng = np.random.default_rng(0)
    random_vals = [
        potential.value(rng.uniform(0.5, 2.0, potential.num_variables))
        for _ in range(8)
    ]

    lines = ["Figure 2(b): pool-assisted relaxation trajectory",
             f"random-initialization potentials: "
             f"{[round(v, 3) for v in random_vals]}",
             "best-so-far potential per restart:"]
    lines += [f"  restart {i:2d}: {v: .4f}" for i, v in enumerate(trajectory)]
    lines.append(f"pool-seeded restarts: {relaxer.trace.pool_seeded}")
    write_result("fig2_relaxation.txt", "\n".join(lines) + "\n")

    benchmark.extra_info["final_potential"] = round(best.potential, 4)
    assert trajectory == sorted(trajectory, reverse=True)
    assert best.potential <= min(random_vals) + 1e-9
