"""Figure 1(a)/(b): non-uniform routing guidance examples.

Regenerates the paper's guidance illustration as text: each pin access
point carries its own 1x3 cost vector, and the derived guidance is
non-uniform (different APs prefer different directions) — unlike
GeniusRoute's single 2D map.
"""

import numpy as np
from conftest import write_result

from repro import (
    AnalogFold,
    AnalogFoldConfig,
    DatasetConfig,
    RoutingGrid,
    build_benchmark,
    generic_40nm,
    place_benchmark,
)
from repro.core import RelaxationConfig
from repro.eval.visualize import guidance_histogram, render_guidance
from repro.model import Gnn3dConfig, TrainConfig


def test_fig1_nonuniform_guidance(benchmark, scale):
    circuit = build_benchmark("OTA1")
    placement = place_benchmark(circuit, variant="A", seed=0,
                                iterations=scale.placement_iterations)
    tech = generic_40nm()
    fold = AnalogFold(
        circuit, placement, tech,
        config=AnalogFoldConfig(
            dataset=DatasetConfig(num_samples=scale.dataset_samples, seed=0),
            gnn=Gnn3dConfig(seed=0),
            training=TrainConfig(epochs=scale.train_epochs, seed=0),
            relaxation=RelaxationConfig(
                n_restarts=scale.relax_restarts, pool_size=scale.relax_pool,
                n_derive=min(3, scale.relax_pool), seed=0),
        ),
    )

    result = benchmark.pedantic(fold.run, rounds=1, iterations=1)

    grid = RoutingGrid(placement, tech)
    text = render_guidance(result.guidance, grid)
    hist = guidance_histogram(result.guidance)
    write_result("fig1_guidance.txt", text + "\n\n" + hist + "\n")

    # Shape: guidance must be non-uniform across access points...
    vectors = np.stack(list(result.guidance.vectors.values()))
    per_ap_spread = vectors.std(axis=0).max()
    benchmark.extra_info["per_ap_spread"] = float(per_ap_spread)
    assert per_ap_spread > 1e-3, "guidance collapsed to a uniform map"
    # ...and anisotropic for at least some pins (direction preferences).
    aniso = (vectors.max(axis=1) - vectors.min(axis=1)).max()
    benchmark.extra_info["max_anisotropy"] = float(aniso)
    assert aniso > 1e-3, "guidance has no direction preference anywhere"
