"""Benchmark harness configuration.

Every bench writes its reproduction artifact (the regenerated table or
figure) under ``benchmarks/results/`` so the numbers survive the run.  The
problem scale is selected with the ``REPRO_SCALE`` environment variable
(``smoke`` | ``fast`` | ``full`` | ``paper``), defaulting to ``fast``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.eval.compare import SCALES

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale():
    """The EvalScale chosen via the REPRO_SCALE environment variable."""
    name = os.environ.get("REPRO_SCALE", "fast")
    if name not in SCALES:
        raise ValueError(f"REPRO_SCALE={name!r} not in {sorted(SCALES)}")
    return SCALES[name]


def write_result(name: str, content: str) -> Path:
    """Persist a regenerated table/figure under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(content)
    return path


@pytest.fixture(scope="session")
def scale():
    return bench_scale()
