"""Performance benchmark harness: stage timings -> BENCH_perf.json.

Runs the AnalogFold pipeline on OTA1 at the selected ``REPRO_SCALE`` (or
``--scale``) with the pipeline's own :class:`repro.perf.timing.StageTimer`
instrumentation, then records per-stage wall time (route / extract /
simulate / train / relax, plus calls), the batched-relaxation forward
reduction, and a forward-scaling sweep (per-candidate ``forward_batch``
time vs batch size, float64 and float32, with the blocked-parity
contract numbers) into ``BENCH_perf.json`` at the repo root.

Expected shape: the route stage dominates database construction, train
dominates total time at representative scales, and batched relaxation
performs several times fewer GNN forward-backward passes than serial
restarts for the same restart count.

Standalone usage (no pytest required)::

    PYTHONPATH=src python benchmarks/bench_perf.py --scale smoke --check

``--check`` compares against the committed ``BENCH_perf.json`` before
overwriting it and exits non-zero when any stage regressed more than
3x (CI's gate; slower-than-baseline runners get headroom via the noise
floor in :func:`repro.perf.timing.compare_to_baseline`).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro import AnalogFold, build_benchmark, generic_40nm, place_benchmark
from repro.core import PotentialFunction, PotentialRelaxer, RelaxationConfig
from repro.eval.compare import SCALES
from repro.graph import build_hetero_graph
from repro.model.gnn3d import Gnn3d
from repro.nn import Tensor
from repro.perf.timing import (
    bench_payload,
    compare_to_baseline,
    load_bench_json,
    write_bench_json,
)
from repro.router import IterativeRouter, RoutingGrid
from repro.router.guidance import RoutingGuidance, random_guidance
from repro.router.iterative import RouterConfig
from repro.serve import FLOAT32_PARITY_RTOL

DEFAULT_OUT = REPO_ROOT / "BENCH_perf.json"

#: Circuits of the router benchmark (every built-in OTA).
ROUTE_CIRCUITS = ("OTA1", "OTA2", "OTA3")

#: Timed repetitions per router scenario (best-of, interleaved).
ROUTE_REPEATS = 3

#: Gates for the ``route`` section under ``--check``.  The neutral
#: scenarios exercise the bucketed (dial) queue — the tentpole engine —
#: and must clear 3x over the in-run reference router; continuous
#: random-guidance scenarios fall back to the scalar heap engine, whose
#: floor is lower.  Both are in-run comparisons, so the gate does not
#: depend on runner speed.
ROUTE_MIN_SPEEDUP_NEUTRAL = 3.0
ROUTE_MIN_SPEEDUP_GUIDED = 1.5

#: Batch sizes of the forward-scaling sweep (``forward`` section).
FORWARD_BATCHES = (1, 2, 4, 8, 16)

#: Timed repetitions per (batch, dtype) point, best-of.
FORWARD_REPEATS = 5

#: Gate: per-candidate time at the largest swept batch must amortize to
#: at most this fraction of the unbatched (B=1) per-candidate time.
#: The observed amortization is far stronger; 0.9 only asserts that
#: cache-blocked batching keeps paying off at all past forward_block.
FORWARD_MAX_AMORTIZED_RATIO = 0.9


def _route_once(placement, tech, guidance_seed, engine: str,
                workers: int = 0):
    """One timed ``route_all`` on a fresh grid; returns (dt, paths, exp)."""
    grid = RoutingGrid(placement, tech)
    if guidance_seed is None:
        guidance = RoutingGuidance()
    else:
        rng = np.random.default_rng(guidance_seed)
        keys = [ap.key for aps in grid.access_points.values() for ap in aps]
        guidance = random_guidance(keys, rng)
    router = IterativeRouter(
        grid, guidance, RouterConfig(engine=engine, workers=workers))
    start = time.perf_counter()
    result = router.route_all()
    elapsed = time.perf_counter() - start
    paths = {name: tuple(tuple(path) for path in route.paths)
             for name, route in result.routes.items()}
    return elapsed, paths, router.astar.expansions_total


def measure_route(workers: int = 2) -> dict:
    """Router benchmark: in-run reference vs. new engines on every OTA.

    Each scenario routes the same placement with the seed (reference)
    router and the new auto engine (bucketed dial queue on neutral
    guidance, scalar heap fallback on continuous guidance), then once
    more with speculative net-parallel workers.  Identity of routed
    paths across all three is part of the record (and the CI gate).
    """
    tech = generic_40nm()
    scenarios: dict[str, dict] = {}
    totals = {"neutral": [0.0, 0.0], "guided": [0.0, 0.0]}
    identical = True
    for circuit_name in ROUTE_CIRCUITS:
        circuit = build_benchmark(circuit_name)
        placement = place_benchmark(circuit, variant="A", seed=0,
                                    iterations=200)
        for label, seed in (("neutral", None), ("guided", 7)):
            # Interleave reference/auto trials so slow drift on the
            # runner (thermal, background load) biases neither side.
            ref_t, ref_paths, ref_exp = _route_once(
                placement, tech, seed, "reference")
            new_t, new_paths, new_exp = _route_once(
                placement, tech, seed, "auto")
            for _ in range(ROUTE_REPEATS - 1):
                ref_t = min(ref_t, _route_once(
                    placement, tech, seed, "reference")[0])
                new_t = min(new_t, _route_once(
                    placement, tech, seed, "auto")[0])
            par_t, par_paths, _ = _route_once(
                placement, tech, seed, "auto", workers=workers)
            nets = max(len(ref_paths), 1)
            same = (new_paths == ref_paths and par_paths == ref_paths
                    and new_exp == ref_exp)
            identical = identical and same
            totals[label][0] += ref_t
            totals[label][1] += new_t
            scenarios[f"{circuit_name}.{label}"] = {
                "reference_seconds": round(ref_t, 4),
                "auto_seconds": round(new_t, 4),
                "workers_seconds": round(par_t, 4),
                "speedup": round(ref_t / new_t, 2),
                "expansions": new_exp,
                "expansions_per_sec": round(new_exp / new_t),
                "per_net_route_seconds": round(new_t / nets, 5),
                "paths_identical": same,
            }
    return {
        "scenarios": scenarios,
        "speedup": {
            "neutral": round(totals["neutral"][0] / totals["neutral"][1], 2),
            "guided": round(totals["guided"][0] / totals["guided"][1], 2),
        },
        "paths_identical": identical,
        "workers_checked": workers,
        "repeats": ROUTE_REPEATS,
    }


def check_route(route: dict, baseline: dict | None) -> list[str]:
    """Route-section gates: in-run speedups and path identity."""
    problems: list[str] = []
    speedup = route.get("speedup", {})
    neutral = float(speedup.get("neutral", 0.0))
    guided = float(speedup.get("guided", 0.0))
    if neutral < ROUTE_MIN_SPEEDUP_NEUTRAL:
        problems.append(
            f"route speedup (neutral/bucketed) {neutral:.2f}x below the "
            f"{ROUTE_MIN_SPEEDUP_NEUTRAL:.1f}x gate")
    if guided < ROUTE_MIN_SPEEDUP_GUIDED:
        problems.append(
            f"route speedup (guided/scalar) {guided:.2f}x below the "
            f"{ROUTE_MIN_SPEEDUP_GUIDED:.1f}x gate")
    if not route.get("paths_identical", False):
        bad = [name for name, s in route.get("scenarios", {}).items()
               if not s.get("paths_identical", False)]
        problems.append(f"routed paths differ from the reference router "
                        f"in: {', '.join(bad) or 'unknown'}")
    if baseline is not None and "route" in baseline:
        base_route = float(
            baseline["route"].get("speedup", {}).get("neutral", 0.0))
        if base_route and neutral < base_route / 1.5:
            problems.append(
                f"route speedup (neutral) fell {base_route:.2f}x -> "
                f"{neutral:.2f}x vs committed baseline")
    return problems


def measure_forward() -> dict:
    """Forward-scaling benchmark: per-candidate time vs batch size.

    Times the cache-blocked union forward (``Gnn3d.forward_batch``) on
    OTA1 across :data:`FORWARD_BATCHES` in both execution dtypes, and
    records the parity numbers the serving contract promises: float64
    blocked output vs the unbatched seed forward (< 1e-10) and float32
    vs float64 (relative, gated at ``FLOAT32_PARITY_RTOL``).
    """
    circuit = build_benchmark("OTA1")
    placement = place_benchmark(circuit, variant="A", seed=0, iterations=150)
    graph = build_hetero_graph(RoutingGrid(placement, generic_40nm()))
    ap_dim = graph.ap_features.shape[1]
    mod_dim = graph.module_features.shape[1]
    model64 = Gnn3d(ap_dim, mod_dim)
    model32 = Gnn3d(ap_dim, mod_dim).to_dtype(np.float32)

    rng = np.random.default_rng(0)
    batch_max = max(FORWARD_BATCHES)
    pool = rng.uniform(0.5, 2.0, size=(batch_max, graph.num_aps, 3))

    per_candidate: dict[str, dict[str, float]] = {
        "float64": {}, "float32": {}}
    for dtype_name, model in (("float64", model64), ("float32", model32)):
        for batch in FORWARD_BATCHES:
            guidance = Tensor(pool[:batch].astype(dtype_name))
            model.forward_batch(graph, guidance)  # warm the plan cache
            best = float("inf")
            for _ in range(FORWARD_REPEATS):
                start = time.perf_counter()
                model.forward_batch(graph, guidance)
                best = min(best, time.perf_counter() - start)
            per_candidate[dtype_name][str(batch)] = round(
                best / batch * 1e3, 4)

    # Parity at the largest batch: blocked vs unbatched seed forward.
    blocked = model64.forward_batch(graph, Tensor(pool)).numpy()
    unbatched = np.stack([model64(graph, Tensor(g)).numpy() for g in pool])
    f64_abs = float(np.abs(blocked - unbatched).max())
    out32 = model32.forward_batch(
        graph, Tensor(pool.astype(np.float32))).numpy()
    f32_rel = float((np.abs(out32 - blocked)
                     / np.maximum(1.0, np.abs(blocked))).max())

    b1 = per_candidate["float64"][str(FORWARD_BATCHES[0])]
    b_max = per_candidate["float64"][str(batch_max)]
    return {
        "circuit": "OTA1",
        "batch_sweep": list(FORWARD_BATCHES),
        "per_candidate_ms": per_candidate,
        "amortized_ratio": round(b_max / b1, 3),
        "float64_blocked_vs_unbatched_max_abs": f64_abs,
        "float32_vs_float64_max_rel": f32_rel,
        "float32_parity_rtol": FLOAT32_PARITY_RTOL,
        "repeats": FORWARD_REPEATS,
    }


def check_forward(forward: dict, baseline: dict | None,
                  max_ratio: float = 3.0) -> list[str]:
    """Forward-section gates: parity contracts plus amortization."""
    problems: list[str] = []
    if forward["float64_blocked_vs_unbatched_max_abs"] >= 1e-10:
        problems.append(
            f"float64 blocked forward differs from the unbatched seed "
            f"forward by {forward['float64_blocked_vs_unbatched_max_abs']:g} "
            f"(contract: < 1e-10)")
    if forward["float32_vs_float64_max_rel"] >= FLOAT32_PARITY_RTOL:
        problems.append(
            f"float32 forward off by "
            f"{forward['float32_vs_float64_max_rel']:g} relative "
            f"(contract: < {FLOAT32_PARITY_RTOL:g})")
    if forward["amortized_ratio"] > FORWARD_MAX_AMORTIZED_RATIO:
        sweep = forward["batch_sweep"]
        problems.append(
            f"batching stopped amortizing: per-candidate time at "
            f"B={sweep[-1]} is {forward['amortized_ratio']}x B=1 "
            f"(gate: <= {FORWARD_MAX_AMORTIZED_RATIO})")
    if baseline is None or "forward" not in baseline:
        return problems
    base = baseline["forward"].get("per_candidate_ms", {})
    for dtype_name, points in base.items():
        for key, base_ms in points.items():
            cur_ms = forward["per_candidate_ms"].get(
                dtype_name, {}).get(key)
            if cur_ms is not None and cur_ms > float(base_ms) * max_ratio:
                problems.append(
                    f"forward {dtype_name} B={key} regressed "
                    f"{cur_ms / float(base_ms):.1f}x ({base_ms} -> "
                    f"{cur_ms} ms/candidate, limit {max_ratio:.1f}x)")
    return problems


#: Timed repetitions of the corpus ingest sweep, best-of.
INGEST_REPEATS = 5

#: Gate: end-to-end ingest (parse -> flatten -> symmetry -> autobench)
#: of the whole vendored corpus must stay under this budget.  The
#: importer is pure python over a few dozen cards; a second means a
#: quadratic blowup crept into flattening or symmetry search.
INGEST_MAX_SECONDS = 1.0


def measure_ingest() -> dict:
    """Importer throughput over the vendored corpus (``ingest`` section)."""
    from repro.io.ingest import ingest_file
    from repro.reliability.errors import SpiceParseError

    corpus_dir = REPO_ROOT / "tests" / "corpus"
    files = sorted(corpus_dir.glob("*.sp"))
    cards = sum(
        1 for path in files for line in path.read_text().splitlines()
        if line.strip() and not line.strip().startswith(("*", "+")))

    best = float("inf")
    results = {}
    for _ in range(INGEST_REPEATS):
        start = time.perf_counter()
        results = {path.stem: ingest_file(path) for path in files}
        best = min(best, time.perf_counter() - start)

    # The taxonomy fixture must keep failing typed — a raw ValueError
    # escaping here is exactly the regression the CI smoke job guards.
    bad_typed = False
    try:
        ingest_file(corpus_dir / "bad" / "unsupported.sp")
    except SpiceParseError:
        bad_typed = True

    return {
        "files": len(files),
        "cards": cards,
        "seconds": round(best, 4),
        "cards_per_second": round(cards / best, 1),
        "symmetry_pairs": {
            name: len(res.bench.symmetry.net_pairs)
            for name, res in sorted(results.items())
        },
        "bad_fixture_typed": bad_typed,
    }


def check_ingest(ingest: dict, baseline: dict | None,
                 max_ratio: float = 3.0) -> list[str]:
    """Ingest-section gates: absolute budget plus baseline ratio."""
    problems: list[str] = []
    if ingest["seconds"] > INGEST_MAX_SECONDS:
        problems.append(
            f"corpus ingest took {ingest['seconds']}s "
            f"(budget {INGEST_MAX_SECONDS}s)")
    if not ingest["bad_fixture_typed"]:
        problems.append(
            "tests/corpus/bad/unsupported.sp no longer fails with "
            "SpiceParseError — taxonomy escape in the importer")
    for name, pairs in ingest["symmetry_pairs"].items():
        if pairs == 0:
            problems.append(f"no symmetry inferred for corpus file {name}")
    if baseline is not None and "ingest" in baseline:
        base_s = float(baseline["ingest"].get("seconds", 0.0))
        if base_s > 0 and ingest["seconds"] > base_s * max_ratio:
            problems.append(
                f"ingest regressed {ingest['seconds'] / base_s:.1f}x "
                f"({base_s} -> {ingest['seconds']}s, limit "
                f"{max_ratio:.1f}x)")
    return problems


def measure(scale_name: str, workers: int = 1) -> dict:
    """Run the instrumented pipeline and return the perf payload."""
    scale = SCALES[scale_name]
    circuit = build_benchmark("OTA1")
    tech = generic_40nm()
    placement = place_benchmark(circuit, variant="A", seed=0,
                                iterations=scale.placement_iterations)

    config = scale.analogfold_config(seed=0)
    config.workers = workers
    fold = AnalogFold(circuit, placement, tech, config=config)
    result = fold.run()

    # Forward-count comparison: serial vs batched relaxation on the
    # just-trained model (separate potentials so the pipeline timer above
    # stays untouched).  The restart structure is the paper-default
    # 12-restart / pool-6 shape regardless of scale — at smoke scale the
    # shrunken 3-restart config would understate the batching win (the
    # reduction factor is ~ restarts per wave).
    relax_kwargs = dict(
        n_restarts=12,
        pool_size=6,
        n_derive=3,
        maxiter=15,
        seed=0,
        seed_points=0,
    )
    pot = PotentialFunction(fold.model, fold.database.graph,
                            c_max=config.dataset.c_max)
    serial = PotentialRelaxer(RelaxationConfig(**relax_kwargs))
    serial.run(pot)
    pot.reset_stats()
    batched = PotentialRelaxer(RelaxationConfig(**relax_kwargs, batched=True))
    batched.run(pot)
    forwards_serial = serial.trace.gnn_forwards
    forwards_batched = batched.trace.gnn_forwards

    return bench_payload(fold.timer, extra={
        "scale": scale_name,
        "workers": workers,
        "circuit": "OTA1",
        "figure5_stage_seconds": {
            k: round(v, 4) for k, v in result.stage_seconds.items()
        },
        "relax_forwards_serial": forwards_serial,
        "relax_forwards_batched": forwards_batched,
        "relax_forward_reduction": round(
            forwards_serial / max(forwards_batched, 1), 2),
        "total_seconds": round(fold.timer.total_seconds(), 4),
    })


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale",
                        default=os.environ.get("REPRO_SCALE", "smoke"),
                        choices=sorted(SCALES))
    parser.add_argument("--workers", type=int, default=1,
                        help="database-construction worker processes")
    parser.add_argument("--out", default=str(DEFAULT_OUT),
                        help="where to write the perf record")
    parser.add_argument("--baseline", default=str(DEFAULT_OUT),
                        help="committed baseline to compare against")
    parser.add_argument("--check", action="store_true",
                        help="fail when a stage regressed > 3x vs baseline "
                             "or a route gate fails")
    parser.add_argument("--route-workers", type=int, default=2,
                        help="worker count for the net-parallel identity "
                             "check of the route section")
    args = parser.parse_args(argv)

    payload = measure(args.scale, workers=args.workers)
    payload["route"] = measure_route(workers=args.route_workers)
    payload["forward"] = measure_forward()
    payload["ingest"] = measure_ingest()

    # The serve-throughput (benchmarks/bench_serve.py) and chaos
    # (benchmarks/bench_chaos.py) records share this file; carry their
    # sections over instead of dropping them on rewrite.
    existing = load_bench_json(args.out)
    if existing is not None:
        for section in ("serve", "chaos"):
            if section in existing:
                payload[section] = existing[section]

    problems: list[str] = []
    if args.check:
        baseline = load_bench_json(args.baseline)
        if baseline is None:
            print(f"no baseline at {args.baseline}; skipping regression "
                  f"check")
        elif baseline.get("scale") != payload.get("scale"):
            print(f"baseline scale {baseline.get('scale')!r} != current "
                  f"{payload.get('scale')!r}; skipping regression check")
        else:
            problems = compare_to_baseline(payload, baseline)
        problems += check_route(payload["route"], baseline)
        problems += check_forward(payload["forward"], baseline)
        problems += check_ingest(payload["ingest"], baseline)

    out = write_bench_json(args.out, payload)
    print(f"wrote {out}")
    for name, stats in payload["stages"].items():
        print(f"  {name}: {stats['seconds']:.3f}s over {stats['calls']} calls")
    print(f"  relaxation forwards: {payload['relax_forwards_serial']} serial "
          f"-> {payload['relax_forwards_batched']} batched "
          f"({payload['relax_forward_reduction']}x fewer)")
    route = payload["route"]
    print(f"  route: {route['speedup']['neutral']}x neutral / "
          f"{route['speedup']['guided']}x guided vs in-run reference, "
          f"paths_identical={route['paths_identical']}")
    fwd = payload["forward"]
    print(f"  forward: B={fwd['batch_sweep'][-1]} amortizes to "
          f"{fwd['amortized_ratio']}x the B=1 per-candidate time "
          f"(f64 parity {fwd['float64_blocked_vs_unbatched_max_abs']:.1e}, "
          f"f32 rel {fwd['float32_vs_float64_max_rel']:.1e})")
    ing = payload["ingest"]
    print(f"  ingest: {ing['files']} corpus files / {ing['cards']} cards "
          f"in {ing['seconds']}s ({ing['cards_per_second']} cards/s)")

    if problems:
        print("PERF REGRESSION:")
        for p in problems:
            print(f"  {p}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
