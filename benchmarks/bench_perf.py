"""Performance benchmark harness: stage timings -> BENCH_perf.json.

Runs the AnalogFold pipeline on OTA1 at the selected ``REPRO_SCALE`` (or
``--scale``) with the pipeline's own :class:`repro.perf.timing.StageTimer`
instrumentation, then records per-stage wall time (route / extract /
simulate / train / relax, plus calls) and the batched-relaxation forward
reduction into ``BENCH_perf.json`` at the repo root.

Expected shape: the route stage dominates database construction, train
dominates total time at representative scales, and batched relaxation
performs several times fewer GNN forward-backward passes than serial
restarts for the same restart count.

Standalone usage (no pytest required)::

    PYTHONPATH=src python benchmarks/bench_perf.py --scale smoke --check

``--check`` compares against the committed ``BENCH_perf.json`` before
overwriting it and exits non-zero when any stage regressed more than
3x (CI's gate; slower-than-baseline runners get headroom via the noise
floor in :func:`repro.perf.timing.compare_to_baseline`).
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import AnalogFold, build_benchmark, generic_40nm, place_benchmark
from repro.core import PotentialFunction, PotentialRelaxer, RelaxationConfig
from repro.eval.compare import SCALES
from repro.perf.timing import (
    bench_payload,
    compare_to_baseline,
    load_bench_json,
    write_bench_json,
)

DEFAULT_OUT = REPO_ROOT / "BENCH_perf.json"


def measure(scale_name: str, workers: int = 1) -> dict:
    """Run the instrumented pipeline and return the perf payload."""
    scale = SCALES[scale_name]
    circuit = build_benchmark("OTA1")
    tech = generic_40nm()
    placement = place_benchmark(circuit, variant="A", seed=0,
                                iterations=scale.placement_iterations)

    config = scale.analogfold_config(seed=0)
    config.workers = workers
    fold = AnalogFold(circuit, placement, tech, config=config)
    result = fold.run()

    # Forward-count comparison: serial vs batched relaxation on the
    # just-trained model (separate potentials so the pipeline timer above
    # stays untouched).  The restart structure is the paper-default
    # 12-restart / pool-6 shape regardless of scale — at smoke scale the
    # shrunken 3-restart config would understate the batching win (the
    # reduction factor is ~ restarts per wave).
    relax_kwargs = dict(
        n_restarts=12,
        pool_size=6,
        n_derive=3,
        maxiter=15,
        seed=0,
        seed_points=0,
    )
    pot = PotentialFunction(fold.model, fold.database.graph,
                            c_max=config.dataset.c_max)
    serial = PotentialRelaxer(RelaxationConfig(**relax_kwargs))
    serial.run(pot)
    pot.reset_stats()
    batched = PotentialRelaxer(RelaxationConfig(**relax_kwargs, batched=True))
    batched.run(pot)
    forwards_serial = serial.trace.gnn_forwards
    forwards_batched = batched.trace.gnn_forwards

    return bench_payload(fold.timer, extra={
        "scale": scale_name,
        "workers": workers,
        "circuit": "OTA1",
        "figure5_stage_seconds": {
            k: round(v, 4) for k, v in result.stage_seconds.items()
        },
        "relax_forwards_serial": forwards_serial,
        "relax_forwards_batched": forwards_batched,
        "relax_forward_reduction": round(
            forwards_serial / max(forwards_batched, 1), 2),
        "total_seconds": round(fold.timer.total_seconds(), 4),
    })


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale",
                        default=os.environ.get("REPRO_SCALE", "smoke"),
                        choices=sorted(SCALES))
    parser.add_argument("--workers", type=int, default=1,
                        help="database-construction worker processes")
    parser.add_argument("--out", default=str(DEFAULT_OUT),
                        help="where to write the perf record")
    parser.add_argument("--baseline", default=str(DEFAULT_OUT),
                        help="committed baseline to compare against")
    parser.add_argument("--check", action="store_true",
                        help="fail when a stage regressed > 3x vs baseline")
    args = parser.parse_args(argv)

    payload = measure(args.scale, workers=args.workers)

    # The serve-throughput record (benchmarks/bench_serve.py) shares this
    # file; carry its section over instead of dropping it on rewrite.
    existing = load_bench_json(args.out)
    if existing is not None and "serve" in existing:
        payload["serve"] = existing["serve"]

    problems: list[str] = []
    if args.check:
        baseline = load_bench_json(args.baseline)
        if baseline is None:
            print(f"no baseline at {args.baseline}; skipping regression "
                  f"check")
        elif baseline.get("scale") != payload.get("scale"):
            print(f"baseline scale {baseline.get('scale')!r} != current "
                  f"{payload.get('scale')!r}; skipping regression check")
        else:
            problems = compare_to_baseline(payload, baseline)

    out = write_bench_json(args.out, payload)
    print(f"wrote {out}")
    for name, stats in payload["stages"].items():
        print(f"  {name}: {stats['seconds']:.3f}s over {stats['calls']} calls")
    print(f"  relaxation forwards: {payload['relax_forwards_serial']} serial "
          f"-> {payload['relax_forwards_batched']} batched "
          f"({payload['relax_forward_reduction']}x fewer)")

    if problems:
        print("PERF REGRESSION:")
        for p in problems:
            print(f"  {p}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
