"""Shared cached artifacts for the ablation benches."""

from __future__ import annotations

from functools import lru_cache

from repro import DatasetConfig, build_benchmark, generate_dataset, generic_40nm, place_benchmark


@lru_cache(maxsize=2)
def cached_database(num_samples: int, seed: int = 0):
    """One OTA1-A database shared across ablation benches."""
    circuit = build_benchmark("OTA1")
    placement = place_benchmark(circuit, variant="A", seed=seed, iterations=300)
    tech = generic_40nm()
    database = generate_dataset(
        circuit, placement, tech,
        DatasetConfig(num_samples=num_samples, seed=seed))
    return circuit, placement, tech, database
