"""Shim for legacy editable installs (no `wheel` package offline)."""

from setuptools import setup

setup()
