"""Quickstart: performance-driven routing of an OTA with AnalogFold.

Builds the OTA1 benchmark, places it, runs the full AnalogFold pipeline
(database -> 3DGNN -> potential relaxation -> guided routing), and compares
the result against the unguided MagicalRoute baseline.

Run:  python examples/quickstart.py
"""

from repro import (
    AnalogFold,
    AnalogFoldConfig,
    DatasetConfig,
    FoMWeights,
    build_benchmark,
    generic_40nm,
    place_benchmark,
)
from repro.baselines import route_magical
from repro.core import RelaxationConfig
from repro.model import Gnn3dConfig, TrainConfig


def main() -> None:
    # 1. Circuit and placement.
    circuit = build_benchmark("OTA1")
    print(f"circuit: {circuit.name} ({circuit.topology}), "
          f"{len(circuit.devices)} devices, {len(circuit.nets)} nets")
    placement = place_benchmark(circuit, variant="A", seed=0, iterations=400)
    width, height = placement.die_size()
    print(f"placed: {width:.1f} x {height:.1f} um, "
          f"symmetry error {placement.symmetry_error():.2e}")

    tech = generic_40nm()

    # 2. Baseline: constraint-aware routing without guidance.
    magical, magical_time = route_magical(circuit, placement, tech)
    print(f"\nMagicalRoute [{magical_time:.2f}s]: {magical.metrics}")

    # 3. AnalogFold: small training budget for a quick demo; raise
    #    num_samples / epochs for real runs.
    fold = AnalogFold(
        circuit, placement, tech,
        config=AnalogFoldConfig(
            dataset=DatasetConfig(num_samples=24, seed=0),
            gnn=Gnn3dConfig(hidden=32, num_layers=3, seed=0),
            training=TrainConfig(epochs=15, seed=0),
            relaxation=RelaxationConfig(n_restarts=8, pool_size=4,
                                        n_derive=3, seed=0),
        ),
    )
    result = fold.run()
    print(f"\nAnalogFold: {result.metrics}")
    print("stage runtimes:",
          {k: f"{v:.2f}s" for k, v in result.stage_seconds.items()})

    # 4. Compare figures of merit (lower is better).
    weights = FoMWeights()
    print(f"\nFoM magical:    {weights.fom(magical.metrics):8.3f}")
    print(f"FoM analogfold: {weights.fom(result.metrics):8.3f}  (lower is better)")


if __name__ == "__main__":
    main()
