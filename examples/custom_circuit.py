"""Route a custom (non-benchmark) circuit through the full stack.

Shows the library as a toolkit rather than a fixed benchmark harness:
define your own differential amplifier netlist with symmetry constraints,
place it, route it with and without hand-written guidance, extract, and
simulate.

Run:  python examples/custom_circuit.py
"""

import numpy as np

from repro import (
    IterativeRouter,
    RoutingGrid,
    build_hetero_graph,
    extract,
    generic_40nm,
    simulate_performance,
)
from repro.netlist import Capacitor, Circuit, MOSFET, MOSType, NetType, SymmetryPair
from repro.placement import Placer
from repro.router.guidance import RoutingGuidance
from repro.simulation import TestbenchConfig


def build_simple_diffamp() -> Circuit:
    """A five-transistor differential amplifier with load caps."""
    c = Circuit(name="DIFFAMP5T", topology="miller")
    c.add_device(MOSFET(name="MN_IN_L", mos_type=MOSType.NMOS, w=6.0, l=0.06,
                        fingers=2, bias_current=15e-6))
    c.add_device(MOSFET(name="MN_IN_R", mos_type=MOSType.NMOS, w=6.0, l=0.06,
                        fingers=2, bias_current=15e-6))
    c.add_device(MOSFET(name="MP_LOAD_L", mos_type=MOSType.PMOS, w=3.0, l=0.06,
                        bias_current=15e-6, is_bias_device=True))
    c.add_device(MOSFET(name="MP_LOAD_R", mos_type=MOSType.PMOS, w=3.0, l=0.06,
                        bias_current=15e-6, is_bias_device=True))
    c.add_device(MOSFET(name="MN_TAIL", mos_type=MOSType.NMOS, w=4.0, l=0.06,
                        bias_current=30e-6, is_bias_device=True))
    c.add_device(Capacitor(name="CL_L", value=0.3e-12))
    c.add_device(Capacitor(name="CL_R", value=0.3e-12))

    c.new_net("VDD", NetType.POWER).connect("MP_LOAD_L", "S").connect("MP_LOAD_R", "S")
    c.new_net("VSS", NetType.GROUND).connect("MN_TAIL", "S") \
        .connect("CL_L", "MINUS").connect("CL_R", "MINUS")
    c.new_net("VINP", NetType.INPUT).connect("MN_IN_L", "G")
    c.new_net("VINN", NetType.INPUT).connect("MN_IN_R", "G")
    voutp = c.new_net("VOUTP", NetType.OUTPUT, weight=2.0)
    voutp.connect("MN_IN_L", "D").connect("MP_LOAD_L", "D").connect("CL_L", "PLUS")
    voutn = c.new_net("VOUTN", NetType.OUTPUT, weight=2.0)
    voutn.connect("MN_IN_R", "D").connect("MP_LOAD_R", "D").connect("CL_R", "PLUS")
    voutn.connect("MP_LOAD_L", "G").connect("MP_LOAD_R", "G")  # mirror gate
    tail = c.new_net("TAIL", NetType.SIGNAL, self_symmetric=True)
    tail.connect("MN_IN_L", "S").connect("MN_IN_R", "S").connect("MN_TAIL", "D")
    c.new_net("VBN", NetType.BIAS).connect("MN_TAIL", "G")

    c.add_symmetry_pair(SymmetryPair(
        "VINP", "VINN", device_pairs=(("MN_IN_L", "MN_IN_R"),)))
    c.validate()
    return c


def main() -> None:
    circuit = build_simple_diffamp()
    tech = generic_40nm()

    placement = Placer(circuit, variant="A", seed=0, iterations=300,
                       row_side_width=6.0).place()
    print(f"placed {len(placement.positions)} devices, "
          f"die {placement.die_size()[0]:.1f} x {placement.die_size()[1]:.1f} um")

    # Unguided routing.
    grid = RoutingGrid(placement, tech)
    result = IterativeRouter(grid).route_all()
    print(f"routed: success={result.success}, wl={result.total_wirelength()}, "
          f"vias={result.total_vias()}")

    bench_cfg = TestbenchConfig(load_cap=0.2e-12)
    metrics = simulate_performance(circuit, extract(result, grid, tech), bench_cfg)
    print(f"post-layout: {metrics}")

    # Hand-written guidance: push the output nets to route vertically
    # (cheap y) to keep them away from each other horizontally.
    graph = build_hetero_graph(RoutingGrid(placement, tech))
    guidance = RoutingGuidance()
    for key, net in zip(graph.ap_keys, graph.ap_nets):
        if net in ("VOUTP", "VOUTN"):
            guidance.set(key, np.array([2.5, 0.4, 1.0]))
    guided_grid = RoutingGrid(placement, tech)
    guided = IterativeRouter(guided_grid, guidance=guidance).route_all()
    guided_metrics = simulate_performance(
        circuit, extract(guided, guided_grid, tech), bench_cfg)
    print(f"with hand guidance: {guided_metrics}")


if __name__ == "__main__":
    main()
