"""Diagnose which pins drive post-layout performance (dV/dC analysis).

Trains a small 3DGNN on OTA1 and ranks pin access points by the magnitude
of the potential gradient with respect to their guidance — the library's
"explainability" view of the learned performance model — then runs a
Monte-Carlo mismatch sweep on the routed layout.

Run:  python examples/sensitivity_analysis.py
"""

from repro import (
    AnalogFold,
    AnalogFoldConfig,
    DatasetConfig,
    PotentialFunction,
    build_benchmark,
    extract,
    generic_40nm,
    place_benchmark,
)
from repro.core import RelaxationConfig
from repro.core.sensitivity import (
    format_sensitivity_report,
    guidance_sensitivity,
    net_sensitivity,
)
from repro.model import Gnn3dConfig, TrainConfig
from repro.router import IterativeRouter, RoutingGrid
from repro.simulation.montecarlo import monte_carlo


def main() -> None:
    circuit = build_benchmark("OTA1")
    placement = place_benchmark(circuit, variant="A", seed=0, iterations=300)
    tech = generic_40nm()

    fold = AnalogFold(
        circuit, placement, tech,
        config=AnalogFoldConfig(
            dataset=DatasetConfig(num_samples=16, seed=0),
            gnn=Gnn3dConfig(hidden=32, num_layers=3, seed=0),
            training=TrainConfig(epochs=12, seed=0),
            relaxation=RelaxationConfig(n_restarts=4, pool_size=3,
                                        n_derive=1, seed=0),
        ),
    )
    fold.train()
    potential = PotentialFunction(fold.model, fold.database.graph)

    sensitivities = guidance_sensitivity(potential)
    print(format_sensitivity_report(sensitivities, top_k=12))

    print("\nper-net aggregate sensitivity:")
    for net, total in list(net_sensitivity(sensitivities).items())[:8]:
        print(f"  {net:<10} {total:8.4f}")

    # Monte-Carlo mismatch on the routed layout.
    grid = RoutingGrid(placement, tech)
    result = IterativeRouter(grid).route_all()
    parasitics = extract(result, grid, tech)
    mc = monte_carlo(circuit, parasitics, num_draws=12)
    print(f"\nMonte-Carlo over {mc.num_draws} mismatch draws:")
    print(f"  offset: mean {mc.offset_mean_uv():.2f} uV, "
          f"sigma {mc.offset_sigma_uv():.2f} uV")
    print(f"  CMRR:   median {mc.cmrr_median_db():.1f} dB, "
          f"worst {mc.cmrr_worst_db():.1f} dB")


if __name__ == "__main__":
    main()
