"""Visualize non-uniform routing guidance and the layouts it produces.

Derives performance-driven guidance for OTA1, prints the per-access-point
guidance table (paper Figure 1(a)/(b) as text), and renders the unguided
vs guided routed layouts side by side (Figure 6 style).

Run:  python examples/guidance_visualization.py
"""

from repro import (
    AnalogFold,
    AnalogFoldConfig,
    DatasetConfig,
    IterativeRouter,
    RoutingGrid,
    build_benchmark,
    generic_40nm,
    place_benchmark,
)
from repro.core import RelaxationConfig
from repro.eval.visualize import guidance_histogram, render_guidance, render_layout
from repro.model import Gnn3dConfig, TrainConfig


def main() -> None:
    circuit = build_benchmark("OTA1")
    placement = place_benchmark(circuit, variant="A", seed=0, iterations=300)
    tech = generic_40nm()

    fold = AnalogFold(
        circuit, placement, tech,
        config=AnalogFoldConfig(
            dataset=DatasetConfig(num_samples=12, seed=0),
            gnn=Gnn3dConfig(hidden=16, num_layers=2, seed=0),
            training=TrainConfig(epochs=8, seed=0),
            relaxation=RelaxationConfig(n_restarts=6, pool_size=3,
                                        n_derive=1, seed=0),
        ),
    )
    result = fold.run()

    grid = RoutingGrid(placement, tech)
    print(render_guidance(result.guidance, grid))
    print()
    print(guidance_histogram(result.guidance))

    # Unguided layout for comparison.
    unguided_grid = RoutingGrid(placement, tech)
    unguided = IterativeRouter(unguided_grid).route_all()

    print("\n=== unguided routing (M2) ===")
    print(render_layout(unguided, unguided_grid, layer=1))
    print("\n=== AnalogFold-guided routing (M2) ===")
    guided_grid = RoutingGrid(placement, tech)
    guided = IterativeRouter(guided_grid, guidance=result.guidance).route_all()
    print(render_layout(guided, guided_grid, layer=1))

    print(f"\nunguided: wl={unguided.total_wirelength()} vias={unguided.total_vias()}")
    print(f"guided:   wl={guided.total_wirelength()} vias={guided.total_vias()}")
    print(f"guided metrics: {result.metrics}")


if __name__ == "__main__":
    main()
