"""Compare all three routing methods on a benchmark cell (Table 2 style).

Runs Schematic / MagicalRoute / GeniusRoute / AnalogFold on one cell and
prints the paper's Table 2 row block for it.

Run:  python examples/compare_routers.py [CIRCUIT] [VARIANT] [SCALE]
      python examples/compare_routers.py OTA2 B fast
"""

import sys

from repro.eval import SCALES, evaluate_cell, format_table2


def main() -> None:
    circuit = sys.argv[1] if len(sys.argv) > 1 else "OTA1"
    variant = sys.argv[2] if len(sys.argv) > 2 else "A"
    scale = sys.argv[3] if len(sys.argv) > 3 else "smoke"
    if scale not in SCALES:
        raise SystemExit(f"unknown scale {scale!r}; choose from {sorted(SCALES)}")

    print(f"evaluating {circuit}-{variant} at scale {scale!r} "
          f"({SCALES[scale].dataset_samples} training samples)...")
    cell = evaluate_cell(circuit, variant, scale=scale)
    print()
    print(format_table2([cell]))


if __name__ == "__main__":
    main()
