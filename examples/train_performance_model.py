"""Train the 3DGNN performance model and inspect its predictions.

Builds a labeled database for OTA2 (guidance -> routed -> simulated),
trains the 3DGNN, reports train/test error against a mean-predictor
baseline, and round-trips the weights through serialization.

Run:  python examples/train_performance_model.py
"""

import numpy as np

from repro import DatasetConfig, build_benchmark, generate_dataset, generic_40nm, place_benchmark
from repro.model import Gnn3d, Gnn3dConfig, TrainConfig, Trainer
from repro.nn import Tensor, load_state, save_state
from repro.simulation.metrics import METRIC_NAMES, PerformanceMetrics


def main() -> None:
    circuit = build_benchmark("OTA2")
    placement = place_benchmark(circuit, variant="A", seed=0, iterations=300)
    tech = generic_40nm()

    print("building database (routing + simulating guidance samples)...")
    database = generate_dataset(
        circuit, placement, tech, DatasetConfig(num_samples=30, seed=0))
    samples = database.train_samples()
    train, test = samples[:24], samples[24:]
    print(f"database: {len(train)} train / {len(test)} test samples, "
          f"graph: {database.graph.num_aps} APs, "
          f"{database.graph.num_modules} modules")

    model = Gnn3d(
        database.graph.ap_features.shape[1],
        database.graph.module_features.shape[1],
        Gnn3dConfig(hidden=32, num_layers=3, seed=0),
    )
    print(f"3DGNN parameters: {model.num_parameters()}")
    trainer = Trainer(model, database.graph,
                      TrainConfig(epochs=40, val_fraction=0.15, patience=10))
    history = trainer.fit(train)
    print(f"training: {len(history.train_loss)} epochs, "
          f"final train loss {history.train_loss[-1]:.4f}, "
          f"best val loss {history.best_val:.4f}")

    # Held-out evaluation vs a mean predictor.
    mean_target = np.stack([s.targets for s in train]).mean(axis=0)
    model_se, mean_se = np.zeros(5), np.zeros(5)
    for s in test:
        pred = model(database.graph, Tensor(s.guidance)).numpy()
        model_se += (pred - s.targets) ** 2
        mean_se += (mean_target - s.targets) ** 2
    print("\nper-metric test MSE (model vs mean predictor):")
    for i, name in enumerate(METRIC_NAMES):
        print(f"  {name:<15} model {model_se[i] / len(test):8.4f}   "
              f"mean {mean_se[i] / len(test):8.4f}")

    # Show one denormalized prediction.
    sample = test[0]
    pred = model(database.graph, Tensor(sample.guidance)).numpy()
    print("\nsample prediction :", PerformanceMetrics.from_normalized(pred))
    print("sample ground truth:",
          PerformanceMetrics.from_normalized(sample.targets))

    # Weights round-trip.
    save_state(model, "/tmp/analogfold_ota2.npz")
    clone = Gnn3d(
        database.graph.ap_features.shape[1],
        database.graph.module_features.shape[1],
        Gnn3dConfig(hidden=32, num_layers=3, seed=99),
    )
    load_state(clone, "/tmp/analogfold_ota2.npz")
    reloaded = clone(database.graph, Tensor(sample.guidance)).numpy()
    assert np.allclose(reloaded, pred), "serialization round-trip failed"
    print("\nweights saved and reloaded: predictions identical")


if __name__ == "__main__":
    main()
