"""Tests for guidance sensitivity analysis."""

import numpy as np
import pytest

from repro.core import AnalogFold, AnalogFoldConfig, DatasetConfig, PotentialFunction
from repro.core.sensitivity import (
    format_sensitivity_report,
    guidance_sensitivity,
    net_sensitivity,
)
from repro.model import Gnn3dConfig, TrainConfig
from repro.core.relaxation import RelaxationConfig


@pytest.fixture(scope="module")
def potential(ota1, ota1_placement, tech):
    fold = AnalogFold(
        ota1, ota1_placement, tech,
        config=AnalogFoldConfig(
            dataset=DatasetConfig(num_samples=4, seed=0),
            gnn=Gnn3dConfig(hidden=16, num_layers=2, seed=0),
            training=TrainConfig(epochs=3, val_fraction=0.0, patience=0),
            relaxation=RelaxationConfig(n_restarts=2, pool_size=2, n_derive=1),
        ),
    )
    fold.train()
    return PotentialFunction(fold.model, fold.database.graph)


class TestSensitivity:
    def test_covers_every_ap(self, potential):
        out = guidance_sensitivity(potential)
        assert len(out) == potential.graph.num_aps

    def test_sorted_descending(self, potential):
        out = guidance_sensitivity(potential)
        mags = [s.magnitude for s in out]
        assert mags == sorted(mags, reverse=True)

    def test_gradients_nonzero_somewhere(self, potential):
        out = guidance_sensitivity(potential)
        assert out[0].magnitude > 0

    def test_dominant_direction_valid(self, potential):
        for s in guidance_sensitivity(potential)[:10]:
            assert s.dominant_direction in ("x", "y", "z")
            i = ("x", "y", "z").index(s.dominant_direction)
            assert abs(s.gradient[i]) == pytest.approx(
                np.abs(s.gradient).max())

    def test_custom_evaluation_point(self, potential):
        point = np.full((potential.graph.num_aps, 3), 0.8)
        out = guidance_sensitivity(potential, point)
        assert len(out) == potential.graph.num_aps

    def test_bad_shape_raises(self, potential):
        with pytest.raises(ValueError):
            guidance_sensitivity(potential, np.ones((2, 3)))

    def test_net_aggregation(self, potential):
        pins = guidance_sensitivity(potential)
        nets = net_sensitivity(pins)
        assert set(nets) == set(potential.graph.ap_nets)
        total_pin = sum(s.magnitude for s in pins)
        assert sum(nets.values()) == pytest.approx(total_pin)

    def test_report_format(self, potential):
        report = format_sensitivity_report(guidance_sensitivity(potential),
                                           top_k=5)
        assert "rank" in report
        assert len(report.splitlines()) == 7  # header x2 + 5 rows
