"""Tests for the potential function, relaxation, dataset, and pipeline."""

import numpy as np
import pytest

from repro.core import (
    AnalogFold,
    AnalogFoldConfig,
    DatasetConfig,
    PotentialFunction,
    PotentialRelaxer,
    RelaxationConfig,
    generate_dataset,
)
from repro.model import Gnn3d, Gnn3dConfig, TrainConfig
from repro.simulation.metrics import FoMWeights


@pytest.fixture(scope="module")
def trained_setup(ota1, ota1_placement, tech):
    """A tiny trained pipeline shared by core tests."""
    fold = AnalogFold(
        ota1, ota1_placement, tech,
        config=AnalogFoldConfig(
            dataset=DatasetConfig(num_samples=5, seed=0),
            gnn=Gnn3dConfig(hidden=16, num_layers=2, seed=0),
            training=TrainConfig(epochs=4, val_fraction=0.0, patience=0),
            relaxation=RelaxationConfig(n_restarts=3, pool_size=2, n_derive=2,
                                        maxiter=10, seed=0),
        ),
    )
    fold.train()
    return fold


class TestPotential:
    def test_value_and_grad_shapes(self, trained_setup):
        pot = PotentialFunction(trained_setup.model, trained_setup.database.graph)
        x = np.full(pot.num_variables, 1.5)
        value, grad = pot.value_and_grad(x)
        assert np.isfinite(value)
        assert grad.shape == (pot.num_variables,)

    def test_gradient_matches_finite_difference(self, trained_setup):
        pot = PotentialFunction(trained_setup.model, trained_setup.database.graph)
        x = np.full(pot.num_variables, 1.3)
        _, grad = pot.value_and_grad(x)
        eps = 1e-5
        for i in (0, 7):
            xp, xm = x.copy(), x.copy()
            xp[i] += eps
            xm[i] -= eps
            fd = (pot.value(xp) - pot.value(xm)) / (2 * eps)
            assert grad[i] == pytest.approx(fd, rel=1e-3, abs=1e-7)

    def test_infeasible_point_returns_inf(self, trained_setup):
        pot = PotentialFunction(trained_setup.model, trained_setup.database.graph)
        x = np.full(pot.num_variables, 1.5)
        x[0] = -0.1
        value, grad = pot.value_and_grad(x)
        assert value == float("inf")
        assert grad[0] < 0  # pushes back up

    def test_barrier_explodes_near_boundary(self, trained_setup):
        pot = PotentialFunction(trained_setup.model, trained_setup.database.graph)
        mid = pot.value(np.full(pot.num_variables, 2.0))
        near_edge = pot.value(np.full(pot.num_variables, 1e-6))
        assert near_edge > mid

    def test_invalid_config_raises(self, trained_setup):
        with pytest.raises(ValueError):
            PotentialFunction(trained_setup.model,
                              trained_setup.database.graph, c_max=-1.0)


class TestRelaxation:
    def test_returns_n_derive_sorted(self, trained_setup):
        pot = PotentialFunction(trained_setup.model, trained_setup.database.graph)
        relaxer = PotentialRelaxer(RelaxationConfig(
            n_restarts=4, pool_size=3, n_derive=2, maxiter=8, seed=0))
        out = relaxer.run(pot)
        assert len(out) == 2
        assert out[0].potential <= out[1].potential

    def test_solutions_feasible(self, trained_setup):
        pot = PotentialFunction(trained_setup.model, trained_setup.database.graph)
        relaxer = PotentialRelaxer(RelaxationConfig(
            n_restarts=3, pool_size=2, n_derive=1, maxiter=8, seed=1))
        best = relaxer.run(pot)[0]
        assert (best.guidance > 0).all()
        assert (best.guidance < pot.c_max).all()

    def test_relaxation_improves_over_random_init(self, trained_setup):
        pot = PotentialFunction(trained_setup.model, trained_setup.database.graph)
        rng = np.random.default_rng(0)
        random_vals = [
            pot.value(rng.uniform(0.5, 2.0, pot.num_variables))
            for _ in range(5)
        ]
        relaxer = PotentialRelaxer(RelaxationConfig(
            n_restarts=4, pool_size=3, n_derive=1, maxiter=20, seed=0))
        best = relaxer.run(pot)[0]
        assert best.potential <= min(random_vals)

    def test_pool_seeding_happens(self, trained_setup):
        pot = PotentialFunction(trained_setup.model, trained_setup.database.graph)
        relaxer = PotentialRelaxer(RelaxationConfig(
            n_restarts=8, pool_size=2, n_derive=1, p_relax=1.0, maxiter=5,
            seed=0))
        relaxer.run(pot)
        assert relaxer.trace.pool_seeded > 0

    def test_best_potential_monotone_in_trace(self, trained_setup):
        pot = PotentialFunction(trained_setup.model, trained_setup.database.graph)
        relaxer = PotentialRelaxer(RelaxationConfig(
            n_restarts=5, pool_size=3, n_derive=1, maxiter=5, seed=2))
        relaxer.run(pot)
        bests = relaxer.trace.best_per_restart
        assert bests == sorted(bests, reverse=True)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            RelaxationConfig(n_derive=5, pool_size=2)
        with pytest.raises(ValueError):
            RelaxationConfig(p_relax=1.5)


class TestDataset:
    def test_dataset_size_and_labels(self, trained_setup):
        db = trained_setup.database
        assert len(db.samples) == 5
        for sample in db.samples:
            assert sample.result.success
            assert np.isfinite(sample.metrics.to_normalized()).all()

    def test_train_samples_aligned_with_graph(self, trained_setup):
        db = trained_setup.database
        for ts in db.train_samples():
            assert ts.guidance.shape == (db.graph.num_aps, 3)
            assert ts.targets.shape == (5,)

    def test_uniform_sample_first(self, trained_setup):
        first = trained_setup.database.samples[0]
        vec = first.guidance.get(trained_setup.database.graph.ap_keys[0])
        assert (vec == 1.0).all()

    def test_samples_differ(self, trained_setup):
        db = trained_setup.database
        key = db.graph.ap_keys[0]
        vecs = [s.guidance.get(key) for s in db.samples[1:]]
        assert not all((v == vecs[0]).all() for v in vecs)

    def test_deterministic_given_seed(self, ota1, ota1_placement, tech):
        cfg = DatasetConfig(num_samples=2, seed=42)
        a = generate_dataset(ota1, ota1_placement, tech, cfg)
        b = generate_dataset(ota1, ota1_placement, tech, cfg)
        for sa, sb in zip(a.samples, b.samples):
            assert sa.metrics == sb.metrics


class TestPipeline:
    def test_full_run_produces_metrics(self, trained_setup):
        result = trained_setup.run()
        assert result.routing.success
        assert result.metrics.noise_uvrms > 0
        assert len(result.derived) == 2

    def test_stage_timings_recorded(self, trained_setup):
        result = trained_setup.run()
        for stage in ("construct_database", "model_training",
                      "guide_generation", "guided_routing"):
            assert stage in result.stage_seconds
            assert result.stage_seconds[stage] > 0

    def test_runtime_breakdown_sums_to_one(self, trained_setup):
        result = trained_setup.run()
        fractions = result.runtime_breakdown()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_select_by_simulation(self, ota1, ota1_placement, tech):
        fold = AnalogFold(
            ota1, ota1_placement, tech,
            config=AnalogFoldConfig(
                dataset=DatasetConfig(num_samples=3, seed=1),
                gnn=Gnn3dConfig(hidden=8, num_layers=1, seed=1),
                training=TrainConfig(epochs=2, val_fraction=0.0, patience=0),
                relaxation=RelaxationConfig(n_restarts=2, pool_size=2,
                                            n_derive=2, maxiter=5, seed=1),
                select_by="simulation",
            ),
        )
        result = fold.run()
        weights = FoMWeights()
        # The chosen result must be at least as good as every candidate's
        # potential-ranked alternative would have been measured.
        assert np.isfinite(weights.fom(result.metrics))

    def test_invalid_select_by(self):
        with pytest.raises(ValueError):
            AnalogFoldConfig(select_by="magic")
