"""Tests for Linear/MLP modules, optimizers, RBF, and serialization."""

import numpy as np
import pytest

from repro.nn import (
    MLP,
    Adam,
    Linear,
    Module,
    Parameter,
    RBFExpansion,
    SGD,
    Sequential,
    Tensor,
    load_state,
    save_state,
)


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(4, 3, rng)
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)

    def test_no_bias(self, rng):
        layer = Linear(4, 3, rng, bias=False)
        assert layer.bias is None
        out = layer(Tensor(np.zeros((2, 4))))
        np.testing.assert_allclose(out.data, 0.0)

    def test_parameters_discovered(self, rng):
        layer = Linear(4, 3, rng)
        assert len(layer.parameters()) == 2

    def test_xavier_init_scale(self, rng):
        layer = Linear(100, 100, rng)
        bound = np.sqrt(6.0 / 200)
        assert np.abs(layer.weight.data).max() <= bound


class TestMLP:
    def test_forward_shape(self, rng):
        mlp = MLP([4, 8, 2], rng)
        assert mlp(Tensor(np.ones((3, 4)))).shape == (3, 2)

    def test_requires_two_dims(self, rng):
        with pytest.raises(ValueError):
            MLP([4], rng)

    def test_unknown_activation(self, rng):
        with pytest.raises(ValueError):
            MLP([4, 2], rng, activation="gelu")

    def test_final_activation_sigmoid_bounds(self, rng):
        mlp = MLP([4, 8, 2], rng, final_activation="sigmoid")
        out = mlp(Tensor(np.random.default_rng(0).normal(size=(10, 4)) * 10))
        assert (out.data > 0).all() and (out.data < 1).all()

    def test_can_fit_linear_function(self, rng):
        mlp = MLP([2, 16, 1], rng)
        opt = Adam(mlp.parameters(), lr=1e-2)
        x = rng.normal(size=(64, 2))
        y = (x @ np.array([[2.0], [-1.0]])) + 0.5
        loss_val = None
        for _ in range(400):
            opt.zero_grad()
            loss = ((mlp(Tensor(x)) - Tensor(y)) ** 2).mean()
            loss.backward()
            opt.step()
            loss_val = loss.item()
        assert loss_val < 1e-2

    def test_named_parameters_unique(self, rng):
        mlp = MLP([3, 5, 2], rng)
        names = [n for n, _ in mlp.named_parameters()]
        assert len(names) == len(set(names))
        assert len(names) == 4  # 2 layers x (weight, bias)


class TestSequential:
    def test_applies_in_order(self, rng):
        seq = Sequential([Linear(3, 3, rng), Linear(3, 2, rng)])
        assert seq(Tensor(np.ones((1, 3)))).shape == (1, 2)

    def test_parameters_from_children(self, rng):
        seq = Sequential([Linear(3, 3, rng), Linear(3, 2, rng)])
        assert len(seq.parameters()) == 4


class TestOptim:
    def _quadratic_param(self):
        return Parameter(np.array([5.0, -3.0]))

    def test_sgd_descends(self):
        p = self._quadratic_param()
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            (Tensor(p.data * 0) + p * p).sum().backward()
            p.grad = 2 * p.data  # analytic gradient of sum(p^2)
            opt.step()
        assert np.abs(p.data).max() < 1e-4

    def test_adam_descends(self):
        p = self._quadratic_param()
        opt = Adam([p], lr=0.2)
        for _ in range(200):
            opt.zero_grad()
            loss = (p * p).sum()
            loss.backward()
            opt.step()
        assert np.abs(p.data).max() < 1e-2

    def test_momentum_accelerates(self):
        losses = {}
        for momentum in (0.0, 0.9):
            p = self._quadratic_param()
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(50):
                opt.zero_grad()
                (p * p).sum().backward()
                opt.step()
            losses[momentum] = float((p.data ** 2).sum())
        assert losses[0.9] < losses[0.0]

    def test_skips_none_grads(self):
        p = Parameter(np.ones(2))
        opt = Adam([p])
        opt.step()  # no grad yet: no crash, no change
        np.testing.assert_allclose(p.data, 1.0)

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            Adam([])

    def test_invalid_lr_raises(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], lr=-1.0)


class TestRBF:
    def test_output_shape(self):
        rbf = RBFExpansion(num_centers=8, cutoff=10.0)
        out = rbf(Tensor(np.linspace(0, 10, 5)))
        assert out.shape == (5, 8)

    def test_peak_at_center(self):
        rbf = RBFExpansion(num_centers=11, cutoff=10.0)
        out = rbf(Tensor(np.array([3.0])))
        assert np.argmax(out.data[0]) == 3  # center at 3.0

    def test_values_in_unit_interval(self):
        rbf = RBFExpansion(num_centers=8, cutoff=10.0)
        out = rbf(Tensor(np.array([0.0, 5.0, 20.0])))
        assert (out.data >= 0).all() and (out.data <= 1).all()

    def test_gradient_flows(self):
        rbf = RBFExpansion(num_centers=4, cutoff=5.0)
        d = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        rbf(d).sum().backward()
        assert d.grad is not None and np.abs(d.grad).sum() > 0

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            RBFExpansion(num_centers=1)
        with pytest.raises(ValueError):
            RBFExpansion(cutoff=-1.0)

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            RBFExpansion()(Tensor(np.ones((2, 2))))


class TestSerialization:
    def test_roundtrip(self, rng, tmp_path):
        mlp = MLP([3, 5, 2], rng)
        path = tmp_path / "weights.npz"
        save_state(mlp, path)
        clone = MLP([3, 5, 2], np.random.default_rng(99))
        load_state(clone, path)
        x = Tensor(np.ones((2, 3)))
        np.testing.assert_allclose(mlp(x).data, clone(x).data)

    def test_shape_mismatch_raises(self, rng, tmp_path):
        mlp = MLP([3, 5, 2], rng)
        path = tmp_path / "weights.npz"
        save_state(mlp, path)
        other = MLP([3, 6, 2], rng)
        with pytest.raises(ValueError):
            load_state(other, path)

    def test_architecture_mismatch_raises(self, rng, tmp_path):
        mlp = MLP([3, 5, 2], rng)
        path = tmp_path / "weights.npz"
        save_state(mlp, path)
        other = MLP([3, 5, 5, 2], rng)
        with pytest.raises(ValueError):
            load_state(other, path)

    def test_load_closes_archive(self, rng, tmp_path, monkeypatch):
        """Regression: load_state used to leak the NpzFile handle."""
        mlp = MLP([3, 5, 2], rng)
        path = tmp_path / "weights.npz"
        save_state(mlp, path)
        opened = []
        real_load = np.load

        def spying_load(*args, **kwargs):
            archive = real_load(*args, **kwargs)
            opened.append(archive)
            return archive

        monkeypatch.setattr(np, "load", spying_load)
        load_state(MLP([3, 5, 2], rng), path)
        assert len(opened) == 1
        assert opened[0].zip is None  # NpzFile.close() drops the zip

    def test_missing_file_names_both_paths(self, rng, tmp_path):
        """Regression: the .npz fallback used to mask missing files."""
        target = tmp_path / "absent"
        with pytest.raises(FileNotFoundError) as exc_info:
            load_state(MLP([3, 5, 2], rng), target)
        message = str(exc_info.value)
        assert str(target) in message
        assert f"{target}.npz" in message

    def test_missing_npz_path_names_only_itself(self, rng, tmp_path):
        target = tmp_path / "absent.npz"
        with pytest.raises(FileNotFoundError) as exc_info:
            load_state(MLP([3, 5, 2], rng), target)
        message = str(exc_info.value)
        assert str(target) in message
        assert "(or" not in message  # no pointless double-suffix fallback

    def test_suffix_fallback_still_loads(self, rng, tmp_path):
        mlp = MLP([3, 5, 2], rng)
        stem = tmp_path / "weights"
        save_state(mlp, stem)  # np.savez appends .npz
        assert not stem.exists() and stem.with_suffix(".npz").exists()
        clone = MLP([3, 5, 2], np.random.default_rng(7))
        load_state(clone, stem)
        x = Tensor(np.ones((2, 3)))
        np.testing.assert_allclose(mlp(x).data, clone(x).data)
