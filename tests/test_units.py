"""Tests for repro.units."""

import math

import pytest
from hypothesis import given, strategies as st

from repro import units


class TestDb:
    def test_unity_ratio_is_zero_db(self):
        assert units.db(1.0) == 0.0

    def test_factor_ten_is_twenty_db(self):
        assert units.db(10.0) == pytest.approx(20.0)

    def test_negative_ratio_raises(self):
        with pytest.raises(ValueError):
            units.db(-1.0)

    def test_zero_ratio_raises(self):
        with pytest.raises(ValueError):
            units.db(0.0)

    @given(st.floats(min_value=1e-6, max_value=1e6))
    def test_roundtrip(self, ratio):
        assert units.from_db(units.db(ratio)) == pytest.approx(ratio, rel=1e-9)

    def test_power_db_is_half_voltage_db(self):
        assert units.db_power(100.0) == pytest.approx(units.db(100.0) / 2.0)


class TestClamp:
    def test_inside_interval_unchanged(self):
        assert units.clamp(0.5, 0.0, 1.0) == 0.5

    def test_below_clamps_to_lo(self):
        assert units.clamp(-3.0, 0.0, 1.0) == 0.0

    def test_above_clamps_to_hi(self):
        assert units.clamp(3.0, 0.0, 1.0) == 1.0

    def test_empty_interval_raises(self):
        with pytest.raises(ValueError):
            units.clamp(0.5, 1.0, 0.0)

    @given(st.floats(allow_nan=False, allow_infinity=False),
           st.floats(-100, 100), st.floats(0, 100))
    def test_result_always_in_interval(self, x, lo, width):
        hi = lo + width
        assert lo <= units.clamp(x, lo, hi) <= hi


class TestConstants:
    def test_nm_is_fraction_of_um(self):
        assert units.NM == pytest.approx(1e-3)
        assert units.UM == 1.0

    def test_si_prefixes_consistent(self):
        assert units.GIGA * units.NANO == pytest.approx(1.0)
        assert units.MEGA * units.MICRO == pytest.approx(1.0)
        assert math.isclose(units.KILO * units.MILLI, 1.0)
