"""Tests for surrogate-quality evaluation."""

import numpy as np
import pytest

from repro.model import Gnn3d, Gnn3dConfig, TrainConfig, Trainer, TrainSample
from repro.model.evaluation import (
    evaluate_surrogate,
    format_quality_report,
    predict_batch,
)


@pytest.fixture(scope="module")
def learnable_task(ota1_graph):
    """Model trained on a synthetic, clearly learnable mapping."""
    rng = np.random.default_rng(0)
    samples = []
    for _ in range(24):
        c = rng.uniform(0.3, 3.0, size=(ota1_graph.num_aps, 3))
        mean = c.mean()
        samples.append(TrainSample(
            guidance=c,
            targets=np.array([mean, -mean, mean / 2, 1.0, -mean / 3]),
        ))
    model = Gnn3d(
        ota1_graph.ap_features.shape[1], ota1_graph.module_features.shape[1],
        Gnn3dConfig(hidden=16, num_layers=2, seed=0),
    )
    Trainer(model, ota1_graph,
            TrainConfig(epochs=25, val_fraction=0.0, patience=0, lr=5e-3)
            ).fit(samples[:18])
    return model, samples


class TestEvaluateSurrogate:
    def test_predict_batch_shape(self, ota1_graph, learnable_task):
        model, samples = learnable_task
        preds = predict_batch(model, ota1_graph, samples[:4])
        assert preds.shape == (4, 5)

    def test_quality_on_learnable_task(self, ota1_graph, learnable_task):
        model, samples = learnable_task
        quality = evaluate_surrogate(model, ota1_graph, samples[18:])
        assert quality.num_samples == 6
        assert quality.fom_kendall_tau > 0.2, "ranking should be learnable"
        assert quality.mean_mae < 2.0

    def test_requires_two_samples(self, ota1_graph, learnable_task):
        model, samples = learnable_task
        with pytest.raises(ValueError):
            evaluate_surrogate(model, ota1_graph, samples[:1])

    def test_untrained_model_worse_ranking(self, ota1_graph, learnable_task):
        _, samples = learnable_task
        untrained = Gnn3d(
            ota1_graph.ap_features.shape[1],
            ota1_graph.module_features.shape[1],
            Gnn3dConfig(hidden=16, num_layers=2, seed=5),
        )
        trained_model, _ = learnable_task
        q_trained = evaluate_surrogate(trained_model, ota1_graph, samples[18:])
        q_untrained = evaluate_surrogate(untrained, ota1_graph, samples[18:])
        assert q_trained.mean_mae <= q_untrained.mean_mae

    def test_report_format(self, ota1_graph, learnable_task):
        model, samples = learnable_task
        report = format_quality_report(
            evaluate_surrogate(model, ota1_graph, samples[18:]))
        assert "Kendall tau" in report
        assert "MAE[offset_uv]" in report
