"""Fixture-driven pins for the whole-program (phase 2) lint rules.

Mirrors ``test_lint_rules.py`` for the interprocedural rule set: each
graph rule has a ``tests/lint_fixtures/<id>_bad.py`` seeded with
violations (exact-count pinned) and a compliant ``<id>_good.py`` twin
that must stay quiet under *all* graph rules.  Graph fixtures are fed
through :func:`repro.lint.engine.lint_project_sources` with module
overrides that place them inside the rules' jurisdiction (worker
modules, the serving surface, package ``__init__`` exports).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.lint.engine import build_project, lint_project_sources
from repro.lint.rules import rule_catalog
from repro.lint.rules.wholeprogram import (
    EXCEPTIONS_DOC,
    GRAPH_RULES,
    STAGE_ERROR_NAMES,
    all_graph_rules,
    computed_exception_table,
    parse_exceptions_md,
    render_exceptions_md,
)
from repro.lint.summaries import summarize_module

FIXTURES = pathlib.Path(__file__).parent / "lint_fixtures"

#: Minimal taxonomy module paired with the EXC101 fixtures.
_ERRORS_SOURCE = (
    "class ReproError(Exception):\n"
    "    pass\n"
    "\n"
    "\n"
    "class RoutingError(ReproError):\n"
    "    pass\n"
)

_ERRORS_FILE = ("src/repro/reliability/errors.py",
                "repro.reliability.errors", _ERRORS_SOURCE)

#: rule id -> (expected findings in the bad fixture, module override).
GRAPH_EXPECTED = {
    "WRK001": (3, "repro.perf.parallel"),
    "WRK002": (3, "repro.perf.parallel"),
    "TAPE001": (2, "repro.core.fixture"),
    "PRE001": (2, "repro.serve.service"),
    "EXC101": (1, "repro"),
}


def _fixture(rule_id: str, kind: str) -> str:
    return (FIXTURES / f"{rule_id.lower()}_{kind}.py").read_text()


def _project_files(rule_id: str, kind: str):
    """The (rel_path, module, source) triples for one fixture run."""
    _count, module = GRAPH_EXPECTED[rule_id]
    source = _fixture(rule_id, kind)
    if rule_id == "EXC101":
        # The fixture plays the role of the top-level package __init__.
        return [("src/repro/__init__.py", module, source), _ERRORS_FILE]
    rel = f"tests/lint_fixtures/{rule_id.lower()}_{kind}.py"
    return [(rel, module, source)]


class TestCatalogCoverage:
    def test_every_graph_rule_has_expectations_and_fixtures(self):
        ids = {cls.id for cls in GRAPH_RULES}
        assert ids == set(GRAPH_EXPECTED), (
            "GRAPH_EXPECTED out of sync with the graph-rule registry")
        for rule_id in ids:
            for kind in ("bad", "good"):
                path = FIXTURES / f"{rule_id.lower()}_{kind}.py"
                assert path.exists(), f"missing fixture {path.name}"

    def test_catalog_lists_graph_rules_with_project_scope(self):
        catalog = {entry["id"]: entry for entry in rule_catalog()}
        for cls in GRAPH_RULES:
            assert catalog[cls.id]["scope"] == "project"
            assert catalog[cls.id]["invariant"]

    def test_stage_error_names_mirror_runtime_taxonomy(self):
        # wholeprogram.py must stay import-free of the code it lints,
        # so it ships a static mirror of STAGE_ERRORS — pinned here.
        from repro.reliability.errors import STAGE_ERRORS

        runtime = {stage: cls.__name__
                   for stage, cls in STAGE_ERRORS.items()}
        assert STAGE_ERROR_NAMES == runtime


@pytest.mark.parametrize("rule_id", sorted(GRAPH_EXPECTED))
class TestPerGraphRule:
    def test_bad_fixture_fires(self, rule_id):
        count, _module = GRAPH_EXPECTED[rule_id]
        findings = lint_project_sources(
            _project_files(rule_id, "bad"),
            graph_rules=all_graph_rules(select={rule_id}))
        assert [f.rule_id for f in findings] == [rule_id] * count, (
            f"{rule_id} expected {count} findings, got "
            f"{[f.location() for f in findings]}")
        for finding in findings:
            assert finding.message

    def test_good_fixture_quiet_under_all_graph_rules(self, rule_id):
        findings = lint_project_sources(
            _project_files(rule_id, "good"),
            graph_rules=all_graph_rules())
        assert findings == [], (
            f"false positives on compliant fixture: "
            f"{[(f.rule_id, f.location()) for f in findings]}")


class TestExceptionContract:
    """EXC101 end to end: compute, render, parse, diff."""

    def _project(self):
        import ast

        files = _project_files("EXC101", "bad")
        summaries = {}
        for rel, module, source in files:
            summaries[module] = summarize_module(
                ast.parse(source), module, rel)
        return build_project(summaries)

    def test_computed_table_resolves_the_taxonomy(self):
        table = computed_exception_table(self._project())
        assert table == {"repro.route": ["RoutingError"]}

    def test_render_parse_round_trip(self):
        project = self._project()
        rendered = render_exceptions_md(project)
        assert parse_exceptions_md(rendered) == computed_exception_table(
            project)

    def test_matching_doc_is_quiet(self):
        doc = render_exceptions_md(self._project())
        findings = lint_project_sources(
            _project_files("EXC101", "bad"),
            graph_rules=all_graph_rules(select={"EXC101"}),
            exceptions_doc=doc)
        assert findings == []

    def test_divergent_doc_anchors_at_the_api(self):
        doc = ("| Public API | Raises |\n| --- | --- |\n"
               "| `repro.route` | `ExtractionError` |\n")
        findings = lint_project_sources(
            _project_files("EXC101", "bad"),
            graph_rules=all_graph_rules(select={"EXC101"}),
            exceptions_doc=doc)
        assert len(findings) == 1
        assert findings[0].path == "src/repro/__init__.py"
        assert "RoutingError" in findings[0].message

    def test_stale_doc_row_is_flagged(self):
        doc = ("| Public API | Raises |\n| --- | --- |\n"
               "| `repro.route` | `RoutingError` |\n"
               "| `repro.gone` | `ServeError` |\n")
        findings = lint_project_sources(
            _project_files("EXC101", "bad"),
            graph_rules=all_graph_rules(select={"EXC101"}),
            exceptions_doc=doc)
        assert len(findings) == 1
        assert findings[0].path == EXCEPTIONS_DOC
        assert "repro.gone" in findings[0].message


class TestGraphFindingSuppression:
    """Inline suppressions apply to phase-2 findings like any other."""

    def test_directive_silences_a_worker_mutation(self):
        source = (
            "_SEEN = []\n"
            "\n"
            "\n"
            "def _worker_run(task):\n"
            "    # repro-lint: disable-next-line=WRK001 -- test fixture\n"
            "    _SEEN.append(task)\n"
            "    return task\n"
        )
        findings = lint_project_sources(
            [("w.py", "repro.perf.parallel", source)],
            graph_rules=all_graph_rules(select={"WRK001"}))
        assert findings == []

    def test_unsuppressed_twin_still_fires(self):
        source = (
            "_SEEN = []\n"
            "\n"
            "\n"
            "def _worker_run(task):\n"
            "    _SEEN.append(task)\n"
            "    return task\n"
        )
        findings = lint_project_sources(
            [("w.py", "repro.perf.parallel", source)],
            graph_rules=all_graph_rules(select={"WRK001"}))
        assert [f.rule_id for f in findings] == ["WRK001"]
        assert findings[0].line_text.strip() == "_SEEN.append(task)"
