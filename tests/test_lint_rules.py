"""Fixture-driven behaviour pins for every lint rule.

Each rule has a pair under ``tests/lint_fixtures/``: a minimal
violating snippet (``<id>_bad.py``) and a compliant twin
(``<id>_good.py``).  The bad fixture pins exactly how often the rule
fires (true positives); the good fixture pins that the whole rule set
stays quiet on conforming code (false positives).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.lint import all_rules, lint_source
from repro.lint.rules import ALL_RULES

FIXTURES = pathlib.Path(__file__).parent / "lint_fixtures"

#: rule id -> (expected finding count in the bad fixture, module
#: override handed to the engine — EXC002 only fires in stage packages).
EXPECTED = {
    "RNG001": (3, None),
    "RNG002": (2, None),
    "CLK001": (3, None),
    "EXC001": (2, None),
    "EXC002": (2, "repro.router.fixture"),
    "OBS001": (4, None),
    "OBS002": (2, None),
    "NUM001": (3, None),
    "NUM002": (3, None),
    "NUM003": (2, None),
}


def _fixture(rule_id: str, kind: str) -> str:
    return (FIXTURES / f"{rule_id.lower()}_{kind}.py").read_text()


class TestCatalogCoverage:
    def test_every_rule_has_expectations_and_fixtures(self):
        ids = {cls.id for cls in ALL_RULES}
        assert ids == set(EXPECTED), (
            "EXPECTED out of sync with the rule registry")
        for rule_id in ids:
            for kind in ("bad", "good"):
                path = FIXTURES / f"{rule_id.lower()}_{kind}.py"
                assert path.exists(), f"missing fixture {path.name}"

    def test_rule_ids_unique_and_described(self):
        ids = [cls.id for cls in ALL_RULES]
        assert len(ids) == len(set(ids))
        for cls in ALL_RULES:
            assert cls.id and cls.name and cls.invariant


@pytest.mark.parametrize("rule_id", sorted(EXPECTED))
class TestPerRule:
    def test_bad_fixture_fires(self, rule_id):
        count, module = EXPECTED[rule_id]
        findings, _ = lint_source(
            _fixture(rule_id, "bad"), f"{rule_id.lower()}_bad.py",
            rules=all_rules(select={rule_id}), module=module)
        assert [f.rule_id for f in findings] == [rule_id] * count, (
            f"{rule_id} expected {count} findings, got "
            f"{[f.location() for f in findings]}")
        for finding in findings:
            assert finding.message
            assert finding.line_text

    def test_good_fixture_quiet_under_all_rules(self, rule_id):
        _count, module = EXPECTED[rule_id]
        findings, _ = lint_source(
            _fixture(rule_id, "good"), f"{rule_id.lower()}_good.py",
            rules=all_rules(), module=module)
        assert findings == [], (
            f"false positives on compliant fixture: "
            f"{[(f.rule_id, f.location()) for f in findings]}")


class TestRuleEdgeCases:
    """Targeted true/false-positive pins beyond the fixture pairs."""

    def test_rng001_allows_generator_factories(self):
        source = ("import numpy as np\n"
                  "rng = np.random.default_rng(7)\n"
                  "seq = np.random.SeedSequence(7)\n"
                  "bits = np.random.PCG64(7)\n")
        findings, _ = lint_source(source, "x.py",
                                  rules=all_rules(select={"RNG001"}))
        assert findings == []

    def test_rng001_tracks_import_aliases(self):
        source = ("import numpy.random as nprand\n"
                  "value = nprand.rand(3)\n")
        findings, _ = lint_source(source, "x.py",
                                  rules=all_rules(select={"RNG001"}))
        assert [f.rule_id for f in findings] == ["RNG001"]

    def test_clk001_ignores_local_attribute_chains(self):
        source = ("class Clock:\n"
                  "    def time(self):\n"
                  "        return 0.0\n"
                  "value = Clock().time()\n"
                  "def use(clock):\n"
                  "    return clock.time()\n")
        findings, _ = lint_source(source, "x.py",
                                  rules=all_rules(select={"CLK001"}))
        assert findings == []

    def test_exc001_nested_function_raise_does_not_count(self):
        source = ("def f(work):\n"
                  "    try:\n"
                  "        return work()\n"
                  "    except Exception:\n"
                  "        def later():\n"
                  "            raise ValueError('not now')\n"
                  "        return later\n")
        findings, _ = lint_source(source, "x.py",
                                  rules=all_rules(select={"EXC001"}))
        assert [f.rule_id for f in findings] == ["EXC001"]

    def test_exc002_outside_stage_packages_is_quiet(self):
        findings, _ = lint_source(
            _fixture("EXC002", "bad"), "exc002_bad.py",
            rules=all_rules(select={"EXC002"}),
            module="repro.eval.fixture")
        assert findings == []

    def test_exc002_scopes_cover_all_stage_packages(self):
        source = "raise RuntimeError('x')\n"
        for module in ("repro.core.a", "repro.router.b",
                       "repro.extraction.c", "repro.simulation.d"):
            findings, _ = lint_source(
                source, "x.py", rules=all_rules(select={"EXC002"}),
                module=module)
            assert len(findings) == 1, module

    def test_obs001_exempts_obs_package_and_modules(self):
        findings, _ = lint_source(
            _fixture("OBS001", "bad"), "obs001_bad.py",
            rules=all_rules(select={"OBS001"}),
            module="repro.obs.context")
        assert findings == []
        source = ("import numpy as np\n"
                  "h = np.histogram([1.0], bins='RetryCount')\n")
        findings, _ = lint_source(source, "x.py",
                                  rules=all_rules(select={"OBS001"}))
        assert findings == []

    def test_num001_leaves_integer_equality_alone(self):
        source = "ok = (n == 0) and (m != 3)\n"
        findings, _ = lint_source(source, "x.py",
                                  rules=all_rules(select={"NUM001"}))
        assert findings == []

    def test_num003_allows_module_level_lru_cache(self):
        source = ("from functools import lru_cache\n"
                  "@lru_cache(maxsize=4)\n"
                  "def pure(x):\n"
                  "    return x * x\n")
        findings, _ = lint_source(source, "x.py",
                                  rules=all_rules(select={"NUM003"}))
        assert findings == []
