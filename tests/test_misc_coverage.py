"""Small coverage tests for utility surfaces not exercised elsewhere."""

import numpy as np
import pytest

from repro.eval.visualize import render_guidance
from repro.nn import Tensor
from repro.router.guidance import RoutingGuidance
from repro.router.result import NetRoute, RoutingResult
from repro.simulation.mna import MnaSystem


class TestTensorDunders:
    def test_len(self):
        assert len(Tensor(np.zeros((4, 2)))) == 4

    def test_repr_mentions_shape(self):
        assert "shape=(2, 3)" in repr(Tensor(np.zeros((2, 3))))

    def test_item_scalar(self):
        assert Tensor(np.array(2.5)).item() == 2.5

    def test_numpy_returns_copy(self):
        t = Tensor(np.ones(3))
        arr = t.numpy()
        arr[0] = 99.0
        assert t.data[0] == 1.0

    def test_pow_requires_scalar(self):
        with pytest.raises(TypeError):
            Tensor(np.ones(2)) ** np.ones(2)

    def test_radd_rsub_rdiv(self):
        t = Tensor(np.array([2.0]))
        assert (1.0 + t).data[0] == 3.0
        assert (5.0 - t).data[0] == 3.0
        assert (8.0 / t).data[0] == 4.0

    def test_flatten(self):
        assert Tensor(np.zeros((2, 3))).flatten().shape == (6,)


class TestMnaIntrospection:
    def test_num_nodes_and_has_node(self):
        sys = MnaSystem()
        sys.add_resistance("a", "b", 1.0)
        assert sys.num_nodes == 2
        assert sys.has_node("a")
        assert not sys.has_node("zz")

    def test_ground_is_not_a_node(self):
        sys = MnaSystem()
        sys.add_resistance("a", "0", 1.0)
        assert sys.num_nodes == 1
        assert sys.node("0") == -1


class TestRoutingResultHelpers:
    def test_cell_owners(self):
        result = RoutingResult(routes={
            "A": NetRoute(net="A", paths=[[(0, 0, 0), (1, 0, 0)]]),
            "B": NetRoute(net="B", paths=[[(5, 5, 0)]]),
        })
        owners = result.cell_owners()
        assert owners[(0, 0, 0)] == ["A"]
        assert owners[(5, 5, 0)] == ["B"]

    def test_empty_route_not_connected_with_aps(self):
        from repro.router.guidance import AccessPoint
        ap1 = AccessPoint(net="A", device="d", pin="p", cell=(0, 0, 0),
                          position=(0, 0))
        ap2 = AccessPoint(net="A", device="d", pin="q", cell=(5, 0, 0),
                          position=(0, 0))
        route = NetRoute(net="A", access_points=[ap1, ap2])
        assert not route.is_connected()

    def test_single_ap_always_connected(self):
        from repro.router.guidance import AccessPoint
        ap = AccessPoint(net="A", device="d", pin="p", cell=(0, 0, 0),
                         position=(0, 0))
        assert NetRoute(net="A", access_points=[ap]).is_connected()


class TestRenderGuidanceDirections:
    def test_prefers_cheapest_direction(self, ota1_grid):
        guidance = RoutingGuidance()
        ap = ota1_grid.access_points["NET1L"][0]
        guidance.set(ap.key, np.array([5.0, 0.1, 3.0]))
        art = render_guidance(guidance, ota1_grid)
        line = next(l for l in art.splitlines()
                    if f"{ap.device}.{ap.pin}" in l)
        assert line.rstrip().endswith("y")
