"""Tests for the iterative router, symmetry routing, and post-processing."""

import numpy as np
import pytest

from repro.netlist import build_benchmark
from repro.placement import place_benchmark
from repro.router import (
    IterativeRouter,
    RouterConfig,
    RoutingGrid,
    check_drc,
    post_process,
    uniform_guidance,
)
from repro.router.guidance import RoutingGuidance, random_guidance
from repro.router.symmetry import mirror_path, mirror_route


class TestRouteAll:
    def test_all_nets_routed(self, ota1_routed):
        result, grid = ota1_routed
        assert result.success
        routable = {n.name for n in grid.placement.circuit.nets.values()
                    if n.degree >= 2}
        assert set(result.routes) == routable

    def test_every_net_connected(self, ota1_routed):
        result, _ = ota1_routed
        for route in result.routes.values():
            assert route.is_connected(), route.net

    def test_no_overlaps(self, ota1_routed):
        result, _ = ota1_routed
        assert result.overlaps() == {}

    def test_no_drc_violations(self, ota1_routed):
        result, grid = ota1_routed
        hard = [v for v in check_drc(result, grid)
                if v.kind in ("short", "open", "bounds", "unrouted")]
        assert hard == []

    def test_wirelength_positive(self, ota1_routed):
        result, _ = ota1_routed
        assert result.total_wirelength() > 0
        assert result.total_vias() > 0

    def test_deterministic(self, ota1_placement, tech):
        results = []
        for _ in range(2):
            grid = RoutingGrid(ota1_placement, tech)
            results.append(IterativeRouter(grid).route_all())
        wl = [r.total_wirelength() for r in results]
        assert wl[0] == wl[1]

    def test_telescopic_routes_clean(self, ota3, tech):
        placement = place_benchmark(ota3, variant="A", iterations=100)
        grid = RoutingGrid(placement, tech)
        result = IterativeRouter(grid).route_all()
        assert result.success
        assert result.overlaps() == {}


class TestSymmetry:
    def test_symmetric_pairs_mirrored_with_neutral_guidance(self, ota1_routed):
        result, grid = ota1_routed
        circuit = grid.placement.circuit
        routed_pairs = [
            pair for pair in circuit.symmetry_pairs
            if pair.net_a in result.routes and pair.net_b in result.routes
        ]
        assert routed_pairs
        mirrored = [
            pair for pair in routed_pairs
            if result.routes[pair.net_b].symmetric_ok
            or result.routes[pair.net_a].symmetric_ok
        ]
        assert mirrored, "at least one pair should route symmetrically"

    def test_mirror_path_involution(self, ota1_grid):
        path = [(3, 3, 0), (4, 3, 0), (4, 4, 0), (4, 4, 1)]
        assert mirror_path(ota1_grid, mirror_path(ota1_grid, path)) == path

    def test_mirror_route_lands_on_partner_aps(self, ota1_routed):
        result, grid = ota1_routed
        left = result.routes["NET1L"]
        right = result.routes["NET1R"]
        if right.symmetric_ok:
            mirrored_cells = {grid.mirror_cell(c) for c in left.cells()}
            assert right.cells() == mirrored_cells

    def test_mirror_route_rejects_blocked(self, fresh_grid):
        router = IterativeRouter(fresh_grid)
        result_left = router._route_net("NET1L")[0]
        assert result_left is not None
        router._commit(result_left)
        # Block the entire mirror image on all layers.
        for cell in result_left.cells():
            m = fresh_grid.mirror_cell(cell)
            if fresh_grid.in_bounds(m) and fresh_grid.owner(m) == -1:
                fresh_grid.occupancy[m] = -2
        assert mirror_route(fresh_grid, result_left, "NET1R") is None


class TestGuidanceIntegration:
    def test_guidance_changes_routing(self, ota1_placement, tech, rng):
        grid_a = RoutingGrid(ota1_placement, tech)
        neutral = IterativeRouter(grid_a, uniform_guidance()).route_all()
        keys = [ap.key for aps in grid_a.access_points.values() for ap in aps]
        grid_b = RoutingGrid(ota1_placement, tech)
        guided = IterativeRouter(
            grid_b, random_guidance(keys, rng)).route_all()
        assert neutral.total_wirelength() != guided.total_wirelength() or (
            {n: r.cells() for n, r in neutral.routes.items()}
            != {n: r.cells() for n, r in guided.routes.items()}
        )

    def test_extreme_guidance_still_routes(self, ota1_placement, tech):
        grid = RoutingGrid(ota1_placement, tech)
        keys = [ap.key for aps in grid.access_points.values() for ap in aps]
        guidance = RoutingGuidance()
        for i, key in enumerate(keys):
            vec = np.array([3.9, 0.05, 1.0]) if i % 2 else np.array([0.05, 3.9, 1.0])
            guidance.set(key, vec)
        result = IterativeRouter(grid, guidance).route_all()
        assert result.success
        assert result.overlaps() == {}


class TestPostProcess:
    def test_clean_result_has_no_hard_violations(self, ota1_routed):
        result, grid = ota1_routed
        _, violations = post_process(result, grid)
        kinds = {v.kind for v in violations}
        assert not kinds & {"short", "open", "bounds", "unrouted"}

    def test_detects_injected_short(self, ota1_placement, tech):
        grid = RoutingGrid(ota1_placement, tech)
        result = IterativeRouter(grid).route_all()
        # Inject a fake overlap between the first two routed nets.
        names = sorted(result.routes)
        a, b = names[0], names[1]
        shared = next(iter(result.routes[a].cells()))
        result.routes[b].paths.append([shared])
        violations = check_drc(result, grid)
        assert any(v.kind == "short" for v in violations)

    def test_detects_open(self, ota1_placement, tech):
        grid = RoutingGrid(ota1_placement, tech)
        result = IterativeRouter(grid).route_all()
        multi = next(n for n, r in result.routes.items() if len(r.paths) >= 2)
        result.routes[multi].paths.pop()
        violations = check_drc(result, grid)
        assert any(v.kind == "open" and multi in v.nets for v in violations)

    def test_detects_unrouted(self, ota1_routed):
        result, grid = ota1_routed
        import copy
        broken = copy.copy(result)
        broken.failed_nets = ["VBN"]
        assert any(v.kind == "unrouted" for v in check_drc(broken, grid))


class TestRouterConfig:
    def test_low_iteration_budget_may_fail_but_not_crash(
        self, ota1_placement, tech
    ):
        grid = RoutingGrid(ota1_placement, tech)
        config = RouterConfig(max_iterations=1, max_expansions=50)
        result = IterativeRouter(grid, config=config).route_all()
        # With a tiny search budget some nets fail; the result reports them.
        assert isinstance(result.failed_nets, list)

    def test_priority_order_critical_first(self, fresh_grid):
        router = IterativeRouter(fresh_grid)
        order = router._net_order()
        assert order.index("VOUTP") < order.index("VDD")
        assert order.index("NET1L") < order.index("VBN")
        assert order.index("VBN") < order.index("VSS")
