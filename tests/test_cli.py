"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_parses(self):
        args = build_parser().parse_args(["table1"])
        assert args.command == "table1"

    def test_variant_restricted(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["place", "OTA1", "--variant", "Z"])

    def test_compare_scale_restricted(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "OTA1", "--scale", "huge"])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "OTA1" in out and "36" in out

    def test_place_and_save(self, tmp_path, capsys):
        out_file = tmp_path / "p.json"
        code = main(["place", "OTA1", "--variant", "B",
                     "--iterations", "50", "--out", str(out_file)])
        assert code == 0
        assert out_file.exists()
        assert "placed" in capsys.readouterr().out

    def test_route_with_saved_placement(self, tmp_path, capsys):
        place_file = tmp_path / "p.json"
        def_file = tmp_path / "r.def"
        main(["place", "OTA1", "--iterations", "50", "--out", str(place_file)])
        code = main(["route", "OTA1", "--placement", str(place_file),
                     "--def-out", str(def_file)])
        assert code == 0
        assert def_file.exists()
        out = capsys.readouterr().out
        assert "success=True" in out
        assert "post-layout" in out

    def test_export_spice(self, tmp_path, capsys):
        out_file = tmp_path / "ota2.sp"
        assert main(["export-spice", "OTA2", "--out", str(out_file)]) == 0
        text = out_file.read_text()
        assert ".END" in text and "MMN_IN_L" in text

    def test_fold_small(self, tmp_path, capsys):
        guide_file = tmp_path / "g.json"
        code = main(["fold", "OTA1", "--samples", "4", "--epochs", "2",
                     "--restarts", "2", "--guidance-out", str(guide_file)])
        assert code == 0
        assert guide_file.exists()
        out = capsys.readouterr().out
        assert "AnalogFold metrics" in out
        assert "runtime breakdown" in out
