"""Tests for the MNA engine against hand-computable circuits."""

import numpy as np
import pytest

from repro.simulation.mna import MnaSystem


class TestResistiveNetworks:
    def test_voltage_divider(self):
        """1A into two series 1-ohm resistors to ground."""
        sys = MnaSystem()
        sys.add_resistance("a", "b", 1.0)
        sys.add_resistance("b", "0", 1.0)
        sol = sys.solve(0.0, {"a": 1.0})
        assert sol["a"].real == pytest.approx(2.0, rel=1e-6)
        assert sol["b"].real == pytest.approx(1.0, rel=1e-6)

    def test_parallel_conductances_add(self):
        sys = MnaSystem()
        sys.add_conductance("a", "0", 1.0)
        sys.add_conductance("a", "0", 1.0)
        sol = sys.solve(0.0, {"a": 1.0})
        assert sol["a"].real == pytest.approx(0.5, rel=1e-6)

    def test_negative_conductance_rejected(self):
        with pytest.raises(ValueError):
            MnaSystem().add_conductance("a", "0", -1.0)

    def test_nonpositive_resistance_rejected(self):
        with pytest.raises(ValueError):
            MnaSystem().add_resistance("a", "0", 0.0)

    def test_ground_voltage_is_zero(self):
        sys = MnaSystem()
        sys.add_resistance("a", "0", 1.0)
        sol = sys.solve(0.0, {"a": 1.0})
        assert sys.voltage(sol, "0") == 0.0


class TestAcBehaviour:
    def test_rc_lowpass_pole(self):
        """RC low-pass driven by a stiff Norton source: |H| = 1/sqrt(2) at
        the pole frequency."""
        r, c = 1e3, 1e-9
        f_pole = 1.0 / (2 * np.pi * r * c)
        sys = MnaSystem()
        g_src = 1e3
        sys.add_conductance("in", "0", g_src)
        sys.add_resistance("in", "out", r)
        sys.add_capacitance("out", "0", c)
        lo = sys.solve(1.0, {"in": g_src})
        at_pole = sys.solve(f_pole, {"in": g_src})
        assert abs(lo["out"]) == pytest.approx(1.0, rel=1e-3)
        assert abs(at_pole["out"]) == pytest.approx(1.0 / np.sqrt(2), rel=1e-3)

    def test_capacitor_blocks_dc(self):
        sys = MnaSystem()
        sys.add_capacitance("a", "b", 1e-9)
        sys.add_resistance("b", "0", 1.0)
        sol = sys.solve(0.0, {"a": 1.0})
        # All current must return through G_MIN: node "a" floats up.
        assert abs(sol["a"]) > 1e6

    def test_factorization_reuse(self):
        sys = MnaSystem()
        sys.add_resistance("a", "0", 2.0)
        factor = sys.factorized(0.0)
        s1 = sys.solve(0.0, {"a": 1.0}, factor=factor)
        s2 = sys.solve(0.0, {"a": 2.0}, factor=factor)
        assert s2["a"].real == pytest.approx(2 * s1["a"].real, rel=1e-9)


class TestVccs:
    def test_inverting_amplifier(self):
        """gm stage with resistive load: gain = -gm * R."""
        gm, r_load = 1e-3, 10e3
        sys = MnaSystem()
        g_src = 1e3
        sys.add_conductance("in", "0", g_src)
        sys.add_vccs("out", "0", "in", "0", gm)
        sys.add_resistance("out", "0", r_load)
        sol = sys.solve(0.0, {"in": 1.0 * g_src})
        gain = sol["out"] / sol["in"]
        assert gain.real == pytest.approx(-gm * r_load, rel=1e-3)

    def test_diode_connected_gm_acts_as_conductance(self):
        """VCCS with output tied to its own control = 1/gm resistor."""
        gm = 1e-3
        sys = MnaSystem()
        sys.add_vccs("d", "0", "d", "0", gm)
        sol = sys.solve(0.0, {"d": 1e-3})
        assert sol["d"].real == pytest.approx(1.0, rel=1e-3)

    def test_differential_pair_rejects_common_mode(self):
        """Two matched gm stages driven by equal inputs give zero diff out."""
        sys = MnaSystem()
        g_src = 1e3
        for side in ("p", "n"):
            sys.add_conductance(f"in_{side}", "0", g_src)
            sys.add_vccs(f"out_{side}", "0", f"in_{side}", "0", 1e-3)
            sys.add_resistance(f"out_{side}", "0", 1e4)
        sol = sys.solve(0.0, {"in_p": g_src, "in_n": g_src})
        assert abs(sol["out_p"] - sol["out_n"]) < 1e-9


class TestAdjoint:
    def test_adjoint_matches_direct_transfer(self):
        """Adjoint transfer must equal direct injection measurement."""
        sys = MnaSystem()
        sys.add_resistance("a", "b", 3.0)
        sys.add_resistance("b", "0", 7.0)
        sys.add_capacitance("b", "0", 1e-9)
        sys.add_vccs("b", "0", "a", "0", 1e-4)
        freq = 1e6
        transfers = sys.adjoint_solve(freq, {"b": 1.0})
        direct = sys.solve(freq, {"a": 1.0})
        assert transfers["a"] == pytest.approx(direct["b"], rel=1e-9)

    def test_adjoint_weighted_output(self):
        sys = MnaSystem()
        sys.add_resistance("a", "0", 1.0)
        sys.add_resistance("b", "0", 1.0)
        transfers = sys.adjoint_solve(0.0, {"a": 1.0, "b": -1.0})
        direct = sys.solve(0.0, {"a": 1.0})
        expected = direct["a"] - direct["b"]
        assert transfers["a"] == pytest.approx(expected, rel=1e-9)
