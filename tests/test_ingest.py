"""Wild-dialect ingestion: parser, symmetry inference, autobench, eval.

Covers the circuit-zoo pipeline end to end: every netlist in
``tests/corpus/`` must parse, flatten, classify, and route with zero
``*.SYMNET`` / ``*.NETTYPE`` hints, and every malformed input must fail
with a typed error carrying file/line context.
"""

import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import generic_40nm, place_benchmark
from repro.core.dataset import route_and_measure
from repro.io import ingest_file, ingest_spice, wild_to_circuit
from repro.io.ingest import (
    classify_model,
    parse_si_value,
    parse_wild_spice,
    pick_top_cell,
    size_to_microns,
)
from repro.io.spice import circuit_to_spice, spice_to_circuit
from repro.netlist import Circuit, MOSFET, MOSType, Net, NetType
from repro.netlist.autobench import classify_supplies, synthesize_testbench
from repro.netlist.symmetry import apply_symmetry, infer_symmetry
from repro.reliability.errors import IngestError, SpiceParseError
from repro.router.guidance import uniform_guidance

from tests.test_obs_golden import check_golden, schema_of

CORPUS = Path(__file__).parent / "corpus"
CORPUS_FILES = sorted(CORPUS.glob("*.sp"))


class TestSiValues:
    @pytest.mark.parametrize("token,expected", [
        ("2u", 2e-6), ("2U", 2e-6), ("300f", 300e-15), ("12K", 12e3),
        ("1.5MEG", 1.5e6), ("4e-15", 4e-15), ("0.18", 0.18),
        ("-3m", -3e-3), ("2.5n", 2.5e-9),
    ])
    def test_suffixes(self, token, expected):
        assert parse_si_value(token) == pytest.approx(expected)

    def test_bad_number_raises_typed(self):
        with pytest.raises(SpiceParseError):
            parse_si_value("abc", line_no=7)

    def test_bad_suffix_raises_typed(self):
        with pytest.raises(SpiceParseError, match="unknown unit suffix"):
            parse_si_value("3xyz")

    @pytest.mark.parametrize("token,microns", [
        ("2u", 2.0), ("2e-6", 2.0), ("0.18", 0.18), ("4", 4.0),
        ("400n", 0.4), ("4E-7", 0.4),
    ])
    def test_size_normalization(self, token, microns):
        assert size_to_microns(token) == pytest.approx(microns)

    def test_size_must_be_positive(self):
        with pytest.raises(SpiceParseError):
            size_to_microns("0")


class TestModelClassification:
    @pytest.mark.parametrize("model,expected", [
        ("nch", MOSType.NMOS), ("pch", MOSType.PMOS),
        ("NMOS_VTL", MOSType.NMOS), ("pmos_rvt", MOSType.PMOS),
        ("nfet_01v8", MOSType.NMOS), ("N1", MOSType.NMOS),
    ])
    def test_conventions(self, model, expected):
        assert classify_model(model, {}) == expected

    def test_model_card_wins(self):
        assert classify_model("xtor", {"XTOR": MOSType.PMOS}) == MOSType.PMOS

    def test_unclassifiable_raises(self):
        with pytest.raises(SpiceParseError, match="cannot tell"):
            classify_model("mystery", {})


class TestWildParser:
    def test_continuation_lines_join(self):
        c = wild_to_circuit(
            "M1 d g s b nch\n+ W=1u\n+ L=0.1u\n.end\n")
        assert c.device("M1").w == pytest.approx(1.0)

    def test_case_insensitive(self):
        lower = wild_to_circuit("m1 out in vss vss nch w=1u l=0.1u\n.end\n")
        upper = wild_to_circuit("M1 OUT IN VSS VSS NCH W=1U L=0.1U\n.END\n")
        assert set(lower.nets) == set(upper.nets)
        assert lower.device("M1").w == upper.device("M1").w

    def test_param_substitution_and_chain(self):
        c = wild_to_circuit(
            ".param base=2u wide=base\n"
            "M1 d g s b nch W=wide L={base}\n.end\n")
        assert c.device("M1").w == pytest.approx(2.0)

    def test_circular_param_raises(self):
        with pytest.raises(SpiceParseError, match="circular"):
            wild_to_circuit(
                ".param a=b b=a\nM1 d g s b nch W=a L=0.1u\n.end\n")

    def test_instance_param_overrides_default(self):
        text = (
            ".subckt inv a y vdd vss wn=1u\n"
            "M1 y a vss vss nch W=wn L=0.1u\n"
            "M2 y a vdd vdd pch W=2u L=0.1u\n"
            ".ends\n"
            "X1 in out vdd vss inv wn=3u\n.end\n")
        c = wild_to_circuit(text)
        assert c.device("X1_M1").w == pytest.approx(3.0)

    def test_three_terminal_mosfet(self):
        c = wild_to_circuit("M1 d g s nch W=1u L=0.1u\n.end\n")
        assert {p for _, p in c.net("D").connections} == {"D"}

    def test_bulk_terminal_dropped(self):
        c = wild_to_circuit("M1 d g s bulkn nch W=1u L=0.1u\n.end\n")
        assert "BULKN" not in c.nets

    def test_sources_and_analysis_cards_skipped(self):
        text = ("M1 d g s b nch W=1u L=0.1u\n"
                "VDD vdd 0 DC 1.2\n.OP\n.AC DEC 10 1 1G\n.end\n")
        netlist = parse_wild_spice(text)
        assert ("VDD", "VDD", "0") in netlist.sources
        assert any("analysis card" in w for w in netlist.warnings)

    def test_include_raises_typed(self):
        with pytest.raises(SpiceParseError, match="external file"):
            parse_wild_spice(".include models.lib\n.end\n")

    def test_unsupported_element_with_line(self):
        with pytest.raises(SpiceParseError) as exc_info:
            wild_to_circuit("M1 d g s b nch W=1u L=0.1u\nQ2 c b e npn\n")
        assert exc_info.value.line_no == 2

    def test_missing_sizes_raise(self):
        with pytest.raises(SpiceParseError, match="missing L="):
            wild_to_circuit("M1 d g s b nch W=1u\n.end\n")

    def test_duplicate_device_raises(self):
        with pytest.raises(SpiceParseError):
            wild_to_circuit("M1 d g s b nch W=1u L=0.1u\n"
                            "M1 d g s b nch W=1u L=0.1u\n.end\n")

    def test_unclosed_subckt_raises(self):
        with pytest.raises(SpiceParseError, match="never closed"):
            parse_wild_spice(".subckt foo a b\nM1 a b c d nch W=1u L=1u\n")

    def test_undefined_subckt_raises(self):
        with pytest.raises(IngestError, match="undefined subcircuit"):
            wild_to_circuit("X1 a b missing_cell\n.end\n")

    def test_recursive_subckt_raises(self):
        text = (".subckt loop a b\nX1 a b loop\n.ends\n"
                "Xtop x y loop\n.end\n")
        with pytest.raises(IngestError, match="recursive"):
            wild_to_circuit(text)

    def test_pin_count_mismatch_raises(self):
        text = (".subckt cell a b c\nM1 a b c 0 nch W=1u L=1u\n.ends\n"
                "X1 n1 n2 cell\n.end\n")
        with pytest.raises(SpiceParseError, match="declares 3 pins"):
            wild_to_circuit(text)

    def test_no_devices_raises(self):
        with pytest.raises(IngestError):
            wild_to_circuit("* empty\n.end\n")

    def test_top_cell_auto_detection(self):
        text = (".subckt leaf a b\nM1 a b 0 0 nch W=1u L=1u\n.ends\n"
                ".subckt root x y\nX1 x y leaf\nX2 y x leaf\n.ends\n"
                ".end\n")
        netlist = parse_wild_spice(text)
        assert pick_top_cell(netlist) == "ROOT"
        c = wild_to_circuit(text)
        assert c.name == "ROOT"
        assert "X1_M1" in c.devices and "X2_M1" in c.devices


class TestSymmetryInference:
    def _diff_pair(self):
        c = Circuit(name="dp")
        c.add_device(MOSFET(name="M1", mos_type=MOSType.NMOS, w=4, l=0.4))
        c.add_device(MOSFET(name="M2", mos_type=MOSType.NMOS, w=4, l=0.4))
        for name in ("OUTP", "OUTN", "INP", "INN", "TAIL"):
            c.add_net(Net(name=name))
        c.net("OUTN").connect("M1", "D")
        c.net("OUTP").connect("M2", "D")
        c.net("INP").connect("M1", "G")
        c.net("INN").connect("M2", "G")
        c.net("TAIL").connect("M1", "S")
        c.net("TAIL").connect("M2", "S")
        return c

    def test_diff_pair_found(self):
        report = infer_symmetry(self._diff_pair())
        assert ("INN", "INP") in report.net_pairs
        assert ("OUTN", "OUTP") in report.net_pairs
        assert "TAIL" in report.self_symmetric
        assert report.device_pairs == [("M1", "M2")]

    def test_mismatched_sizing_not_paired(self):
        c = self._diff_pair()
        c.devices["M2"].w = 8.0
        report = infer_symmetry(c)
        assert report.device_pairs == []

    def test_cross_coupled_latch(self):
        c = Circuit(name="latch")
        c.add_device(MOSFET(name="MA", w=2, l=0.2))
        c.add_device(MOSFET(name="MB", w=2, l=0.2))
        for name in ("QP", "QN", "VSS"):
            c.add_net(Net(name=name))
        c.net("QP").connect("MA", "D")
        c.net("QN").connect("MA", "G")
        c.net("QN").connect("MB", "D")
        c.net("QP").connect("MB", "G")
        c.net("VSS").connect("MA", "S")
        c.net("VSS").connect("MB", "S")
        report = infer_symmetry(c, exclude=frozenset({"VSS"}))
        assert report.net_pairs == [("QN", "QP")]
        assert "VSS" not in report.self_symmetric

    def test_unbalanced_degree_pair_rejected(self):
        c = self._diff_pair()
        # Extra load on OUTP only: degrees diverge, pair must drop.
        c.add_device(MOSFET(name="MX", w=1, l=0.1))
        c.net("OUTP").connect("MX", "D")
        report = infer_symmetry(c)
        assert ("OUTN", "OUTP") not in report.net_pairs

    def test_apply_writes_validated_pairs(self):
        c = self._diff_pair()
        apply_symmetry(c, infer_symmetry(c))
        assert {(p.net_a, p.net_b) for p in c.symmetry_pairs} == {
            ("INN", "INP"), ("OUTN", "OUTP")}
        assert c.net("TAIL").self_symmetric


class TestAutobench:
    def test_supplies_by_structure_without_names(self):
        # No conventional names anywhere: classification must fall back
        # to source-terminal counting.
        text = ("M1 o1 i1 t rail_b nch W=4u L=0.4u\n"
                "M2 o2 i2 t rail_b nch W=4u L=0.4u\n"
                "M3 o1 o1 rail_t rail_t pch W=2u L=0.4u\n"
                "M4 o2 o1 rail_t rail_t pch W=2u L=0.4u\n"
                "M5 t nb rail_b rail_b nch W=8u L=0.8u\n.end\n")
        c = wild_to_circuit(text)
        power, ground = classify_supplies(c)
        assert power == ["RAIL_T"]
        assert ground == ["RAIL_B"]

    def test_corpus_classification(self):
        res = ingest_file(CORPUS / "comparator.sp")
        man = res.manifest()
        cls = man["classification"]
        assert cls["power"] == ["AVDD"] and cls["ground"] == ["AGND"]
        assert cls["inputs"] == ["VIP", "VIN"]
        assert set(cls["outputs"]) == {"VOUTP", "VOUTN"}
        assert cls["clocks"] == ["CK"]
        assert "CK" in cls["dc_drive_nets"]
        assert not cls["single_ended"]

    def test_single_ended_output_benches_against_ground(self):
        res = ingest_file(CORPUS / "ota5t.sp")
        assert res.bench.single_ended
        pos, neg = res.config.output_nets
        assert pos == "OUT" and neg in res.bench.ground

    def test_bias_devices_flagged(self):
        res = ingest_file(CORPUS / "ota5t.sp")
        devices = res.circuit.devices
        assert devices["XAMP_M3"].is_bias_device  # diode-connected
        assert devices["XAMP_M4"].is_bias_device  # mirror output
        assert devices["XAMP_M5"].is_bias_device  # tail on external bias
        assert not devices["XAMP_M1"].is_bias_device  # gain device

    def test_unclassifiable_raises_ingest_error(self):
        # A resistor divider has no gates at all: no input pair exists.
        text = ("R1 a b 1K\nR2 b c 1K\n.end\n")
        with pytest.raises(IngestError, match="input"):
            ingest_spice(text)

    def test_net_types_written(self):
        res = ingest_file(CORPUS / "diffamp.sp")
        c = res.circuit
        assert c.net("VDD!").net_type == NetType.POWER
        assert c.net("0").net_type == NetType.GROUND
        assert c.net("INP").net_type == NetType.INPUT
        assert c.net("OUTP").net_type == NetType.OUTPUT


class TestCorpusEndToEnd:
    def test_corpus_has_expected_netlists(self):
        names = {p.stem for p in CORPUS_FILES}
        assert {"ota5t", "diffamp", "comparator"} <= names

    @pytest.mark.parametrize("path", CORPUS_FILES, ids=lambda p: p.stem)
    def test_no_hint_comments(self, path):
        text = path.read_text()
        assert "SYMNET" not in text.upper()
        assert "NETTYPE" not in text.upper()

    @pytest.mark.parametrize("path", CORPUS_FILES, ids=lambda p: p.stem)
    def test_ingest_route_simulate(self, path):
        res = ingest_file(path)
        assert res.circuit.symmetry_pairs, "no symmetry inferred"
        placement = place_benchmark(res.circuit, iterations=60)
        sample = route_and_measure(
            res.circuit, placement, generic_40nm(), uniform_guidance(),
            testbench_config=res.config)
        assert sample.result.total_wirelength() > 0
        assert np.all(np.isfinite(sample.metrics.to_normalized()))

    def test_manifest_schema_golden(self):
        res = ingest_file(CORPUS / "ota5t.sp")
        manifest = res.manifest()
        json.dumps(manifest)  # must be JSON-serializable as-is
        check_golden("ingest_manifest_schema.json", schema_of(manifest))

    def test_bad_corpus_fails_typed(self):
        with pytest.raises(SpiceParseError):
            ingest_file(CORPUS / "bad" / "unsupported.sp")


class TestDcDriveNets:
    def test_stiff_drive_regularizes_gate_only_nets(self):
        from repro.extraction import extract_schematic
        from repro.simulation import simulate_performance

        res = ingest_file(CORPUS / "comparator.sp")
        parasitics = extract_schematic(list(res.circuit.nets))
        metrics = simulate_performance(res.circuit, parasitics,
                                       config=res.config)
        assert np.all(np.isfinite(metrics.to_normalized()))


def _circuit_strategy():
    """Random small circuits for round-trip property testing."""

    def build(data):
        n_mos, n_cap, seed = data
        rng = np.random.default_rng(seed)
        c = Circuit(name=f"rand{seed}")
        nets = [f"N{i}" for i in range(4 + n_mos)]
        for net in nets:
            c.add_net(Net(name=net, weight=float(rng.integers(1, 4))))
        for i in range(n_mos):
            c.add_device(MOSFET(
                name=f"M{i}",
                mos_type=MOSType.NMOS if i % 2 else MOSType.PMOS,
                w=float(rng.integers(1, 20)) / 2.0,
                l=float(rng.integers(1, 8)) / 10.0,
                fingers=int(rng.integers(1, 5)),
                bias_current=float(rng.integers(1, 100)) * 1e-6,
                is_bias_device=bool(rng.integers(0, 2)),
            ))
            for pin in ("D", "G", "S"):
                c.net(str(rng.choice(nets))).connect(f"M{i}", pin)
        from repro.netlist import Capacitor
        for i in range(n_cap):
            c.add_device(Capacitor(name=f"C{i}",
                                   value=float(rng.integers(1, 500)) * 1e-15))
            a, b = rng.choice(len(nets), size=2, replace=False)
            c.net(nets[int(a)]).connect(f"C{i}", "PLUS")
            c.net(nets[int(b)]).connect(f"C{i}", "MINUS")
        c.validate()
        return c

    return st.tuples(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=10_000),
    ).map(build)


class TestRoundTripProperty:
    @settings(max_examples=30, deadline=None)
    @given(circuit=_circuit_strategy())
    def test_roundtrip_is_lossless(self, circuit):
        restored = spice_to_circuit(circuit_to_spice(circuit))
        assert set(restored.devices) == set(circuit.devices)
        assert set(restored.nets) == set(circuit.nets)
        for name, net in circuit.nets.items():
            r = restored.net(name)
            assert sorted(r.connections) == sorted(net.connections)
            assert r.weight == net.weight
        for name, dev in circuit.devices.items():
            r = restored.device(name)
            if isinstance(dev, MOSFET):
                assert (r.w, r.l, r.fingers) == (dev.w, dev.l, dev.fingers)
                assert r.bias_current == pytest.approx(dev.bias_current)
                assert r.is_bias_device == dev.is_bias_device
            else:
                assert r.value == pytest.approx(dev.value)

    @settings(max_examples=15, deadline=None)
    @given(circuit=_circuit_strategy())
    def test_roundtrip_never_materializes_float_sentinel(self, circuit):
        restored = spice_to_circuit(circuit_to_spice(circuit))
        assert "_FLOAT_" not in restored.nets


class TestCrossTopoEval:
    def test_spearman(self):
        from repro.eval.crosstopo import spearman
        a = np.array([1.0, 2.0, 3.0, 4.0])
        assert spearman(a, a) == pytest.approx(1.0)
        assert spearman(a, -a) == pytest.approx(-1.0)
        assert spearman(a, np.ones(4)) == 0.0

    def test_fit_multi_trains_across_graphs(self):
        from repro.core.dataset import DatasetConfig, generate_dataset
        from repro.model import Gnn3d, Gnn3dConfig, TrainConfig, Trainer
        from repro.netlist import build_benchmark

        dbs = []
        for i, name in enumerate(("OTA1", "OTA2")):
            circuit = build_benchmark(name)
            placement = place_benchmark(circuit, iterations=40, seed=i)
            dbs.append(generate_dataset(
                circuit, placement, generic_40nm(),
                config=DatasetConfig(num_samples=3, seed=i)))
        graph = dbs[0].graph
        model = Gnn3d(graph.ap_features.shape[1],
                      graph.module_features.shape[1], Gnn3dConfig(seed=0))
        trainer = Trainer(model, graph, TrainConfig(epochs=2, seed=0))
        history = trainer.fit_multi(
            [(db.graph, db.train_samples()) for db in dbs])
        assert len(history.train_loss) == 2
        assert np.isfinite(history.train_loss[-1])

    def test_run_crosstopo_smoke(self):
        from repro.eval import format_crosstopo_table, run_crosstopo

        result = run_crosstopo([CORPUS / "ota5t.sp"],
                               train_designs=("OTA1",), scale="smoke")
        assert len(result.rows) == 1
        row = result.rows[0]
        assert row.design == "OTA5T"
        assert np.isfinite(row.mae)
        assert -1.0 <= row.rank_corr <= 1.0
        table = format_crosstopo_table(result)
        assert "OTA5T" in table and "Spearman" in table
