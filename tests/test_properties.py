"""Hypothesis property tests on cross-module invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.netlist import Capacitor, Circuit, MOSFET, MOSType, NetType
from repro.placement import Placer
from repro.router import AStarRouter, IterativeRouter, RoutingGrid
from repro.simulation.mna import MnaSystem
from repro.simulation.metrics import PerformanceMetrics
from repro.tech import generic_40nm


# -- circuit generator strategy ---------------------------------------------------

@st.composite
def small_circuits(draw):
    """Random small valid circuits: a chain of MOSFETs and caps."""
    n_mos = draw(st.integers(2, 6))
    n_cap = draw(st.integers(0, 2))
    circuit = Circuit(name="rand")
    for i in range(n_mos):
        circuit.add_device(MOSFET(
            name=f"M{i}",
            mos_type=MOSType.NMOS if i % 2 else MOSType.PMOS,
            w=draw(st.floats(1.0, 8.0)),
            l=draw(st.sampled_from([0.04, 0.06, 0.08])),
            bias_current=draw(st.floats(1e-6, 1e-4)),
        ))
    for i in range(n_cap):
        circuit.add_device(Capacitor(name=f"C{i}",
                                     value=draw(st.floats(0.1e-12, 1e-12))))
    # Chain nets: M[i].D -- M[i+1].G, plus supply rails.
    vdd = circuit.new_net("VDD", NetType.POWER)
    vss = circuit.new_net("VSS", NetType.GROUND)
    for i in range(n_mos):
        dev = circuit.device(f"M{i}")
        (vdd if dev.mos_type is MOSType.PMOS else vss).connect(f"M{i}", "S")
    for i in range(n_mos - 1):
        net = circuit.new_net(f"N{i}")
        net.connect(f"M{i}", "D").connect(f"M{i + 1}", "G")
    last = circuit.new_net("NOUT")
    last.connect(f"M{n_mos - 1}", "D")
    for i in range(n_cap):
        last.connect(f"C{i}", "PLUS")
        vss.connect(f"C{i}", "MINUS")
    circuit.net("NOUT").connect("M0", "G")  # feedback to keep all pins used
    circuit.validate()
    return circuit


class TestPlacerProperties:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(circuit=small_circuits(), seed=st.integers(0, 100))
    def test_placements_always_legal(self, circuit, seed):
        placement = Placer(circuit, variant="A", seed=seed,
                           iterations=30).place()
        assert placement.is_legal()
        assert set(placement.positions) == set(circuit.devices)
        x0, y0, _, _ = placement.bounding_box()
        assert x0 >= 0 and y0 >= 0


class TestRouterProperties:
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(circuit=small_circuits(), seed=st.integers(0, 50))
    def test_routing_clean_on_random_circuits(self, circuit, seed):
        placement = Placer(circuit, variant="A", seed=seed,
                           iterations=20).place()
        grid = RoutingGrid(placement, generic_40nm())
        result = IterativeRouter(grid).route_all()
        assert result.success, result.failed_nets
        assert result.overlaps() == {}
        for route in result.routes.values():
            assert route.is_connected()
            for a, b in route.segments():
                assert sum(abs(x - y) for x, y in zip(a, b)) == 1

    @settings(max_examples=15, deadline=None)
    @given(ax=st.integers(2, 12), ay=st.integers(2, 12),
           bx=st.integers(2, 12), by=st.integers(2, 12),
           gx=st.floats(0.2, 3.0), gy=st.floats(0.2, 3.0),
           gz=st.floats(0.2, 3.0))
    def test_astar_path_valid(self, ota1_grid, ax, ay, bx, by, gx, gy, gz):
        # ota1_grid is read-only here: route_connection never mutates
        # occupancy, so sharing the session grid across examples is safe.
        router = AStarRouter(ota1_grid)
        net = ota1_grid.net_names[0]
        a, b = (ax, ay, 1), (bx, by, 2)
        path = router.route_connection(
            net, {a}, {b}, guidance_vec=np.array([gx, gy, gz]))
        assert path is not None
        assert path[0] == a and path[-1] == b
        for u, v in zip(path, path[1:]):
            assert sum(abs(x - y) for x, y in zip(u, v)) == 1
            assert ota1_grid.in_bounds(v)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 1000))
    def test_mirror_involution_random_cells(self, ota1_grid, seed):
        rng = np.random.default_rng(seed)
        cell = (int(rng.integers(0, ota1_grid.nx)),
                int(rng.integers(0, ota1_grid.ny)),
                int(rng.integers(0, ota1_grid.num_layers)))
        assert ota1_grid.mirror_cell(ota1_grid.mirror_cell(cell)) == cell


class TestMnaProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(1.0, 1e4), min_size=1, max_size=6))
    def test_series_ladder_resistance(self, resistances):
        """DC voltage at the head of a series ladder = sum of resistances."""
        sys = MnaSystem()
        nodes = [f"n{i}" for i in range(len(resistances))] + ["0"]
        for r, a, b in zip(resistances, nodes, nodes[1:]):
            sys.add_resistance(a, b, r)
        sol = sys.solve(0.0, {"n0": 1.0})
        # rel=1e-4 leaves room for the intentional G_MIN leak at every node.
        assert sol["n0"].real == pytest.approx(sum(resistances), rel=1e-4)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_reciprocity_of_resistive_network(self, seed):
        """For reciprocal (R-only) networks, transfer a->b equals b->a."""
        rng = np.random.default_rng(seed)
        sys = MnaSystem()
        names = ["a", "b", "c", "d"]
        for i, u in enumerate(names):
            sys.add_resistance(u, "0", float(rng.uniform(10, 1e3)))
            for v in names[i + 1:]:
                sys.add_resistance(u, v, float(rng.uniform(10, 1e3)))
        v_ab = sys.solve(0.0, {"a": 1.0})["b"]
        v_ba = sys.solve(0.0, {"b": 1.0})["a"]
        assert v_ab.real == pytest.approx(v_ba.real, rel=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(st.floats(1e3, 1e9))
    def test_passivity(self, freq):
        """A passive RC network driven by 1A dissipates positive power."""
        sys = MnaSystem()
        sys.add_resistance("a", "b", 100.0)
        sys.add_capacitance("b", "0", 1e-12)
        sys.add_resistance("b", "0", 1e3)
        sol = sys.solve(freq, {"a": 1.0})
        power = (sol["a"] * np.conj(1.0)).real
        assert power > 0


class TestMetricsProperties:
    @settings(max_examples=40, deadline=None)
    @given(offset=st.floats(1e-2, 1e5), cmrr=st.floats(1.0, 200.0),
           bw=st.floats(1e-2, 1e4), gain=st.floats(0.1, 100.0),
           noise=st.floats(1e-1, 1e5))
    def test_normalization_roundtrip(self, offset, cmrr, bw, gain, noise):
        m = PerformanceMetrics(offset, cmrr, bw, gain, noise)
        r = PerformanceMetrics.from_normalized(m.to_normalized())
        assert r.offset_uv == pytest.approx(offset, rel=1e-9)
        assert r.cmrr_db == pytest.approx(cmrr, rel=1e-9)
        assert r.bandwidth_mhz == pytest.approx(bw, rel=1e-9)
        assert r.gain_db == pytest.approx(gain, rel=1e-9)
        assert r.noise_uvrms == pytest.approx(noise, rel=1e-9)


class TestDistanceProperties:
    @settings(max_examples=40, deadline=None)
    @given(c=st.tuples(st.floats(0.1, 4.0), st.floats(0.1, 4.0),
                       st.floats(0.1, 4.0)),
           delta=st.tuples(st.floats(0, 20), st.floats(0, 20),
                           st.floats(0, 3)))
    def test_cost_distance_monotone_in_guidance(self, c, delta):
        """Eq. 1: d_cost grows with each guidance component."""
        def d_cost(cv):
            return np.sqrt(sum((ci * di) ** 2 for ci, di in zip(cv, delta)))

        base = d_cost(c)
        for i in range(3):
            bumped = list(c)
            bumped[i] *= 2.0
            assert d_cost(bumped) >= base
