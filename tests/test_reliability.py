"""Fault-injection tests proving every degradation path of the pipeline.

Faults are injected deterministically (explicit call indices, or a
probability hashed per call index) so each test exercises a known failure
pattern: skip-and-resample, retry-with-perturbed-guidance, the
``min_valid_samples`` floor, dropped NaN restarts in relaxation, and
checkpoint write/resume round trips.
"""

import json
import math

import numpy as np
import pytest

from repro.core import (
    AnalogFold,
    AnalogFoldConfig,
    DatasetConfig,
    PotentialFunction,
    PotentialRelaxer,
    RelaxationConfig,
    generate_dataset,
)
from repro.core.dataset import GuidanceSample
from repro.model import Gnn3dConfig, TrainConfig
from repro.reliability import (
    CheckpointError,
    DataQualityError,
    DegradationPolicy,
    FaultInjector,
    FaultPlan,
    RelaxationError,
    ReproError,
    RetryPolicy,
    RoutingError,
    ServeError,
    SimulationError,
    dataset_fingerprint,
    error_for_stage,
    fault_scope,
    inject_faults,
    load_checkpoint,
    retry,
    retry_call,
    validate_sample,
)
from repro.router import RoutingGrid
from repro.router.result import RoutingResult
from repro.simulation.metrics import PerformanceMetrics


@pytest.fixture(scope="module")
def trained_fold(ota1, ota1_placement, tech):
    """A tiny trained pipeline shared by relaxation/pipeline tests."""
    fold = AnalogFold(
        ota1, ota1_placement, tech,
        config=AnalogFoldConfig(
            dataset=DatasetConfig(num_samples=4, seed=3),
            gnn=Gnn3dConfig(hidden=12, num_layers=1, seed=0),
            training=TrainConfig(epochs=3, val_fraction=0.0, patience=0),
            relaxation=RelaxationConfig(n_restarts=3, pool_size=2,
                                        n_derive=2, maxiter=6, seed=0),
        ),
    )
    fold.train()
    return fold


@pytest.fixture(scope="module")
def potential(trained_fold):
    return PotentialFunction(trained_fold.model, trained_fold.database.graph)


class TestErrorTaxonomy:
    def test_context_in_message(self):
        err = RoutingError("net unroutable", stage="routing",
                           sample_index=7, net="VOUTP", attempt=1)
        text = str(err)
        assert "net unroutable" in text
        assert "stage=routing" in text
        assert "sample_index=7" in text
        assert "net=VOUTP" in text

    def test_subclasses_runtime_error(self):
        # Pre-taxonomy call sites catch RuntimeError; they must keep working.
        assert issubclass(SimulationError, RuntimeError)
        with pytest.raises(RuntimeError):
            raise DataQualityError("bad sample")

    def test_with_context_fills_only_missing(self):
        err = SimulationError("singular", stage="simulation")
        err.with_context(stage="other", sample_index=3)
        assert err.stage == "simulation"
        assert err.sample_index == 3

    def test_error_for_stage(self):
        assert error_for_stage("routing") is RoutingError
        assert error_for_stage("nonsense") is ReproError

    def test_context_dict(self):
        err = RoutingError("x", stage="routing", details={"grid": "full"})
        assert err.context() == {"stage": "routing",
                                 "details": {"grid": "full"}}


class TestRetry:
    def test_succeeds_after_reseed(self):
        calls = []

        def flaky(seed=0):
            calls.append(seed)
            if seed < 2:
                raise RoutingError("bad seed", stage="routing")
            return seed

        result = retry_call(
            flaky,
            policy=RetryPolicy(max_attempts=4),
            reseed=lambda attempt, kw: {"seed": attempt},
        )
        assert result == 2
        assert calls == [0, 1, 2]

    def test_gives_up_with_attempt_context(self):
        def always_fails(seed=0):
            raise RoutingError("nope", stage="routing")

        with pytest.raises(RoutingError) as exc_info:
            retry_call(always_fails, policy=RetryPolicy(max_attempts=3),
                       reseed=lambda attempt, kw: kw)
        assert exc_info.value.attempt == 2

    def test_non_retryable_propagates_immediately(self):
        calls = []

        def typo():
            calls.append(1)
            raise KeyError("not a pipeline failure")

        with pytest.raises(KeyError):
            retry_call(typo, policy=RetryPolicy(max_attempts=5))
        assert len(calls) == 1

    def test_decorator_form(self):
        attempts = []

        @retry(RetryPolicy(max_attempts=2),
               reseed=lambda attempt, kw: {**kw, "seed": 99})
        def sample(seed=0):
            attempts.append(seed)
            if seed != 99:
                raise SimulationError("singular")
            return "ok"

        assert sample(seed=1) == "ok"
        assert attempts == [1, 99]

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=-1.0)

    def test_backoff_schedule(self):
        pol = RetryPolicy(backoff_base=1.0, backoff_factor=2.0,
                          backoff_max=3.0)
        assert pol.sleep_for(1) == 1.0
        assert pol.sleep_for(2) == 2.0
        assert pol.sleep_for(3) == 3.0  # capped

    def test_full_jitter_bounded_by_schedule_and_cap(self):
        pol = RetryPolicy(backoff_base=1.0, backoff_factor=2.0,
                          backoff_max=3.0, jitter="full")
        for attempt in range(1, 8):
            ceiling = min(2.0 ** (attempt - 1), 3.0)
            assert 0.0 <= pol.sleep_for(attempt) <= ceiling

    def test_full_jitter_is_deterministic_per_seed(self):
        pol_a = RetryPolicy(backoff_base=1.0, jitter="full", jitter_seed=7)
        pol_b = RetryPolicy(backoff_base=1.0, jitter="full", jitter_seed=7)
        draws_a = [pol_a.sleep_for(n) for n in range(1, 6)]
        # Draws depend only on (jitter_seed, attempt): re-asking the
        # same policy — or an identically-seeded twin — repeats them.
        assert [pol_a.sleep_for(n) for n in range(1, 6)] == draws_a
        assert [pol_b.sleep_for(n) for n in range(1, 6)] == draws_a

    def test_differently_seeded_policies_decorrelate(self):
        pol_a = RetryPolicy(backoff_base=1.0, jitter="full", jitter_seed=0)
        pol_b = RetryPolicy(backoff_base=1.0, jitter="full", jitter_seed=1)
        assert [pol_a.sleep_for(n) for n in range(1, 6)] != \
            [pol_b.sleep_for(n) for n in range(1, 6)]

    def test_zero_base_never_sleeps_even_with_jitter(self):
        pol = RetryPolicy(backoff_base=0.0, jitter="full")
        assert all(pol.sleep_for(n) == 0.0 for n in range(1, 5))

    def test_jitter_mode_validation(self):
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter="equal")


class TestConfigValidation:
    def test_dataset_config(self):
        with pytest.raises(ValueError, match="num_samples"):
            DatasetConfig(num_samples=0)
        with pytest.raises(ValueError, match="c_max"):
            DatasetConfig(c_max=-1.0)
        with pytest.raises(ValueError, match="routing_pitch"):
            DatasetConfig(routing_pitch=0.0)

    def test_relaxation_config(self):
        with pytest.raises(ValueError, match="noise_sigma"):
            RelaxationConfig(noise_sigma=-0.1)
        with pytest.raises(ValueError, match="maxiter"):
            RelaxationConfig(maxiter=0)
        with pytest.raises(ValueError, match="seed_points"):
            RelaxationConfig(n_restarts=2, seed_points=5)

    def test_degradation_policy(self):
        with pytest.raises(ValueError, match="max_retries"):
            DegradationPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="min_valid_fraction"):
            DegradationPolicy(min_valid_fraction=1.5)

    def test_min_valid_samples_floor(self):
        assert DegradationPolicy(min_valid_fraction=0.5).min_valid_samples(5) == 3
        assert DegradationPolicy(min_valid_fraction=0.0).min_valid_samples(5) == 1
        assert DegradationPolicy(min_valid_fraction=1.0).min_valid_samples(5) == 5


class TestFaultPlan:
    def test_explicit_indices(self):
        plan = FaultPlan(stage="routing", fail_indices={1, 3})
        assert [plan.selects(i) for i in range(5)] == [
            False, True, False, True, False]

    def test_probability_deterministic_per_index(self):
        plan = FaultPlan(stage="routing", probability=0.2, seed=10)
        first = [plan.selects(i) for i in range(12)]
        assert first == [plan.selects(i) for i in range(12)]
        assert first == [i == 1 for i in range(12)]  # seed chosen for this

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(stage="routing", probability=1.5)

    def test_injected_error_type_matches_stage(self):
        injector = FaultInjector(
            FaultPlan(stage="simulation", fail_indices={0}))
        with injector:
            with pytest.raises(SimulationError) as exc_info:
                injector.check("simulation")
        assert exc_info.value.details["injected"] is True

    def test_stall_plan_reports_duration_instead_of_raising(self):
        plan = FaultPlan(stage="serve_stall", fail_units={2},
                         stall_seconds=1.5)
        injector = FaultInjector(plan)
        with injector:
            with fault_scope(1):
                assert injector.stall("serve_stall") == 0.0
            with fault_scope(2):
                # A stall plan never raises — check() sees no raising
                # plan on the stage — it reports the stall duration.
                injector.check("serve_stall")
                assert injector.stall("serve_stall") == 1.5

    def test_stall_and_raise_plans_are_independent(self):
        stall = FaultPlan(stage="serve", fail_units={0},
                          stall_seconds=2.0)
        raising = FaultPlan(stage="serve", fail_units={1})
        injector = FaultInjector(stall, raising)
        with injector:
            with fault_scope(0):
                assert injector.stall("serve") == 2.0
                injector.check("serve")  # raising plan targets unit 1
            with fault_scope(1):
                assert injector.stall("serve") == 0.0
                with pytest.raises(ServeError):
                    injector.check("serve")

    def test_stall_seconds_validation(self):
        with pytest.raises(ValueError, match="stall_seconds"):
            FaultPlan(stage="serve", stall_seconds=-1.0)


class TestDatasetDegradation:
    def test_skip_and_resample_backfills(self, ota1, ota1_placement, tech):
        plan = FaultPlan(stage="routing", fail_indices={1})
        with inject_faults(plan):
            db = generate_dataset(
                ota1, ota1_placement, tech,
                DatasetConfig(num_samples=3, seed=0),
                policy=DegradationPolicy(max_retries=0),
            )
        assert len(db.samples) == 3  # skipped sample backfilled
        assert db.report.valid == 3
        assert db.report.resampled == 1
        assert len(db.report.skipped) == 1
        assert db.report.skipped[0].stage == "routing"
        assert db.report.skipped[0].sample_index == 1

    def test_retry_with_perturbed_guidance_recovers(
            self, ota1, ota1_placement, tech):
        plan = FaultPlan(stage="routing", fail_indices={1})
        with inject_faults(plan) as injector:
            db = generate_dataset(
                ota1, ota1_placement, tech,
                DatasetConfig(num_samples=3, seed=0),
                policy=DegradationPolicy(max_retries=1),
            )
        assert len(db.samples) == 3
        assert db.report.retried == 1
        assert not db.report.skipped
        assert db.report.resampled == 0
        # 3 samples + 1 retry = 4 router invocations.
        assert injector.calls["routing"] == 4

    def test_twenty_percent_faults_meets_floor(
            self, ota1, ota1_placement, tech):
        # Acceptance criterion: 20% injected faults, the database still
        # meets min_valid_samples and reaches the requested size.
        policy = DegradationPolicy(max_retries=1, min_valid_fraction=0.5)
        plan = FaultPlan(stage="routing", probability=0.2, seed=10)
        with inject_faults(plan) as injector:
            db = generate_dataset(
                ota1, ota1_placement, tech,
                DatasetConfig(num_samples=5, seed=0),
                policy=policy,
            )
        assert injector.injected  # at least one fault actually fired
        assert len(db.samples) >= policy.min_valid_samples(5)
        assert db.report.valid == len(db.samples)

    def test_faults_beyond_floor_raise_data_quality_error(
            self, ota1, ota1_placement, tech):
        plan = FaultPlan(stage="routing", probability=1.0)
        with inject_faults(plan):
            with pytest.raises(DataQualityError) as exc_info:
                generate_dataset(
                    ota1, ota1_placement, tech,
                    DatasetConfig(num_samples=3, seed=0),
                    policy=DegradationPolicy(max_retries=0,
                                             min_valid_fraction=0.5,
                                             resample_budget=1),
                )
        err = exc_info.value
        assert err.stage == "database"
        assert err.details["valid"] == 0
        assert err.details["floor"] == 2
        assert err.details["requested"] == 3
        assert err.details["failures_by_stage"]["routing"] == 4

    def test_simulation_stage_faults_are_typed(
            self, ota1, ota1_placement, tech):
        plan = FaultPlan(stage="simulation", fail_indices={0})
        with inject_faults(plan):
            db = generate_dataset(
                ota1, ota1_placement, tech,
                DatasetConfig(num_samples=2, seed=0),
                policy=DegradationPolicy(max_retries=0),
            )
        assert len(db.samples) == 2
        assert db.report.skipped[0].stage == "simulation"

    def test_quality_gate_rejects_nan_metrics(
            self, ota1, ota1_placement, tech, monkeypatch):
        import repro.core.dataset as dataset_mod

        def nan_metrics(circuit, parasitics, config=None):
            return PerformanceMetrics(
                offset_uv=math.nan, cmrr_db=60.0, bandwidth_mhz=100.0,
                gain_db=30.0, noise_uvrms=50.0)

        monkeypatch.setattr(dataset_mod, "simulate_performance", nan_metrics)
        with pytest.raises(DataQualityError) as exc_info:
            generate_dataset(
                ota1, ota1_placement, tech,
                DatasetConfig(num_samples=1, seed=0),
                policy=DegradationPolicy(max_retries=0, resample_budget=0),
            )
        assert exc_info.value.details["failures_by_stage"] == {"quality": 1}

    def test_no_faults_identical_to_seed_behavior(
            self, ota1, ota1_placement, tech):
        # The degradation machinery must not perturb the no-failure path.
        cfg = DatasetConfig(num_samples=2, seed=42)
        plain = generate_dataset(ota1, ota1_placement, tech, cfg)
        policied = generate_dataset(
            ota1, ota1_placement, tech, cfg,
            policy=DegradationPolicy(max_retries=3, min_valid_fraction=1.0))
        for a, b in zip(plain.samples, policied.samples):
            assert a.metrics == b.metrics


class TestValidateSample:
    def _sample(self, **overrides) -> GuidanceSample:
        metrics = PerformanceMetrics(**{
            "offset_uv": 12.0, "cmrr_db": 60.0, "bandwidth_mhz": 100.0,
            "gain_db": 30.0, "noise_uvrms": 50.0, **overrides})
        return GuidanceSample(guidance=None, result=RoutingResult(),
                              metrics=metrics)

    def test_finite_sample_passes(self):
        assert validate_sample(self._sample()) is None

    def test_nan_and_inf_rejected(self):
        reason = validate_sample(self._sample(offset_uv=math.nan))
        assert "offset_uv" in reason
        reason = validate_sample(self._sample(noise_uvrms=math.inf))
        assert "noise_uvrms" in reason

    def test_require_routed(self):
        sample = self._sample()
        sample.result.failed_nets = ["VOUTP"]
        assert validate_sample(sample) is None
        assert "VOUTP" in validate_sample(sample, require_routed=True)


class TestRelaxationDegradation:
    def test_trace_resets_between_runs(self, potential):
        relaxer = PotentialRelaxer(RelaxationConfig(
            n_restarts=3, pool_size=2, n_derive=1, maxiter=4, seed=0))
        relaxer.run(potential)
        relaxer.run(potential)
        assert relaxer.trace.restarts == 3  # not 6: one run's diagnostics
        assert len(relaxer.trace.best_per_restart) == 3

    def test_nan_restarts_dropped_with_survivors(self, potential):
        relaxer = PotentialRelaxer(RelaxationConfig(
            n_restarts=3, pool_size=2, n_derive=1, maxiter=4, seed=0))
        with inject_faults(FaultPlan(stage="relaxation", fail_indices={0})):
            out = relaxer.run(potential)
        assert len(out) == 1
        assert np.isfinite(out[0].potential)
        assert relaxer.trace.diverged == 1
        assert relaxer.trace.restarts == 2
        assert "non-finite potential" in relaxer.trace.failures[0]

    def test_all_diverged_raises_with_trace(self, potential):
        relaxer = PotentialRelaxer(RelaxationConfig(
            n_restarts=3, pool_size=2, n_derive=1, maxiter=4, seed=0))
        with inject_faults(FaultPlan(stage="relaxation", probability=1.0)):
            with pytest.raises(RelaxationError) as exc_info:
                relaxer.run(potential)
        trace = exc_info.value.details["trace"]
        assert trace["diverged"] == 3
        assert len(trace["failures"]) == 3


class TestCheckpoint:
    def _config(self):
        return DatasetConfig(num_samples=3, seed=0)

    def test_round_trip(self, ota1, ota1_placement, tech, tmp_path):
        path = tmp_path / "db.ckpt.jsonl"
        cfg = self._config()
        db = generate_dataset(ota1, ota1_placement, tech, cfg,
                              checkpoint_path=path)
        grid = RoutingGrid(ota1_placement, tech, pitch=cfg.routing_pitch)
        loaded = load_checkpoint(
            path, dataset_fingerprint(ota1, cfg, grid), grid)
        assert sorted(loaded) == [0, 1, 2]
        for index, sample in enumerate(db.samples):
            restored = loaded[index]
            assert restored.metrics == sample.metrics
            keys = db.graph.ap_keys
            np.testing.assert_array_equal(restored.guidance.as_array(keys),
                                          sample.guidance.as_array(keys))
            for net, route in sample.result.routes.items():
                assert restored.result.routes[net].cells() == route.cells()

    def test_resume_does_not_reroute_completed_samples(
            self, ota1, ota1_placement, tech, tmp_path):
        path = tmp_path / "db.ckpt.jsonl"
        cfg = self._config()
        first = generate_dataset(ota1, ota1_placement, tech, cfg,
                                 checkpoint_path=path)
        with FaultInjector() as observer:  # no plans: pure call counting
            resumed = generate_dataset(ota1, ota1_placement, tech, cfg,
                                       checkpoint_path=path, resume=True)
        assert observer.calls.get("routing", 0) == 0
        assert observer.calls.get("simulation", 0) == 0
        assert resumed.report.reused == 3
        for a, b in zip(first.samples, resumed.samples):
            assert a.metrics == b.metrics

    def test_resume_after_midway_kill_recomputes_only_missing(
            self, ota1, ota1_placement, tech, tmp_path):
        path = tmp_path / "db.ckpt.jsonl"
        cfg = self._config()
        # Simulate a mid-run kill: sample 2 fails and is not backfilled,
        # so the checkpoint holds samples 0 and 1 plus a torn final line.
        with inject_faults(FaultPlan(stage="routing", fail_indices={2})):
            generate_dataset(
                ota1, ota1_placement, tech, cfg, checkpoint_path=path,
                policy=DegradationPolicy(max_retries=0, resample_budget=0,
                                         min_valid_fraction=0.5))
        with path.open("a") as handle:
            handle.write('{"kind": "sample", "index": 2, "trunc')
        with FaultInjector() as observer:
            resumed = generate_dataset(ota1, ota1_placement, tech, cfg,
                                       checkpoint_path=path, resume=True)
        assert observer.calls["routing"] == 1  # only sample 2
        assert resumed.report.reused == 2
        assert len(resumed.samples) == 3

    def test_fingerprint_mismatch_raises(
            self, ota1, ota1_placement, tech, tmp_path):
        path = tmp_path / "db.ckpt.jsonl"
        generate_dataset(ota1, ota1_placement, tech, self._config(),
                         checkpoint_path=path)
        with pytest.raises(CheckpointError, match="different run"):
            generate_dataset(ota1, ota1_placement, tech,
                             DatasetConfig(num_samples=3, seed=99),
                             checkpoint_path=path, resume=True)

    def test_mid_file_corruption_raises(
            self, ota1, ota1_placement, tech, tmp_path):
        path = tmp_path / "db.ckpt.jsonl"
        cfg = self._config()
        generate_dataset(ota1, ota1_placement, tech, cfg,
                         checkpoint_path=path)
        lines = path.read_text().splitlines()
        lines.insert(2, "{corrupt")
        path.write_text("\n".join(lines) + "\n")
        grid = RoutingGrid(ota1_placement, tech, pitch=cfg.routing_pitch)
        with pytest.raises(CheckpointError, match="corrupt"):
            load_checkpoint(path, dataset_fingerprint(ota1, cfg, grid), grid)

    def test_missing_checkpoint_resumes_fresh(
            self, ota1, ota1_placement, tech, tmp_path):
        path = tmp_path / "absent.jsonl"
        db = generate_dataset(ota1, ota1_placement, tech, self._config(),
                              checkpoint_path=path, resume=True)
        assert db.report.reused == 0
        assert len(db.samples) == 3
        assert path.exists()


class TestPipelineObservability:
    def test_simulation_select_records_candidates(self, trained_fold):
        result = trained_fold.run()
        # n_derive=2 candidates plus the database best.
        assert len(result.candidate_foms) == 3
        assert result.winner_index == int(np.argmin(result.candidate_foms))
        assert result.winner_source in ("derived", "database")
        weights = trained_fold.config.fom_weights
        assert weights.fom(result.metrics) == pytest.approx(
            result.candidate_foms[result.winner_index])

    def test_potential_select_records_single_candidate(
            self, ota1, ota1_placement, tech, trained_fold):
        fold = AnalogFold(
            ota1, ota1_placement, tech,
            config=AnalogFoldConfig(
                dataset=trained_fold.config.dataset,
                gnn=trained_fold.config.gnn,
                training=trained_fold.config.training,
                relaxation=trained_fold.config.relaxation,
                select_by="potential",
            ),
        )
        fold.database = trained_fold.database
        fold.model = trained_fold.model
        result = fold.run()
        assert len(result.candidate_foms) == 1
        assert result.winner_index == 0
        assert result.winner_source == "derived"


class TestCliReliability:
    def test_fold_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args([
            "fold", "OTA1", "--checkpoint", "db.jsonl", "--resume",
            "--max-retries", "3", "--min-valid-fraction", "0.8"])
        assert args.checkpoint == "db.jsonl"
        assert args.resume is True
        assert args.max_retries == 3
        assert args.min_valid_fraction == 0.8

    def test_typed_errors_exit_2(self, tmp_path, capsys):
        from repro.cli import main

        place_file = tmp_path / "p.json"
        main(["place", "OTA1", "--iterations", "50",
              "--out", str(place_file)])
        capsys.readouterr()
        with inject_faults(FaultPlan(stage="routing", probability=1.0)):
            code = main(["fold", "OTA1", "--placement", str(place_file),
                         "--samples", "3", "--max-retries", "0"])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "stage=database" in err
