"""Tests for the MagicalRoute and GeniusRoute baselines."""

import numpy as np
import pytest

from repro.baselines import GeniusRoute, GeniusRouteConfig, route_magical
from repro.core import DatasetConfig, generate_dataset


@pytest.fixture(scope="module")
def small_database(ota1, ota1_placement, tech):
    return generate_dataset(
        ota1, ota1_placement, tech, DatasetConfig(num_samples=5, seed=0))


class TestMagicalRoute:
    def test_routes_successfully(self, ota1, ota1_placement, tech):
        sample, runtime = route_magical(ota1, ota1_placement, tech)
        assert sample.result.success
        assert runtime > 0

    def test_uses_neutral_guidance(self, ota1, ota1_placement, tech):
        sample, _ = route_magical(ota1, ota1_placement, tech)
        assert sample.guidance.vectors == {}  # neutral: no per-pin vectors

    def test_metrics_reasonable(self, ota1, ota1_placement, tech):
        sample, _ = route_magical(ota1, ota1_placement, tech)
        assert sample.metrics.gain_db > 10.0
        assert sample.metrics.cmrr_db > 20.0


class TestGeniusRoute:
    @pytest.fixture(scope="class")
    def genius(self, ota1, ota1_placement, tech, small_database):
        g = GeniusRoute(ota1, ota1_placement, tech,
                        config=GeniusRouteConfig(epochs=10, seed=0))
        g.fit(small_database)
        return g

    def test_rasterize_shape_and_range(self, genius, small_database):
        flat = genius.rasterize(small_database.samples[0].result)
        size = genius.config.map_size
        assert flat.shape == (size * size,)
        assert flat.min() >= 0.0 and flat.max() <= 1.0

    def test_fit_records_training_time(self, genius):
        assert genius.training_seconds > 0.0

    def test_generate_map_in_unit_range(self, genius, small_database):
        guide_map = genius.generate_map(small_database)
        assert guide_map.shape == (genius.config.map_size,) * 2
        assert (guide_map >= 0.0).all() and (guide_map <= 1.0).all()

    def test_guidance_is_isotropic(self, genius, small_database):
        """The 2D map carries no direction info: per-AP C is uniform."""
        guidance = genius.generate_guidance(small_database)
        for vec in guidance.vectors.values():
            assert vec[0] == vec[1] == vec[2]

    def test_guidance_varies_across_aps(self, genius, small_database):
        guidance = genius.generate_guidance(small_database)
        values = {float(v[0]) for v in guidance.vectors.values()}
        assert len(values) > 1, "map should differentiate regions"

    def test_run_routes_and_times(self, genius, small_database):
        sample, runtime = genius.run(small_database)
        assert sample.result.success
        assert runtime > 0

    def test_generate_before_fit_raises(self, ota1, ota1_placement, tech,
                                        small_database):
        fresh = GeniusRoute(ota1, ota1_placement, tech)
        with pytest.raises(RuntimeError):
            fresh.generate_map(small_database)

    def test_deterministic(self, ota1, ota1_placement, tech, small_database):
        maps = []
        for _ in range(2):
            g = GeniusRoute(ota1, ota1_placement, tech,
                            config=GeniusRouteConfig(epochs=5, seed=7))
            g.fit(small_database)
            maps.append(g.generate_map(small_database))
        np.testing.assert_array_equal(maps[0], maps[1])
