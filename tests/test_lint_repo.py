"""Tier-1 self-check: the invariant linter passes on the whole tree.

This is the test that turns the repo's conventions — RNG, clock,
error-taxonomy, observability-naming, numeric hygiene — into
executable invariants: it lints all of ``src/repro`` with the
committed configuration and fails on ANY non-baselined finding.  It
also keeps the baseline honest (empty, no stale entries) so new
violations can never hide behind grandfathered ones.
"""

from __future__ import annotations

import json
import pathlib

from repro.lint import load_config, run_lint
from repro.lint.output import render_text

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def _repo_result():
    config = load_config(REPO_ROOT)
    return run_lint(config=config)


class TestRepoIsLintClean:
    def test_no_findings_on_src_repro(self):
        result = _repo_result()
        assert result.files_checked > 90, (
            "linter saw suspiciously few files — path config broken?")
        assert result.clean, (
            "repro.lint found invariant violations; fix them or add an "
            "inline `# repro-lint: disable=<ID> -- <why>` with a real "
            "justification:\n" + render_text(result))

    def test_no_stale_baseline_entries(self):
        result = _repo_result()
        assert result.stale_baseline == set(), (
            "baseline entries no longer match any finding — ratchet "
            "them out with --write-baseline")


class TestBaselineStaysEmpty:
    """The committed baseline ships empty and stays that way."""

    def test_baseline_file_exists_and_is_empty(self):
        path = REPO_ROOT / "lint-baseline.json"
        assert path.exists(), "committed lint-baseline.json is missing"
        data = json.loads(path.read_text())
        assert data["version"] == 2
        assert data["entries"] == [], (
            "the baseline must stay empty: fix or inline-suppress "
            "findings instead of baselining them")

    def test_pyproject_points_at_the_committed_baseline(self):
        config = load_config(REPO_ROOT)
        assert config.baseline == "lint-baseline.json"
        assert config.paths == ("src/repro",)
        assert config.ignored() == set(), (
            "no rule may be switched off repo-wide; use inline "
            "suppressions with justifications instead")


class TestSuppressionsCarryJustifications:
    """Every inline suppression states why, after a `--` separator."""

    def test_all_directives_have_reasons(self):
        import io
        import tokenize

        from repro.lint.suppress import _DIRECTIVE

        missing = []
        for path in sorted((REPO_ROOT / "src" / "repro").rglob("*.py")):
            source = path.read_text(encoding="utf-8")
            for token in tokenize.generate_tokens(
                    io.StringIO(source).readline):
                if token.type != tokenize.COMMENT:
                    continue
                if _DIRECTIVE.search(token.string) and "--" not in token.string:
                    missing.append(
                        f"{path.relative_to(REPO_ROOT)}:{token.start[0]}")
        assert missing == [], (
            "suppressions without a `-- <why>` justification: "
            f"{missing}")
