"""Equivalence and unit tests for the rebuilt A* engines.

The rebuilt router (PR 7) must be *bit-identical* to the seed router:
same paths, same expansion counts, for every engine, guidance vector,
and worker count.  These tests pin that contract — the bucket queue in
isolation, engine-vs-reference equivalence under hypothesis-generated
obstacles and guidance, quantization detection, speculative
net-parallel identity, and the new observability surface.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.obs import RunContext
from repro.obs.metrics import MetricsRegistry
from repro.reliability.errors import RoutingError
from repro.router import (
    BLOCKED,
    AStarRouter,
    BucketQueue,
    CostField,
    CostParams,
    IterativeRouter,
    RouterConfig,
    RoutingGrid,
    build_add_core,
)
from repro.router.astar import _STAMP_MAX
from repro.router.guidance import RoutingGuidance, random_guidance
from repro.router.pqueue import BucketQueue as PQBucketQueue


def _free_cell(grid, layer=1, start=(0, 0)):
    for ix in range(start[0], grid.nx):
        for iy in range(start[1], grid.ny):
            if grid.occupancy[ix, iy, layer] == -1:
                return (ix, iy, layer)
    raise AssertionError("no free cell found")


class TestBucketQueue:
    def test_pops_in_priority_order(self):
        q = BucketQueue(modulus=100)
        q.push(5, 2, 11)
        q.push(3, 1, 22)
        q.push(5, 1, 33)
        assert q.pop_batch() == (3, 1, [22])
        assert q.pop_batch() == (5, 1, [33])
        assert q.pop_batch() == (5, 2, [11])

    def test_g_breaks_f_ties(self):
        q = BucketQueue(modulus=10)
        q.push(4, 9, 1)
        q.push(4, 0, 2)
        f, g, nodes = q.pop_batch()
        assert (f, g, nodes) == (4, 0, [2])

    def test_batch_groups_equal_keys_in_push_order(self):
        q = BucketQueue(modulus=64)
        for node in (7, 3, 9):
            q.push(2, 5, node)
        assert q.pop_batch() == (2, 5, [7, 3, 9])

    def test_len_and_bool(self):
        q = BucketQueue(modulus=8)
        assert not q and len(q) == 0
        q.push(1, 0, 0)
        q.push(1, 0, 1)
        q.push(2, 1, 2)
        assert q and len(q) == 3
        q.pop_batch()
        assert len(q) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            BucketQueue(modulus=8).pop_batch()

    def test_invalid_modulus_rejected(self):
        with pytest.raises(ValueError, match="modulus"):
            BucketQueue(modulus=0)

    def test_reexported_from_package(self):
        assert BucketQueue is PQBucketQueue


class TestInputValidation:
    """Satellite (a): poisoned inputs raise RoutingError, shapes ValueError."""

    def _route(self, grid, **kwargs):
        router = AStarRouter(grid)
        net = grid.net_names[0]
        src = _free_cell(grid, layer=1)
        dst = _free_cell(grid, layer=1, start=(src[0] + 2, 0))
        return router.route_connection(net, {src}, {dst}, **kwargs)

    @pytest.mark.parametrize("bad", [
        np.array([np.nan, 1.0, 1.0]),
        np.array([1.0, np.inf, 1.0]),
        np.array([1.0, 1.0, -0.5]),
    ])
    def test_poisoned_guidance_raises_routing_error(self, fresh_grid, bad):
        with pytest.raises(RoutingError):
            self._route(fresh_grid, guidance_vec=bad)

    def test_guidance_shape_stays_value_error(self, fresh_grid):
        with pytest.raises(ValueError, match="shape"):
            self._route(fresh_grid, guidance_vec=np.array([1.0, 1.0]))

    def test_poisoned_layer_multipliers_raise_routing_error(self, fresh_grid):
        nl = fresh_grid.num_layers
        for bad in (np.full(nl, np.nan), -np.ones(nl)):
            with pytest.raises(RoutingError):
                self._route(fresh_grid, layer_multipliers=bad)

    def test_layer_multiplier_length_stays_value_error(self, fresh_grid):
        with pytest.raises(ValueError, match="entries"):
            self._route(fresh_grid,
                        layer_multipliers=np.ones(fresh_grid.num_layers + 1))

    def test_routing_error_reaches_reference_engine_too(self, fresh_grid):
        router = AStarRouter(fresh_grid, engine="reference")
        net = fresh_grid.net_names[0]
        src = _free_cell(fresh_grid, layer=1)
        with pytest.raises(RoutingError):
            router.route_connection(net, {src}, {src},
                                    guidance_vec=np.array([np.nan, 1, 1]))

    def test_unknown_engine_rejected(self, fresh_grid):
        with pytest.raises(ValueError, match="engine"):
            AStarRouter(fresh_grid, engine="warp")


def _route_one(grid, engine, src, dst, guid, soft):
    router = AStarRouter(grid, engine=engine)
    path = router.route_connection(grid.net_names[0], {src}, {dst},
                                   guidance_vec=guid, soft=soft)
    return path, router.expansions_total


class TestEngineEquivalence:
    """Every engine returns the reference router's exact path and
    expansion count, under randomized obstacles, guidance, and mode."""

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(
        seed=st.integers(0, 2**32 - 1),
        n_blocks=st.integers(0, 60),
        gx=st.sampled_from([0.25, 0.5, 1.0, 1.5, 2.0, 0.3, 1.1]),
        gy=st.sampled_from([0.25, 1.0, 2.0, 0.7]),
        gz=st.sampled_from([0.5, 1.0, 2.0, 1.3]),
        soft=st.booleans(),
    )
    def test_engines_match_reference(self, fresh_grid, seed, n_blocks,
                                     gx, gy, gz, soft):
        grid = fresh_grid
        saved = grid.occupancy.copy()
        try:
            rng = np.random.default_rng(seed)
            free = np.argwhere(grid.occupancy == -1)
            picks = rng.choice(len(free), size=min(n_blocks, len(free) - 2),
                               replace=False)
            for idx in picks:
                x, y, layer = free[idx]
                grid.occupancy[x, y, layer] = BLOCKED
            still_free = np.argwhere(grid.occupancy == -1)
            s_idx, t_idx = rng.choice(len(still_free), size=2, replace=False)
            src = tuple(int(v) for v in still_free[s_idx])
            dst = tuple(int(v) for v in still_free[t_idx])
            guid = np.array([gx, gy, gz])

            ref_path, ref_exp = _route_one(grid, "reference", src, dst,
                                           guid, soft)
            for engine in ("auto", "scalar", "bucketed"):
                path, exp = _route_one(grid, engine, src, dst, guid, soft)
                assert path == ref_path, engine
                assert exp == ref_exp, engine
        finally:
            grid.occupancy[:] = saved

    def test_generation_wraparound_is_harmless(self, fresh_grid):
        """uint32 stamp wraparound resets stamps instead of aliasing."""
        grid = fresh_grid
        net = grid.net_names[0]
        src = _free_cell(grid, layer=1)
        dst = _free_cell(grid, layer=1, start=(src[0] + 3, 0))
        expected = AStarRouter(grid).route_connection(net, {src}, {dst})
        assert expected is not None

        for engine, state_getter in (
            ("auto", AStarRouter._get_list_state),
            ("reference", AStarRouter._get_ref_state),
        ):
            router = AStarRouter(grid, engine=engine)
            assert router.route_connection(net, {src}, {dst}) == expected
            state = state_getter(router)
            state.generation = _STAMP_MAX
            # Next search wraps: stamps reset to 0, generation restarts at
            # 1, and the stale stamps from the first search cannot alias.
            assert router.route_connection(net, {src}, {dst}) == expected
            assert state.generation == 1


def _path_cost(field: CostField, path) -> float:
    """Accumulate a path's g the way every engine does."""
    cost = 0.0
    for prev, cur in zip(path, path[1:]):
        if prev[2] != cur[2]:
            cost += field.via
        elif prev[1] != cur[1]:
            cost += field.planar[cur[2], 1]
        else:
            cost += field.planar[cur[2], 0]
        cost += float(field.add[field.encode(cur)])
    return cost


class TestLayerAwareHeuristic:
    """Satellite (b): the |l_t - l| * via_cost heuristic term is
    admissible — fewer expansions, same optimal path cost."""

    def test_fewer_expansions_same_cost(self, fresh_grid):
        grid = fresh_grid
        net = grid.net_names[0]
        src = _free_cell(grid, layer=0)
        dst = _free_cell(grid, layer=grid.num_layers - 1,
                         start=(src[0] + 3, 0))

        plain = AStarRouter(grid, CostParams())
        aware = AStarRouter(grid, CostParams(layer_aware_h=True))
        path_plain = plain.route_connection(net, {src}, {dst})
        path_aware = aware.route_connection(net, {src}, {dst})
        assert path_plain is not None and path_aware is not None
        assert path_aware[0] == src and path_aware[-1] == dst

        field = CostField(
            grid, net=net, guid=(1.0, 1.0, 1.0), layer_multipliers=None,
            soft=False, targets={dst}, wire_cost=1.0, wrong_way_penalty=2.5,
            via_cost=4.0, present_penalty=25.0, history_weight=1.0)
        assert _path_cost(field, path_aware) == pytest.approx(
            _path_cost(field, path_plain))
        assert aware.expansions_total <= plain.expansions_total

    def test_layer_aware_matches_scalar_engine(self, fresh_grid):
        """Both engines agree under the tighter heuristic too."""
        grid = fresh_grid
        net = grid.net_names[0]
        src = _free_cell(grid, layer=0)
        dst = _free_cell(grid, layer=grid.num_layers - 1,
                         start=(src[0] + 3, 0))
        params = CostParams(layer_aware_h=True)
        a = AStarRouter(grid, params, engine="bucketed")
        b = AStarRouter(grid, params, engine="scalar")
        assert (a.route_connection(net, {src}, {dst})
                == b.route_connection(net, {src}, {dst}))
        assert a.expansions_total == b.expansions_total


class TestQuantizationDetection:
    def _field(self, grid, *, guid=(1.0, 1.0, 1.0), via_cost=4.0,
               wire_cost=1.0):
        net = grid.net_names[0]
        dst = _free_cell(grid, layer=1)
        return CostField(
            grid, net=net, guid=guid, layer_multipliers=None, soft=False,
            targets={dst}, wire_cost=wire_cost, wrong_way_penalty=2.5,
            via_cost=via_cost, present_penalty=25.0, history_weight=1.0)

    def test_dyadic_costs_quantize(self, fresh_grid):
        q = self._field(fresh_grid, guid=(1.5, 0.25, 2.0)).quantize()
        assert q is not None
        assert q.scale >= 1 and q.f_bound < 2**52
        assert q.impassable == q.f_bound + 1

    def test_non_dyadic_guidance_falls_back(self, fresh_grid):
        field = self._field(fresh_grid, guid=(1 / 3, 1.0, 1.0))
        assert field.quantize() is None
        # The no-quant verdict is cached, not re-probed.
        assert field.quantize() is None

    def test_zero_step_cost_falls_back(self, fresh_grid):
        """A zero-cost step would break the monotone-bucket invariant."""
        assert self._field(fresh_grid, via_cost=0.0).quantize() is None
        assert self._field(fresh_grid, wire_cost=0.0,
                           guid=(0.0, 1.0, 1.0)).quantize() is None

    def test_quant_core_survives_retarget(self, fresh_grid):
        field = self._field(fresh_grid)
        first = field.quantize()
        other = _free_cell(fresh_grid, layer=2, start=(3, 3))
        field.retarget({other})
        second = field.quantize()
        assert first is not None and second is not None
        assert second.scale == first.scale
        assert second.add is first.add  # target-independent parts reused


class TestCostFieldReuse:
    def test_field_cache_reused_across_targets(self, fresh_grid):
        grid = fresh_grid
        net = grid.net_names[0]
        core = build_add_core(grid, net=net, soft=False,
                              present_penalty=25.0, history_weight=1.0)
        src = _free_cell(grid, layer=1)
        dst1 = _free_cell(grid, layer=1, start=(src[0] + 2, 0))
        dst2 = _free_cell(grid, layer=1, start=(src[0] + 4, 1))

        router = AStarRouter(grid)
        p1 = router.route_connection(net, {src}, {dst1}, add_core=core)
        p2 = router.route_connection(net, {src}, {dst2}, add_core=core)
        assert len(core.field_cache) == 1  # same (guid, mult, mode) key

        fresh = AStarRouter(grid)
        assert p1 == fresh.route_connection(net, {src}, {dst1})
        assert p2 == fresh.route_connection(net, {src}, {dst2})

    def test_distinct_guidance_gets_distinct_fields(self, fresh_grid):
        grid = fresh_grid
        net = grid.net_names[0]
        core = build_add_core(grid, net=net, soft=False,
                              present_penalty=25.0, history_weight=1.0)
        src = _free_cell(grid, layer=1)
        dst = _free_cell(grid, layer=1, start=(src[0] + 2, 0))
        router = AStarRouter(grid)
        router.route_connection(net, {src}, {dst}, add_core=core)
        router.route_connection(net, {src}, {dst}, add_core=core,
                                guidance_vec=np.array([2.0, 1.0, 1.0]))
        assert len(core.field_cache) == 2


class TestNetParallelIdentity:
    """Speculative net-parallel routing is bit-identical to serial."""

    @pytest.mark.parametrize("workers", [1, 2])
    def test_workers_match_serial(self, ota1_placement, tech, workers):
        def run(n_workers):
            grid = RoutingGrid(ota1_placement, tech)
            router = IterativeRouter(
                grid, RoutingGuidance(),
                RouterConfig(workers=n_workers))
            result = router.route_all()
            paths = {name: tuple(tuple(p) for p in route.paths)
                     for name, route in result.routes.items()}
            return paths, result.failed_nets, router.astar.expansions_total

        serial = run(0)
        assert run(workers) == serial

    def test_workers_match_serial_with_guidance(self, ota1_placement, tech):
        rng = np.random.default_rng(7)
        grid0 = RoutingGrid(ota1_placement, tech)
        keys = [ap.key for aps in grid0.access_points.values() for ap in aps]
        guidance = random_guidance(keys, rng)

        def run(n_workers):
            grid = RoutingGrid(ota1_placement, tech)
            router = IterativeRouter(grid, guidance,
                                     RouterConfig(workers=n_workers))
            result = router.route_all()
            return {name: tuple(tuple(p) for p in route.paths)
                    for name, route in result.routes.items()}

        assert run(2) == run(0)

    def test_worker_count_validated(self):
        from repro.perf.parallel import NetPool
        with pytest.raises(ValueError, match="workers"):
            NetPool(None, None, None, workers=0)


class TestRouterObservability:
    """Satellite (f): expansion counters and frontier-batch histogram."""

    def test_expansion_counters_by_mode(self, ota1_placement, tech):
        obs = RunContext.recording()
        grid = RoutingGrid(ota1_placement, tech)
        router = IterativeRouter(grid, obs=obs)
        router.route_all()
        counters = obs.metrics.counter_values()
        by_mode = {name: v for name, v in counters.items()
                   if name.startswith("route_expansions_total")}
        assert by_mode  # neutral guidance -> at least the bucketed mode
        assert sum(by_mode.values()) == router.astar.expansions_total
        for mode, count in router.astar.expansions_by_mode.items():
            assert by_mode[f"route_expansions_total{{mode={mode}}}"] == count

    def test_frontier_batch_histogram(self, ota1_placement, tech):
        obs = RunContext.recording()
        grid = RoutingGrid(ota1_placement, tech)
        router = IterativeRouter(grid, obs=obs)
        router.route_all()
        hist = obs.metrics.to_dict()["histograms"]["route_frontier_batch"]
        stats = router.astar.batch_stats
        assert hist["count"] == stats["count"] > 0
        assert hist["sum"] == pytest.approx(stats["sum"])
        assert hist["min"] == stats["min"] >= 1
        assert hist["max"] == stats["max"]

    def test_speculation_outcome_counters(self, ota1_placement, tech):
        obs = RunContext.recording()
        grid = RoutingGrid(ota1_placement, tech)
        router = IterativeRouter(grid, obs=obs,
                                 config=RouterConfig(workers=2))
        router.route_all()
        spec = {name: v for name, v
                in obs.metrics.counter_values().items()
                if name.startswith("route_speculation_total")}
        allowed = {"accepted", "rejected", "bypassed", "error"}
        assert spec and sum(spec.values()) > 0
        for name in spec:
            outcome = name.split("outcome=")[1].rstrip("}")
            assert outcome in allowed

    def test_histogram_merge_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        h.observe(4.0)
        h.merge_summary(count=3, total=9.0, min_value=1.0, max_value=6.0)
        d = reg.to_dict()["histograms"]["h"]
        assert d["count"] == 4
        assert d["sum"] == pytest.approx(13.0)
        assert d["min"] == 1.0 and d["max"] == 6.0

    def test_merge_summary_ignores_empty_window(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        h.merge_summary(count=0, total=0.0,
                        min_value=float("inf"), max_value=float("-inf"))
        assert reg.to_dict()["histograms"]["h"] == {"count": 0, "sum": 0.0}

    def test_batch_window_drains(self, fresh_grid):
        router = AStarRouter(fresh_grid)
        net = fresh_grid.net_names[0]
        src = _free_cell(fresh_grid, layer=1)
        dst = _free_cell(fresh_grid, layer=1, start=(src[0] + 3, 0))
        router.route_connection(net, {src}, {dst})
        window = router.take_batch_window()
        assert window["count"] > 0
        assert router.take_batch_window()["count"] == 0
        # Cumulative stats survive the drain.
        assert router.batch_stats["count"] == window["count"]


class _DoneFuture:
    def __init__(self, outcome):
        self._outcome = outcome

    def done(self):
        return True

    def result(self):
        return self._outcome


class _PendingFuture:
    def __init__(self):
        self.cancelled = False

    def done(self):
        return False

    def cancel(self):
        self.cancelled = True


class _FailingFuture:
    def done(self):
        return True

    def result(self):
        raise RuntimeError("worker died")


class TestSpeculativeMerge:
    """In-process replay of the worker/parent speculation protocol."""

    @pytest.fixture()
    def first_net(self, ota1_placement, tech):
        grid = RoutingGrid(ota1_placement, tech)
        router = IterativeRouter(grid)
        for name in router._net_order():
            if len(grid.access_points[name]) >= 2:
                return name
        raise AssertionError("no routable net")

    def _outcome(self, ota1_placement, tech, net):
        worker = IterativeRouter(RoutingGrid(ota1_placement, tech))
        occ = worker.grid.occupancy.copy()
        hist = worker.grid.history.copy()
        return worker, worker.speculate_net(net, occ, hist)

    def test_speculate_matches_serial_route(self, ota1_placement, tech,
                                            first_net):
        worker, outcome = self._outcome(ota1_placement, tech, first_net)
        serial = IterativeRouter(RoutingGrid(ota1_placement, tech))
        route, conflicts = serial._route_net(first_net)
        assert outcome.route.paths == route.paths
        assert outcome.conflicts == conflicts
        assert outcome.reads.size > 0
        assert list(outcome.reads) == sorted(outcome.reads)
        # Sources/targets are part of the read set (conflict-scan reads).
        packed = serial._pack_cells([outcome.route.paths[0][0]])
        assert packed[0] in outcome.reads

    def test_merge_accepts_clean_outcome(self, ota1_placement, tech,
                                         first_net):
        worker, outcome = self._outcome(ota1_placement, tech, first_net)
        obs = RunContext.recording()
        parent = IterativeRouter(RoutingGrid(ota1_placement, tech), obs=obs)
        dirty = set()
        route, _ = parent._merge_net(
            first_net, {first_net: _DoneFuture(outcome)}, dirty, True)
        assert route.paths == outcome.route.paths
        assert np.array_equal(parent.grid.history, worker.grid.history)
        assert parent.astar.expansions_total == sum(
            outcome.expansions.values())
        counters = obs.metrics.counter_values()
        assert counters["route_speculation_total{outcome=accepted}"] == 1

    def test_merge_rejects_dirty_reads_and_falls_back(
            self, ota1_placement, tech, first_net):
        _, outcome = self._outcome(ota1_placement, tech, first_net)
        obs = RunContext.recording()
        parent = IterativeRouter(RoutingGrid(ota1_placement, tech), obs=obs)
        dirty = {outcome.route.paths[0][0]}  # a source cell: always read
        route, _ = parent._merge_net(
            first_net, {first_net: _DoneFuture(outcome)}, dirty, True)
        assert route.paths == outcome.route.paths  # fallback is identical
        counters = obs.metrics.counter_values()
        assert counters["route_speculation_total{outcome=rejected}"] == 1

    def test_merge_bypasses_pending_future(self, ota1_placement, tech,
                                           first_net):
        obs = RunContext.recording()
        parent = IterativeRouter(RoutingGrid(ota1_placement, tech), obs=obs)
        pending = _PendingFuture()
        route, _ = parent._merge_net(
            first_net, {first_net: pending}, set(), False)
        assert pending.cancelled
        assert route is not None
        counters = obs.metrics.counter_values()
        assert counters["route_speculation_total{outcome=bypassed}"] == 1

    def test_merge_survives_worker_error(self, ota1_placement, tech,
                                         first_net):
        obs = RunContext.recording()
        parent = IterativeRouter(RoutingGrid(ota1_placement, tech), obs=obs)
        route, _ = parent._merge_net(
            first_net, {first_net: _FailingFuture()}, set(), False)
        assert route is not None
        counters = obs.metrics.counter_values()
        assert counters["route_speculation_total{outcome=error}"] == 1

    def test_reads_clean_detects_overlap(self, ota1_placement, tech):
        router = IterativeRouter(RoutingGrid(ota1_placement, tech))
        reads = router._pack_cells([(1, 2, 3), (0, 0, 0), (4, 1, 2)])
        reads.sort()
        assert router._reads_clean(reads, set())
        assert router._reads_clean(np.empty(0, dtype=np.int64), {(1, 2, 3)})
        assert router._reads_clean(reads, {(9, 9, 1)})
        assert not router._reads_clean(reads, {(1, 2, 3)})
        assert not router._reads_clean(reads, {(9, 9, 1), (0, 0, 0)})
