"""Tests for probabilistic global routing / congestion estimation."""

import numpy as np
import pytest

from repro.router import IterativeRouter, RoutingGrid
from repro.router.global_route import (
    GlobalRouteConfig,
    congestion_map,
    hotspots,
    normalized_congestion,
    seed_history_from_congestion,
)


class TestCongestionMap:
    def test_shape(self, ota1_grid):
        demand = congestion_map(ota1_grid)
        assert demand.shape == (ota1_grid.nx, ota1_grid.ny)

    def test_nonnegative(self, ota1_grid):
        assert (congestion_map(ota1_grid) >= 0).all()

    def test_demand_inside_net_bboxes(self, ota1_grid):
        demand = congestion_map(ota1_grid)
        # Every net bbox cell with hpwl > 0 gets demand; the union of
        # bboxes must carry all of the mass.
        mask = np.zeros_like(demand, dtype=bool)
        for aps in ota1_grid.access_points.values():
            if len(aps) < 2:
                continue
            xs = [ap.cell[0] for ap in aps]
            ys = [ap.cell[1] for ap in aps]
            mask[min(xs):max(xs) + 1, min(ys):max(ys) + 1] = True
        assert demand[~mask].sum() == 0.0

    def test_demand_weight_scales_linearly(self, ota1_grid):
        base = congestion_map(ota1_grid, GlobalRouteConfig(demand_weight=1.0))
        double = congestion_map(ota1_grid, GlobalRouteConfig(demand_weight=2.0))
        np.testing.assert_allclose(double, 2.0 * base)

    def test_normalized_in_unit_range(self, ota1_grid):
        normalized = normalized_congestion(ota1_grid)
        assert normalized.max() == pytest.approx(1.0)
        assert normalized.min() >= 0.0


class TestHotspots:
    def test_hotspots_are_peak_cells(self, ota1_grid):
        demand = congestion_map(ota1_grid)
        spots = hotspots(ota1_grid)
        assert spots
        peak = demand.max()
        assert any(demand[x, y] == peak for x, y in spots)

    def test_percentile_controls_count(self, ota1_grid):
        many = hotspots(ota1_grid, GlobalRouteConfig(hotspot_percentile=50.0))
        few = hotspots(ota1_grid, GlobalRouteConfig(hotspot_percentile=99.0))
        assert len(few) <= len(many)


class TestHistorySeeding:
    def test_seeds_all_layers(self, fresh_grid):
        assert fresh_grid.history.max() == 0.0
        normalized = seed_history_from_congestion(fresh_grid)
        assert fresh_grid.history.max() > 0
        for layer in range(fresh_grid.num_layers):
            np.testing.assert_allclose(
                fresh_grid.history[:, :, layer],
                GlobalRouteConfig().history_scale * normalized)

    def test_routing_still_succeeds_with_seeded_history(
        self, ota1_placement, tech
    ):
        grid = RoutingGrid(ota1_placement, tech)
        seed_history_from_congestion(grid)
        result = IterativeRouter(grid).route_all()
        assert result.success
        assert result.overlaps() == {}

    def test_seeded_routing_diverges_from_unseeded(self, ota1_placement, tech):
        plain_grid = RoutingGrid(ota1_placement, tech)
        plain = IterativeRouter(plain_grid).route_all()
        seeded_grid = RoutingGrid(ota1_placement, tech)
        seed_history_from_congestion(
            seeded_grid, GlobalRouteConfig(history_scale=20.0))
        seeded = IterativeRouter(seeded_grid).route_all()
        plain_cells = {n: r.cells() for n, r in plain.routes.items()}
        seeded_cells = {n: r.cells() for n, r in seeded.routes.items()}
        assert plain_cells != seeded_cells
