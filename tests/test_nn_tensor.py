"""Gradient correctness tests for the autograd framework.

Every op is checked against central finite differences, including via
hypothesis-generated shapes/values for the core arithmetic.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import Tensor, as_tensor, concat, segment_sum, stack, where_positive


def numgrad(f, x, eps=1e-6):
    """Central finite-difference gradient of scalar-valued f at x."""
    g = np.zeros_like(x, dtype=float)
    for idx in np.ndindex(x.shape):
        xp, xm = x.copy(), x.copy()
        xp[idx] += eps
        xm[idx] -= eps
        g[idx] = (f(xp) - f(xm)) / (2 * eps)
    return g


def check_grad(op, x0, rtol=1e-5, atol=1e-7):
    """Compare autograd against finite differences for y = sum(op(x))."""
    x = Tensor(x0, requires_grad=True)
    op(x).sum().backward()
    expected = numgrad(lambda v: op(Tensor(v)).sum().item(), x0)
    np.testing.assert_allclose(x.grad, expected, rtol=rtol, atol=atol)


ARRS = st.integers(1, 4).flatmap(
    lambda n: st.integers(1, 4).map(lambda m: (n, m))
)


class TestElementwiseGrads:
    @pytest.mark.parametrize("op", [
        lambda t: t * 3.0 + 1.0,
        lambda t: t * t,
        lambda t: t / 2.5,
        lambda t: 1.0 / (t + 3.0),
        lambda t: -t,
        lambda t: t ** 3,
        lambda t: t.exp(),
        lambda t: (t + 3.0).log(),
        lambda t: (t + 3.0).sqrt(),
        lambda t: t.tanh(),
        lambda t: t.sigmoid(),
        lambda t: t.softplus(),
    ])
    def test_op_gradient(self, op):
        rng = np.random.default_rng(0)
        check_grad(op, rng.uniform(-1.5, 1.5, size=(3, 4)))

    def test_relu_gradient_away_from_kink(self):
        x0 = np.array([[-2.0, -0.5], [0.5, 2.0]])
        check_grad(lambda t: t.relu(), x0)

    def test_broadcasting_add(self):
        a0 = np.random.default_rng(1).normal(size=(3, 4))
        b0 = np.random.default_rng(2).normal(size=(4,))
        a = Tensor(a0, requires_grad=True)
        b = Tensor(b0, requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 4)))
        np.testing.assert_allclose(b.grad, np.full(4, 3.0))

    def test_broadcasting_mul_grad(self):
        rng = np.random.default_rng(3)
        a0, b0 = rng.normal(size=(3, 4)), rng.normal(size=(1, 4))
        a = Tensor(a0, requires_grad=True)
        b = Tensor(b0, requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, np.broadcast_to(b0, (3, 4)))
        np.testing.assert_allclose(b.grad, a0.sum(axis=0, keepdims=True))

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(-2, 2), min_size=2, max_size=8))
    def test_chained_ops_property(self, values):
        x0 = np.array(values)
        check_grad(lambda t: (t * t + t.sigmoid()).tanh(), x0, rtol=1e-4)


class TestMatmulGrads:
    def test_2d_2d(self):
        rng = np.random.default_rng(4)
        a0, b0 = rng.normal(size=(3, 4)), rng.normal(size=(4, 2))
        a = Tensor(a0, requires_grad=True)
        b = Tensor(b0, requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, numgrad(
            lambda v: (Tensor(v) @ Tensor(b0)).sum().item(), a0), rtol=1e-5)
        np.testing.assert_allclose(b.grad, numgrad(
            lambda v: (Tensor(a0) @ Tensor(v)).sum().item(), b0), rtol=1e-5)

    def test_1d_2d(self):
        rng = np.random.default_rng(5)
        a0, b0 = rng.normal(size=4), rng.normal(size=(4, 3))
        a = Tensor(a0, requires_grad=True)
        (a @ Tensor(b0)).sum().backward()
        np.testing.assert_allclose(a.grad, b0.sum(axis=1))

    def test_2d_1d(self):
        rng = np.random.default_rng(6)
        a0, b0 = rng.normal(size=(3, 4)), rng.normal(size=4)
        b = Tensor(b0, requires_grad=True)
        (Tensor(a0) @ b).sum().backward()
        np.testing.assert_allclose(b.grad, a0.sum(axis=0))

    def test_1d_1d(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        (a @ Tensor(np.array([3.0, 4.0]))).backward()
        np.testing.assert_allclose(a.grad, [3.0, 4.0])

    def test_3d_rejected(self):
        with pytest.raises(ValueError):
            Tensor(np.zeros((2, 2, 2))) @ Tensor(np.zeros((2, 2)))


class TestAffine:
    """The fused ``x @ W + b`` op must be bit-identical to the chain."""

    def test_matches_chain_bitwise_2d(self):
        rng = np.random.default_rng(7)
        x0, w0, b0 = (rng.normal(size=(5, 4)), rng.normal(size=(4, 3)),
                      rng.normal(size=3))
        fused = Tensor(x0).affine(Tensor(w0), Tensor(b0))
        chain = Tensor(x0) @ Tensor(w0) + Tensor(b0)
        assert np.array_equal(fused.data, chain.data)

    def test_matches_chain_bitwise_1d(self):
        rng = np.random.default_rng(8)
        x0, w0, b0 = (rng.normal(size=4), rng.normal(size=(4, 3)),
                      rng.normal(size=3))
        fused = Tensor(x0).affine(Tensor(w0), Tensor(b0))
        chain = Tensor(x0) @ Tensor(w0) + Tensor(b0)
        assert np.array_equal(fused.data, chain.data)

    def test_grads_match_chain(self):
        rng = np.random.default_rng(9)
        x0, w0, b0 = (rng.normal(size=(5, 4)), rng.normal(size=(4, 3)),
                      rng.normal(size=3))

        def run(op):
            x = Tensor(x0, requires_grad=True)
            w = Tensor(w0, requires_grad=True)
            b = Tensor(b0, requires_grad=True)
            (op(x, w, b) * op(x, w, b)).sum().backward()
            return x.grad, w.grad, b.grad

        fused = run(lambda x, w, b: x.affine(w, b))
        chain = run(lambda x, w, b: x @ w + b)
        for got, want in zip(fused, chain):
            assert np.array_equal(got, want)

    def test_3d_input_rejected(self):
        with pytest.raises(ValueError):
            Tensor(np.zeros((2, 2, 2))).affine(
                Tensor(np.zeros((2, 2))), Tensor(np.zeros(2)))


class TestReductionsAndShapes:
    def test_sum_axis_grad(self):
        x0 = np.random.default_rng(7).normal(size=(3, 4))
        check_grad(lambda t: t.sum(axis=0).tanh(), x0)

    def test_mean_grad(self):
        x0 = np.random.default_rng(8).normal(size=(5,))
        x = Tensor(x0, requires_grad=True)
        x.mean().backward()
        np.testing.assert_allclose(x.grad, np.full(5, 0.2))

    def test_reshape_grad(self):
        x0 = np.random.default_rng(9).normal(size=(2, 6))
        check_grad(lambda t: (t.reshape(3, 4) ** 2), x0)

    def test_transpose_grad(self):
        x0 = np.random.default_rng(10).normal(size=(2, 3))
        check_grad(lambda t: t.T * 2.0, x0)

    def test_getitem_grad_accumulates_repeats(self):
        x = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        x.gather_rows(np.array([0, 0, 2])).sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 0.0, 1.0])


class TestFunctional:
    def test_concat_grad(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        (concat([a, b], axis=1) * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 2), 2.0))
        np.testing.assert_allclose(b.grad, np.full((2, 3), 2.0))

    def test_stack_grad(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        stack([a, b], axis=0).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))

    def test_segment_sum_values(self):
        vals = Tensor(np.arange(6.0).reshape(3, 2))
        out = segment_sum(vals, np.array([1, 0, 1]), 2)
        np.testing.assert_allclose(out.data, [[2.0, 3.0], [4.0, 6.0]])

    def test_segment_sum_grad(self):
        vals = Tensor(np.arange(6.0).reshape(3, 2), requires_grad=True)
        (segment_sum(vals, np.array([1, 0, 1]), 2) *
         Tensor(np.array([[1.0, 2.0], [3.0, 4.0]]))).sum().backward()
        np.testing.assert_allclose(vals.grad, [[3, 4], [1, 2], [3, 4]])

    def test_segment_sum_validates_ids(self):
        with pytest.raises(ValueError):
            segment_sum(Tensor(np.ones((2, 2))), np.array([0, 5]), 2)
        with pytest.raises(ValueError):
            segment_sum(Tensor(np.ones((2, 2))), np.array([0]), 2)

    def test_where_positive(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([10.0, 20.0]), requires_grad=True)
        out = where_positive(np.array([1.0, -1.0]), a, b)
        np.testing.assert_allclose(out.data, [1.0, 20.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0])


class TestTapeMechanics:
    def test_grad_accumulates_across_uses(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3.0 + x * 4.0
        y.backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_detach_stops_gradient(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x.detach() * 5.0
        assert not y.requires_grad

    def test_backward_without_grad_raises(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(2)).backward()

    def test_zero_grad(self):
        x = Tensor(np.ones(2), requires_grad=True)
        (x * 2.0).sum().backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph(self):
        """x used through two paths that rejoin: grads sum correctly."""
        x0 = np.array([0.7, -0.3])
        check_grad(lambda t: (t.sigmoid() * t.tanh()), x0)

    def test_as_tensor_passthrough(self):
        t = Tensor(np.ones(2))
        assert as_tensor(t) is t
        assert isinstance(as_tensor([1.0, 2.0]), Tensor)
