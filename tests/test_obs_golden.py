"""Golden-file regression tests for on-disk record formats.

Locks the *shape* (recursive type skeleton, see :func:`schema_of`) of:

* checkpoint JSONL records (header + sample lines),
* the observability trace JSONL records (header + span lines),
* the run manifest.

A schema change fails with a readable unified diff against the fixture
under ``tests/golden/``.  To accept an intentional format change, rerun
with ``REPRO_UPDATE_GOLDEN=1`` and commit the regenerated fixtures::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_obs_golden.py
"""

from __future__ import annotations

import difflib
import json
import os
from pathlib import Path

import pytest

from repro.core import DatasetConfig, generate_dataset
from repro.obs import RunContext, load_trace

GOLDEN_DIR = Path(__file__).parent / "golden"

UPDATE = bool(os.environ.get("REPRO_UPDATE_GOLDEN"))


def schema_of(value):
    """Recursive type skeleton of a JSON value.

    Dict keys are kept verbatim (they are part of the format); lists of
    uniformly shaped elements collapse to a single-element skeleton so
    fixtures stay readable.
    """
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "str"
    if value is None:
        return "null"
    if isinstance(value, list):
        shapes = [schema_of(v) for v in value]
        uniform = all(s == shapes[0] for s in shapes)
        return shapes[:1] if uniform else shapes
    if isinstance(value, dict):
        return {key: schema_of(value[key]) for key in sorted(value)}
    return type(value).__name__  # pragma: no cover - no other JSON types


def check_golden(name: str, schema) -> None:
    """Compare ``schema`` against the committed fixture (or regenerate)."""
    path = GOLDEN_DIR / name
    rendered = json.dumps(schema, indent=2, sort_keys=True) + "\n"
    if UPDATE:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(rendered, encoding="utf-8")
    if not path.exists():
        pytest.fail(
            f"golden fixture {path} missing; run with REPRO_UPDATE_GOLDEN=1 "
            f"to create it")
    expected = path.read_text(encoding="utf-8")
    if rendered != expected:
        diff = "".join(difflib.unified_diff(
            expected.splitlines(keepends=True),
            rendered.splitlines(keepends=True),
            fromfile=f"golden/{name} (committed)",
            tofile=f"golden/{name} (current code)",
        ))
        pytest.fail(
            f"schema of {name.removesuffix('.json')} drifted from the "
            f"golden fixture.\nIf the change is intentional, regenerate "
            f"with REPRO_UPDATE_GOLDEN=1 and commit the fixture.\n{diff}")


@pytest.fixture(scope="module")
def traced_run(ota1, ota1_placement, tech, tmp_path_factory):
    """One tiny traced + checkpointed database construction."""
    tmp = tmp_path_factory.mktemp("golden")
    checkpoint = tmp / "db.ckpt.jsonl"
    trace = tmp / "run.trace.jsonl"
    obs = RunContext.to_file(trace, run_id="run-golden")
    generate_dataset(ota1, ota1_placement, tech,
                     DatasetConfig(num_samples=2, seed=0),
                     checkpoint_path=checkpoint, obs=obs)
    obs.close()
    return {
        "checkpoint": [json.loads(line)
                       for line in checkpoint.read_text().splitlines()],
        "trace": load_trace(trace),
        "manifest": json.loads(obs.manifest_path.read_text()),
    }


class TestGoldenSchemas:
    def test_checkpoint_header_schema(self, traced_run):
        header = traced_run["checkpoint"][0]
        assert header["kind"] == "header"
        check_golden("checkpoint_header_schema.json", schema_of(header))

    def test_checkpoint_sample_schema(self, traced_run):
        sample = traced_run["checkpoint"][1]
        assert sample["kind"] == "sample"
        check_golden("checkpoint_sample_schema.json", schema_of(sample))

    def test_trace_header_schema(self, traced_run):
        header = traced_run["trace"][0]
        assert header["kind"] == "header"
        check_golden("trace_header_schema.json", schema_of(header))

    def test_trace_span_schema(self, traced_run):
        spans = [r for r in traced_run["trace"] if r["kind"] == "span"]
        # One exemplar per span name: shapes may differ in attrs.
        by_name = {}
        for span in spans:
            by_name.setdefault(span["name"], span)
        schema = {name: schema_of(by_name[name])
                  for name in sorted(by_name)}
        check_golden("trace_span_schema.json", schema)

    def test_manifest_schema(self, traced_run):
        manifest = traced_run["manifest"]
        assert manifest["kind"] == "manifest"
        check_golden("manifest_schema.json", schema_of(manifest))

    def test_manifest_counter_names_locked(self, traced_run):
        """The documented metric names are part of the contract."""
        counters = traced_run["manifest"]["counters"]
        assert set(counters) == {
            "astar_expansions",
            "route_expansions_total{mode=bucketed}",
            "route_expansions_total{mode=scalar}",
            "samples_requested",
            "samples_resampled",
            "samples_reused",
            "samples_skipped",
            "samples_valid",
        }


class TestSchemaOf:
    def test_scalars(self):
        assert schema_of(True) == "bool"
        assert schema_of(3) == "int"
        assert schema_of(1.5) == "float"
        assert schema_of("x") == "str"
        assert schema_of(None) == "null"

    def test_uniform_list_collapses(self):
        assert schema_of([1, 2, 3]) == ["int"]
        assert schema_of([[1.0, 2.0], [3.0, 4.0]]) == [["float"]]

    def test_mixed_list_keeps_shapes(self):
        assert schema_of([1, "a"]) == ["int", "str"]

    def test_dict_keys_sorted(self):
        assert schema_of({"b": 1, "a": "x"}) == {"a": "str", "b": "int"}

    def test_diff_is_readable(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            "tests.test_obs_golden.GOLDEN_DIR", tmp_path, raising=False)
        monkeypatch.setattr("tests.test_obs_golden.UPDATE", False)
        (tmp_path / "t.json").write_text(
            json.dumps({"a": "int"}, indent=2, sort_keys=True) + "\n")
        with pytest.raises(pytest.fail.Exception) as exc_info:
            check_golden("t.json", {"a": "str"})
        message = str(exc_info.value)
        assert "REPRO_UPDATE_GOLDEN" in message
        assert '-  "a": "int"' in message
        assert '+  "a": "str"' in message
