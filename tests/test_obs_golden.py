"""Golden-file regression tests for on-disk record formats.

Locks the *shape* (recursive type skeleton, see :func:`schema_of`) of:

* checkpoint JSONL records (header + sample lines),
* the observability trace JSONL records (header + span lines),
* the run manifest,
* the model-registry manifest (including the ``precision`` execution
  dtype and its typed rejection of unknown values).

A schema change fails with a readable unified diff against the fixture
under ``tests/golden/``.  To accept an intentional format change, rerun
with ``REPRO_UPDATE_GOLDEN=1`` and commit the regenerated fixtures::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_obs_golden.py
"""

from __future__ import annotations

import difflib
import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.core import DatasetConfig, generate_dataset
from repro.model.gnn3d import Gnn3d, Gnn3dConfig
from repro.obs import RunContext, load_trace
from repro.reliability.errors import ServeError
from repro.serve import (
    FLOAT32_PARITY_RTOL,
    ModelManifest,
    ModelRegistry,
    PRECISIONS,
    ScoringService,
    ServeConfig,
)

GOLDEN_DIR = Path(__file__).parent / "golden"

UPDATE = bool(os.environ.get("REPRO_UPDATE_GOLDEN"))


def schema_of(value):
    """Recursive type skeleton of a JSON value.

    Dict keys are kept verbatim (they are part of the format); lists of
    uniformly shaped elements collapse to a single-element skeleton so
    fixtures stay readable.
    """
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "str"
    if value is None:
        return "null"
    if isinstance(value, list):
        shapes = [schema_of(v) for v in value]
        uniform = all(s == shapes[0] for s in shapes)
        return shapes[:1] if uniform else shapes
    if isinstance(value, dict):
        return {key: schema_of(value[key]) for key in sorted(value)}
    return type(value).__name__  # pragma: no cover - no other JSON types


def check_golden(name: str, schema) -> None:
    """Compare ``schema`` against the committed fixture (or regenerate)."""
    path = GOLDEN_DIR / name
    rendered = json.dumps(schema, indent=2, sort_keys=True) + "\n"
    if UPDATE:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(rendered, encoding="utf-8")
    if not path.exists():
        pytest.fail(
            f"golden fixture {path} missing; run with REPRO_UPDATE_GOLDEN=1 "
            f"to create it")
    expected = path.read_text(encoding="utf-8")
    if rendered != expected:
        diff = "".join(difflib.unified_diff(
            expected.splitlines(keepends=True),
            rendered.splitlines(keepends=True),
            fromfile=f"golden/{name} (committed)",
            tofile=f"golden/{name} (current code)",
        ))
        pytest.fail(
            f"schema of {name.removesuffix('.json')} drifted from the "
            f"golden fixture.\nIf the change is intentional, regenerate "
            f"with REPRO_UPDATE_GOLDEN=1 and commit the fixture.\n{diff}")


@pytest.fixture(scope="module")
def traced_run(ota1, ota1_placement, tech, tmp_path_factory):
    """One tiny traced + checkpointed database construction."""
    tmp = tmp_path_factory.mktemp("golden")
    checkpoint = tmp / "db.ckpt.jsonl"
    trace = tmp / "run.trace.jsonl"
    obs = RunContext.to_file(trace, run_id="run-golden")
    generate_dataset(ota1, ota1_placement, tech,
                     DatasetConfig(num_samples=2, seed=0),
                     checkpoint_path=checkpoint, obs=obs)
    obs.close()
    return {
        "checkpoint": [json.loads(line)
                       for line in checkpoint.read_text().splitlines()],
        "trace": load_trace(trace),
        "manifest": json.loads(obs.manifest_path.read_text()),
    }


class TestGoldenSchemas:
    def test_checkpoint_header_schema(self, traced_run):
        header = traced_run["checkpoint"][0]
        assert header["kind"] == "header"
        check_golden("checkpoint_header_schema.json", schema_of(header))

    def test_checkpoint_sample_schema(self, traced_run):
        sample = traced_run["checkpoint"][1]
        assert sample["kind"] == "sample"
        check_golden("checkpoint_sample_schema.json", schema_of(sample))

    def test_trace_header_schema(self, traced_run):
        header = traced_run["trace"][0]
        assert header["kind"] == "header"
        check_golden("trace_header_schema.json", schema_of(header))

    def test_trace_span_schema(self, traced_run):
        spans = [r for r in traced_run["trace"] if r["kind"] == "span"]
        # One exemplar per span name: shapes may differ in attrs.
        by_name = {}
        for span in spans:
            by_name.setdefault(span["name"], span)
        schema = {name: schema_of(by_name[name])
                  for name in sorted(by_name)}
        check_golden("trace_span_schema.json", schema)

    def test_manifest_schema(self, traced_run):
        manifest = traced_run["manifest"]
        assert manifest["kind"] == "manifest"
        check_golden("manifest_schema.json", schema_of(manifest))

    def test_manifest_counter_names_locked(self, traced_run):
        """The documented metric names are part of the contract."""
        counters = traced_run["manifest"]["counters"]
        assert set(counters) == {
            "astar_expansions",
            "route_expansions_total{mode=bucketed}",
            "route_expansions_total{mode=scalar}",
            "samples_requested",
            "samples_resampled",
            "samples_reused",
            "samples_skipped",
            "samples_valid",
        }


@pytest.fixture(scope="module")
def saved_checkpoint(ota1_graph, tmp_path_factory):
    """One float32 checkpoint in a throwaway registry."""
    tmp = tmp_path_factory.mktemp("registry_golden")
    dims = (ota1_graph.ap_features.shape[1],
            ota1_graph.module_features.shape[1])
    model = Gnn3d(*dims, Gnn3dConfig(hidden=8, num_layers=1,
                                     rbf_centers=4, seed=0))
    registry = ModelRegistry(tmp)
    manifest = registry.save("ota1", model, ota1_graph,
                             precision="float32")
    return registry, manifest


class TestRegistryManifest:
    def test_registry_manifest_schema(self, saved_checkpoint):
        """The on-disk registry manifest shape, ``precision`` included."""
        registry, manifest = saved_checkpoint
        on_disk = json.loads(
            (registry.root / "ota1" / manifest.version / "manifest.json")
            .read_text(encoding="utf-8"))
        assert on_disk["precision"] in PRECISIONS
        check_golden("registry_manifest_schema.json", schema_of(on_disk))

    def test_precision_round_trips(self, saved_checkpoint, ota1_graph):
        registry, manifest = saved_checkpoint
        assert manifest.precision == "float32"
        loaded = registry.load_manifest("ota1", manifest.version)
        assert loaded.precision == "float32"
        model, _ = registry.load("ota1", manifest.version, graph=ota1_graph)
        # The load already cast the verified float64 weights.
        assert all(p.data.dtype == np.float32 for p in model.parameters())

    def test_precision_defaults_for_legacy_manifests(self, saved_checkpoint):
        """Pre-``precision`` schema-v1 manifests keep loading as float64."""
        registry, manifest = saved_checkpoint
        data = json.loads(
            (registry.root / "ota1" / manifest.version / "manifest.json")
            .read_text(encoding="utf-8"))
        del data["precision"]
        assert ModelManifest.from_dict(data).precision == "float64"

    def test_unknown_precision_rejected_on_save(self, saved_checkpoint,
                                                ota1_graph):
        registry, _ = saved_checkpoint
        dims = (ota1_graph.ap_features.shape[1],
                ota1_graph.module_features.shape[1])
        model = Gnn3d(*dims, Gnn3dConfig(hidden=8, num_layers=1,
                                         rbf_centers=4, seed=0))
        with pytest.raises(ServeError, match="unknown precision"):
            registry.save("ota1", model, ota1_graph, precision="float16")

    def test_unknown_precision_rejected_on_load(self, saved_checkpoint):
        """A hand-edited manifest must fail with a typed ServeError."""
        registry, manifest = saved_checkpoint
        path = registry.root / "ota1" / manifest.version / "manifest.json"
        original = path.read_text(encoding="utf-8")
        data = json.loads(original)
        data["precision"] = "bfloat16"
        path.write_text(json.dumps(data), encoding="utf-8")
        try:
            with pytest.raises(ServeError, match="unknown precision"):
                registry.load_manifest("ota1", manifest.version)
        finally:
            path.write_text(original, encoding="utf-8")

    def test_unknown_precision_rejected_on_register(self, ota1_graph):
        service = ScoringService(ServeConfig())
        dims = (ota1_graph.ap_features.shape[1],
                ota1_graph.module_features.shape[1])
        model = Gnn3d(*dims, Gnn3dConfig(hidden=8, num_layers=1,
                                         rbf_centers=4, seed=0))
        with pytest.raises(ServeError, match="unknown precision"):
            service.register("ota1", model, ota1_graph, precision="int8")

    def test_float32_checkpoint_scores_within_contract(self, saved_checkpoint,
                                                       ota1_graph):
        """End to end: a float32 checkpoint served through the scoring
        service agrees with its float64 twin within the documented
        tolerance."""
        registry, manifest = saved_checkpoint
        service = ScoringService(ServeConfig(max_batch=4))
        loaded = service.register_checkpoint(
            "ota1-f32", registry, "ota1", ota1_graph,
            version=manifest.version)
        assert loaded.precision == "float32"
        dims = (ota1_graph.ap_features.shape[1],
                ota1_graph.module_features.shape[1])
        # Same seeded weights as the checkpoint, left in float64.
        service.register("ota1-f64", Gnn3d(
            *dims, Gnn3dConfig(hidden=8, num_layers=1, rbf_centers=4,
                               seed=0)), ota1_graph)
        rng = np.random.default_rng(5)
        for _ in range(3):
            guidance = rng.uniform(0.5, 2.0, size=(ota1_graph.num_aps, 3))
            r32 = service.score("ota1-f32", guidance)
            r64 = service.score("ota1-f64", guidance)
            assert r32.status == "ok" and r64.status == "ok"
            rel = (np.abs(r32.metrics - r64.metrics)
                   / np.maximum(1.0, np.abs(r64.metrics)))
            assert rel.max() < FLOAT32_PARITY_RTOL


class TestSchemaOf:
    def test_scalars(self):
        assert schema_of(True) == "bool"
        assert schema_of(3) == "int"
        assert schema_of(1.5) == "float"
        assert schema_of("x") == "str"
        assert schema_of(None) == "null"

    def test_uniform_list_collapses(self):
        assert schema_of([1, 2, 3]) == ["int"]
        assert schema_of([[1.0, 2.0], [3.0, 4.0]]) == [["float"]]

    def test_mixed_list_keeps_shapes(self):
        assert schema_of([1, "a"]) == ["int", "str"]

    def test_dict_keys_sorted(self):
        assert schema_of({"b": 1, "a": "x"}) == {"a": "str", "b": "int"}

    def test_diff_is_readable(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            "tests.test_obs_golden.GOLDEN_DIR", tmp_path, raising=False)
        monkeypatch.setattr("tests.test_obs_golden.UPDATE", False)
        (tmp_path / "t.json").write_text(
            json.dumps({"a": "int"}, indent=2, sort_keys=True) + "\n")
        with pytest.raises(pytest.fail.Exception) as exc_info:
            check_golden("t.json", {"a": "str"})
        message = str(exc_info.value)
        assert "REPRO_UPDATE_GOLDEN" in message
        assert '-  "a": "int"' in message
        assert '+  "a": "str"' in message
