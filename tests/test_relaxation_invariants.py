"""Invariants of pool-assisted potential relaxation.

Three contracts from the relaxation design (Section 4.3):

* the pool's best potential is non-increasing across pool updates —
  ``RelaxationTrace.best_per_restart`` is monotone by construction, in
  both serial and batched mode;
* the batched ``value_and_grad_batch`` agrees with serial
  ``value_and_grad`` per candidate to < 1e-10, across circuit sizes;
* trace timing fields are measured on the monotonic ``perf_counter``
  clock — tests assert shape and monotonicity (non-negative durations,
  one entry per attempted restart), never absolute durations, which are
  load-sensitive.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.potential import PotentialFunction
from repro.core.relaxation import PotentialRelaxer, RelaxationConfig
from repro.graph import build_hetero_graph
from repro.model.gnn3d import Gnn3d
from repro.netlist import build_benchmark
from repro.obs import RunContext
from repro.placement import place_benchmark
from repro.router import RoutingGrid
from repro.tech import generic_40nm

RELAX = dict(n_restarts=8, pool_size=4, n_derive=2, maxiter=12,
             seed_points=0, seed=0)

#: The three circuit sizes the agreement bound is checked on.
CIRCUITS = ("OTA1", "OTA2", "OTA3")


@pytest.fixture(scope="module")
def potentials():
    """One trained-shape potential per benchmark size (lazy, cached)."""
    cache: dict[str, PotentialFunction] = {}
    tech = generic_40nm()

    def get(name: str) -> PotentialFunction:
        if name not in cache:
            circuit = build_benchmark(name)
            placement = place_benchmark(circuit, variant="A", seed=0,
                                        iterations=60)
            graph = build_hetero_graph(RoutingGrid(placement, tech))
            model = Gnn3d(graph.ap_features.shape[1],
                          graph.module_features.shape[1])
            cache[name] = PotentialFunction(model, graph)
        return cache[name]

    return get


class TestPoolMonotonicity:
    @pytest.mark.parametrize("batched", [False, True],
                             ids=["serial", "batched"])
    def test_best_potential_non_increasing(self, potentials, batched):
        pot = potentials("OTA1")
        relaxer = PotentialRelaxer(RelaxationConfig(**RELAX, batched=batched))
        solutions = relaxer.run(pot)
        best = relaxer.trace.best_per_restart
        assert len(best) == relaxer.trace.restarts > 0
        assert all(b1 >= b2 - 1e-12 for b1, b2 in zip(best, best[1:])), (
            f"pool best potential increased: {best}")
        # The returned top-N is sorted and its head equals the pool best.
        returned = [s.potential for s in solutions]
        assert returned == sorted(returned)
        assert returned[0] == best[-1]

    def test_pool_never_exceeds_configured_size(self, potentials):
        pot = potentials("OTA1")
        cfg = RelaxationConfig(**RELAX)
        relaxer = PotentialRelaxer(cfg)
        pool: list = []
        rng = np.random.default_rng(0)
        for restart in range(10):
            x = rng.uniform(0.5, 2.0, size=pot.num_variables)
            value, _ = pot.value_and_grad(x)
            relaxer._keep(pool, restart, x, float(value), False, pot)
            assert len(pool) <= cfg.pool_size
            assert [s.potential for s in pool] == sorted(
                s.potential for s in pool)


class TestBatchedSerialAgreement:
    @pytest.mark.parametrize("name", CIRCUITS)
    def test_value_and_grad_agree_below_1e10(self, potentials, name):
        pot = potentials(name)
        rng = np.random.default_rng(7)
        X = rng.uniform(0.5, 2.0, size=(3, pot.num_variables))
        values, grads = pot.value_and_grad_batch(X)
        for i in range(X.shape[0]):
            v, g = pot.value_and_grad(X[i])
            assert abs(v - values[i]) < 1e-10, (
                f"{name}: batched value diverges at candidate {i}")
            assert np.abs(g - grads[i]).max() < 1e-10, (
                f"{name}: batched gradient diverges at candidate {i}")


class TestTraceTimingShape:
    """Timing diagnostics: shape and monotonic-clock guarantees only.

    ``restart_seconds`` comes from ``time.perf_counter`` (monotonic), so
    durations are always non-negative; absolute values are load-dependent
    and must never be asserted.
    """

    @pytest.mark.parametrize("batched", [False, True],
                             ids=["serial", "batched"])
    def test_restart_seconds_shape(self, potentials, batched):
        pot = potentials("OTA1")
        relaxer = PotentialRelaxer(RelaxationConfig(**RELAX, batched=batched))
        relaxer.run(pot)
        trace = relaxer.trace
        n = RELAX["n_restarts"]
        assert len(trace.restart_seconds) == n
        assert len(trace.restart_evals) == n
        assert all(s >= 0.0 for s in trace.restart_seconds)
        assert all(e >= 1 for e in trace.restart_evals)
        # Cumulative duration is monotone (equivalent to non-negativity,
        # stated as the property consumers rely on).
        cumulative = np.cumsum(trace.restart_seconds)
        assert all(a <= b + 1e-12 for a, b in zip(cumulative,
                                                  cumulative[1:]))

    @pytest.mark.parametrize("batched", [False, True],
                             ids=["serial", "batched"])
    def test_spans_mirror_trace_measurements(self, potentials, batched):
        """relax.restart spans reuse the trace's own measurements."""
        pot = potentials("OTA1")
        obs = RunContext.recording()
        relaxer = PotentialRelaxer(
            RelaxationConfig(**RELAX, batched=batched), obs=obs)
        relaxer.run(pot)
        events = obs.drain_events()
        restarts = [e for e in events if e["name"] == "relax.restart"]
        assert len(restarts) == RELAX["n_restarts"]
        assert [e["seconds"] for e in restarts] == \
            relaxer.trace.restart_seconds
        assert [e["attrs"]["evals"] for e in restarts] == \
            relaxer.trace.restart_evals
        kept = sum(1 for e in restarts if e["outcome"] == "ok")
        assert kept == relaxer.trace.restarts
        diverged = sum(1 for e in restarts if e["outcome"] == "diverged")
        assert diverged == relaxer.trace.diverged
        # Counter totals match the trace's totals.
        assert obs.counter_values()["gnn_forwards"] == \
            relaxer.trace.gnn_forwards
        assert obs.counter_values()["lbfgs_evals"] >= \
            max(relaxer.trace.restart_evals)

    def test_reused_relaxer_resets_trace(self, potentials):
        pot = potentials("OTA1")
        relaxer = PotentialRelaxer(RelaxationConfig(**RELAX))
        relaxer.run(pot)
        first = list(relaxer.trace.restart_seconds)
        relaxer.run(pot)
        assert len(relaxer.trace.restart_seconds) == len(first)
