"""Tests for devices, nets, circuits, and the OTA benchmarks."""

import pytest

from repro.netlist import (
    BENCHMARKS,
    Capacitor,
    Circuit,
    DeviceType,
    Dummy,
    MOSFET,
    MOSType,
    Net,
    NetType,
    Resistor,
    SymmetryPair,
    build_benchmark,
)


class TestDevices:
    def test_mosfet_default_pins(self):
        mos = MOSFET(name="M1", mos_type=MOSType.NMOS, w=4.0, l=0.06)
        assert set(mos.pins) == {"G", "D", "S", "B"}

    def test_mosfet_pin_offsets_inside_footprint(self):
        mos = MOSFET(name="M1", w=8.0, l=0.06, fingers=4)
        for pin in mos.pins.values():
            assert 0 <= pin.offset[0] <= mos.width
            assert 0 <= pin.offset[1] <= mos.height

    def test_mosfet_pins_spaced_for_routing_grid(self):
        mos = MOSFET(name="M1", w=2.0, l=0.06)
        xs = sorted(p.offset[0] for p in mos.pins.values())
        gaps = [b - a for a, b in zip(xs, xs[1:])]
        assert min(gaps) >= 0.5

    def test_mosfet_invalid_sizing_raises(self):
        with pytest.raises(ValueError):
            MOSFET(name="M1", w=-1.0)
        with pytest.raises(ValueError):
            MOSFET(name="M1", fingers=0)
        with pytest.raises(ValueError):
            MOSFET(name="M1", bias_current=-1e-6)

    def test_device_types(self):
        assert MOSFET(name="a", mos_type=MOSType.PMOS).device_type is DeviceType.PMOS
        assert MOSFET(name="b").device_type is DeviceType.NMOS
        assert Capacitor(name="c").device_type is DeviceType.CAPACITOR
        assert Resistor(name="d").device_type is DeviceType.RESISTOR
        assert Dummy(name="e").device_type is DeviceType.DUMMY

    def test_dummy_is_not_electrical(self):
        assert not Dummy(name="x").is_electrical
        assert MOSFET(name="m").is_electrical

    def test_capacitor_area_scales_with_value(self):
        small = Capacitor(name="c1", value=0.2e-12)
        big = Capacitor(name="c2", value=2e-12)
        assert big.area() > small.area()

    def test_capacitor_invalid_value(self):
        with pytest.raises(ValueError):
            Capacitor(name="c", value=0.0)

    def test_resistor_two_pins(self):
        res = Resistor(name="r", value=10e3)
        assert set(res.pins) == {"PLUS", "MINUS"}

    def test_pin_lookup_missing_raises(self):
        with pytest.raises(KeyError):
            MOSFET(name="m").pin("X")

    def test_pin_full_name(self):
        assert MOSFET(name="m").pin("G").full_name == "m.G"


class TestNets:
    def test_connect_is_chainable(self):
        net = Net(name="n")
        assert net.connect("a", "G").connect("b", "D") is net
        assert net.degree == 2

    def test_duplicate_terminal_raises(self):
        net = Net(name="n").connect("a", "G")
        with pytest.raises(ValueError):
            net.connect("a", "G")

    def test_devices_deduplicated_in_order(self):
        net = Net(name="n").connect("b", "G").connect("a", "D").connect("b", "S")
        assert net.devices() == ["b", "a"]

    def test_supply_classification(self):
        assert NetType.POWER.is_supply
        assert NetType.GROUND.is_supply
        assert not NetType.SIGNAL.is_supply

    def test_critical_classification(self):
        assert NetType.INPUT.is_critical
        assert not NetType.BIAS.is_critical

    def test_symmetry_pair_partner(self):
        pair = SymmetryPair("x", "y")
        assert pair.partner("x") == "y"
        assert pair.partner("y") == "x"
        with pytest.raises(KeyError):
            pair.partner("z")

    def test_symmetry_pair_self_reference_raises(self):
        with pytest.raises(ValueError):
            SymmetryPair("x", "x")


class TestCircuit:
    def _tiny(self):
        c = Circuit(name="tiny")
        c.add_device(MOSFET(name="M1"))
        c.add_device(MOSFET(name="M2"))
        c.new_net("A").connect("M1", "D").connect("M2", "G")
        c.new_net("B").connect("M1", "G").connect("M2", "D")
        return c

    def test_duplicate_device_raises(self):
        c = self._tiny()
        with pytest.raises(ValueError):
            c.add_device(MOSFET(name="M1"))

    def test_duplicate_net_raises(self):
        c = self._tiny()
        with pytest.raises(ValueError):
            c.new_net("A")

    def test_net_of(self):
        c = self._tiny()
        assert c.net_of("M1", "D").name == "A"
        assert c.net_of("M1", "S") is None

    def test_validate_unknown_device(self):
        c = self._tiny()
        c.net("A").connect("GHOST", "G")
        with pytest.raises(ValueError, match="unknown device"):
            c.validate()

    def test_validate_unknown_pin(self):
        c = self._tiny()
        c.net("A").connect("M1", "NOPE")
        with pytest.raises(ValueError, match="no pin"):
            c.validate()

    def test_validate_pin_on_two_nets(self):
        c = self._tiny()
        c.net("B").connect("M1", "D")  # already on net A
        with pytest.raises(ValueError, match="on both"):
            c.validate()

    def test_symmetry_pair_unknown_net_raises(self):
        c = self._tiny()
        with pytest.raises(KeyError):
            c.add_symmetry_pair(SymmetryPair("A", "NOPE"))

    def test_symmetry_pair_unequal_degree_fails_validation(self):
        c = self._tiny()
        c.net("A").connect("M2", "S")
        c.add_symmetry_pair(SymmetryPair("A", "B"))
        with pytest.raises(ValueError, match="unequal terminal"):
            c.validate()

    def test_symmetry_pair_of(self):
        c = self._tiny()
        pair = c.add_symmetry_pair(SymmetryPair("A", "B"))
        assert c.symmetry_pair_of("A") is pair
        assert c.symmetry_pair_of("B") is pair


class TestBenchmarks:
    #: Expected Table 1 rows: (#PMOS, #NMOS, #Cap, #Res, #Total).
    TABLE1 = {
        "OTA1": (6, 8, 2, 0, 25),
        "OTA2": (6, 8, 2, 0, 25),
        "OTA3": (16, 10, 6, 4, 36),
        "OTA4": (16, 10, 6, 4, 36),
    }

    @pytest.mark.parametrize("name", sorted(TABLE1))
    def test_table1_counts(self, name):
        assert build_benchmark(name).stats().as_row() == self.TABLE1[name]

    @pytest.mark.parametrize("name", sorted(TABLE1))
    def test_netlists_validate(self, name):
        build_benchmark(name).validate()

    @pytest.mark.parametrize("name", sorted(TABLE1))
    def test_have_symmetry_constraints(self, name):
        circuit = build_benchmark(name)
        assert len(circuit.symmetry_pairs) >= 3
        assert any(n.self_symmetric for n in circuit.nets.values())

    def test_same_topology_pairs(self):
        assert build_benchmark("OTA1").topology == build_benchmark("OTA2").topology
        assert build_benchmark("OTA3").topology == build_benchmark("OTA4").topology
        assert build_benchmark("OTA1").topology != build_benchmark("OTA3").topology

    def test_sizing_differs_within_pair(self):
        w1 = build_benchmark("OTA1").device("MN_IN_L").w
        w2 = build_benchmark("OTA2").device("MN_IN_L").w
        assert w1 != w2

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            build_benchmark("OTA9")

    def test_registry_is_complete(self):
        assert set(BENCHMARKS) == set(self.TABLE1)

    @pytest.mark.parametrize("name", sorted(TABLE1))
    def test_io_nets_present(self, name):
        circuit = build_benchmark(name)
        for net in ("VINP", "VINN", "VOUTP", "VOUTN", "VDD", "VSS"):
            assert net in circuit.nets

    @pytest.mark.parametrize("name", sorted(TABLE1))
    def test_symmetric_pairs_have_mirrored_devices(self, name):
        circuit = build_benchmark(name)
        with_devices = [p for p in circuit.symmetry_pairs if p.device_pairs]
        assert with_devices, "at least one pair must constrain devices"
