* deliberately unsupported construct: a bipolar transistor card.
* ingestion must fail with a typed SpiceParseError, never a raw crash.
M1 d g s b nch W=1u L=0.1u
Q1 c b e npn_std
.end
