* 5-transistor OTA, lowercase hierarchy dialect
* (subckt + .param + .global + continuation lines, mixed meter/micron units)
.param wdiff=4u ldiff=0.36u
.global vdd vss

.subckt ota5t vinp vinn vout vbias vdd vss
m1 n1 vinp tail vss nch_lvt W=wdiff L=ldiff
m2 vout vinn tail vss nch_lvt W={wdiff} L='ldiff'
m3 n1 n1 vdd vdd pch_lvt W=2e-6 L=0.36
m4 vout n1 vdd vdd pch_lvt W=2e-6 L=0.36
m5 tail vbias vss vss nch_lvt
+ W=8u L=0.72u M=2
cc vout vss 300f
.ends ota5t

xamp inp inn out bias vdd vss ota5t
.end
