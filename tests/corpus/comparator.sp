* Dynamic latched comparator (StrongARM-style core)
* subckt with header param defaults overridden at the instance
.subckt dynlatch inp inn outp outn clk vdd vss win=3u
MN_IN_P dip inp tail vss nch W=win L=0.24u
MN_IN_N din inn tail vss nch W=win L=0.24u
MN_TAIL tail clk vss vss nch W=6u L=0.24u
MN_LAT_P outp outn dip vss nch W=2u L=0.18u
MN_LAT_N outn outp din vss nch W=2u L=0.18u
MP_LAT_P outp outn vdd vdd pch W=4u L=0.18u
MP_LAT_N outn outp vdd vdd pch W=4u L=0.18u
MP_PRE_P outp clk vdd vdd pch W=1.5u L=0.18u
MP_PRE_N outn clk vdd vdd pch W=1.5u L=0.18u
.ends dynlatch

Xcmp vip vin voutp voutn ck avdd agnd dynlatch win=4u
.end
