"""Detail tests for evaluation formatting and scale presets."""

import pytest

from repro.core.pipeline import AnalogFoldConfig
from repro.eval.compare import SCALES, EvalScale
from repro.eval.runtime import STAGE_LABELS
from repro.eval.tables import _fmt


class TestFormatting:
    def test_fmt_zero(self):
        assert _fmt(0.0) == "0"

    def test_fmt_large_uses_compact(self):
        assert len(_fmt(123456.789)) <= 9

    def test_fmt_small_uses_compact(self):
        text = _fmt(0.000123)
        assert "e" in text or text.startswith("0.000123")

    def test_fmt_mid_range(self):
        assert _fmt(42.1234) == "42.12"


class TestScales:
    def test_scales_strictly_ordered(self):
        order = ["smoke", "fast", "full", "paper"]
        samples = [SCALES[name].dataset_samples for name in order]
        assert samples == sorted(samples)
        epochs = [SCALES[name].train_epochs for name in order]
        assert epochs == sorted(epochs)

    @pytest.mark.parametrize("name", sorted(SCALES))
    def test_analogfold_config_consistent(self, name):
        scale = SCALES[name]
        config = scale.analogfold_config(seed=7)
        assert isinstance(config, AnalogFoldConfig)
        assert config.dataset.num_samples == scale.dataset_samples
        assert config.training.epochs == scale.train_epochs
        assert config.relaxation.n_restarts == scale.relax_restarts
        assert config.relaxation.n_derive <= config.relaxation.pool_size

    def test_custom_scale(self):
        scale = EvalScale("custom", dataset_samples=5, train_epochs=2,
                          relax_restarts=2, relax_pool=2,
                          placement_iterations=10)
        config = scale.analogfold_config()
        assert config.dataset.num_samples == 5


class TestRuntimeLabels:
    def test_all_pipeline_stages_labeled(self):
        pipeline_stages = {"construct_database", "model_training",
                           "guide_generation", "guided_routing"}
        assert pipeline_stages <= set(STAGE_LABELS)

    def test_labels_match_paper_categories(self):
        labels = set(STAGE_LABELS.values())
        assert "Model Training" in labels
        assert "Placement" in labels
        assert any("Guided Detailed Routing" in label for label in labels)
