"""Performance layer: timers, caches, parallel construction, batching.

The contracts under test:

* parallel ``generate_dataset`` is bit-identical to serial — samples,
  report, and checkpoint bytes — including under injected faults and on
  checkpoint resume;
* the batched GNN forward matches per-candidate forwards to 1e-10, and
  batched relaxation pays several times fewer forward-backward passes;
* stage timers and the BENCH_perf regression gate behave as documented.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dataset import DatasetConfig, generate_dataset
from repro.core.potential import PotentialFunction
from repro.core.relaxation import PotentialRelaxer, RelaxationConfig
from repro.graph import build_hetero_graph
from repro.model.gnn3d import Gnn3d
from repro.nn import Tensor
from repro.perf import (
    ForwardCacheStore,
    StageTimer,
    bench_payload,
    compare_to_baseline,
)
from repro.reliability import DegradationPolicy, FaultPlan, inject_faults
from repro.router import RoutingGrid


def _assert_databases_identical(db_a, db_b):
    assert len(db_a.samples) == len(db_b.samples)
    for a, b in zip(db_a.samples, db_b.samples):
        assert set(a.guidance.vectors) == set(b.guidance.vectors)
        for key in a.guidance.vectors:
            assert np.array_equal(a.guidance.vectors[key],
                                  b.guidance.vectors[key])
        assert np.array_equal(a.metrics.to_normalized(),
                              b.metrics.to_normalized())
    # ``reused`` is not compared: a resumed run reuses checkpointed
    # samples by design while producing the same database.
    ra, rb = db_a.report, db_b.report
    assert (ra.valid, ra.resampled) == (rb.valid, rb.resampled)
    assert [(f.sample_index, f.stage) for f in ra.skipped] == \
           [(f.sample_index, f.stage) for f in rb.skipped]


class TestParallelDataset:
    CFG = DatasetConfig(num_samples=4, seed=3)

    def test_workers_bit_identical_to_serial(self, ota1, ota1_placement,
                                             tech):
        serial = generate_dataset(ota1, ota1_placement, tech, self.CFG)
        parallel = generate_dataset(ota1, ota1_placement, tech, self.CFG,
                                    workers=2)
        _assert_databases_identical(serial, parallel)

    def test_workers_bit_identical_under_faults(self, ota1, ota1_placement,
                                                tech):
        # Unit-scoped faults: sample 1 fails all attempts (skip +
        # resample), sample 2 fails only its first attempt (retry
        # recovers).  Unit addressing is process-count-independent.
        plan = FaultPlan(stage="routing",
                         fail_units=frozenset({1, (2, 0)}))
        policy = DegradationPolicy(max_retries=1)
        with inject_faults(plan):
            serial = generate_dataset(ota1, ota1_placement, tech, self.CFG,
                                      policy=policy)
        with inject_faults(plan):
            parallel = generate_dataset(ota1, ota1_placement, tech,
                                        self.CFG, policy=policy, workers=2)
        assert serial.report.skipped, "fault plan must actually skip"
        assert serial.report.retried >= 1
        assert serial.report.retried == parallel.report.retried
        _assert_databases_identical(serial, parallel)

    def test_workers_checkpoint_identical_and_resumable(
            self, ota1, ota1_placement, tech, tmp_path):
        ck_serial = tmp_path / "serial.jsonl"
        ck_parallel = tmp_path / "parallel.jsonl"
        serial = generate_dataset(ota1, ota1_placement, tech, self.CFG,
                                  checkpoint_path=ck_serial)
        parallel = generate_dataset(ota1, ota1_placement, tech, self.CFG,
                                    checkpoint_path=ck_parallel, workers=2)
        _assert_databases_identical(serial, parallel)
        assert ck_serial.read_bytes() == ck_parallel.read_bytes()

        # Truncate to header + 2 samples and resume with workers: reused
        # samples are not recomputed, and the result is still identical.
        lines = ck_parallel.read_text().splitlines(keepends=True)
        ck_resume = tmp_path / "resume.jsonl"
        ck_resume.write_text("".join(lines[:3]))
        resumed = generate_dataset(ota1, ota1_placement, tech, self.CFG,
                                   checkpoint_path=ck_resume,
                                   resume=True, workers=2)
        _assert_databases_identical(serial, resumed)
        assert resumed.report.reused == 2
        assert ck_resume.read_bytes() == ck_parallel.read_bytes()

    def test_timer_collects_worker_stages(self, ota1, ota1_placement, tech):
        timer = StageTimer()
        generate_dataset(ota1, ota1_placement, tech, self.CFG, workers=2,
                         timer=timer)
        for stage in ("route", "extract", "simulate"):
            assert timer.stages[stage].calls == self.CFG.num_samples
            assert timer.stages[stage].seconds > 0.0

    def test_invalid_worker_count_rejected(self, ota1, ota1_placement,
                                           tech):
        with pytest.raises(ValueError, match="workers"):
            generate_dataset(ota1, ota1_placement, tech, self.CFG, workers=0)


@pytest.fixture(scope="module")
def perf_model(ota1_placement, tech):
    graph = build_hetero_graph(RoutingGrid(ota1_placement, tech))
    model = Gnn3d(graph.ap_features.shape[1], graph.module_features.shape[1])
    return graph, model


class TestBatchedForward:
    def test_batched_matches_per_candidate_to_1e10(self, perf_model):
        graph, model = perf_model
        rng = np.random.default_rng(0)
        cand = rng.uniform(0.5, 2.0, size=(4, graph.num_aps, 3))
        singles = np.stack(
            [model(graph, Tensor(cand[b])).numpy() for b in range(4)])
        batched = model(graph, Tensor(cand)).numpy()
        assert batched.shape == (4, singles.shape[1])
        assert np.abs(singles - batched).max() < 1e-10

    def test_batched_gradients_match(self, perf_model):
        graph, model = perf_model
        rng = np.random.default_rng(1)
        cand = rng.uniform(0.5, 2.0, size=(3, graph.num_aps, 3))
        single = Tensor(cand[1], requires_grad=True)
        model(graph, single).sum().backward()
        batch = Tensor(cand, requires_grad=True)
        model(graph, batch).sum().backward()
        assert np.abs(single.grad - batch.grad[1]).max() < 1e-10

    def test_batch_value_and_grad_matches_scalar(self, perf_model):
        graph, model = perf_model
        pot = PotentialFunction(model, graph)
        rng = np.random.default_rng(2)
        X = rng.uniform(0.5, 2.0, size=(3, pot.num_variables))
        values, grads = pot.value_and_grad_batch(X)
        for i in range(3):
            v, g = pot.value_and_grad(X[i])
            assert abs(v - values[i]) < 1e-10
            assert np.abs(g - grads[i]).max() < 1e-10

    def test_batch_infeasible_rows_pushed_back(self, perf_model):
        graph, model = perf_model
        pot = PotentialFunction(model, graph)
        X = np.full((2, pot.num_variables), 1.0)
        X[1, 0] = -0.5  # outside the open region
        values, grads = pot.value_and_grad_batch(X)
        assert np.isfinite(values[0])
        assert values[1] == float("inf")
        assert grads[1, 0] == -1.0

    def test_forward_cache_invalidation(self, ota1_placement, tech):
        graph = build_hetero_graph(RoutingGrid(ota1_placement, tech))
        store = ForwardCacheStore()
        statics = store.statics(graph)
        assert store.statics(graph) is statics  # cached
        plan = store.batched(graph, 3)
        assert store.batched(graph, 3) is plan
        assert plan.num_nodes == 3 * graph.num_nodes
        # Structural change invalidates the entry.
        et = next(t for t, p in graph.edges.items() if len(p))
        pairs = graph.edges[et]
        graph.edges[et] = pairs[:-1]
        try:
            assert store.statics(graph) is not statics
        finally:
            graph.edges[et] = pairs

    def test_inplace_position_mutation_invalidates(self, ota1_placement,
                                                   tech):
        """Regression: a count-only fingerprint served stale Eq.1 deltas
        after ``ap_positions`` was mutated in place."""
        graph = build_hetero_graph(RoutingGrid(ota1_placement, tech))
        store = ForwardCacheStore()
        statics = store.statics(graph)
        graph.ap_positions[0, 0] += 3.0
        fresh = store.statics(graph)
        assert fresh is not statics
        et = next(t for t, p in graph.edges.items() if len(p))
        assert not np.array_equal(fresh.deltas[et], statics.deltas[et])

    def test_equal_length_edge_swap_invalidates(self, ota1_placement, tech):
        """Regression: swapping an edge array for one of equal length
        kept every count identical and the cache never noticed."""
        graph = build_hetero_graph(RoutingGrid(ota1_placement, tech))
        store = ForwardCacheStore()
        statics = store.statics(graph)
        et = next(t for t, p in graph.edges.items() if len(p) > 1)
        original = graph.edges[et]
        graph.edges[et] = np.ascontiguousarray(original[::-1])
        try:
            assert store.statics(graph) is not statics
        finally:
            graph.edges[et] = original

    def test_eviction_never_thrashes_hot_entries(self, ota1_placement,
                                                 tech, monkeypatch):
        """Regression: capacity used to clear() the whole store, so
        alternating across ``max_graphs + 1`` graphs rebuilt everything.
        LRU must evict only the stalest entry."""
        import repro.perf.cache as cache_mod
        grid = RoutingGrid(ota1_placement, tech)
        g1, g2, g3 = (build_hetero_graph(grid) for _ in range(3))
        builds = []
        real_build = cache_mod.build_statics
        monkeypatch.setattr(
            cache_mod, "build_statics",
            lambda graph: builds.append(id(graph)) or real_build(graph))
        store = ForwardCacheStore(max_graphs=2)
        store.statics(g1)
        store.statics(g2)
        store.statics(g2)          # hit refreshes recency
        assert len(builds) == 2
        store.statics(g3)          # at capacity: evicts g1 only (stalest)
        assert len(builds) == 3
        store.statics(g3)
        store.statics(g2)          # still cached — was NOT wholesale-evicted
        assert len(builds) == 3
        store.statics(g1)          # g1 was the one evicted
        assert len(builds) == 4


class TestBatchedRelaxation:
    RELAX = dict(n_restarts=8, pool_size=4, n_derive=2, maxiter=12,
                 seed_points=0, seed=0)

    def test_at_least_3x_fewer_forwards(self, perf_model):
        graph, model = perf_model
        pot = PotentialFunction(model, graph)
        serial = PotentialRelaxer(RelaxationConfig(**self.RELAX))
        serial_sols = serial.run(pot)
        pot.reset_stats()
        batched = PotentialRelaxer(
            RelaxationConfig(**self.RELAX, batched=True))
        batched_sols = batched.run(pot)
        assert serial.trace.gnn_forwards >= 3 * batched.trace.gnn_forwards
        assert len(batched_sols) == len(serial_sols)
        # Batched solutions are genuine minima of the same landscape:
        # no worse than the serial best by a wide margin.
        assert batched_sols[0].potential <= serial_sols[0].potential + 1.0

    def test_trace_records_per_restart_observability(self, perf_model):
        graph, model = perf_model
        pot = PotentialFunction(model, graph)
        for batched in (False, True):
            relaxer = PotentialRelaxer(
                RelaxationConfig(**self.RELAX, batched=batched))
            relaxer.run(pot)
            trace = relaxer.trace
            n = self.RELAX["n_restarts"]
            assert len(trace.restart_seconds) == n
            assert len(trace.restart_evals) == n
            assert all(s >= 0.0 for s in trace.restart_seconds)
            assert all(e >= 1 for e in trace.restart_evals)
            assert trace.gnn_forwards > 0


class TestTiming:
    def test_stage_timer_accumulates_and_absorbs(self):
        timer = StageTimer()
        with timer.stage("route"):
            pass
        timer.add("route", 1.5)
        other = StageTimer()
        other.add("train", 2.0)
        timer.absorb(other)
        assert timer.stages["route"].calls == 2
        assert timer.seconds("route") == pytest.approx(1.5, abs=0.1)
        assert timer.seconds("train") == 2.0
        assert timer.total_seconds() == pytest.approx(3.5, abs=0.1)
        assert set(timer.to_dict()) == {"route", "train"}

    def test_bench_payload_shape(self):
        timer = StageTimer()
        timer.add("route", 0.25)
        payload = bench_payload(timer, extra={"scale": "smoke"})
        assert payload["schema_version"] == 1
        assert payload["scale"] == "smoke"
        assert payload["stages"]["route"] == {"seconds": 0.25, "calls": 1}

    def test_regression_gate(self):
        baseline = {"stages": {"route": {"seconds": 1.0, "calls": 1},
                               "noise": {"seconds": 0.001, "calls": 1}}}
        ok = {"stages": {"route": {"seconds": 2.9, "calls": 1},
                         "noise": {"seconds": 1.0, "calls": 1}}}
        assert compare_to_baseline(ok, baseline) == []
        slow = {"stages": {"route": {"seconds": 3.1, "calls": 1}}}
        problems = compare_to_baseline(slow, baseline)
        assert len(problems) == 1 and "route" in problems[0]
        missing = {"stages": {}}
        assert any("missing" in p
                   for p in compare_to_baseline(missing, baseline))
