"""Shared fixtures: expensive objects are session-scoped and read-only.

Tests that mutate a grid or placement must build their own (see
``fresh_grid``); the session-scoped fixtures exist for read-only checks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.extraction import extract
from repro.graph import build_hetero_graph
from repro.netlist import build_benchmark
from repro.placement import place_benchmark
from repro.router import IterativeRouter, RoutingGrid
from repro.tech import generic_40nm


@pytest.fixture(scope="session")
def tech():
    return generic_40nm()


@pytest.fixture(scope="session")
def ota1():
    return build_benchmark("OTA1")


@pytest.fixture(scope="session")
def ota3():
    return build_benchmark("OTA3")


@pytest.fixture(scope="session")
def ota1_placement(ota1):
    return place_benchmark(ota1, variant="A", seed=0, iterations=200)


@pytest.fixture(scope="session")
def ota1_grid(ota1_placement, tech):
    """A pristine (unrouted) grid; do not mutate in tests."""
    return RoutingGrid(ota1_placement, tech)


@pytest.fixture()
def fresh_grid(ota1_placement, tech):
    """A fresh grid per test, safe to route on."""
    return RoutingGrid(ota1_placement, tech)


@pytest.fixture(scope="session")
def ota1_routed(ota1_placement, tech):
    """A routed OTA1 with its grid: (result, grid)."""
    grid = RoutingGrid(ota1_placement, tech)
    result = IterativeRouter(grid).route_all()
    return result, grid


@pytest.fixture(scope="session")
def ota1_parasitics(ota1_routed, tech):
    result, grid = ota1_routed
    return extract(result, grid, tech)


@pytest.fixture(scope="session")
def ota1_graph(ota1_grid):
    return build_hetero_graph(ota1_grid)


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
