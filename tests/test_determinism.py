"""Cross-process determinism: results must not depend on PYTHONHASHSEED.

Set iteration order varies with string-hash randomization; the router
sorts wherever that order could leak into results.  This test pins the
guarantee by hashing a routed solution under two different hash seeds in
separate interpreters.
"""

import hashlib
import os
import subprocess
import sys

import pytest

_SNIPPET = """
import hashlib
from repro.netlist import build_benchmark
from repro.placement import place_benchmark
from repro.tech import generic_40nm
from repro.router import RoutingGrid, IterativeRouter

c = build_benchmark("OTA1")
p = place_benchmark(c, variant="A", iterations=100)
g = RoutingGrid(p, generic_40nm())
r = IterativeRouter(g).route_all()
cells = sorted((n, tuple(sorted(rt.cells()))) for n, rt in r.routes.items())
print(hashlib.md5(repr(cells).encode()).hexdigest())
"""


def _routing_hash(hash_seed: str) -> str:
    env = dict(os.environ, PYTHONHASHSEED=hash_seed)
    out = subprocess.run(
        [sys.executable, "-c", _SNIPPET], env=env,
        capture_output=True, text=True, timeout=300, check=True,
    )
    return out.stdout.strip()


@pytest.mark.slow
def test_routing_identical_across_hash_seeds():
    assert _routing_hash("1") == _routing_hash("424242")


def test_placement_hash_stable_in_process(ota1):
    """Same-seed placements hash identically within a process."""
    from repro.placement import place_benchmark

    def digest():
        p = place_benchmark(ota1, variant="A", seed=11, iterations=50)
        payload = sorted(
            (n, round(d.x, 9), round(d.y, 9)) for n, d in p.positions.items())
        return hashlib.md5(repr(payload).encode()).hexdigest()

    assert digest() == digest()
