"""Tests for the 3DGNN model and trainer."""

import numpy as np
import pytest

from repro.model import Gnn3d, Gnn3dConfig, TrainConfig, Trainer, TrainSample
from repro.nn import Tensor


@pytest.fixture(scope="module")
def model(ota1_graph):
    return Gnn3d(
        ota1_graph.ap_features.shape[1],
        ota1_graph.module_features.shape[1],
        Gnn3dConfig(hidden=16, num_layers=2, seed=0),
    )


def _guidance(graph, value=1.0):
    return Tensor(np.full((graph.num_aps, 3), value))


class TestForward:
    def test_output_is_five_metrics(self, model, ota1_graph):
        out = model(ota1_graph, _guidance(ota1_graph))
        assert out.shape == (5,)
        assert np.isfinite(out.data).all()

    def test_wrong_guidance_shape_raises(self, model, ota1_graph):
        with pytest.raises(ValueError):
            model(ota1_graph, Tensor(np.ones((3, 3))))

    def test_guidance_changes_prediction(self, model, ota1_graph):
        a = model(ota1_graph, _guidance(ota1_graph, 0.5)).data
        b = model(ota1_graph, _guidance(ota1_graph, 2.5)).data
        assert not np.allclose(a, b)

    def test_deterministic(self, model, ota1_graph):
        a = model(ota1_graph, _guidance(ota1_graph)).data
        b = model(ota1_graph, _guidance(ota1_graph)).data
        np.testing.assert_array_equal(a, b)

    def test_gradient_reaches_guidance(self, model, ota1_graph):
        c = Tensor(np.full((ota1_graph.num_aps, 3), 1.5), requires_grad=True)
        model(ota1_graph, c).sum().backward()
        assert c.grad is not None
        assert np.abs(c.grad).max() > 0

    def test_guidance_gradient_matches_finite_difference(self, model, ota1_graph):
        c0 = np.full((ota1_graph.num_aps, 3), 1.2)
        c = Tensor(c0.copy(), requires_grad=True)
        model(ota1_graph, c).sum().backward()
        idx = (0, 0)
        eps = 1e-5
        cp, cm = c0.copy(), c0.copy()
        cp[idx] += eps
        cm[idx] -= eps
        fd = (model(ota1_graph, Tensor(cp)).sum().item()
              - model(ota1_graph, Tensor(cm)).sum().item()) / (2 * eps)
        assert c.grad[idx] == pytest.approx(fd, rel=1e-3, abs=1e-8)


class TestAblationConfigs:
    def test_no_cost_distance_kills_guidance_gradient(self, ota1_graph):
        model = Gnn3d(
            ota1_graph.ap_features.shape[1],
            ota1_graph.module_features.shape[1],
            Gnn3dConfig(hidden=16, num_layers=1, use_cost_distance=False),
        )
        c = Tensor(np.ones((ota1_graph.num_aps, 3)), requires_grad=True)
        model(ota1_graph, c).sum().backward()
        assert c.grad is None or np.abs(c.grad).max() == 0.0

    def test_raw_distance_mode_runs(self, ota1_graph):
        model = Gnn3d(
            ota1_graph.ap_features.shape[1],
            ota1_graph.module_features.shape[1],
            Gnn3dConfig(hidden=16, num_layers=1, use_rbf=False),
        )
        out = model(ota1_graph, _guidance(ota1_graph))
        assert np.isfinite(out.data).all()

    def test_homogeneous_has_fewer_parameters(self, ota1_graph):
        dims = (ota1_graph.ap_features.shape[1],
                ota1_graph.module_features.shape[1])
        hetero = Gnn3d(*dims, Gnn3dConfig(hidden=16, heterogeneous=True))
        homo = Gnn3d(*dims, Gnn3dConfig(hidden=16, heterogeneous=False))
        assert homo.num_parameters() < hetero.num_parameters()

    def test_seed_changes_parameters(self, ota1_graph):
        dims = (ota1_graph.ap_features.shape[1],
                ota1_graph.module_features.shape[1])
        a = Gnn3d(*dims, Gnn3dConfig(hidden=16, seed=0))
        b = Gnn3d(*dims, Gnn3dConfig(hidden=16, seed=1))
        # Compare a weight matrix (parameters()[0] is a zero-init bias).
        pa = a.ap_embed.layers[0].weight.data
        pb = b.ap_embed.layers[0].weight.data
        assert not np.allclose(pa, pb)


class TestTrainer:
    def _samples(self, graph, n=12, seed=0):
        """Synthetic learnable task: targets depend on mean guidance."""
        rng = np.random.default_rng(seed)
        samples = []
        for _ in range(n):
            c = rng.uniform(0.3, 3.0, size=(graph.num_aps, 3))
            mean = c.mean()
            targets = np.array([mean, -mean, 0.5 * mean, 1.0, 0.0])
            samples.append(TrainSample(guidance=c, targets=targets))
        return samples

    def test_loss_decreases(self, ota1_graph):
        model = Gnn3d(
            ota1_graph.ap_features.shape[1],
            ota1_graph.module_features.shape[1],
            Gnn3dConfig(hidden=16, num_layers=2, seed=0),
        )
        trainer = Trainer(model, ota1_graph,
                          TrainConfig(epochs=15, lr=5e-3, val_fraction=0.0,
                                      patience=0))
        history = trainer.fit(self._samples(ota1_graph, n=16))
        assert history.train_loss[-1] < history.train_loss[0]

    def test_validation_tracked(self, ota1_graph):
        model = Gnn3d(
            ota1_graph.ap_features.shape[1],
            ota1_graph.module_features.shape[1],
            Gnn3dConfig(hidden=8, num_layers=1, seed=0),
        )
        trainer = Trainer(model, ota1_graph,
                          TrainConfig(epochs=4, val_fraction=0.25, patience=0))
        history = trainer.fit(self._samples(ota1_graph, n=8))
        assert len(history.val_loss) == len(history.train_loss)
        assert np.isfinite(history.best_val)

    def test_too_few_samples_raises(self, ota1_graph, model):
        trainer = Trainer(model, ota1_graph, TrainConfig(epochs=1))
        with pytest.raises(ValueError):
            trainer.fit(self._samples(ota1_graph, n=1))

    def test_early_stopping_caps_epochs(self, ota1_graph):
        model = Gnn3d(
            ota1_graph.ap_features.shape[1],
            ota1_graph.module_features.shape[1],
            Gnn3dConfig(hidden=8, num_layers=1, seed=0),
        )
        trainer = Trainer(model, ota1_graph,
                          TrainConfig(epochs=50, val_fraction=0.25, patience=2,
                                      lr=1e-9))
        history = trainer.fit(self._samples(ota1_graph, n=8))
        assert len(history.train_loss) < 50
