"""Tests for SPICE / JSON / DEF persistence."""

import numpy as np
import pytest

from repro.io import (
    load_guidance,
    load_placement,
    routing_to_def_text,
    save_guidance,
    save_placement,
)
from repro.io.spice import circuit_to_spice, read_spice, spice_to_circuit, write_spice
from repro.netlist import build_benchmark
from repro.netlist.nets import Net, NetType
from repro.reliability.errors import SpiceParseError
from repro.router.guidance import RoutingGuidance, uniform_guidance


class TestSpiceRoundTrip:
    @pytest.mark.parametrize("name", ["OTA1", "OTA3"])
    def test_roundtrip_preserves_structure(self, name):
        original = build_benchmark(name)
        restored = spice_to_circuit(circuit_to_spice(original))

        assert restored.name == original.name
        assert restored.topology == original.topology
        assert set(restored.devices) == set(original.devices)
        assert set(restored.nets) == set(original.nets)
        assert restored.stats() == original.stats()

    def test_roundtrip_preserves_connectivity(self, ota1):
        restored = spice_to_circuit(circuit_to_spice(ota1))
        for net_name, net in ota1.nets.items():
            assert sorted(restored.net(net_name).connections) == sorted(
                net.connections)

    def test_roundtrip_preserves_net_metadata(self, ota1):
        restored = spice_to_circuit(circuit_to_spice(ota1))
        for net_name, net in ota1.nets.items():
            r = restored.net(net_name)
            assert r.net_type == net.net_type
            assert r.weight == net.weight
            assert r.self_symmetric == net.self_symmetric

    def test_roundtrip_preserves_symmetry(self, ota1):
        restored = spice_to_circuit(circuit_to_spice(ota1))
        original_pairs = {(p.net_a, p.net_b, p.device_pairs)
                          for p in ota1.symmetry_pairs}
        restored_pairs = {(p.net_a, p.net_b, p.device_pairs)
                          for p in restored.symmetry_pairs}
        assert restored_pairs == original_pairs

    def test_roundtrip_preserves_sizing(self, ota1):
        restored = spice_to_circuit(circuit_to_spice(ota1))
        mos = ota1.device("MN_IN_L")
        r = restored.device("MN_IN_L")
        assert r.w == mos.w and r.l == mos.l
        assert r.fingers == mos.fingers
        assert r.bias_current == pytest.approx(mos.bias_current)
        assert r.is_bias_device == mos.is_bias_device

    def test_file_roundtrip(self, ota1, tmp_path):
        path = tmp_path / "ota1.sp"
        write_spice(ota1, path)
        assert read_spice(path).stats() == ota1.stats()

    def test_unsupported_card_raises(self):
        with pytest.raises(SpiceParseError) as exc_info:
            spice_to_circuit("Q1 a b c model\n.END\n")
        assert exc_info.value.line_no == 1


class TestSpiceImporterBugs:
    """Regression tests for the importer bugfix sweep."""

    def test_float_sentinel_never_materializes(self, ota1):
        # The writer emits _FLOAT_ for unconnected terminals (bulk pins);
        # the importer must not turn it into a real net shorting them.
        text = circuit_to_spice(ota1)
        assert "_FLOAT_" in text
        restored = spice_to_circuit(text)
        assert "_FLOAT_" not in restored.nets

    def test_float_sentinel_nettype_line_ignored(self):
        text = (
            "* circuit: t\n"
            "MM1 d g s _FLOAT_ nch W=1.0u L=0.1u NF=1\n"
            "*.NETTYPE _FLOAT_ signal WEIGHT=1.0\n"
            ".END\n"
        )
        restored = spice_to_circuit(text)
        assert "_FLOAT_" not in restored.nets

    def test_missing_width_raises_typed_error(self):
        with pytest.raises(SpiceParseError, match="missing W="):
            spice_to_circuit("MM1 d g s b nch L=0.1u\n.END\n")

    def test_non_numeric_value_raises_typed_error(self):
        with pytest.raises(SpiceParseError, match="malformed card"):
            spice_to_circuit("MM1 d g s b nch W=abc L=0.1u\n.END\n")

    def test_duplicate_device_raises_typed_error(self):
        text = ("MM1 d g s b nch W=1u L=0.1u\n"
                "MM1 d2 g2 s2 b2 nch W=1u L=0.1u\n.END\n")
        with pytest.raises(SpiceParseError) as exc_info:
            spice_to_circuit(text)
        assert exc_info.value.line_no == 2

    def test_error_carries_path_from_file(self, tmp_path):
        path = tmp_path / "bad.sp"
        path.write_text("MM1 d g s b nch L=0.1u\n.END\n")
        with pytest.raises(SpiceParseError) as exc_info:
            read_spice(path)
        assert exc_info.value.path == str(path)
        assert str(path) in str(exc_info.value)

    def test_dangling_nettype_net_preserved(self):
        # A declared net with no device terminal used to be silently
        # dropped on import; it must survive with its declared metadata.
        text = (
            "MM1 d g s b nch W=1.0u L=0.1u\n"
            "*.NETTYPE probe output WEIGHT=2.5\n"
            ".END\n"
        )
        restored = spice_to_circuit(text)
        assert "probe" in restored.nets
        probe = restored.net("probe")
        assert probe.net_type == NetType.OUTPUT
        assert probe.weight == 2.5
        assert probe.connections == []

    def test_dangling_net_round_trips(self):
        # Fresh circuit: the session-scoped ota1 fixture is read-only.
        circuit = build_benchmark("OTA1")
        circuit.add_net(Net(name="PROBE", net_type=NetType.SIGNAL, weight=3.0))
        restored = spice_to_circuit(circuit_to_spice(circuit))
        assert "PROBE" in restored.nets
        assert restored.net("PROBE").weight == 3.0


class TestGuidanceIo:
    def test_roundtrip(self, tmp_path):
        guidance = RoutingGuidance(c_max=3.0)
        guidance.set(("M1", "G"), np.array([0.4, 1.2, 2.2]))
        guidance.set(("CC_L", "PLUS"), np.array([1.0, 1.0, 0.3]))
        path = tmp_path / "guide.json"
        save_guidance(guidance, path)
        restored = load_guidance(path)
        assert restored.c_max == 3.0
        for key, vec in guidance.vectors.items():
            np.testing.assert_allclose(restored.get(key), vec)

    def test_empty_guidance(self, tmp_path):
        path = tmp_path / "empty.json"
        save_guidance(uniform_guidance(), path)
        assert load_guidance(path).vectors == {}

    def test_device_names_with_dots_rejected_cleanly(self, tmp_path):
        path = tmp_path / "guide.json"
        path.write_text('{"c_max": 4.0, "vectors": {"nopin": [1, 1, 1]}}')
        with pytest.raises(ValueError):
            load_guidance(path)


class TestPlacementIo:
    def test_roundtrip(self, ota1, ota1_placement, tmp_path):
        path = tmp_path / "place.json"
        save_placement(ota1_placement, path)
        restored = load_placement(ota1, path)
        assert restored.symmetry_axis == ota1_placement.symmetry_axis
        assert restored.variant == ota1_placement.variant
        for name, placed in ota1_placement.positions.items():
            r = restored.positions[name]
            assert (r.x, r.y, r.orientation) == (
                placed.x, placed.y, placed.orientation)
        assert restored.total_hpwl() == pytest.approx(
            ota1_placement.total_hpwl())

    def test_wrong_circuit_rejected(self, ota1_placement, ota3, tmp_path):
        path = tmp_path / "place.json"
        save_placement(ota1_placement, path)
        with pytest.raises(ValueError, match="saved for"):
            load_placement(ota3, path)

    def test_missing_device_rejected(self, ota1, ota1_placement, tmp_path):
        import json
        path = tmp_path / "place.json"
        save_placement(ota1_placement, path)
        payload = json.loads(path.read_text())
        payload["positions"].popitem()
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="misses devices"):
            load_placement(ota1, path)


class TestDefExport:
    def test_def_contains_all_nets(self, ota1_routed):
        result, grid = ota1_routed
        text = routing_to_def_text(result, grid)
        for net in result.routes:
            assert f"- {net}" in text
        assert "END DESIGN" in text

    def test_def_points_on_layers(self, ota1_routed):
        result, grid = ota1_routed
        text = routing_to_def_text(result, grid)
        assert "M1" in text and "ROUTED" in text
