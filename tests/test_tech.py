"""Tests for the technology substrate (layers, rules, technology)."""

import pytest

from repro.tech import (
    DesignRules,
    Direction,
    Layer,
    LayerStack,
    SpacingRule,
    Technology,
    WidthRule,
    generic_40nm,
)
from repro.tech.layers import LayerPurpose, Via


def make_layer(index=0, direction=Direction.HORIZONTAL, **kwargs):
    defaults = dict(
        name=f"M{index + 1}", index=index, direction=direction,
        sheet_resistance=2.0, area_cap=1e-16, fringe_cap=4e-17,
        coupling_cap=8e-17, min_width=0.06, min_spacing=0.06,
    )
    defaults.update(kwargs)
    return Layer(**defaults)


class TestDirection:
    def test_horizontal_axis_is_x(self):
        assert Direction.HORIZONTAL.axis == 0

    def test_vertical_axis_is_y(self):
        assert Direction.VERTICAL.axis == 1

    def test_orthogonal_is_involution(self):
        for d in Direction:
            assert d.orthogonal().orthogonal() is d


class TestLayer:
    def test_wire_resistance_scales_with_length(self):
        layer = make_layer()
        assert layer.wire_resistance(2.0, 0.1) == pytest.approx(
            2.0 * layer.wire_resistance(1.0, 0.1))

    def test_wire_resistance_uses_min_width_default(self):
        layer = make_layer()
        assert layer.wire_resistance(1.0) == pytest.approx(
            layer.sheet_resistance / layer.min_width)

    def test_negative_length_raises(self):
        with pytest.raises(ValueError):
            make_layer().wire_resistance(-1.0)

    def test_zero_width_raises(self):
        with pytest.raises(ValueError):
            make_layer().wire_resistance(1.0, 0.0)

    def test_ground_cap_has_area_and_fringe(self):
        layer = make_layer()
        cap = layer.wire_ground_cap(1.0, 0.1)
        assert cap == pytest.approx(layer.area_cap * 0.1 + layer.fringe_cap * 2.0)

    def test_default_purpose_is_routing(self):
        assert make_layer().purpose is LayerPurpose.ROUTING


class TestLayerStack:
    def _stack(self, n=3):
        layers = [
            make_layer(i, Direction.HORIZONTAL if i % 2 == 0 else Direction.VERTICAL)
            for i in range(n)
        ]
        vias = [Via(name=f"V{i}", lower=i, resistance=4.0, cap=1e-17)
                for i in range(n - 1)]
        return LayerStack(layers=layers, vias=vias)

    def test_num_layers(self):
        assert self._stack(3).num_layers == 3

    def test_by_name(self):
        stack = self._stack()
        assert stack.by_name("M2").index == 1

    def test_by_name_missing_raises(self):
        with pytest.raises(KeyError):
            self._stack().by_name("M9")

    def test_via_between_order_insensitive(self):
        stack = self._stack()
        assert stack.via_between(0, 1) is stack.via_between(1, 0)

    def test_via_between_nonadjacent_raises(self):
        with pytest.raises(ValueError):
            self._stack().via_between(0, 2)

    def test_wrong_layer_index_raises(self):
        with pytest.raises(ValueError):
            LayerStack(layers=[make_layer(index=1)], vias=[])

    def test_missing_vias_raises(self):
        layers = [make_layer(0), make_layer(1, Direction.VERTICAL)]
        with pytest.raises(ValueError):
            LayerStack(layers=layers, vias=[])


class TestDesignRules:
    def _rules(self, pitch=0.2):
        return DesignRules(
            width_rules=[WidthRule(0, 0.06, 0.08), WidthRule(1, 0.06, 0.08)],
            spacing_rules=[SpacingRule(0, 0.06), SpacingRule(1, 0.06)],
            grid_pitch=pitch,
        )

    def test_grid_roundtrip(self):
        rules = self._rules()
        assert rules.to_grid(rules.to_um(7)) == 7

    def test_to_grid_snaps_to_nearest(self):
        rules = self._rules(pitch=0.2)
        assert rules.to_grid(0.29) == 1
        assert rules.to_grid(0.31) == 2

    def test_pitch_must_fit_width_plus_spacing(self):
        with pytest.raises(ValueError):
            self._rules(pitch=0.1)

    def test_default_width_lookup(self):
        assert self._rules().default_width(1) == 0.08

    def test_invalid_width_rule(self):
        with pytest.raises(ValueError):
            WidthRule(0, min_width=0.06, default_width=0.05)

    def test_nonpositive_spacing_raises(self):
        with pytest.raises(ValueError):
            SpacingRule(0, min_spacing=0.0)


class TestGeneric40nm:
    def test_default_has_four_layers(self):
        assert generic_40nm().num_layers == 4

    def test_alternating_directions(self):
        tech = generic_40nm()
        for i in range(tech.num_layers):
            expected = Direction.HORIZONTAL if i % 2 == 0 else Direction.VERTICAL
            assert tech.layer(i).direction is expected

    def test_sheet_resistance_decreases_upward(self):
        tech = generic_40nm(num_layers=6)
        rs = [tech.layer(i).sheet_resistance for i in range(6)]
        assert rs == sorted(rs, reverse=True)

    def test_layer_count_bounds(self):
        with pytest.raises(ValueError):
            generic_40nm(num_layers=1)
        with pytest.raises(ValueError):
            generic_40nm(num_layers=7)

    def test_rules_align_with_stack(self):
        tech = generic_40nm(num_layers=3)
        assert tech.rules.num_layers == tech.stack.num_layers

    def test_technology_rejects_misaligned_rules(self):
        tech = generic_40nm()
        bad_rules = DesignRules(
            width_rules=[WidthRule(0, 0.06, 0.08)],
            spacing_rules=[SpacingRule(0, 0.06)],
            grid_pitch=0.2,
        )
        with pytest.raises(ValueError):
            Technology(name="bad", stack=tech.stack, rules=bad_rules)
