"""Tests for Monte-Carlo mismatch analysis."""

import pytest

from repro.extraction import extract_schematic
from repro.simulation.montecarlo import monte_carlo


class TestMonteCarlo:
    @pytest.fixture(scope="class")
    def schematic_mc(self, ota1):
        para = extract_schematic(list(ota1.nets))
        return monte_carlo(ota1, para, num_draws=8, mismatch_sigma=5e-7)

    def test_draw_count(self, schematic_mc):
        assert schematic_mc.num_draws == 8
        assert len(schematic_mc.cmrrs_db) == 8

    def test_draws_differ(self, schematic_mc):
        assert len(set(schematic_mc.offsets_uv)) > 1
        assert len(set(schematic_mc.cmrrs_db)) > 1

    def test_statistics_consistent(self, schematic_mc):
        assert schematic_mc.offset_sigma_uv() >= 0
        assert schematic_mc.cmrr_worst_db() <= schematic_mc.cmrr_median_db()

    def test_restores_circuit_name(self, ota1):
        para = extract_schematic(list(ota1.nets))
        monte_carlo(ota1, para, num_draws=2)
        assert ota1.name == "OTA1"

    def test_deterministic(self, ota1):
        para = extract_schematic(list(ota1.nets))
        a = monte_carlo(ota1, para, num_draws=3)
        b = monte_carlo(ota1, para, num_draws=3)
        assert a.offsets_uv == b.offsets_uv
        assert a.cmrrs_db == b.cmrrs_db

    def test_larger_sigma_larger_spread(self, ota1):
        para = extract_schematic(list(ota1.nets))
        small = monte_carlo(ota1, para, num_draws=6, mismatch_sigma=1e-8)
        large = monte_carlo(ota1, para, num_draws=6, mismatch_sigma=1e-5)
        assert large.offset_sigma_uv() > small.offset_sigma_uv()

    def test_layout_raises_offset_floor(self, ota1, ota1_parasitics):
        schem = monte_carlo(ota1, extract_schematic(list(ota1.nets)),
                            num_draws=4)
        layout = monte_carlo(ota1, ota1_parasitics, num_draws=4)
        assert layout.offset_mean_uv() >= schem.offset_mean_uv()

    def test_invalid_draws(self, ota1):
        with pytest.raises(ValueError):
            monte_carlo(ota1, extract_schematic(list(ota1.nets)), num_draws=0)
