"""Engine mechanics: suppressions, baseline, config, output, CLI."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.lint import (
    Baseline,
    LintConfig,
    lint_source,
    load_baseline,
    load_config,
    run_lint,
    write_baseline,
)
from repro.lint.__main__ import main
from repro.lint.engine import (
    PARSE_ERROR_ID,
    LintResult,
    iter_python_files,
    _module_name,
)
from repro.lint.findings import Finding
from repro.lint.output import render
from repro.lint.suppress import parse_suppressions

FIXTURES = pathlib.Path(__file__).parent / "lint_fixtures"

BAD_CLOCK = "import time\nstart = time.time()\n"


class TestSuppressions:
    def test_same_line(self):
        src = "import time\nt = time.time()  # repro-lint: disable=CLK001\n"
        findings, suppressed = lint_source(src, "x.py")
        assert findings == [] and suppressed == 1

    def test_next_line(self):
        src = ("import time\n"
               "# repro-lint: disable-next-line=CLK001 -- wall stamp\n"
               "t = time.time()\n")
        findings, suppressed = lint_source(src, "x.py")
        assert findings == [] and suppressed == 1

    def test_file_wide_and_all(self):
        src = ("# repro-lint: disable-file=all\n"
               "import time, random\n"
               "t = time.time()\n")
        findings, suppressed = lint_source(src, "x.py")
        assert findings == [] and suppressed == 2

    def test_wrong_rule_id_does_not_suppress(self):
        src = "import time\nt = time.time()  # repro-lint: disable=RNG001\n"
        findings, _ = lint_source(src, "x.py")
        assert [f.rule_id for f in findings] == ["CLK001"]

    def test_ids_case_insensitive_and_comma_separated(self):
        sup = parse_suppressions(
            "x = 1  # repro-lint: disable=clk001, num001 -- why\n")
        assert sup.is_suppressed("CLK001", 1)
        assert sup.is_suppressed("NUM001", 1)
        assert not sup.is_suppressed("CLK001", 2)

    def test_directive_inside_string_is_inert(self):
        src = ("import time\n"
               "note = '# repro-lint: disable-file=all'\n"
               "t = time.time()\n")
        findings, _ = lint_source(src, "x.py")
        assert [f.rule_id for f in findings] == ["CLK001"]


class TestBaseline:
    def _findings(self):
        findings, _ = lint_source(BAD_CLOCK, "pkg/mod.py")
        assert len(findings) == 1
        return findings

    def test_round_trip(self, tmp_path):
        findings = self._findings()
        path = write_baseline(tmp_path / "base.json", findings)
        baseline = load_baseline(path)
        new, matched, stale = baseline.partition(findings)
        assert new == [] and matched == findings and stale == set()

    def test_line_number_drift_keeps_matching(self, tmp_path):
        path = write_baseline(tmp_path / "base.json", self._findings())
        drifted, _ = lint_source("\n\n\n" + BAD_CLOCK, "pkg/mod.py")
        new, matched, stale = load_baseline(path).partition(drifted)
        assert new == [] and len(matched) == 1 and stale == set()

    def test_stale_entries_reported(self, tmp_path):
        path = write_baseline(tmp_path / "base.json", self._findings())
        new, matched, stale = load_baseline(path).partition([])
        assert new == [] and matched == [] and len(stale) == 1

    def test_occurrence_disambiguation(self):
        src = "import time\nstart = time.time()\nstop = time.time()\n"
        findings, _ = lint_source(src, "x.py")
        assert len(findings) == 2
        baseline = Baseline()
        _, fps = [], []
        from repro.lint.baseline import _fingerprints
        fps = _fingerprints(findings)
        assert len(set(fps)) == 2  # same rule/path/text, distinct index
        baseline.entries = {fps[0]}
        new, matched, _ = baseline.partition(findings)
        assert len(new) == 1 and len(matched) == 1

    def test_missing_file_is_empty(self, tmp_path):
        assert len(load_baseline(tmp_path / "nope.json")) == 0

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text('{"version": 99, "entries": []}')
        with pytest.raises(ValueError, match="version"):
            load_baseline(path)


class TestConfig:
    def test_defaults_without_pyproject(self, tmp_path):
        config = load_config(tmp_path)
        assert config.paths == ("src/repro",)
        assert config.baseline == "lint-baseline.json"

    def test_reads_tool_table(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            '[tool.repro-lint]\n'
            'paths = ["lib"]\n'
            'baseline = "base.json"\n'
            'ignore = ["num001"]\n'
            'exclude = ["lib/vendored/*"]\n')
        config = load_config(tmp_path)
        assert config.paths == ("lib",)
        assert config.baseline == "base.json"
        assert config.ignored() == {"NUM001"}
        assert config.exclude == ("lib/vendored/*",)

    def test_bad_types_rejected(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            '[tool.repro-lint]\npaths = "src"\n')
        with pytest.raises(ValueError, match="paths"):
            load_config(tmp_path)


class TestEngine:
    def test_syntax_error_becomes_parse_finding(self):
        findings, _ = lint_source("def broken(:\n", "x.py")
        assert [f.rule_id for f in findings] == [PARSE_ERROR_ID]

    def test_module_name_derivation(self):
        assert _module_name("src/repro/core/dataset.py") == (
            "repro.core.dataset")
        assert _module_name("src/repro/lint/__init__.py") == "repro.lint"
        assert _module_name("tests/test_core.py") == "tests.test_core"

    def test_stage_scoping_applies_from_real_paths(self):
        findings, _ = lint_source("raise RuntimeError('x')\n",
                                  "src/repro/router/astar.py")
        assert "EXC002" in {f.rule_id for f in findings}

    def test_exclude_patterns(self, tmp_path):
        (tmp_path / "keep.py").write_text("x = 1\n")
        (tmp_path / "skip.py").write_text("x = 1\n")
        files = iter_python_files([tmp_path], tmp_path, exclude=("skip.py",))
        assert [p.name for p in files] == ["keep.py"]

    def test_run_lint_end_to_end(self, tmp_path):
        (tmp_path / "mod.py").write_text(BAD_CLOCK)
        config = LintConfig(root=tmp_path, paths=("mod.py",), baseline=None)
        result = run_lint(config=config)
        assert result.files_checked == 1
        assert [f.rule_id for f in result.findings] == ["CLK001"]
        assert not result.clean


class TestOutput:
    def _result(self):
        findings, _ = lint_source(BAD_CLOCK, "pkg/mod.py")
        return LintResult(findings=findings, files_checked=1)

    def test_text(self):
        text = render(self._result(), "text")
        assert "pkg/mod.py:2:9: CLK001" in text
        assert "1 finding in 1 files" in text

    def test_json(self):
        payload = json.loads(render(self._result(), "json"))
        assert payload["files_checked"] == 1
        assert payload["findings"][0]["rule"] == "CLK001"
        assert payload["findings"][0]["line"] == 2

    def test_github_annotations_escaped(self):
        result = LintResult(findings=[Finding(
            path="a.py", line=3, col=1, rule_id="XYZ001",
            message="50% broken\nnewline")], files_checked=1)
        out = render(result, "github")
        assert "::error file=a.py,line=3,col=1" in out
        assert "50%25 broken%0Anewline" in out

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="unknown format"):
            render(self._result(), "xml")


class TestCli:
    def _write_tree(self, tmp_path, source=BAD_CLOCK):
        (tmp_path / "pyproject.toml").write_text(
            '[tool.repro-lint]\npaths = ["mod.py"]\n'
            'baseline = "base.json"\n')
        (tmp_path / "mod.py").write_text(source)
        return tmp_path

    def test_findings_exit_1(self, tmp_path, capsys):
        root = self._write_tree(tmp_path)
        assert main(["--root", str(root)]) == 1
        assert "CLK001" in capsys.readouterr().out

    def test_clean_exit_0(self, tmp_path, capsys):
        root = self._write_tree(tmp_path, "x = 1\n")
        assert main(["--root", str(root)]) == 0

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        root = self._write_tree(tmp_path)
        assert main(["--root", str(root), "--write-baseline"]) == 0
        assert (root / "base.json").exists()
        assert main(["--root", str(root)]) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_strict_baseline_flags_stale(self, tmp_path, capsys):
        root = self._write_tree(tmp_path)
        assert main(["--root", str(root), "--write-baseline"]) == 0
        (root / "mod.py").write_text("x = 1\n")
        assert main(["--root", str(root)]) == 0
        assert main(["--root", str(root), "--strict-baseline"]) == 1

    def test_select_and_ignore(self, tmp_path, capsys):
        root = self._write_tree(tmp_path)
        assert main(["--root", str(root), "--select", "NUM001"]) == 0
        assert main(["--root", str(root), "--ignore", "CLK001"]) == 0
        assert main(["--root", str(root), "--select", "CLK001"]) == 1

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RNG001", "CLK001", "EXC002", "OBS001", "NUM003"):
            assert rule_id in out

    def test_json_format(self, tmp_path, capsys):
        root = self._write_tree(tmp_path)
        assert main(["--root", str(root), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "CLK001"

    def test_github_format(self, tmp_path, capsys):
        root = self._write_tree(tmp_path)
        assert main(["--root", str(root), "--format", "github"]) == 1
        assert "::error file=mod.py,line=2" in capsys.readouterr().out

class TestDecoratorSuppression:
    """Regression: findings anchored at a decorator line and directives
    anchored at the ``def`` line (or vice versa) must pair up — the
    decorated statement is one unit for suppression purposes."""

    _BAD = ("from functools import lru_cache\n"
            "class C:\n"
            "    @lru_cache(maxsize=8)\n"
            "    def method(self, x):\n"
            "        return x\n")

    def test_num003_fires_at_the_decorator_line(self):
        findings, _ = lint_source(self._BAD, "x.py")
        assert [(f.rule_id, f.line) for f in findings] == [("NUM003", 3)]

    def test_directive_between_decorator_and_def_suppresses(self):
        src = ("from functools import lru_cache\n"
               "class C:\n"
               "    @lru_cache(maxsize=8)\n"
               "    # repro-lint: disable-next-line=NUM003 -- test pin\n"
               "    def method(self, x):\n"
               "        return x\n")
        findings, suppressed = lint_source(src, "x.py")
        assert findings == [] and suppressed == 1

    def test_directive_above_decorator_suppresses(self):
        src = ("from functools import lru_cache\n"
               "class C:\n"
               "    # repro-lint: disable-next-line=NUM003 -- test pin\n"
               "    @lru_cache(maxsize=8)\n"
               "    def method(self, x):\n"
               "        return x\n")
        findings, suppressed = lint_source(src, "x.py")
        assert findings == [] and suppressed == 1

    def test_same_line_on_def_suppresses_decorator_finding(self):
        src = ("from functools import lru_cache\n"
               "class C:\n"
               "    @lru_cache(maxsize=8)\n"
               "    def method(self, x):  # repro-lint: disable=NUM003\n"
               "        return x\n")
        findings, suppressed = lint_source(src, "x.py")
        assert findings == [] and suppressed == 1

    def test_wrong_id_between_decorator_and_def_does_not_suppress(self):
        src = ("from functools import lru_cache\n"
               "class C:\n"
               "    @lru_cache(maxsize=8)\n"
               "    # repro-lint: disable-next-line=CLK001 -- wrong id\n"
               "    def method(self, x):\n"
               "        return x\n")
        findings, _ = lint_source(src, "x.py")
        assert [f.rule_id for f in findings] == ["NUM003"]


class TestSummaryCache:
    def _entry_args(self):
        import ast

        from repro.lint.cache import source_digest
        from repro.lint.summaries import summarize_module

        source = "def f():\n    return 1\n"
        summary = summarize_module(ast.parse(source), "m", "m.py")
        return source, summary

    def test_round_trip(self, tmp_path):
        from repro.lint.cache import SummaryCache, source_digest

        source, summary = self._entry_args()
        digest = source_digest(source)
        cache = SummaryCache(tmp_path)
        assert cache.get("m.py", digest, "A1") is None
        cache.put("m.py", digest, summary, [], 2, "A1")
        entry = cache.get("m.py", digest, "A1")
        assert entry is not None
        assert entry.summary.module == "m" and entry.suppressed == 2
        assert cache.hits == 1 and cache.misses == 1

    def test_digest_mismatch_misses(self, tmp_path):
        from repro.lint.cache import SummaryCache, source_digest

        source, summary = self._entry_args()
        cache = SummaryCache(tmp_path)
        cache.put("m.py", source_digest(source), summary, [], 0, "A1")
        assert cache.get("m.py", source_digest(source + "#"), "A1") is None

    def test_different_rule_selection_misses(self, tmp_path):
        # Findings cached under --ignore X must not serve a --select X
        # run: the rule set is part of the cache key.
        from repro.lint.cache import SummaryCache, source_digest

        source, summary = self._entry_args()
        digest = source_digest(source)
        cache = SummaryCache(tmp_path)
        cache.put("m.py", digest, summary, [], 0, "CLK001,NUM001")
        assert cache.get("m.py", digest, "NUM001") is None
        assert cache.get("m.py", digest, "CLK001,NUM001") is not None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        from repro.lint.cache import SummaryCache, source_digest

        source, summary = self._entry_args()
        digest = source_digest(source)
        cache = SummaryCache(tmp_path)
        cache.put("m.py", digest, summary, [], 0, "")
        for entry_file in cache.path.glob("*.json"):
            entry_file.write_text("{not json")
        assert cache.get("m.py", digest, "") is None


class TestIncremental:
    """--changed-only semantics: dirty modules plus reverse importers."""

    def _tree(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            '[tool.repro-lint]\npaths = ["a.py", "b.py", "c.py"]\n')
        (tmp_path / "a.py").write_text("def fa():\n    return 1\n")
        (tmp_path / "b.py").write_text(
            "import a\ndef fb():\n    return a.fa()\n")
        (tmp_path / "c.py").write_text(
            "import b\ndef fc():\n    return b.fb()\n")
        return load_config(tmp_path)

    def test_warm_cache_skips_reanalysis(self, tmp_path):
        from repro.lint.cache import SummaryCache

        config = self._tree(tmp_path)
        cache = SummaryCache(tmp_path)
        cold = run_lint(config=config, cache=cache, changed_only=True)
        assert cold.cache_misses == 3 and cold.cache_hits == 0
        warm = run_lint(config=config, cache=SummaryCache(tmp_path),
                        changed_only=True)
        assert warm.cache_hits == 3 and warm.cache_misses == 0
        assert warm.reanalyzed == []

    def test_touching_a_module_reanalyzes_reverse_dependents(self, tmp_path):
        from repro.lint.cache import SummaryCache

        config = self._tree(tmp_path)
        run_lint(config=config, cache=SummaryCache(tmp_path),
                 changed_only=True)
        (tmp_path / "b.py").write_text(
            "import a\ndef fb():\n    return a.fa() + 1\n")
        result = run_lint(config=config, cache=SummaryCache(tmp_path),
                         changed_only=True)
        assert result.cache_misses == 1  # only b.py re-parsed
        assert set(result.reanalyzed) == {"b", "c"}  # b + importer c

    def test_touching_the_root_fans_out_to_everything(self, tmp_path):
        from repro.lint.cache import SummaryCache

        config = self._tree(tmp_path)
        run_lint(config=config, cache=SummaryCache(tmp_path),
                 changed_only=True)
        (tmp_path / "a.py").write_text("def fa():\n    return 2\n")
        result = run_lint(config=config, cache=SummaryCache(tmp_path),
                         changed_only=True)
        assert set(result.reanalyzed) == {"a", "b", "c"}

    def test_jobs_parallel_matches_serial(self, tmp_path):
        config = self._tree(tmp_path)
        (tmp_path / "d.py").write_text(BAD_CLOCK)
        config = LintConfig(root=tmp_path,
                            paths=("a.py", "b.py", "c.py", "d.py"),
                            baseline=None)
        serial = run_lint(config=config, jobs=1)
        parallel = run_lint(config=config, jobs=2)
        key = lambda f: (f.path, f.line, f.col, f.rule_id, f.message)
        assert sorted(map(key, serial.findings)) == sorted(
            map(key, parallel.findings))
        assert serial.files_checked == parallel.files_checked == 4


class TestCliIncrementalFlags:
    def _write_tree(self, tmp_path, source=BAD_CLOCK):
        (tmp_path / "pyproject.toml").write_text(
            '[tool.repro-lint]\npaths = ["mod.py"]\n'
            'baseline = "base.json"\n')
        (tmp_path / "mod.py").write_text(source)
        return tmp_path

    def test_cache_warm_run_reports_hits(self, tmp_path, capsys):
        root = self._write_tree(tmp_path, "x = 1\n")
        assert main(["--root", str(root)]) == 0
        assert main(["--root", str(root)]) == 0
        out = capsys.readouterr().out
        assert "cache 1 hit" in out
        assert (root / ".lint-cache").is_dir()

    def test_no_cache_leaves_no_directory(self, tmp_path, capsys):
        root = self._write_tree(tmp_path, "x = 1\n")
        assert main(["--root", str(root), "--no-cache"]) == 0
        assert not (root / ".lint-cache").exists()

    def test_changed_only_warm_run_stays_correct(self, tmp_path, capsys):
        root = self._write_tree(tmp_path)
        assert main(["--root", str(root), "--changed-only"]) == 1
        assert main(["--root", str(root), "--changed-only"]) == 1

    def test_jobs_flag_matches_serial_exit(self, tmp_path, capsys):
        root = self._write_tree(tmp_path)
        assert main(["--root", str(root), "--no-cache",
                     "--jobs", "2"]) == 1
        assert "CLK001" in capsys.readouterr().out

    def test_max_seconds_gate_fails_on_overrun(self, tmp_path, capsys):
        root = self._write_tree(tmp_path, "x = 1\n")
        assert main(["--root", str(root), "--max-seconds", "0.0"]) == 1
        assert "wall time" in capsys.readouterr().err

    def test_write_exceptions_creates_the_doc(self, tmp_path, capsys):
        root = self._write_tree(tmp_path, "x = 1\n")
        assert main(["--root", str(root), "--write-exceptions"]) == 0
        doc = root / "docs" / "EXCEPTIONS.md"
        assert doc.exists()
        assert "Exception contracts" in doc.read_text()
