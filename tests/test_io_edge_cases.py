"""Additional IO edge cases and CLI guidance plumbing."""

import numpy as np
import pytest

from repro.cli import main
from repro.io import save_guidance
from repro.io.spice import circuit_to_spice, spice_to_circuit
from repro.netlist.extensions import build_folded_cascode
from repro.router.guidance import RoutingGuidance


class TestSpiceEdgeCases:
    def test_folded_cascode_roundtrip(self):
        original = build_folded_cascode()
        restored = spice_to_circuit(circuit_to_spice(original))
        assert restored.stats() == original.stats()
        assert len(restored.symmetry_pairs) == len(original.symmetry_pairs)

    def test_mosfet_without_optional_fields(self):
        text = (
            "MM0 d g s b nch W=2.0u L=0.06u\n"
            "RRA d 0 1000\n"
            "RRB g 0 1000\n"
            "RRC s 0 1000\n"
            "RRD b 0 1000\n"
            ".END\n"
        )
        circuit = spice_to_circuit(text)
        mos = circuit.device("M0")
        assert mos.fingers == 1
        assert not mos.is_bias_device

    def test_float_suffix_parsing(self):
        text = "CCA a 0 1e-12\nRRA a 0 1e3\n.END\n"
        circuit = spice_to_circuit(text)
        assert circuit.device("CA").value == pytest.approx(1e-12)
        assert circuit.device("RA").value == pytest.approx(1e3)

    def test_topology_preserved(self):
        original = build_folded_cascode()
        restored = spice_to_circuit(circuit_to_spice(original))
        assert restored.topology == original.topology


class TestCliGuidancePlumbing:
    def test_route_with_guidance_file(self, tmp_path, capsys):
        place_file = tmp_path / "p.json"
        main(["place", "OTA1", "--iterations", "40", "--out", str(place_file)])

        guidance = RoutingGuidance()
        guidance.set(("MN_IN_L", "D"), np.array([0.3, 2.0, 1.0]))
        guide_file = tmp_path / "g.json"
        save_guidance(guidance, guide_file)

        code = main(["route", "OTA1", "--placement", str(place_file),
                     "--guidance", str(guide_file)])
        assert code == 0
        assert "success=True" in capsys.readouterr().out
