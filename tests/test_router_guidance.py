"""Tests for the non-uniform routing guidance container."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.router.guidance import (
    NEUTRAL_COST,
    RoutingGuidance,
    random_guidance,
    uniform_guidance,
)


class TestRoutingGuidance:
    def test_unset_key_is_neutral(self):
        guidance = RoutingGuidance()
        assert (guidance.get(("M1", "G")) == NEUTRAL_COST).all()

    def test_set_get_roundtrip(self):
        guidance = RoutingGuidance()
        vec = np.array([0.5, 1.5, 2.5])
        guidance.set(("M1", "G"), vec)
        assert (guidance.get(("M1", "G")) == vec).all()

    def test_set_bad_shape_raises(self):
        with pytest.raises(ValueError):
            RoutingGuidance().set(("M1", "G"), np.ones(4))

    def test_constructor_validates_shapes(self):
        with pytest.raises(ValueError):
            RoutingGuidance(vectors={("a", "b"): np.ones((2, 3))})

    def test_as_array_order(self):
        guidance = RoutingGuidance()
        guidance.set(("a", "p"), np.array([1.0, 2.0, 3.0]))
        guidance.set(("b", "q"), np.array([4.0, 5.0, 6.0]))
        arr = guidance.as_array([("b", "q"), ("a", "p")])
        assert arr.shape == (2, 3)
        assert (arr[0] == [4.0, 5.0, 6.0]).all()

    def test_as_array_empty(self):
        assert RoutingGuidance().as_array([]).shape == (0, 3)

    def test_clip_to_feasible(self):
        guidance = RoutingGuidance(c_max=4.0)
        guidance.set(("a", "p"), np.array([-1.0, 2.0, 99.0]))
        guidance.clip_to_feasible(margin=0.01)
        vec = guidance.get(("a", "p"))
        assert vec.min() >= 0.01
        assert vec.max() <= 4.0 - 0.01

    def test_copy_is_deep(self):
        guidance = RoutingGuidance()
        guidance.set(("a", "p"), np.ones(3))
        clone = guidance.copy()
        clone.get(("a", "p"))[0] = 99.0
        assert guidance.get(("a", "p"))[0] == 1.0

    def test_net_vector_is_mean(self, ota1_grid):
        aps = ota1_grid.access_points["NET1L"][:2]
        guidance = RoutingGuidance()
        guidance.set(aps[0].key, np.array([0.0, 0.0, 0.0]))
        guidance.set(aps[1].key, np.array([2.0, 2.0, 2.0]))
        assert (guidance.net_vector(list(aps)) == 1.0).all()

    def test_net_vector_empty_is_neutral(self):
        assert (RoutingGuidance().net_vector([]) == NEUTRAL_COST).all()


class TestFactories:
    def test_uniform_guidance_values(self):
        keys = [("a", "p"), ("b", "q")]
        guidance = uniform_guidance(keys, value=2.0)
        for key in keys:
            assert (guidance.get(key) == 2.0).all()

    @given(st.integers(0, 2 ** 31 - 1))
    def test_random_guidance_in_feasible_region(self, seed):
        rng = np.random.default_rng(seed)
        keys = [("a", "p"), ("b", "q"), ("c", "r")]
        guidance = random_guidance(keys, rng, c_max=4.0)
        for key in keys:
            vec = guidance.get(key)
            assert (vec > 0.0).all()
            assert (vec < 4.0).all()

    def test_random_guidance_deterministic_per_seed(self):
        keys = [("a", "p")]
        a = random_guidance(keys, np.random.default_rng(5))
        b = random_guidance(keys, np.random.default_rng(5))
        assert (a.get(keys[0]) == b.get(keys[0])).all()
