"""Serving layer: model registry integrity and the scoring service.

The contracts under test:

* a registry checkpoint round-trips — save → load → score equals the
  original model's direct forwards to 1e-10 on every benchmark circuit;
* every integrity violation (corrupt weights, wrong graph, missing or
  mutated manifest, unknown model) raises a typed ``ServeError``;
* the service coalesces waves, preserves submission order, rejects at
  the admission boundary, degrades — never crashes — on mid-flight
  cache invalidation or forward errors, and counts all of it through
  ``repro.obs``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.graph import build_hetero_graph
from repro.model.gnn3d import Gnn3d, Gnn3dConfig
from repro.netlist import build_benchmark
from repro.nn import Tensor
from repro.obs import RunContext
from repro.placement import place_benchmark
from repro.reliability import ServeError
from repro.router import RoutingGrid
from repro.serve import (
    ModelManifest,
    ModelRegistry,
    NORMALIZATION_SCHEME,
    REGISTRY_SCHEMA_VERSION,
    ScoreRequest,
    ScoringService,
    ServeConfig,
)
from repro.tech import generic_40nm

SMALL = Gnn3dConfig(hidden=8, num_layers=1, rbf_centers=4, seed=3)


def small_model(graph, config: Gnn3dConfig = SMALL) -> Gnn3d:
    return Gnn3d(graph.ap_features.shape[1], graph.module_features.shape[1],
                 config)


def guidance_stream(graph, n, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.uniform(0.5, 2.0, size=(graph.num_aps, 3))
            for _ in range(n)]


@pytest.fixture()
def fresh_graph(ota1_placement, tech):
    """A mutable graph per test (the session ``ota1_graph`` is read-only)."""
    return build_hetero_graph(RoutingGrid(ota1_placement, tech))


@pytest.fixture()
def registry(tmp_path):
    return ModelRegistry(tmp_path / "registry")


# -- registry -------------------------------------------------------------------------


class TestModelRegistry:
    def test_save_load_roundtrip_scores_identically(self, fresh_graph,
                                                    registry):
        model = small_model(fresh_graph)
        manifest = registry.save("ota1", model, fresh_graph)
        assert manifest.version == "v0001"
        loaded, loaded_manifest = registry.load("ota1", graph=fresh_graph)
        assert loaded_manifest == manifest
        for guidance in guidance_stream(fresh_graph, 3):
            want = model(fresh_graph, Tensor(guidance)).numpy()
            got = loaded(fresh_graph, Tensor(guidance)).numpy()
            np.testing.assert_array_equal(got, want)

    def test_versions_are_ordinal(self, fresh_graph, registry):
        model = small_model(fresh_graph)
        assert registry.versions("ota1") == []
        registry.save("ota1", model, fresh_graph)
        registry.save("ota1", model, fresh_graph)
        assert registry.versions("ota1") == ["v0001", "v0002"]
        assert registry.latest("ota1") == "v0002"
        _, manifest = registry.load("ota1", "v0001")
        assert manifest.version == "v0001"

    def test_manifest_records_provenance(self, fresh_graph, registry):
        from repro.perf import graph_fingerprint

        manifest = registry.save("ota1", small_model(fresh_graph),
                                 fresh_graph, c_max=3.5)
        assert manifest.schema_version == REGISTRY_SCHEMA_VERSION
        assert manifest.normalization == NORMALIZATION_SCHEME
        assert tuple(manifest.graph_fingerprint) == \
            tuple(graph_fingerprint(fresh_graph))
        assert manifest.gnn_config["hidden"] == SMALL.hidden
        assert manifest.c_max == 3.5
        assert len(manifest.metric_names) == 5
        # And it round-trips through its dict form.
        assert ModelManifest.from_dict(manifest.to_dict()) == manifest

    def test_unknown_model_raises(self, registry):
        with pytest.raises(ServeError, match="no servable versions"):
            registry.load("nope")

    def test_corrupt_weights_detected(self, fresh_graph, registry):
        manifest = registry.save("ota1", small_model(fresh_graph),
                                 fresh_graph)
        weights = (registry.root / "ota1" / manifest.version /
                   "weights.npz")
        with weights.open("ab") as handle:
            handle.write(b"tampered")
        with pytest.raises(ServeError, match="digest mismatch"):
            registry.load("ota1")

    def test_wrong_graph_rejected(self, fresh_graph, registry,
                                  ota1_placement, tech):
        registry.save("ota1", small_model(fresh_graph), fresh_graph)
        other = build_hetero_graph(RoutingGrid(ota1_placement, tech))
        other.ap_positions[0, 0] += 2.0
        with pytest.raises(ServeError, match="fingerprint"):
            registry.load("ota1", graph=other)
        # Without a graph pin, the same load succeeds.
        registry.load("ota1")

    @pytest.mark.parametrize("mutate, match", [
        (lambda d: d.update(normalization="something-else.v9"),
         "normalization"),
        (lambda d: d.update(schema_version=99), "schema"),
        (lambda d: d.update(surprise=1), "unknown fields"),
        (lambda d: d.pop("ap_dim"), "missing fields"),
    ])
    def test_manifest_violations_raise(self, fresh_graph, registry,
                                       mutate, match):
        manifest = registry.save("ota1", small_model(fresh_graph),
                                 fresh_graph)
        path = (registry.root / "ota1" / manifest.version /
                "manifest.json")
        data = json.loads(path.read_text())
        mutate(data)
        path.write_text(json.dumps(data))
        with pytest.raises(ServeError, match=match):
            registry.load_manifest("ota1")


# -- registry durability: atomic saves, tolerant listing, quarantine -----------------


class TestRegistryDurability:
    def test_crashed_save_leaves_no_torn_version(self, fresh_graph,
                                                 registry, monkeypatch):
        import repro.serve.registry as registry_module

        def explode(model, path):
            path.write_bytes(b"partial")  # half-written weights
            raise OSError("disk full")

        monkeypatch.setattr(registry_module, "save_state", explode)
        with pytest.raises(OSError, match="disk full"):
            registry.save("ota1", small_model(fresh_graph), fresh_graph)
        monkeypatch.undo()
        # The crash is invisible: no version, no staging litter, and the
        # next save still claims v0001.
        assert registry.versions("ota1") == []
        assert registry.all_versions("ota1") == []
        assert list((registry.root / "ota1").glob(".tmp-*")) == []
        manifest = registry.save("ota1", small_model(fresh_graph),
                                 fresh_graph)
        assert manifest.version == "v0001"
        registry.load("ota1")

    def test_leftover_staging_is_invisible_and_reclaimed(self, fresh_graph,
                                                         registry):
        registry.save("ota1", small_model(fresh_graph), fresh_graph)
        staging = registry.root / "ota1" / ".tmp-v0002"
        staging.mkdir()
        (staging / "weights.npz").write_bytes(b"torn")
        assert registry.versions("ota1") == ["v0001"]
        assert registry.latest("ota1") == "v0001"
        manifest = registry.save("ota1", small_model(fresh_graph),
                                 fresh_graph)
        assert manifest.version == "v0002"
        assert not staging.exists()
        registry.load("ota1", "v0002")

    def test_bad_manifest_skipped_and_counted(self, fresh_graph, tmp_path):
        obs = RunContext(run_id="registry-test")
        registry = ModelRegistry(tmp_path / "registry", obs=obs)
        registry.save("ota1", small_model(fresh_graph), fresh_graph)
        registry.save("ota1", small_model(fresh_graph), fresh_graph)
        manifest = registry.root / "ota1" / "v0001" / "manifest.json"
        manifest.write_text("{ torn json", encoding="utf-8")
        # One rotten directory does not take the model offline.
        assert registry.versions("ota1") == ["v0002"]
        assert registry.latest("ota1") == "v0002"
        assert registry.all_versions("ota1") == ["v0001", "v0002"]
        registry.load("ota1")
        assert obs.counter_values()[
            "serve_registry_skipped_total{reason=bad_manifest}"] >= 1

    def test_quarantine_hides_version_from_serving(self, fresh_graph,
                                                   tmp_path):
        obs = RunContext(run_id="registry-test")
        registry = ModelRegistry(tmp_path / "registry", obs=obs)
        registry.save("ota1", small_model(fresh_graph), fresh_graph)
        registry.save("ota1", small_model(fresh_graph), fresh_graph)
        registry.quarantine("ota1", "v0002", reason="failed verification")
        assert registry.is_quarantined("ota1", "v0002")
        assert not registry.is_quarantined("ota1", "v0001")
        assert registry.quarantine_reason("ota1", "v0002") == \
            "failed verification"
        assert registry.versions("ota1") == ["v0001"]
        assert registry.latest("ota1") == "v0001"
        # The artifact stays on disk for postmortem.
        assert registry.all_versions("ota1") == ["v0001", "v0002"]
        counters = obs.counter_values()
        assert counters["serve_quarantine_total{model=ota1}"] == 1
        assert counters[
            "serve_registry_skipped_total{reason=quarantined}"] >= 1

    def test_quarantining_everything_raises_servable_error(
            self, fresh_graph, registry):
        registry.save("ota1", small_model(fresh_graph), fresh_graph)
        registry.quarantine("ota1", "v0001", reason="bad")
        with pytest.raises(ServeError, match="no servable versions"):
            registry.latest("ota1")

    def test_quarantine_unknown_version_raises(self, fresh_graph, registry):
        registry.save("ota1", small_model(fresh_graph), fresh_graph)
        with pytest.raises(ServeError, match="no such version"):
            registry.quarantine("ota1", "v0009", reason="bad")


# -- service scoring ------------------------------------------------------------------


class TestScoringParity:
    @pytest.mark.parametrize("circuit", ["OTA1", "OTA2", "OTA3"])
    def test_batched_service_matches_direct_forwards(self, circuit,
                                                     tmp_path):
        placement = place_benchmark(build_benchmark(circuit), variant="A",
                                    seed=0, iterations=60)
        graph = build_hetero_graph(RoutingGrid(placement, generic_40nm()))
        model = small_model(graph)
        registry = ModelRegistry(tmp_path / "reg")
        registry.save(circuit.lower(), model, graph)

        service = ScoringService(ServeConfig(max_batch=8, forward_block=4))
        service.register_checkpoint(circuit.lower(), registry,
                                    circuit.lower(), graph)
        stream = guidance_stream(graph, 6, seed=1)
        results = list(service.score_stream(
            ScoreRequest(circuit.lower(), g) for g in stream))
        assert [r.status for r in results] == ["ok"] * 6
        for guidance, result in zip(stream, results):
            direct = model(graph, Tensor(guidance)).numpy()
            assert np.abs(result.metrics - direct).max() < 1e-10
            w = service._endpoints[circuit.lower()].w_signed
            assert result.fom == pytest.approx(float(w @ direct))

    def test_forward_block_caps_union_size(self, fresh_graph, tmp_path):
        model = small_model(fresh_graph)
        shapes = []
        real_forward = model.forward

        def spying_forward(graph, guidance):
            shapes.append(guidance.data.shape)
            return real_forward(graph, guidance)

        model.forward = spying_forward
        service = ScoringService(ServeConfig(max_batch=8, forward_block=3))
        service.register("g", model, fresh_graph)
        stream = guidance_stream(fresh_graph, 8)
        results = list(service.score_stream(
            ScoreRequest("g", g) for g in stream))
        # One wave of 8, forwards capped at 3: 3 + 3 + 2.
        assert [s[0] for s in shapes] == [3, 3, 2]
        assert all(r.status == "ok" and r.batch_size == 8 for r in results)

    def test_results_in_submission_order_across_graphs(self, fresh_graph,
                                                       ota1_placement,
                                                       tech):
        other = build_hetero_graph(RoutingGrid(ota1_placement, tech))
        model = small_model(fresh_graph)
        service = ScoringService(ServeConfig(max_batch=4))
        service.register("a", model, fresh_graph)
        service.register("b", model, other)
        ids = []
        for i, graph_id in enumerate("abba"):
            queued = service.submit(ScoreRequest(
                graph_id, guidance_stream(fresh_graph, 1, seed=i)[0]))
            ids.append(queued.request_id)
        results = service.flush()
        assert [r.request_id for r in results] == ids
        assert [r.graph_id for r in results] == list("abba")

    def test_score_single(self, fresh_graph):
        model = small_model(fresh_graph)
        service = ScoringService()
        service.register("g", model, fresh_graph)
        guidance = guidance_stream(fresh_graph, 1)[0]
        result = service.score("g", guidance, request_id="mine")
        assert result.request_id == "mine"
        direct = model(fresh_graph, Tensor(guidance)).numpy()
        assert np.abs(result.metrics - direct).max() < 1e-10


class TestAdmissionControl:
    def test_unknown_graph_rejected(self, fresh_graph):
        service = ScoringService()
        service.register("known", small_model(fresh_graph), fresh_graph)
        with pytest.raises(ServeError, match="unknown graph_id"):
            service.submit(ScoreRequest(
                "other", guidance_stream(fresh_graph, 1)[0]))
        assert service.stats.rejected == 1

    def test_misshaped_and_nonfinite_guidance_rejected(self, fresh_graph):
        service = ScoringService()
        service.register("g", small_model(fresh_graph), fresh_graph)
        with pytest.raises(ServeError, match="shape"):
            service.submit(ScoreRequest("g", np.ones((2, 3))))
        bad = guidance_stream(fresh_graph, 1)[0]
        bad[0, 0] = np.nan
        with pytest.raises(ServeError, match="non-finite"):
            service.submit(ScoreRequest("g", bad))
        assert service.stats.rejected == 2
        assert service.queue_depth == 0  # rejected requests never queue

    def test_queue_full_rejects_and_counts(self, fresh_graph):
        obs = RunContext.recording()
        service = ScoringService(ServeConfig(max_batch=8, max_queue=2),
                                 obs=obs)
        service.register("g", small_model(fresh_graph), fresh_graph)
        stream = guidance_stream(fresh_graph, 3)
        service.submit(ScoreRequest("g", stream[0]))
        service.submit(ScoreRequest("g", stream[1]))
        with pytest.raises(ServeError, match="queue full"):
            service.submit(ScoreRequest("g", stream[2]))
        results = service.flush()
        assert [r.status for r in results] == ["ok", "ok"]
        counters = obs.counter_values()
        assert counters["serve_requests_total{status=rejected}"] == 1
        assert counters["serve_requests_total{status=ok}"] == 2

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServeConfig(max_batch=0)
        with pytest.raises(ValueError):
            ServeConfig(max_queue=0)
        with pytest.raises(ValueError):
            ServeConfig(forward_block=0)


class TestDegradation:
    def test_midflight_mutation_degrades_not_fails(self, fresh_graph):
        """Regression companion to the fingerprint fix: geometry mutated
        between submit and flush must be served unbatched, not scored
        against stale statics."""
        obs = RunContext.recording()
        model = small_model(fresh_graph)
        service = ScoringService(ServeConfig(max_batch=4), obs=obs)
        service.register("g", model, fresh_graph)
        stream = guidance_stream(fresh_graph, 3)
        for g in stream:
            service.submit(ScoreRequest("g", g))
        fresh_graph.ap_positions[0, 0] += 1.0  # invalidates forward cache
        results = service.flush()
        assert [r.status for r in results] == ["ok"] * 3
        assert all(r.degraded and r.batch_size == 1 for r in results)
        assert obs.counter_values()[
            "serve_degraded_total{reason=cache_invalidated}"] == 1
        # Scores reflect the *new* geometry.
        direct = model(fresh_graph, Tensor(stream[0])).numpy()
        assert np.abs(results[0].metrics - direct).max() < 1e-10
        # The pin updated: a stable new geometry re-batches next flush.
        for g in stream:
            service.submit(ScoreRequest("g", g))
        rebatched = service.flush()
        assert all(not r.degraded for r in rebatched)

    def test_batched_forward_error_falls_back_unbatched(self, fresh_graph):
        model = small_model(fresh_graph)
        real_forward = model.forward

        def batched_forward_explodes(graph, guidance):
            if guidance.data.ndim == 3:
                raise ValueError("union forward exploded")
            return real_forward(graph, guidance)

        model.forward = batched_forward_explodes
        obs = RunContext.recording()
        service = ScoringService(ServeConfig(max_batch=4), obs=obs)
        service.register("g", model, fresh_graph)
        stream = guidance_stream(fresh_graph, 3)
        results = list(service.score_stream(
            ScoreRequest("g", g) for g in stream))
        assert [r.status for r in results] == ["ok"] * 3
        assert all(r.degraded for r in results)
        assert obs.counter_values()[
            "serve_degraded_total{reason=forward_error}"] == 1
        assert service.stats.degraded_batches == 1

    def test_nonfinite_prediction_fails_that_request_only(self, fresh_graph):
        model = small_model(fresh_graph)
        real_forward = model.forward
        poisoned = []

        def sometimes_nan(graph, guidance):
            out = real_forward(graph, guidance)
            if poisoned:
                out.data[..., 0] = np.nan
            return out

        model.forward = sometimes_nan
        service = ScoringService(ServeConfig(max_batch=2, forward_block=1))
        service.register("g", model, fresh_graph)
        good = service.score("g", guidance_stream(fresh_graph, 1)[0])
        assert good.status == "ok"
        poisoned.append(True)
        bad = service.score("g", guidance_stream(fresh_graph, 1)[0])
        assert bad.status == "failed"
        assert "non-finite" in bad.error
        assert bad.metrics is None and bad.fom is None
        assert service.stats.failed == 1


# -- CLI ------------------------------------------------------------------------------


class TestServeCli:
    @pytest.fixture(scope="class")
    def placement_file(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("serve_cli") / "ota1.json"
        assert main(["place", "OTA1", "--iterations", "50",
                     "--out", str(path)]) == 0
        return path

    def test_save_then_score_random(self, placement_file, tmp_path,
                                    capsys):
        reg = tmp_path / "registry"
        assert main(["serve-save", "OTA1", "--placement",
                     str(placement_file), "--registry", str(reg)]) == 0
        assert "ota1@v0001" in capsys.readouterr().out
        out = tmp_path / "scores.jsonl"
        code = main(["serve-score", "OTA1", "--placement",
                     str(placement_file), "--registry", str(reg),
                     "--model", "ota1", "--random", "6",
                     "--max-batch", "4", "--out", str(out)])
        assert code == 0
        rows = [json.loads(line) for line in
                out.read_text().splitlines()]
        assert len(rows) == 6
        assert all(row["status"] == "ok" for row in rows)
        assert all(len(row["metrics"]) == 5 for row in rows)
        assert rows[0]["batch_size"] == 4

    def test_score_from_request_file(self, placement_file, tmp_path,
                                     capsys):
        reg = tmp_path / "registry"
        assert main(["serve-save", "OTA1", "--placement",
                     str(placement_file), "--registry", str(reg)]) == 0
        capsys.readouterr()
        graph = build_hetero_graph(RoutingGrid(
            place_benchmark(build_benchmark("OTA1"), variant="A", seed=0,
                            iterations=50), generic_40nm()))
        requests = tmp_path / "requests.jsonl"
        guidance = np.ones((graph.num_aps, 3)).tolist()
        requests.write_text("\n".join(
            json.dumps({"id": f"c{i}", "guidance": guidance})
            for i in range(3)) + "\n")
        out = tmp_path / "scores.jsonl"
        code = main(["serve-score", "OTA1", "--placement",
                     str(placement_file), "--registry", str(reg),
                     "--model", "ota1@v0001", "--in", str(requests),
                     "--out", str(out)])
        assert code == 0
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert [row["id"] for row in rows] == ["c0", "c1", "c2"]
        # Identical guidance must score identically.
        assert rows[0]["fom"] == rows[1]["fom"] == rows[2]["fom"]

    def test_score_requires_input(self, placement_file, tmp_path, capsys):
        code = main(["serve-score", "OTA1", "--placement",
                     str(placement_file), "--registry", str(tmp_path),
                     "--model", "ota1"])
        assert code != 0
        assert "--in PATH or --random" in capsys.readouterr().err
