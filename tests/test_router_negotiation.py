"""Rip-up-and-reroute negotiation under forced contention.

Builds a synthetic two-net circuit whose pins force both nets through a
narrow corridor, then verifies the PathFinder-style negotiation resolves
the contention without shorts.
"""

import numpy as np
import pytest

from repro.netlist import Circuit, MOSFET, MOSType, NetType
from repro.placement.layout import PlacedDevice, Placement
from repro.router import IterativeRouter, RouterConfig, RoutingGrid
from repro.tech import generic_40nm


def _two_net_circuit() -> Circuit:
    """Four devices, two nets crossing each other's natural paths."""
    c = Circuit(name="cross")
    for name in ("A1", "A2", "B1", "B2"):
        c.add_device(MOSFET(name=name, mos_type=MOSType.NMOS, w=2.0, l=0.06))
    c.new_net("NA", NetType.SIGNAL).connect("A1", "D").connect("A2", "D")
    c.new_net("NB", NetType.SIGNAL).connect("B1", "D").connect("B2", "D")
    # Keep remaining pins attached so validation passes.
    g = c.new_net("NG", NetType.BIAS)
    for name in ("A1", "A2", "B1", "B2"):
        g.connect(name, "G")
    s = c.new_net("VSS", NetType.GROUND)
    for name in ("A1", "A2", "B1", "B2"):
        s.connect(name, "S")
    c.validate()
    return c


@pytest.fixture()
def crossing_setup():
    """Placement putting NA's pins NW->SE and NB's pins NE->SW."""
    circuit = _two_net_circuit()
    placement = Placement(circuit=circuit, symmetry_axis=6.0)
    placement.positions["A1"] = PlacedDevice("A1", 0.0, 8.0)
    placement.positions["A2"] = PlacedDevice("A2", 9.0, 0.0)
    placement.positions["B1"] = PlacedDevice("B1", 9.0, 8.0)
    placement.positions["B2"] = PlacedDevice("B2", 0.0, 0.0)
    grid = RoutingGrid(placement, generic_40nm(), pitch=0.5, halo=1.5)
    return circuit, grid


class TestNegotiation:
    def test_crossing_nets_route_clean(self, crossing_setup):
        _, grid = crossing_setup
        result = IterativeRouter(grid).route_all()
        assert result.success
        assert result.overlaps() == {}

    def test_single_layer_contention_resolves(self, crossing_setup):
        """Block all but two layers to force genuine negotiation."""
        _, grid = crossing_setup
        grid.occupancy[:, :, 2:] = -2  # only M1/M2 remain
        result = IterativeRouter(grid).route_all()
        assert result.success, result.failed_nets
        assert result.overlaps() == {}

    def test_history_accumulates_on_contention(self, crossing_setup):
        _, grid = crossing_setup
        grid.occupancy[:, :, 2:] = -2
        router = IterativeRouter(grid)
        result = router.route_all()
        assert result.success
        # Negotiation may or may not have been needed; if it was, history
        # must be positive where it happened and iterations > 1.
        if result.iterations > 1:
            assert grid.history.max() > 0

    def test_impossible_corridor_reports_failure(self, crossing_setup):
        """Seal one net's pins inside a blocked box: router must report the
        failure rather than hang or short."""
        circuit, grid = crossing_setup
        a1 = grid.access_points["NA"][0].cell
        # Wall off a box around A1's access point on every layer.
        x0, y0 = a1[0] - 2, a1[1] - 2
        for ix in range(x0, x0 + 5):
            for iy in range(y0, y0 + 5):
                for layer in range(grid.num_layers):
                    cell = (ix, iy, layer)
                    if not grid.in_bounds(cell):
                        continue
                    if abs(ix - a1[0]) == 2 or abs(iy - a1[1]) == 2:
                        if grid.occupancy[cell] == -1:
                            grid.occupancy[cell] = -2
        config = RouterConfig(max_iterations=3, max_expansions=20_000)
        result = IterativeRouter(grid, config=config).route_all()
        assert "NA" in result.failed_nets
        assert result.overlaps() == {}

    def test_iteration_count_reported(self, crossing_setup):
        _, grid = crossing_setup
        result = IterativeRouter(grid).route_all()
        assert 1 <= result.iterations <= RouterConfig().max_iterations
