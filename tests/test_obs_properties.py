"""Property-based tests for the observability layer (seeded, hypothesis).

Three families of invariants from the observability design:

* any program of nested span operations yields a *well-nested* trace —
  unique ids, valid parent links, children emitted before their parents;
* under fault injection, every ``retry_total`` increment corresponds to
  a retry recorded on a ``dataset.sample`` span (outcome ``retried`` or
  ``skipped`` with a matching ``retries`` attribute);
* traces and counters are identical for ``workers=1`` and ``workers=4``
  on the same seed — observability inherits the pipeline's bit-identical
  parallelism guarantee.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import DatasetConfig, generate_dataset
from repro.obs import RunContext
from repro.reliability import DegradationPolicy, FaultPlan, inject_faults


# -- well-nestedness ------------------------------------------------------------------

#: Random span programs: each node is (name_index, outcome, children).
_span_trees = st.recursive(
    st.tuples(st.integers(0, 3),
              st.sampled_from(["ok", "retried", "skipped", None]),
              st.just(())),
    lambda children: st.tuples(
        st.integers(0, 3),
        st.sampled_from(["ok", "retried", "skipped", None]),
        st.lists(children, max_size=3).map(tuple)),
    max_leaves=12,
)


def _run_program(ctx: RunContext, node) -> None:
    name_index, outcome, children = node
    with ctx.span(f"stage{name_index}") as span:
        if outcome is not None:
            span.set(outcome=outcome)
        for child in children:
            _run_program(ctx, child)


def assert_well_nested(records: list[dict]) -> None:
    """The structural invariants every emitted trace must satisfy."""
    spans = [r for r in records if r.get("kind") == "span"]
    ids = [s["span_id"] for s in spans]
    assert len(ids) == len(set(ids)), "span ids must be unique"
    positions = {span_id: i for i, span_id in enumerate(ids)}
    for span in spans:
        parent = span["parent_id"]
        if parent is None:
            continue
        assert parent in positions, f"dangling parent {parent}"
        # Records are emitted at exit: a parent closes after its
        # children, so it must appear later in the file.
        assert positions[parent] > positions[span["span_id"]], (
            f"span {span['span_id']} emitted after its parent {parent}")


class TestWellNestedness:
    @settings(max_examples=50, deadline=None)
    @given(programs=st.lists(_span_trees, min_size=1, max_size=4))
    def test_random_span_programs_are_well_nested(self, programs):
        ctx = RunContext.recording()
        for program in programs:
            _run_program(ctx, program)
        events = ctx.drain_events()
        assert_well_nested(events)
        # Every span of the program made it out.
        def count(node):
            return 1 + sum(count(c) for c in node[2])
        assert len(events) == sum(count(p) for p in programs)

    @settings(max_examples=25, deadline=None)
    @given(programs=st.lists(_span_trees, min_size=1, max_size=3),
           split=st.integers(0, 2))
    def test_absorb_preserves_well_nestedness(self, programs, split):
        """Worker buffers absorbed mid-span still form a valid tree."""
        workers = []
        for program in programs:
            w = RunContext.recording()
            _run_program(w, program)
            workers.append((w.drain_events(), w.counter_values()))
        parent = RunContext.recording()
        with parent.span("stage.construct_database"):
            for i, (events, counters) in enumerate(workers):
                if i == split:
                    # Absorbing outside any open span is also legal.
                    pass
                parent.absorb(events, counters)
        assert_well_nested(parent.drain_events())

    @settings(max_examples=25, deadline=None)
    @given(program=_span_trees)
    def test_aggregates_match_event_stream(self, program):
        ctx = RunContext.recording()
        _run_program(ctx, program)
        events = ctx.drain_events()
        counts: dict[str, int] = {}
        for event in events:
            counts[event["name"]] = counts.get(event["name"], 0) + 1
        assert {n: a.count for n, a in ctx.aggregates.items()} == counts


# -- retry accounting under fault injection -------------------------------------------


class TestRetryAccounting:
    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.function_scoped_fixture])
    @given(fail_indices=st.sets(st.integers(0, 2), min_size=1, max_size=2),
           max_retries=st.integers(0, 2))
    def test_retry_total_matches_span_retries(
            self, ota1, ota1_placement, tech, fail_indices, max_retries):
        """sum(retry_total{stage=*}) == sum of span ``retries`` attrs.

        A sample that retried and recovered carries outcome ``retried``;
        one that exhausted its retries carries ``skipped`` — in both
        cases the span's ``retries`` attribute equals the number of
        ``retry_total`` increments it caused.
        """
        obs = RunContext.recording()
        plan = FaultPlan(stage="routing", fail_indices=fail_indices)
        with inject_faults(plan):
            generate_dataset(
                ota1, ota1_placement, tech,
                DatasetConfig(num_samples=3, seed=0),
                policy=DegradationPolicy(max_retries=max_retries),
                obs=obs,
            )
        events = obs.drain_events()
        assert_well_nested(events)
        samples = [e for e in events if e["name"] == "dataset.sample"]
        span_retries = sum(e.get("attrs", {}).get("retries", 0)
                           for e in samples)
        counter_retries = sum(
            v for k, v in obs.counter_values().items()
            if k.startswith("retry_total"))
        assert counter_retries == span_retries
        # Outcomes are consistent with the retry counts they carry.
        for event in samples:
            attrs = event.get("attrs", {})
            if event["outcome"] == "ok":
                assert attrs.get("retries", 0) == 0
            elif event["outcome"] == "retried":
                assert attrs["retries"] >= 1
            elif event["outcome"] == "skipped":
                assert attrs["retries"] == max_retries
        # Retries were attributed to the injected stage.
        if counter_retries:
            assert obs.counter_values().get(
                "retry_total{stage=routing}") == counter_retries


# -- parallel trace identity ----------------------------------------------------------


def _strip_timing(events: list[dict]) -> list[dict]:
    """Span records minus per-process measurements (time, run id)."""
    out = []
    for event in events:
        kept = {k: v for k, v in event.items()
                if k not in ("start", "seconds", "run_id")}
        attrs = dict(kept.get("attrs", {}))
        out.append({**kept, "attrs": attrs})
    return out


class TestParallelIdentity:
    def _build(self, circuit, placement, tech, seed, workers, plan=None):
        obs = RunContext.recording()
        cfg = DatasetConfig(num_samples=4, seed=seed)
        policy = DegradationPolicy(max_retries=1)
        if plan is not None:
            with inject_faults(plan):
                generate_dataset(circuit, placement, tech, cfg,
                                 policy=policy, workers=workers, obs=obs)
        else:
            generate_dataset(circuit, placement, tech, cfg,
                             policy=policy, workers=workers, obs=obs)
        return obs.drain_events(), obs.counter_values(), obs.aggregates

    def test_counters_and_trace_identical_across_worker_counts(
            self, ota1, ota1_placement, tech):
        serial = self._build(ota1, ota1_placement, tech, seed=3, workers=1)
        parallel = self._build(ota1, ota1_placement, tech, seed=3, workers=4)
        assert serial[1] == parallel[1]  # counters
        assert _strip_timing(serial[0]) == _strip_timing(parallel[0])
        # Aggregates agree on everything but measured seconds.
        s_agg = {n: (a.count, a.outcomes) for n, a in serial[2].items()}
        p_agg = {n: (a.count, a.outcomes) for n, a in parallel[2].items()}
        assert s_agg == p_agg
        assert_well_nested(parallel[0])

    def test_identity_holds_under_faults(self, ota1, ota1_placement, tech):
        # Unit-scoped selection (sample 1, first attempt) is the only
        # addressing mode defined identically in serial and parallel runs.
        plan = FaultPlan(stage="routing", fail_units={(1, 0)})
        serial = self._build(ota1, ota1_placement, tech, seed=3, workers=1,
                             plan=plan)
        plan = FaultPlan(stage="routing", fail_units={(1, 0)})
        parallel = self._build(ota1, ota1_placement, tech, seed=3, workers=4,
                               plan=plan)
        assert serial[1] == parallel[1]
        assert _strip_timing(serial[0]) == _strip_timing(parallel[0])
        # The fault actually produced retry accounting to compare.
        assert any(k.startswith("retry_total") for k in serial[1])
