"""Fault-tolerant serving cluster, end to end with real processes.

The contracts under test (see ``docs/SERVING.md``):

* **parity** — with no injected faults, cluster results are
  bit-identical (< 1e-10) to a single-process :class:`ScoringService`
  for any worker count;
* **at-least-once** — SIGKILLing a worker mid-load loses no
  acknowledged request: stranded work is re-dispatched and every
  request reaches exactly one terminal outcome;
* **deadlines** — a stalled forward times out with a typed
  :class:`ServeTimeoutError`, the hung worker is detected and killed,
  and the pool keeps serving;
* **rollover** — a corrupt new version is quarantined and rolled back
  mid-serving (zero downtime); a clean rollover serves the new version;
  a corrupt *latest* at start time falls back to the previous good one.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.graph import build_hetero_graph
from repro.model.gnn3d import Gnn3d, Gnn3dConfig
from repro.reliability import FaultPlan, ServeError, ServeTimeoutError
from repro.router import RoutingGrid
from repro.serve import (
    ClusterConfig,
    ModelRegistry,
    ScoringService,
    ServeCluster,
    ServeConfig,
)

pytestmark = pytest.mark.slow


def small_model(graph, seed: int = 3) -> Gnn3d:
    return Gnn3d(graph.ap_features.shape[1], graph.module_features.shape[1],
                 Gnn3dConfig(hidden=8, num_layers=1, rbf_centers=4,
                             seed=seed))


def guidance_stream(graph, n, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.uniform(0.5, 2.0, size=(graph.num_aps, 3))
            for _ in range(n)]


def tamper(registry: ModelRegistry, name: str, version: str) -> None:
    weights = registry.root / name / version / "weights.npz"
    weights.write_bytes(weights.read_bytes()[:-16] + b"test-corruption!")


@pytest.fixture(scope="module")
def serve_graph(ota1_placement, tech):
    return build_hetero_graph(RoutingGrid(ota1_placement, tech))


@pytest.fixture()
def registry(tmp_path, serve_graph):
    registry = ModelRegistry(tmp_path / "registry")
    registry.save("ota1", small_model(serve_graph), serve_graph)
    return registry


def make_cluster(registry, serve_graph, **overrides) -> ServeCluster:
    overrides.setdefault("workers", 2)
    overrides.setdefault("serve", ServeConfig(max_batch=4, max_queue=64))
    fault_plans = overrides.pop("fault_plans", None)
    cluster = ServeCluster(registry, ClusterConfig(**overrides),
                           fault_plans=fault_plans)
    cluster.add_endpoint("ota1", "ota1", serve_graph)
    return cluster


# -- parity ---------------------------------------------------------------------------


@pytest.mark.parametrize("workers", [1, 2])
def test_cluster_matches_single_service_bit_identical(
        registry, serve_graph, workers):
    stream = guidance_stream(serve_graph, 5)
    service = ScoringService(ServeConfig(max_batch=4, max_queue=64))
    service.register_checkpoint("ota1", registry, "ota1", serve_graph)
    want = [service.score("ota1", guidance) for guidance in stream]

    with make_cluster(registry, serve_graph, workers=workers) as cluster:
        got = [cluster.score("ota1", guidance) for guidance in stream]

    for single, clustered in zip(want, got):
        assert clustered.status == "ok"
        assert clustered.version == "v0001"
        assert 0 <= clustered.worker < workers
        np.testing.assert_allclose(clustered.metrics, single.metrics,
                                   rtol=0.0, atol=1e-10)
        assert abs(clustered.fom - single.fom) < 1e-10


# -- kill / re-dispatch ---------------------------------------------------------------


def test_worker_kill_loses_no_acknowledged_request(registry, serve_graph):
    stream = guidance_stream(serve_graph, 12)
    with make_cluster(registry, serve_graph, workers=2) as cluster:
        for index, guidance in enumerate(stream):
            if index == 6:
                cluster.kill_worker(0)
            cluster.submit("ota1", guidance, request_id=f"req-{index}")
        results = cluster.drain()
        # Drain can finish on the surviving worker before the killed
        # slot reports started; pump until the recovery is recorded.
        deadline = time.perf_counter() + 30.0
        while not cluster.recovery_times() \
                and time.perf_counter() < deadline:
            cluster.pump()
        stats = cluster.stats
        recoveries = cluster.recovery_times()

    assert [r.request_id for r in results] == \
        [f"req-{i}" for i in range(12)]
    assert all(r.status == "ok" for r in results)
    assert stats.submitted == 12
    assert stats.accounted() == 12
    assert stats.ok == 12
    assert stats.restarts >= 1
    assert len(recoveries) >= 1 and all(t > 0 for t in recoveries)


# -- deadlines / hung-worker detection ------------------------------------------------


def test_stalled_forward_times_out_typed_and_pool_recovers(
        registry, serve_graph):
    stall = FaultPlan(stage="serve_stall", fail_units=frozenset({0}),
                      stall_seconds=30.0)
    with make_cluster(registry, serve_graph, workers=1,
                      hang_grace_s=0.2, fault_plans=(stall,),
                      restart_backoff_base_s=0.02) as cluster:
        guidance = guidance_stream(serve_graph, 1)[0]
        with pytest.raises(ServeTimeoutError, match="deadline exceeded"):
            cluster.score("ota1", guidance, deadline_s=0.5)
        # The pool recovered: the next request (a different unit, so no
        # stall) serves normally on the respawned worker.
        result = cluster.score("ota1", guidance, deadline_s=30.0)
        stats = cluster.stats

    assert result.status == "ok"
    assert stats.timeout == 1
    assert stats.hung_kills >= 1
    assert stats.restarts >= 1
    assert stats.accounted() == stats.submitted == 2


# -- rollover -------------------------------------------------------------------------


def test_corrupt_rollover_quarantines_rolls_back_then_clean_serves(
        registry, serve_graph):
    stream = guidance_stream(serve_graph, 4)
    with make_cluster(registry, serve_graph, workers=2) as cluster:
        assert cluster.score("ota1", stream[0]).version == "v0001"

        bad = registry.save("ota1", small_model(serve_graph, seed=9),
                            serve_graph)
        tamper(registry, "ota1", bad.version)
        outcome = cluster.rollover("ota1")
        assert not outcome.ok
        assert outcome.quarantined == bad.version
        # The first worker rejected before any slot switched, so there
        # was no switched worker to roll back — the version map itself
        # rolls back below.
        assert not outcome.rolled_back
        assert cluster.versions["ota1"] == "v0001"
        assert registry.is_quarantined("ota1", bad.version)
        assert registry.latest("ota1") == "v0001"
        # Zero downtime: still serving the rolled-back version.
        assert cluster.score("ota1", stream[1]).version == "v0001"

        good = registry.save("ota1", small_model(serve_graph, seed=11),
                             serve_graph)
        outcome = cluster.rollover("ota1")
        assert outcome.ok
        assert outcome.to_version == good.version
        assert cluster.score("ota1", stream[2]).version == good.version
        stats = cluster.stats

    assert stats.rollovers >= 1
    assert stats.rollbacks >= 1


def test_start_quarantines_corrupt_latest_and_falls_back(
        registry, serve_graph):
    bad = registry.save("ota1", small_model(serve_graph, seed=9),
                        serve_graph)
    tamper(registry, "ota1", bad.version)
    with make_cluster(registry, serve_graph, workers=1) as cluster:
        assert cluster.versions["ota1"] == "v0001"
        result = cluster.score("ota1", guidance_stream(serve_graph, 1)[0])
        assert result.status == "ok"
        assert result.version == "v0001"
    assert registry.is_quarantined("ota1", bad.version)


# -- admission validation -------------------------------------------------------------


def test_invalid_submissions_reject_before_acknowledgement(
        registry, serve_graph):
    guidance = guidance_stream(serve_graph, 1)[0]
    with make_cluster(registry, serve_graph, workers=1) as cluster:
        with pytest.raises(ServeError, match="unknown graph_id"):
            cluster.submit("nope", guidance)
        with pytest.raises(ServeError, match="guidance shape"):
            cluster.submit("ota1", guidance[:-1])
        bad = guidance.copy()
        bad[0, 0] = np.nan
        with pytest.raises(ServeError, match="non-finite"):
            cluster.submit("ota1", bad)
        stats = cluster.stats
        assert cluster.outstanding() == 0

    assert stats.submitted == 3
    assert stats.rejected == 3
    assert stats.accounted() == 3
