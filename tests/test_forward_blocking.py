"""Cache-blocked union forward: parity harness and plan-cache pins.

The contracts under test (see docs/PERFORMANCE.md, "Forward blocking"):

* the blocked float64 forward matches both the per-candidate unbatched
  forward and the single-union reference path to <1e-10 for arbitrary
  graphs, batch sizes, and block sizes — including degenerate graphs
  (no modules, empty edge types) and remainder blocks;
* gradients flow through block slicing exactly as through the union;
* the float32 scoring path stays within ``FLOAT32_PARITY_RTOL`` of
  float64 on every built-in OTA;
* union plans are rebuilt when the graph's content fingerprint changes
  (in-place position mutation) and reused — same object — when it does
  not;
* the per-graph plan caches are strictly LRU (hits refresh recency,
  capacity evicts only the stalest plan) and never alias plans across
  ``(fingerprint, B, block)`` keys.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.perf.cache as cache_mod
from repro import build_benchmark, place_benchmark
from repro.graph import build_hetero_graph
from repro.graph.hetero import EdgeType, HeteroGraph
from repro.model.gnn3d import DEFAULT_CACHE_BLOCK, Gnn3d, Gnn3dConfig
from repro.nn import Tensor
from repro.perf.cache import MAX_PLANS_PER_GRAPH, ForwardCacheStore
from repro.router import RoutingGrid
from repro.serve import FLOAT32_PARITY_RTOL

#: Tiny model for hypothesis examples (dims fixed by synthetic_graph).
TINY = Gnn3dConfig(hidden=4, num_layers=1, rbf_centers=4, seed=3)

#: Small-but-real model for the OTA float32 parity checks.
SMALL = Gnn3dConfig(hidden=8, num_layers=2, rbf_centers=4, seed=3)

AP_DIM, MODULE_DIM = 4, 3


def synthetic_graph(num_aps: int, num_modules: int,
                    seed: int) -> HeteroGraph:
    """A random but valid HeteroGraph (feature dims AP_DIM/MODULE_DIM).

    Edge counts are drawn from ``seed`` too, including zero — empty
    edge types exercise the plan builders' degenerate paths.
    """
    rng = np.random.default_rng(seed)

    def pairs(count, lo_a, hi_a, lo_b, hi_b):
        if count == 0 or hi_a <= lo_a or hi_b <= lo_b:
            return np.zeros((0, 2), dtype=np.int64)
        return np.stack([rng.integers(lo_a, hi_a, size=count),
                         rng.integers(lo_b, hi_b, size=count)], axis=1)

    num_nodes = num_aps + num_modules
    return HeteroGraph(
        ap_keys=[(f"d{i}", f"p{i}") for i in range(num_aps)],
        ap_nets=[f"n{i % 3}" for i in range(num_aps)],
        module_names=[f"m{i}" for i in range(num_modules)],
        ap_positions=rng.uniform(0.0, 30.0, size=(num_aps, 3)),
        module_positions=rng.uniform(0.0, 30.0, size=(num_modules, 3)),
        ap_features=rng.normal(size=(num_aps, AP_DIM)),
        module_features=rng.normal(size=(num_modules, MODULE_DIM)),
        edges={
            EdgeType.PP: pairs(int(rng.integers(0, 3 * num_aps)),
                               0, num_aps, 0, num_aps),
            EdgeType.MM: pairs(int(rng.integers(0, 2 * num_modules + 1)),
                               num_aps, num_nodes, num_aps, num_nodes),
            EdgeType.MP: pairs(int(rng.integers(0, num_nodes)),
                               num_aps, num_nodes, 0, num_aps),
        },
    )


class TestBlockedForwardParity:
    @given(num_aps=st.integers(2, 10), num_modules=st.integers(0, 4),
           batch=st.integers(1, 16), block=st.integers(1, 8),
           seed=st.integers(0, 2 ** 16))
    @settings(deadline=None, max_examples=25)
    def test_blocked_matches_unbatched_and_union(self, num_aps, num_modules,
                                                 batch, block, seed):
        graph = synthetic_graph(num_aps, num_modules, seed)
        model = Gnn3d(AP_DIM, MODULE_DIM, config=TINY)
        rng = np.random.default_rng(seed + 1)
        cand = rng.uniform(0.5, 2.0, size=(batch, num_aps, 3))

        blocked = model.forward_batch(graph, Tensor(cand),
                                      block=block).numpy()
        union = model.forward_union(graph, Tensor(cand)).numpy()
        singles = np.stack(
            [model(graph, Tensor(row)).numpy() for row in cand])

        assert blocked.shape == singles.shape
        assert np.abs(blocked - singles).max() < 1e-10
        assert np.abs(blocked - union).max() < 1e-10

    def test_default_dispatch_is_blocked(self, ota1_graph):
        """3-D guidance through ``forward`` rides the blocked path."""
        model = Gnn3d(ota1_graph.ap_features.shape[1],
                      ota1_graph.module_features.shape[1], config=SMALL)
        rng = np.random.default_rng(0)
        cand = rng.uniform(0.5, 2.0, size=(6, ota1_graph.num_aps, 3))
        via_forward = model(ota1_graph, Tensor(cand)).numpy()
        via_batch = model.forward_batch(ota1_graph, Tensor(cand),
                                        block=DEFAULT_CACHE_BLOCK).numpy()
        assert np.array_equal(via_forward, via_batch)

    def test_gradients_flow_through_block_slices(self, ota1_graph):
        """Multi-block backward scatters into the right guidance rows."""
        model = Gnn3d(ota1_graph.ap_features.shape[1],
                      ota1_graph.module_features.shape[1], config=SMALL)
        rng = np.random.default_rng(2)
        cand = rng.uniform(0.5, 2.0, size=(5, ota1_graph.num_aps, 3))
        batched = Tensor(cand, requires_grad=True)
        model.forward_batch(ota1_graph, batched, block=2).sum().backward()
        for row in range(5):
            single = Tensor(cand[row], requires_grad=True)
            model(ota1_graph, single).sum().backward()
            assert np.abs(single.grad - batched.grad[row]).max() < 1e-10

    @pytest.mark.parametrize("name", ["OTA1", "OTA2", "OTA3"])
    def test_float32_parity_within_contract(self, name, tech):
        circuit = build_benchmark(name)
        placement = place_benchmark(circuit, variant="A", seed=0,
                                    iterations=60)
        graph = build_hetero_graph(RoutingGrid(placement, tech))
        dims = (graph.ap_features.shape[1], graph.module_features.shape[1])
        model64 = Gnn3d(*dims, config=SMALL)
        model32 = Gnn3d(*dims, config=SMALL).to_dtype(np.float32)

        rng = np.random.default_rng(7)
        cand = rng.uniform(0.5, 2.0, size=(6, graph.num_aps, 3))
        out64 = model64.forward_batch(graph, Tensor(cand)).numpy()
        out32 = model32.forward_batch(
            graph, Tensor(cand.astype(np.float32))).numpy()

        assert out32.dtype == np.float32
        rel = np.abs(out32 - out64) / np.maximum(1.0, np.abs(out64))
        assert rel.max() < FLOAT32_PARITY_RTOL

    def test_no_stale_plans_after_position_mutation(self):
        """Warm plans must not survive an in-place geometry change."""
        graph = synthetic_graph(6, 2, seed=11)
        model = Gnn3d(AP_DIM, MODULE_DIM, config=TINY)
        rng = np.random.default_rng(3)
        cand = rng.uniform(0.5, 2.0, size=(5, 6, 3))
        model.forward_batch(graph, Tensor(cand))  # warm the plan cache
        graph.ap_positions[0, 0] += 2.5
        after = model.forward_batch(graph, Tensor(cand)).numpy()
        # Same seeded weights, cold cache: the ground truth.
        fresh = Gnn3d(AP_DIM, MODULE_DIM, config=TINY).forward_batch(
            graph, Tensor(cand)).numpy()
        assert np.array_equal(after, fresh)


class TestUnionPlanCache:
    def test_plan_reused_until_fingerprint_changes(self):
        graph = synthetic_graph(6, 2, seed=5)
        store = ForwardCacheStore()
        plan = store.union_plan(graph, 6, 2)
        assert store.union_plan(graph, 6, 2) is plan
        graph.ap_positions[1, 1] += 4.0
        fresh = store.union_plan(graph, 6, 2)
        assert fresh is not plan
        et = next(t for t, p in graph.edges.items() if len(p))
        assert not np.array_equal(fresh.plans[0].deltas[et],
                                  plan.plans[0].deltas[et])

    def test_blocked_decomposition_shape(self):
        graph = synthetic_graph(5, 1, seed=8)
        store = ForwardCacheStore()
        plan = store.union_plan(graph, 7, 3)
        assert plan.batch == 7 and plan.block == 3
        assert plan.slices == ((0, 3), (3, 6), (6, 7))
        assert [p.batch for p in plan.plans] == [3, 3, 1]
        # Full blocks share one UnionBlockPlan object.
        assert plan.plans[0] is plan.plans[1]
        # Block larger than batch degenerates to one union.
        assert store.union_plan(graph, 2, 16).block == 2

    def test_block_plans_shared_across_batch_sizes(self):
        graph = synthetic_graph(6, 2, seed=6)
        store = ForwardCacheStore()
        p8 = store.union_plan(graph, 8, 4)
        p12 = store.union_plan(graph, 12, 4)
        assert p12.plans[0] is p8.plans[0]

    def test_no_aliasing_across_fingerprints(self):
        """Two same-shape graphs must get distinct plans."""
        g1 = synthetic_graph(6, 2, seed=21)
        g2 = synthetic_graph(6, 2, seed=22)
        store = ForwardCacheStore()
        p1 = store.union_plan(g1, 4, 2)
        p2 = store.union_plan(g2, 4, 2)
        assert p1 is not p2
        assert store.union_plan(g1, 4, 2) is p1
        assert store.union_plan(g2, 4, 2) is p2
        et = next(t for t in EdgeType
                  if len(g1.edges[t]) and len(g2.edges[t]))
        assert not np.array_equal(p1.plans[0].deltas[et],
                                  p2.plans[0].deltas[et])

    def test_lru_eviction_only_with_hit_refresh(self, monkeypatch):
        """Regression: plan caches must never clear wholesale — LRU
        eviction of exactly the stalest plan, with hits refreshing
        recency."""
        builds: list[int] = []
        real_build = cache_mod.build_block_plan
        monkeypatch.setattr(
            cache_mod, "build_block_plan",
            lambda graph, statics, batch:
                builds.append(batch) or real_build(graph, statics, batch))
        graph = synthetic_graph(4, 1, seed=9)
        store = ForwardCacheStore()
        cap = MAX_PLANS_PER_GRAPH
        for size in range(1, cap + 1):
            store.union_plan(graph, size, size)
        assert builds == list(range(1, cap + 1))
        store.union_plan(graph, 1, 1)          # hit refreshes size 1
        assert len(builds) == cap
        store.union_plan(graph, cap + 1, cap + 1)  # evicts size 2 only
        assert builds[-1] == cap + 1
        store.union_plan(graph, 1, 1)          # survived the eviction
        assert builds.count(1) == 1
        store.union_plan(graph, 2, 2)          # the one that was evicted
        assert builds.count(2) == 2

    def test_invalid_batch_and_block_rejected(self):
        graph = synthetic_graph(3, 0, seed=4)
        store = ForwardCacheStore()
        with pytest.raises(ValueError, match="batch"):
            store.union_plan(graph, 0, 2)
        with pytest.raises(ValueError, match="block"):
            store.union_plan(graph, 2, 0)

    def test_misshaped_guidance_rejected(self):
        graph = synthetic_graph(4, 1, seed=12)
        model = Gnn3d(AP_DIM, MODULE_DIM, config=TINY)
        with pytest.raises(ValueError, match="guidance shape"):
            model.forward_batch(graph, Tensor(np.ones((2, 3, 3))))
        with pytest.raises(ValueError, match="guidance shape"):
            model.forward_union(graph, Tensor(np.ones((2, 3, 3))))
