"""Unit tests for the observability layer (repro.obs)."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    MANIFEST_VERSION,
    NULL_CONTEXT,
    NULL_METRIC,
    NULL_SPAN,
    TRACE_VERSION,
    MetricsRegistry,
    RunContext,
    aggregate_spans,
    flat_name,
    iter_trace,
    load_trace,
    make_run_id,
    render_report,
    verify_manifest,
)
from repro.obs.report import main as report_main
from repro.perf.timing import StageTimer


# -- metrics --------------------------------------------------------------------------


class TestMetrics:
    def test_flat_name_no_labels(self):
        assert flat_name("samples_valid") == "samples_valid"

    def test_flat_name_sorts_labels(self):
        a = flat_name("retry_total", {"stage": "routing", "kind": "x"})
        b = flat_name("retry_total", {"kind": "x", "stage": "routing"})
        assert a == b == "retry_total{kind=x,stage=routing}"

    def test_counter_increments(self):
        reg = MetricsRegistry()
        reg.counter("n").inc()
        reg.counter("n").inc(4)
        assert reg.counter_values() == {"n": 5}

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("n").inc(-1)

    def test_counter_labels_are_distinct_metrics(self):
        reg = MetricsRegistry()
        reg.counter("retry_total", stage="routing").inc()
        reg.counter("retry_total", stage="simulation").inc(2)
        assert reg.counter_values() == {
            "retry_total{stage=routing}": 1,
            "retry_total{stage=simulation}": 2,
        }

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(1.5)
        reg.gauge("g").set(2.5)
        assert reg.to_dict()["gauges"] == {"g": 2.5}

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        for v in (1.0, 2.0, 3.0):
            reg.histogram("h").observe(v)
        d = reg.to_dict()["histograms"]["h"]
        assert d == {"count": 3, "sum": 6.0, "min": 1.0, "max": 3.0,
                     "mean": 2.0}

    def test_empty_histogram(self):
        reg = MetricsRegistry()
        reg.histogram("h")
        assert reg.to_dict()["histograms"]["h"] == {"count": 0, "sum": 0.0}

    def test_absorb_counters_merges(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(1)
        reg.absorb_counters({"a": 2, "b": 3})
        assert reg.counter_values() == {"a": 3, "b": 3}

    def test_null_metric_is_inert(self):
        NULL_METRIC.inc()
        NULL_METRIC.set(1.0)
        NULL_METRIC.observe(2.0)


# -- spans and context ----------------------------------------------------------------


class TestSpans:
    def test_disabled_context_returns_shared_null_span(self):
        assert NULL_CONTEXT.span("x") is NULL_SPAN
        assert NULL_CONTEXT.span("y") is NULL_SPAN

    def test_disabled_context_metrics_are_null(self):
        assert NULL_CONTEXT.counter("c") is NULL_METRIC
        assert NULL_CONTEXT.gauge("g") is NULL_METRIC
        assert NULL_CONTEXT.histogram("h") is NULL_METRIC

    def test_null_span_is_usable(self):
        with NULL_CONTEXT.span("x") as span:
            span.set(outcome="retried", anything=1)
        assert span.seconds == 0.0

    def test_span_records_nesting(self):
        ctx = RunContext.recording()
        with ctx.span("outer"):
            with ctx.span("inner"):
                pass
        events = ctx.drain_events()
        # Children are emitted (closed) before their parents.
        assert [e["name"] for e in events] == ["inner", "outer"]
        inner, outer = events
        assert inner["parent_id"] == outer["span_id"]
        assert outer["parent_id"] is None

    def test_span_outcome_defaults(self):
        ctx = RunContext.recording()
        with ctx.span("ok_span"):
            pass
        with pytest.raises(RuntimeError):
            with ctx.span("err_span"):
                raise RuntimeError("boom")
        by_name = {e["name"]: e for e in ctx.drain_events()}
        assert by_name["ok_span"]["outcome"] == "ok"
        assert by_name["err_span"]["outcome"] == "error"

    def test_span_set_overrides_outcome_and_attrs(self):
        ctx = RunContext.recording()
        with ctx.span("s", fixed=1) as span:
            span.set(outcome="skipped", extra=2)
        (event,) = ctx.drain_events()
        assert event["outcome"] == "skipped"
        assert event["attrs"] == {"extra": 2, "fixed": 1}

    def test_span_feeds_stage_timer(self):
        ctx = RunContext.recording()
        timer = StageTimer()
        with ctx.span("route", timer=timer):
            pass
        stats = timer.to_dict()["route"]
        assert stats["calls"] == 1
        assert stats["seconds"] >= 0.0
        # The span record and the timer saw the same single measurement.
        (event,) = ctx.drain_events()
        assert event["seconds"] == pytest.approx(stats["seconds"])

    def test_disabled_context_with_timer_still_times(self):
        timer = StageTimer()
        with NULL_CONTEXT.span("route", timer=timer):
            pass
        assert timer.to_dict()["route"]["calls"] == 1

    def test_emit_span_uses_given_seconds(self):
        ctx = RunContext.recording()
        ctx.emit_span("relax.restart", 1.25, outcome="diverged", restart=3)
        (event,) = ctx.drain_events()
        assert event["seconds"] == 1.25
        assert event["outcome"] == "diverged"
        assert event["attrs"]["restart"] == 3

    def test_emit_span_nests_under_open_span(self):
        ctx = RunContext.recording()
        with ctx.span("relax"):
            ctx.emit_span("relax.restart", 0.5)
        restart, relax = ctx.drain_events()
        assert restart["parent_id"] == relax["span_id"]

    def test_aggregates_track_emissions(self):
        ctx = RunContext.recording()
        with ctx.span("s"):
            pass
        with ctx.span("s") as span:
            span.set(outcome="retried")
        agg = ctx.aggregates["s"]
        assert agg.count == 2
        assert agg.outcomes == {"ok": 1, "retried": 1}

    def test_make_run_id_shape(self):
        rid = make_run_id()
        assert rid.startswith("run-")


class TestAbsorb:
    def test_absorb_remaps_ids_and_reparents(self):
        worker = RunContext.recording()
        with worker.span("dataset.sample", index=3):
            with worker.span("route"):
                pass
        worker.counter("retry_total", stage="routing").inc()

        parent = RunContext.recording()
        with parent.span("stage.construct_database"):
            parent.absorb(worker.drain_events(), worker.counter_values())
        events = parent.drain_events()
        by_name = {e["name"]: e for e in events}
        # The worker's root span hangs under the open parent span.
        assert (by_name["dataset.sample"]["parent_id"]
                == by_name["stage.construct_database"]["span_id"])
        # The worker-internal parent/child link is preserved, remapped.
        assert (by_name["route"]["parent_id"]
                == by_name["dataset.sample"]["span_id"])
        # Ids are unique within the absorbing context.
        ids = [e["span_id"] for e in events]
        assert len(ids) == len(set(ids))
        assert parent.counter_values() == {"retry_total{stage=routing}": 1}

    def test_absorb_updates_aggregates(self):
        worker = RunContext.recording()
        with worker.span("s"):
            pass
        parent = RunContext.recording()
        parent.absorb(worker.drain_events(), worker.counter_values())
        assert parent.aggregates["s"].count == 1

    def test_absorb_on_disabled_context_is_noop(self):
        worker = RunContext.recording()
        with worker.span("s"):
            pass
        NULL_CONTEXT.absorb(worker.drain_events(), {"c": 1})
        assert NULL_CONTEXT.aggregates == {}
        assert NULL_CONTEXT.counter_values() == {}

    def test_absorb_order_determines_ids(self):
        def record(tag):
            ctx = RunContext.recording()
            with ctx.span(tag):
                pass
            return ctx.drain_events(), ctx.counter_values()

        a, b = record("a"), record("b")
        p1 = RunContext.recording()
        p1.absorb(*a)
        p1.absorb(*b)
        p2 = RunContext.recording()
        p2.absorb(*a)
        p2.absorb(*b)
        strip = lambda evs: [
            {k: v for k, v in e.items() if k not in ("start", "run_id")}
            for e in evs
        ]
        assert strip(p1.drain_events()) == strip(p2.drain_events())


# -- file sink and manifest -----------------------------------------------------------


class TestFileSink:
    def test_trace_file_and_manifest(self, tmp_path):
        trace = tmp_path / "run.trace.jsonl"
        ctx = RunContext.to_file(trace, run_id="run-test")
        with ctx.span("a"):
            pass
        ctx.counter("samples_valid").inc(3)
        ctx.close()

        records = load_trace(trace)
        assert records[0]["kind"] == "header"
        assert records[0]["version"] == TRACE_VERSION
        assert records[0]["run_id"] == "run-test"
        spans = [r for r in records if r["kind"] == "span"]
        assert [s["name"] for s in spans] == ["a"]

        manifest_path = tmp_path / "run.trace.manifest.json"
        assert ctx.manifest_path == manifest_path
        manifest = json.loads(manifest_path.read_text())
        assert manifest["version"] == MANIFEST_VERSION
        assert manifest["run_id"] == "run-test"
        assert manifest["counters"] == {"samples_valid": 3}
        assert manifest["spans"]["a"]["count"] == 1

    def test_close_is_idempotent(self, tmp_path):
        ctx = RunContext.to_file(tmp_path / "t.jsonl")
        ctx.close()
        ctx.close()

    def test_context_manager_closes(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        with RunContext.to_file(trace) as ctx:
            with ctx.span("a"):
                pass
        assert ctx.manifest_path.exists()

    def test_numpy_attrs_serialize(self, tmp_path):
        import numpy as np

        trace = tmp_path / "t.jsonl"
        with RunContext.to_file(trace) as ctx:
            with ctx.span("a", loss=np.float64(0.5), n=np.int64(2)):
                pass
        (span,) = [r for r in iter_trace(trace) if r["kind"] == "span"]
        assert span["attrs"] == {"loss": 0.5, "n": 2}

    def test_disabled_close_writes_nothing(self, tmp_path):
        NULL_CONTEXT.close()
        assert NULL_CONTEXT.enabled is False


# -- report ---------------------------------------------------------------------------


class TestReport:
    def _make_trace(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        ctx = RunContext.to_file(trace, run_id="run-r")
        with ctx.span("route"):
            pass
        with ctx.span("route") as span:
            span.set(outcome="retried")
        ctx.counter("samples_valid").inc(2)
        ctx.close()
        return trace, ctx

    def test_aggregate_spans_matches_context(self, tmp_path):
        trace, ctx = self._make_trace(tmp_path)
        derived = aggregate_spans(load_trace(trace))
        assert {n: a.to_dict() for n, a in derived.items()} == {
            n: a.to_dict() for n, a in ctx.aggregates.items()}

    def test_render_report_contents(self, tmp_path):
        trace, ctx = self._make_trace(tmp_path)
        text = render_report(aggregate_spans(load_trace(trace)),
                             ctx.counter_values())
        assert "route" in text
        assert "retried" in text
        assert "samples_valid" in text

    def test_verify_manifest_ok(self, tmp_path):
        trace, ctx = self._make_trace(tmp_path)
        manifest = json.loads(ctx.manifest_path.read_text())
        assert verify_manifest(load_trace(trace), manifest) == []

    def test_verify_manifest_detects_drift(self, tmp_path):
        trace, ctx = self._make_trace(tmp_path)
        manifest = json.loads(ctx.manifest_path.read_text())
        manifest["spans"]["route"]["count"] = 99
        manifest["spans"]["ghost"] = {"count": 1, "seconds": 0.0,
                                      "outcomes": {"ok": 1}}
        problems = verify_manifest(load_trace(trace), manifest)
        assert any("route" in p for p in problems)
        assert any("ghost" in p for p in problems)

    def test_report_cli_verify(self, tmp_path, capsys):
        trace, ctx = self._make_trace(tmp_path)
        rc = report_main([str(trace),
                          "--verify-manifest", str(ctx.manifest_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "manifest matches" in out

    def test_report_cli_verify_failure(self, tmp_path, capsys):
        trace, ctx = self._make_trace(tmp_path)
        manifest = json.loads(ctx.manifest_path.read_text())
        manifest["spans"]["route"]["count"] = 99
        ctx.manifest_path.write_text(json.dumps(manifest))
        rc = report_main([str(trace),
                          "--verify-manifest", str(ctx.manifest_path)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "MANIFEST MISMATCH" in out


# -- CLI flag wiring ------------------------------------------------------------------


class TestCliWiring:
    def test_fold_parser_accepts_trace_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["fold", "OTA1", "--trace", "t.jsonl", "--metrics-summary"])
        assert args.trace == "t.jsonl"
        assert args.metrics_summary is True
        assert args.trace_dir is None

    def test_build_obs_modes(self, tmp_path):
        import argparse

        from repro.cli import _build_obs

        ns = argparse.Namespace(trace=None, trace_dir=None,
                                metrics_summary=False)
        assert _build_obs(ns) is NULL_CONTEXT

        ns.metrics_summary = True
        ctx = _build_obs(ns)
        assert ctx.enabled and ctx.trace_path is None

        ns.trace = str(tmp_path / "t.jsonl")
        ctx = _build_obs(ns)
        assert ctx.trace_path == tmp_path / "t.jsonl"
        ctx.close()

        ns.trace = None
        ns.trace_dir = str(tmp_path / "runs")
        ctx = _build_obs(ns)
        assert ctx.trace_path.parent == tmp_path / "runs"
        assert ctx.trace_path.name.endswith(".trace.jsonl")
        ctx.close()
