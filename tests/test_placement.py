"""Tests for placement geometry and the SA placer."""

import pytest

from repro.netlist import build_benchmark
from repro.placement import (
    NET_WEIGHT_VARIANTS,
    Orientation,
    PlacedDevice,
    Placement,
    Placer,
    place_benchmark,
)


class TestPlacementGeometry:
    def test_pin_position_r0(self, ota1, ota1_placement):
        device = ota1.device("MN_IN_L")
        placed = ota1_placement.positions["MN_IN_L"]
        pin = device.pin("G")
        x, y = ota1_placement.pin_position("MN_IN_L", "G")
        assert x == pytest.approx(placed.x + pin.offset[0])
        assert y == pytest.approx(placed.y + pin.offset[1])

    def test_pin_position_mirrored(self, ota1):
        placement = Placement(circuit=ota1)
        device = ota1.device("MN_IN_L")
        placement.positions["MN_IN_L"] = PlacedDevice(
            name="MN_IN_L", x=0.0, y=0.0, orientation=Orientation.MY)
        gx, _ = placement.pin_position("MN_IN_L", "G")
        assert gx == pytest.approx(device.width - device.pin("G").offset[0])

    def test_bounding_box_contains_all_devices(self, ota1_placement):
        x0, y0, x1, y1 = ota1_placement.bounding_box()
        for name in ota1_placement.positions:
            bx0, by0, bx1, by1 = ota1_placement.device_box(name)
            assert x0 <= bx0 and bx1 <= x1
            assert y0 <= by0 and by1 <= y1

    def test_empty_placement_bounding_box_raises(self, ota1):
        with pytest.raises(ValueError):
            Placement(circuit=ota1).bounding_box()

    def test_hpwl_zero_for_single_pin(self, ota1, ota1_placement):
        vinp = ota1.net("VINP")
        assert vinp.degree == 1
        assert ota1_placement.hpwl(vinp) == 0.0

    def test_hpwl_positive_for_multi_pin(self, ota1, ota1_placement):
        assert ota1_placement.hpwl(ota1.net("NET1L")) > 0.0

    def test_weighted_hpwl_respects_weights(self, ota1, ota1_placement):
        base = ota1_placement.total_hpwl()
        doubled = ota1_placement.total_hpwl(
            {n: 2.0 for n in ota1.nets})
        assert doubled == pytest.approx(2.0 * base)

    def test_overlap_detection(self, ota1):
        placement = Placement(circuit=ota1)
        placement.positions["MN_IN_L"] = PlacedDevice("MN_IN_L", 0.0, 0.0)
        placement.positions["MN_IN_R"] = PlacedDevice("MN_IN_R", 0.1, 0.1)
        assert ("MN_IN_L", "MN_IN_R") in placement.overlapping_pairs()
        assert not placement.is_legal()


class TestPlacer:
    @pytest.mark.parametrize("variant", sorted(NET_WEIGHT_VARIANTS))
    def test_all_variants_legal(self, ota1, variant):
        placement = place_benchmark(ota1, variant=variant, iterations=100)
        assert placement.is_legal()

    @pytest.mark.parametrize("name", ["OTA1", "OTA3"])
    def test_symmetry_exact(self, name):
        circuit = build_benchmark(name)
        placement = place_benchmark(circuit, variant="A", iterations=100)
        assert placement.symmetry_error() < 1e-9

    def test_all_devices_placed(self, ota1):
        placement = place_benchmark(ota1, variant="A", iterations=50)
        assert set(placement.positions) == set(ota1.devices)

    def test_right_of_pair_is_mirrored_orientation(self, ota1):
        placement = place_benchmark(ota1, variant="A", iterations=50)
        assert placement.positions["MN_IN_R"].orientation is Orientation.MY
        assert placement.positions["MN_IN_L"].orientation is Orientation.R0

    def test_variants_give_different_placements(self, ota1):
        a = place_benchmark(ota1, variant="A", iterations=200)
        b = place_benchmark(ota1, variant="B", iterations=200)
        moved = [
            n for n in a.positions
            if (a.positions[n].x, a.positions[n].y)
            != (b.positions[n].x, b.positions[n].y)
        ]
        assert moved, "variants A and B should differ"

    def test_seeds_give_different_placements(self, ota1):
        a = place_benchmark(ota1, variant="A", seed=0, iterations=200)
        b = place_benchmark(ota1, variant="A", seed=7, iterations=200)
        moved = [
            n for n in a.positions
            if (a.positions[n].x, a.positions[n].y)
            != (b.positions[n].x, b.positions[n].y)
        ]
        assert moved

    def test_deterministic_for_same_seed(self, ota1):
        a = place_benchmark(ota1, variant="A", seed=3, iterations=100)
        b = place_benchmark(ota1, variant="A", seed=3, iterations=100)
        for name in a.positions:
            assert (a.positions[name].x, a.positions[name].y) == (
                b.positions[name].x, b.positions[name].y)

    def test_annealing_does_not_worsen_hpwl(self, ota1):
        short = place_benchmark(ota1, variant="A", iterations=10)
        long = place_benchmark(ota1, variant="A", iterations=600)
        weights = Placer(ota1, variant="A").net_weights
        assert long.total_hpwl(weights) <= short.total_hpwl(weights) * 1.25

    def test_unknown_variant_raises(self, ota1):
        with pytest.raises(ValueError):
            Placer(ota1, variant="Z")

    def test_positive_coordinates(self, ota1):
        placement = place_benchmark(ota1, variant="A", iterations=50)
        x0, y0, _, _ = placement.bounding_box()
        assert x0 >= 0.0 and y0 >= 0.0

    def test_symmetry_axis_inside_die(self, ota1):
        placement = place_benchmark(ota1, variant="A", iterations=50)
        x0, _, x1, _ = placement.bounding_box()
        assert x0 <= placement.symmetry_axis <= x1
