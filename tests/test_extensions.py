"""Tests for extension circuits, layer-cost routing, and report collation."""

import numpy as np
import pytest

from repro.eval.report import collate_report, write_report
from repro.netlist import NetType
from repro.netlist.extensions import EXTENSION_BENCHMARKS, build_folded_cascode
from repro.placement import place_benchmark
from repro.router import IterativeRouter, RouterConfig, RoutingGrid
from repro.extraction import extract
from repro.simulation import simulate_performance


class TestFoldedCascode:
    @pytest.fixture(scope="class")
    def ota_fc(self):
        return build_folded_cascode()

    def test_netlist_valid(self, ota_fc):
        ota_fc.validate()
        assert ota_fc.name == "OTA_FC"

    def test_has_symmetry_constraints(self, ota_fc):
        assert len(ota_fc.symmetry_pairs) == 4
        assert any(n.self_symmetric for n in ota_fc.nets.values())

    def test_full_chain(self, ota_fc, tech):
        placement = place_benchmark(ota_fc, variant="A", iterations=100)
        assert placement.is_legal()
        grid = RoutingGrid(placement, tech)
        result = IterativeRouter(grid).route_all()
        assert result.success
        metrics = simulate_performance(ota_fc, extract(result, grid, tech))
        assert metrics.gain_db > 10.0
        assert np.isfinite(metrics.to_normalized()).all()

    def test_registry(self):
        assert "OTA_FC" in EXTENSION_BENCHMARKS


class TestLayerCostRouting:
    def test_supply_pushed_to_upper_layers(self, ota1_placement, tech):
        """With strong lower-layer penalties on supplies, supply wirelength
        share on the lower metals must not increase."""
        def supply_layer_share(config):
            grid = RoutingGrid(ota1_placement, tech)
            result = IterativeRouter(grid, config=config).route_all()
            assert result.success
            lower = upper = 0
            for net_name in ("VDD", "VSS"):
                for a, b in result.routes[net_name].segments():
                    if a[2] != b[2]:
                        continue
                    if a[2] <= 1:
                        lower += 1
                    else:
                        upper += 1
            return lower / max(lower + upper, 1)

        plain = supply_layer_share(RouterConfig())
        biased = supply_layer_share(RouterConfig(layer_cost_by_type={
            NetType.POWER: (6.0, 6.0, 1.0, 1.0),
            NetType.GROUND: (6.0, 6.0, 1.0, 1.0),
        }))
        assert biased <= plain

    def test_bad_multiplier_length_raises(self, fresh_grid):
        from repro.router import AStarRouter
        router = AStarRouter(fresh_grid)
        with pytest.raises(ValueError):
            router.route_connection("VDD", {(1, 1, 1)}, {(3, 3, 1)},
                                    layer_multipliers=np.ones(2))

    def test_signal_nets_unaffected_by_supply_bias(self, ota1_placement, tech):
        grid_a = RoutingGrid(ota1_placement, tech)
        plain = IterativeRouter(grid_a).route_all()
        grid_b = RoutingGrid(ota1_placement, tech)
        config = RouterConfig(layer_cost_by_type={
            NetType.POWER: (6.0, 6.0, 1.0, 1.0)})
        biased = IterativeRouter(grid_b, config=config).route_all()
        # Signal nets route before supplies in priority order, so their
        # geometry is identical.
        assert plain.routes["NET1L"].cells() == biased.routes["NET1L"].cells()


class TestReport:
    def test_collate_includes_existing(self, tmp_path):
        (tmp_path / "table1.txt").write_text("TABLE ONE CONTENT")
        report = collate_report(tmp_path)
        assert "TABLE ONE CONTENT" in report
        assert "Table 1" in report

    def test_collate_lists_missing(self, tmp_path):
        report = collate_report(tmp_path)
        assert "Missing artifacts" in report
        assert "table2.txt" in report

    def test_write_report(self, tmp_path):
        (tmp_path / "fig5_runtime.txt").write_text("RUNTIME")
        out = write_report(tmp_path, tmp_path / "report.md")
        assert out.exists()
        assert "RUNTIME" in out.read_text()
