"""Property-based tests for the phase-2 call-graph builder.

The linker must stay *sound* on arbitrary import topologies: cyclic
imports terminate, aliases and star-import chains resolve to the
defining module, package ``__init__`` re-exports are followed, and
every emitted edge connects two real function nodes reachable by a
reconstructible path.  Hypothesis drives the topology; the properties
below never depend on a particular repo layout.
"""

from __future__ import annotations

import ast

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint.callgraph import EDGE_KINDS, Project
from repro.lint.summaries import summarize_module

_settings = settings(max_examples=50, deadline=None)


def _summarize(module: str, source: str, rel: str | None = None):
    rel = rel or module.replace(".", "/") + ".py"
    return summarize_module(ast.parse(source), module, rel)


def _project(files: dict[str, str]) -> Project:
    return Project({m: _summarize(m, src) for m, src in files.items()})


# -- strategies ----------------------------------------------------------------

_names = st.integers(min_value=0, max_value=9).map(lambda i: f"alias{i}")


@st.composite
def _import_topologies(draw):
    """A random directed import graph: module i imports a set of peers,
    each under a random alias, and calls one function per import."""
    n = draw(st.integers(min_value=2, max_value=5))
    imports = [draw(st.lists(
        st.integers(min_value=0, max_value=n - 1).filter(lambda j, i=i: j != i),
        unique=True, max_size=3)) for i in range(n)]
    aliased = [draw(st.lists(st.booleans(),
                             min_size=len(imports[i]),
                             max_size=len(imports[i])))
               for i in range(n)]
    return n, imports, aliased


# -- properties ----------------------------------------------------------------


class TestImportResolution:
    @_settings
    @given(_import_topologies())
    def test_aliased_imports_resolve_across_arbitrary_cycles(self, topo):
        n, imports, aliased = topo
        files = {}
        for i in range(n):
            lines = []
            calls = []
            for k, j in enumerate(imports[i]):
                if aliased[i][k]:
                    lines.append(f"import mod{j} as a{k}")
                    calls.append(f"    a{k}.fn{j}()")
                else:
                    lines.append(f"import mod{j}")
                    calls.append(f"    mod{j}.fn{j}()")
            lines.append(f"def fn{i}():")
            lines.extend(calls or ["    pass"])
            files[f"mod{i}"] = "\n".join(lines) + "\n"
        project = _project(files)
        for i in range(n):
            src = f"mod{i}:fn{i}"
            direct = {e.dst for e in project.edges_from(src)
                      if e.kind == "direct"}
            expected = {f"mod{j}:fn{j}" for j in imports[i]}
            assert direct == expected, (files, direct, expected)

    @_settings
    @given(st.integers(min_value=1, max_value=5))
    def test_star_import_chains_reexport_the_origin(self, depth):
        files = {"m0": "def secret():\n    return 1\n"}
        for i in range(1, depth + 1):
            files[f"m{i}"] = f"from m{i - 1} import *\n"
        files["caller"] = (f"from m{depth} import *\n"
                           "def use():\n    return secret()\n")
        project = _project(files)
        sym = project.resolve_in("caller", "secret")
        assert sym is not None and sym.key == "m0:secret"
        edges = project.edges_from("caller:use")
        assert [e.dst for e in edges if e.kind == "direct"] == ["m0:secret"]

    def test_init_reexport_resolves_to_the_impl(self):
        project = Project({
            "pkg": _summarize(
                "pkg",
                "from pkg.impl import helper\n__all__ = ['helper']\n",
                rel="pkg/__init__.py"),
            "pkg.impl": _summarize(
                "pkg.impl", "def helper():\n    return 3\n"),
            "user": _summarize(
                "user",
                "import pkg\ndef go():\n    return pkg.helper()\n"),
        })
        sym = project.resolve("pkg.helper")
        assert sym is not None and sym.key == "pkg.impl:helper"
        edges = project.edges_from("user:go")
        assert [e.dst for e in edges] == ["pkg.impl:helper"]

    def test_import_cycle_with_reexports_terminates(self):
        # a re-exports from b, b re-exports from a: resolution must not
        # recurse forever and unresolvable names must come back None.
        project = _project({
            "a": "from b import ghost\n",
            "b": "from a import ghost\n",
        })
        assert project.resolve_in("a", "ghost") is None
        assert project.resolve_in("b", "ghost") is None


class TestEdgeSoundness:
    @_settings
    @given(_import_topologies())
    def test_every_edge_connects_real_nodes(self, topo):
        n, imports, aliased = topo
        files = {}
        for i in range(n):
            header = "\n".join(f"import mod{j}" for j in imports[i])
            body = "\n".join(f"    mod{j}.fn{j}()" for j in imports[i])
            files[f"mod{i}"] = (f"{header}\ndef fn{i}():\n"
                                f"{body or '    pass'}\n")
        project = _project(files)
        for src in project.functions:
            for edge in project.edges_from(src):
                assert edge.src == src
                assert edge.dst in project.functions
                assert edge.kind in EDGE_KINDS

    @_settings
    @given(_import_topologies())
    def test_reachable_paths_reconstruct_back_to_an_entry(self, topo):
        n, imports, _aliased = topo
        files = {}
        for i in range(n):
            header = "\n".join(f"import mod{j}" for j in imports[i])
            body = "\n".join(f"    mod{j}.fn{j}()" for j in imports[i])
            files[f"mod{i}"] = (f"{header}\ndef fn{i}():\n"
                                f"{body or '    pass'}\n")
        project = _project(files)
        entries = ["mod0:fn0"]
        pred = project.reachable(entries, EDGE_KINDS)
        assert "mod0:fn0" in pred
        for node in pred:
            path = project.call_path(pred, node)
            assert path[0] in entries and path[-1] == node
            for a, b in zip(path, path[1:]):
                assert any(e.dst == b for e in project.edges_from(a)), (
                    f"path step {a} -> {b} has no edge")

    def test_self_dispatch_covers_subclass_overrides(self):
        project = _project({
            "m": ("class Base:\n"
                  "    def run(self):\n"
                  "        return self.step()\n"
                  "    def step(self):\n"
                  "        return 0\n"
                  "class Child(Base):\n"
                  "    def step(self):\n"
                  "        return 1\n"),
        })
        dsts = {e.dst for e in project.edges_from("m:Base.run")}
        assert dsts == {"m:Base.step", "m:Child.step"}

    def test_ctor_edge_reaches_init(self):
        project = _project({
            "m": ("class Box:\n"
                  "    def __init__(self):\n"
                  "        self.value = 0\n"
                  "def make():\n"
                  "    return Box()\n"),
        })
        edges = project.edges_from("m:make")
        assert [(e.dst, e.kind) for e in edges] == [
            ("m:Box.__init__", "ctor")]
