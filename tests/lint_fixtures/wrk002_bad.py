"""Seeded WRK002 violations: non-injected randomness on a worker path.

Linted as module ``repro.perf.parallel``: one unseeded generator
factory, one entropy source, one global-state draw behind a helper.
"""

import os

import numpy as np


def _jitter():
    return np.random.rand()  # module-level global RNG state


def _worker_run(task):
    rng = np.random.default_rng()  # unseeded: seed differs per process
    token = os.urandom(8)  # entropy source
    return task, rng, token, _jitter()
