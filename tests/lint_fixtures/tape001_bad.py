"""Seeded TAPE001 violations: tape ops on a no_grad scoring path.

One ``.backward()`` lexically inside the ``no_grad`` block, and one
reached through a helper called from inside the block.
"""

from repro.nn.tensor import no_grad


def _fit(pred):
    loss = (pred * pred).sum()
    loss.backward()  # reachable from the no_grad block in score()
    return loss


def score(model, x):
    with no_grad():
        pred = model(x)
        pred.backward()  # direct tape op inside no_grad
        return _fit(pred)
