"""Violates OBS001: metric names off the locked scheme."""


def instrument(obs, stage, n):
    obs.counter("RetryCount").inc()                 # not snake_case
    obs.counter("failures", stage=stage).inc(n)     # labelled, no _total
    obs.gauge("pool_size_total").set(n)             # _total on a gauge
    obs.histogram("restart" + "_seconds").observe(n)  # computed name
