"""Compliant with NUM001: tolerances, integer compares untouched."""

import math

EPS = 1e-12


def degenerate(amplitude, gain, count):
    if amplitude < EPS:
        return True
    if not math.isclose(gain, 1.5):
        return False
    return count == 0 and abs(amplitude - 2.0) < EPS
