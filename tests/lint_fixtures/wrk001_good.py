"""Compliant twin of wrk001_bad: the worker keeps every byte local."""


def _bump(counter):
    return counter + 1


def _worker_run(task):
    cache = {}
    cache[task] = 1
    seen = [task]
    seen.append(task)
    return _bump(len(seen))
