"""Violates EXC001: broad handlers that swallow the failure."""


def swallow_bare(work):
    try:
        return work()
    except:  # noqa: E722 (the bare except IS the fixture)
        return None


def swallow_broad(work, log):
    try:
        return work()
    except Exception as exc:
        log(exc)
        return None
