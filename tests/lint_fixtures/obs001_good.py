"""Compliant with OBS001: scheme-conforming metric call sites."""

import numpy as np


def instrument(obs, stage, values):
    obs.counter("samples_valid").inc()
    obs.counter("retry_total", stage=stage).inc()
    obs.gauge("pool_size").set(len(values))
    obs.histogram("restart_seconds").observe(values[-1])
    # Module functions that merely share a method name stay exempt:
    return np.histogram(np.asarray(values), bins=4)
