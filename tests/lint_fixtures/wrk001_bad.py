"""Seeded WRK001 violations: a worker task mutates module-level state.

Linted as module ``repro.perf.parallel`` so ``_worker_run`` is a
worker entry point; the rule must flag the direct mutations *and* the
one hidden behind a helper call.
"""

_CACHE = {}
_SEEN = []
_COUNTER = 0


def _bump():
    global _COUNTER
    _COUNTER += 1  # rebinding module state, one call away from the worker


def _worker_run(task):
    _CACHE[task] = 1  # direct mutation of a module dict
    _SEEN.append(task)  # mutating method on module state
    _bump()
    return task
