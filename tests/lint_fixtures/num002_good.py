"""Compliant with NUM002: None defaults, construction in the body."""


def collect(sample, pool=None):
    pool = [] if pool is None else pool
    pool.append(sample)
    return pool


def tally(key, counts=None, *, tags=frozenset()):
    counts = {} if counts is None else counts
    counts[key] = counts.get(key, 0) + 1
    return counts, tags
