"""Seeded PRE001 violations: float64 coercions on the scoring path.

Linted as module ``repro.serve.service`` so ``ScoringService.submit``
is a precision root; one coercion sits in the root itself, one behind
a helper call.
"""

import numpy as np


def _normalize(batch):
    return np.asarray(batch, dtype="float64")  # widens behind a helper


class ScoringService:
    def submit(self, request):
        wide = np.zeros(4, dtype=np.float64)  # widens in the root
        return _normalize(request) + wide
