"""Violates NUM003: lru_cache pins self on instance methods."""

import functools
from functools import lru_cache


class Forward:
    @lru_cache(maxsize=None)
    def evaluate(self, guidance):
        return guidance * 2

    @functools.cache
    def geometry(self):
        return [self]
