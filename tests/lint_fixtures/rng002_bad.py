"""Violates RNG002: uses the stdlib random module."""

import random
from random import shuffle


def pick(items):
    shuffle(items)
    return random.choice(items)
