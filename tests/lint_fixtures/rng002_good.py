"""Compliant with RNG002: numpy Generator does the shuffling."""

import numpy as np


def pick(items, seed):
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(items))
    return items[order[0]]
