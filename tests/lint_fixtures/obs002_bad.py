"""Violates OBS002: span names off the dotted lowercase scheme."""


def trace(obs, name, seconds):
    with obs.span("Route.Net"):          # uppercase segments
        pass
    obs.emit_span(f"relax.{name}", seconds)  # computed name
