"""Compliant with CLK001: perf_counter for durations; a suppressed
wall-clock read for the one human-facing timestamp."""

import time


def timed_stage(work):
    start = time.perf_counter()
    work()
    elapsed = time.perf_counter() - start
    stamp = time.time()  # repro-lint: disable=CLK001 -- manifest timestamp
    return elapsed, stamp
