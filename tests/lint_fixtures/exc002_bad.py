"""Violates EXC002 (when linted as stage code): untyped raises."""


def route_failed(net):
    raise RuntimeError(f"could not route {net}")


def give_up():
    raise Exception("pipeline failure without a stage")
