"""Violates NUM002: mutable default arguments."""


def collect(sample, pool=[]):
    pool.append(sample)
    return pool


def tally(key, counts={}, *, tags=set()):
    counts[key] = counts.get(key, 0) + 1
    return counts, tags
