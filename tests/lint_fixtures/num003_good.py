"""Compliant with NUM003: module-level memoization is fine, methods
cache through explicit per-instance stores."""

from functools import lru_cache


@lru_cache(maxsize=32)
def rbf_centers(num):
    return tuple(range(num))


class Forward:
    def __init__(self):
        self._geometry = None

    def geometry(self):
        if self._geometry is None:
            self._geometry = self._build()
        return self._geometry

    def _build(self):
        return []

    @staticmethod
    @lru_cache(maxsize=8)
    def lookup(key):
        return key
