"""Compliant with OBS002: literal dotted lowercase span names."""


def trace(obs, net, seconds, timer):
    with obs.span("route.net", net=net, timer=timer):
        pass
    with obs.span("stage.guided_routing"):
        pass
    obs.emit_span("relax.restart", seconds, outcome="ok")
