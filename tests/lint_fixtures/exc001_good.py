"""Compliant with EXC001: broad handlers re-raise, wrapped and typed."""

from repro.reliability.errors import ReproError, RoutingError


def wrap(work):
    try:
        return work()
    except ReproError as exc:
        raise exc.with_context(stage="routing")
    except Exception as exc:
        raise RoutingError(str(exc), stage="routing") from exc


def narrow(mapping, key):
    try:
        return mapping[key]
    except KeyError:
        return None
