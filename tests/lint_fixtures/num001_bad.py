"""Violates NUM001: equality against float literals."""


def degenerate(amplitude, gain):
    if amplitude == 0.0:
        return True
    if gain != 1.5:
        return False
    return -2.0 == amplitude
