"""Compliant twin of pre001_bad: the scoring path stays float32."""

import numpy as np


def _normalize(batch):
    return np.asarray(batch, dtype=np.float32)


class ScoringService:
    def submit(self, request):
        wide = np.zeros(4, dtype="float32")
        return _normalize(request) + wide
