"""Seeded EXC101 divergence: an exported API raises an undocumented error.

Linted as the package ``__init__`` of module ``repro`` (rel path
``src/repro/__init__.py``) alongside a minimal error taxonomy; the
test pairs it with an EXCEPTIONS.md that misses the ``RoutingError``.
"""

from repro.reliability.errors import RoutingError

__all__ = ["route"]


def route(net):
    if net is None:
        raise RoutingError("no net to route")
    return net
