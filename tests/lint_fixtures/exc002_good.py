"""Compliant with EXC002: taxonomy raises for failures, builtins for
contract violations, re-raise and with_context untouched."""

from repro.reliability.errors import RoutingError, error_for_stage


def route_failed(net):
    raise RoutingError(f"could not route {net}", stage="routing")


def fail_stage(stage):
    raise error_for_stage(stage)("boom", stage=stage)


def validate(pitch):
    if pitch <= 0:
        raise ValueError(f"pitch must be positive, got {pitch}")


def reraise_with_context(exc):
    raise exc.with_context(stage="routing")
