"""Compliant twin of exc101_bad: the exported API raises no taxonomy
error, so the computed table is empty and no EXCEPTIONS.md is owed."""

__all__ = ["route"]


def route(net):
    if net is None:
        raise ValueError("no net to route")
    return net
