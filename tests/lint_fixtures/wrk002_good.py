"""Compliant twin of wrk002_bad: workers draw only from injected RNGs."""

import numpy as np


def _jitter(rng):
    return rng.uniform()


def _worker_run(task, seed):
    rng = np.random.default_rng(seed)
    return task, _jitter(rng)
