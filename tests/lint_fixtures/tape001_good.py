"""Compliant twin of tape001_bad: the tape stays outside no_grad.

``_fit`` calls ``.backward()`` but is only reached from the training
step, never from inside a ``no_grad`` block — so the rule stays quiet.
"""

from repro.nn.tensor import no_grad


def _fit(pred, target):
    loss = ((pred - target) * (pred - target)).sum()
    loss.backward()
    return loss


def train_step(model, x, target):
    pred = model(x)
    return _fit(pred, target)


def score(model, x):
    with no_grad():
        return model(x)
