"""Violates CLK001: wall clocks measure durations."""

import time
from datetime import datetime


def timed_stage(work):
    start = time.time()
    stamp = datetime.now()
    work()
    return time.time() - start, stamp
