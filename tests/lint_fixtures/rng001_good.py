"""Compliant with RNG001: explicit seeded Generator streams only."""

import numpy as np


def sample_noise(n, seed):
    rng = np.random.default_rng([seed, 0x5EED])
    return rng.normal(0.0, 1.0, size=n)


def typed(rng: np.random.Generator) -> float:
    return float(rng.random())
