"""Violates RNG001: draws from numpy's module-level global RNG."""

import numpy as np


def sample_noise(n):
    np.random.seed(42)
    return np.random.normal(0.0, 1.0, size=n) + np.random.rand(n)
