"""Cluster dispatch core: breakers, shedding, re-dispatch, accounting.

The :class:`~repro.serve.dispatch.Dispatcher` is pure state with an
injected clock, so these tests drive virtual time — no processes, no
sleeping.  The load-bearing invariant (the one the chaos gate enforces
end to end) is checked here property-based over random interleavings of
acks, deliveries, kills, and clock advances:

* every acknowledged request reaches **exactly one** terminal outcome —
  never lost, never double-scored — for any kill/restart interleaving;
* ``ok + failed + timeout + shed + rejected == submitted`` holds at
  quiescence, and ``outstanding + accounted == submitted`` at every
  intermediate step.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import RunContext
from repro.serve.dispatch import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    Dispatcher,
    affinity,
)
from repro.serve.service import ScoreRequest


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def request(graph_id: str = "g", request_id: str | None = None):
    return ScoreRequest(graph_id=graph_id, guidance=np.zeros((1, 3)),
                        request_id=request_id)


def ok_payload(request_id: str) -> dict:
    return {"id": request_id, "status": "ok", "metrics": [0.0] * 5,
            "fom": 0.0, "batch_size": 1}


# -- circuit breaker ------------------------------------------------------------------


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3, cooldown_s=1.0)
        for _ in range(2):
            breaker.record_failure(now=0.0)
        assert breaker.state(0.0) == BREAKER_CLOSED
        breaker.record_failure(now=0.0)
        assert breaker.state(0.0) == BREAKER_OPEN
        assert not breaker.allows(0.5)

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure(now=0.0)
        breaker.record_success()
        breaker.record_failure(now=0.0)
        assert breaker.state(0.0) == BREAKER_CLOSED

    def test_half_open_allows_one_probe_then_closes_on_success(self):
        breaker = CircuitBreaker(threshold=1, cooldown_s=1.0)
        breaker.record_failure(now=0.0)
        assert breaker.state(1.0) == BREAKER_HALF_OPEN
        assert breaker.allows(1.0)          # the single probe
        assert not breaker.allows(1.0)      # second caller must wait
        breaker.record_success()
        assert breaker.state(1.0) == BREAKER_CLOSED
        assert breaker.allows(1.0)

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(threshold=3, cooldown_s=1.0)
        for _ in range(3):
            breaker.record_failure(now=0.0)
        assert breaker.allows(1.0)          # half-open probe
        breaker.record_failure(now=1.0)     # probe failed: one strike
        assert breaker.state(1.5) == BREAKER_OPEN
        assert breaker.state(2.0) == BREAKER_HALF_OPEN

    def test_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError, match="cooldown"):
            CircuitBreaker(cooldown_s=-1.0)


# -- dispatcher unit behavior ---------------------------------------------------------


class TestDispatcher:
    def make(self, workers=2, **kwargs):
        clock = FakeClock()
        kwargs.setdefault("max_queue", 8)
        kwargs.setdefault("worker_window", 2)
        return Dispatcher(workers, clock=clock, **kwargs), clock

    def test_happy_path_assign_and_record(self):
        dispatcher, clock = self.make()
        pending = dispatcher.ack(request(), deadline=clock() + 10)
        batch = dispatcher.assign(ready=[0, 1])
        assert len(batch) == 1
        worker, assigned = batch[0]
        assert assigned is pending
        assert worker == affinity("g", 2)
        clock.advance(0.25)
        assert dispatcher.record_result(worker,
                                        ok_payload(pending.request.request_id))
        result = dispatcher.result_for(pending.request.request_id)
        assert result.status == "ok"
        assert result.worker == worker
        assert result.latency_s == pytest.approx(0.25)
        assert dispatcher.outstanding() == 0

    def test_affinity_is_stable_and_in_range(self):
        for workers in (1, 2, 3, 7):
            for graph_id in ("ota1", "ota2", "x"):
                first = affinity(graph_id, workers)
                assert 0 <= first < workers
                assert affinity(graph_id, workers) == first

    def test_duplicate_request_id_rejected_at_ack(self):
        dispatcher, _ = self.make()
        dispatcher.ack(request(request_id="r1"))
        with pytest.raises(ValueError, match="duplicate request id"):
            dispatcher.ack(request(request_id="r1"))

    def test_saturation_sheds_earliest_deadline_first(self):
        obs = RunContext(run_id="shed-test")
        clock = FakeClock()
        dispatcher = Dispatcher(workers=1, max_queue=2, obs=obs,
                                clock=clock)
        soon = dispatcher.ack(request(request_id="soon"), deadline=1.0)
        late = dispatcher.ack(request(request_id="late"), deadline=9.0)
        dispatcher.ack(request(request_id="later"), deadline=5.0)
        # "soon" had the earliest deadline: it is the shed victim even
        # though the overflowing ack was "later".
        shed = dispatcher.result_for(soon.request.request_id)
        assert shed is not None and shed.status == "shed"
        assert dispatcher.result_for(late.request.request_id) is None
        assert dispatcher.stats.shed == 1
        assert obs.counter_values()[
            "serve_shed_total{reason=queue_full}"] == 1

    def test_worker_down_redispatches_in_ack_order(self):
        dispatcher, clock = self.make(workers=1, worker_window=4)
        ids = []
        for index in range(3):
            pending = dispatcher.ack(request(request_id=f"r{index}"),
                                     deadline=clock() + 10)
            ids.append(pending.request.request_id)
        dispatcher.assign(ready=[0])
        assert dispatcher.inflight_ids(0) == sorted(ids)
        requeued = dispatcher.worker_down(0)
        assert requeued == 3
        assert dispatcher.queued_ids() == ids  # ack order preserved
        assert dispatcher.stats.redispatched == 3
        # The re-dispatch serves to completion on the restarted slot.
        for worker, pending in dispatcher.assign(ready=[0]):
            dispatcher.record_result(worker,
                                     ok_payload(pending.request.request_id))
        assert dispatcher.stats.ok == 3
        assert all(dispatcher.result_for(i).attempts == 2 for i in ids)

    def test_worker_down_times_out_already_expired_inflight(self):
        dispatcher, clock = self.make(workers=1)
        dispatcher.ack(request(request_id="r0"), deadline=1.0)
        dispatcher.assign(ready=[0])
        clock.advance(2.0)
        assert dispatcher.worker_down(0) == 0
        assert dispatcher.result_for("r0").status == "timeout"

    def test_expire_queued_and_inflight_and_hang_detection(self):
        dispatcher, clock = self.make(workers=2)
        dispatcher.ack(request(request_id="fast"), deadline=1.0)
        dispatcher.assign(ready=[0, 1])
        dispatcher.ack(request(request_id="stuck"), deadline=1.0)
        worker = affinity("g", 2)
        clock.advance(2.0)
        # Both expire; the in-flight one marks its worker overdue.
        assert dispatcher.expire(hang_grace_s=5.0) == set()
        assert dispatcher.result_for("fast").status == "timeout"
        assert dispatcher.result_for("stuck").status == "timeout"
        assert dispatcher.overdue_since(worker) == 1.0
        # No message for hang_grace past the missed deadline: hung.
        clock.advance(4.5)
        assert dispatcher.expire(hang_grace_s=5.0) == {worker}

    def test_late_result_clears_overdue_and_drops_as_duplicate(self):
        dispatcher, clock = self.make(workers=1)
        pending = dispatcher.ack(request(request_id="slow"), deadline=1.0)
        dispatcher.assign(ready=[0])
        clock.advance(2.0)
        dispatcher.expire(hang_grace_s=5.0)
        assert dispatcher.result_for("slow").status == "timeout"
        # The merely-slow worker delivers after all: duplicate, and the
        # worker is no longer overdue (it is alive, just slow).
        assert not dispatcher.record_result(
            0, ok_payload(pending.request.request_id))
        assert dispatcher.overdue_since(0) is None
        assert dispatcher.stats.duplicates == 1
        assert dispatcher.result_for("slow").status == "timeout"

    def test_open_breaker_diverts_assignment(self):
        dispatcher, clock = self.make(workers=2, breaker_threshold=1,
                                      breaker_cooldown_s=10.0)
        preferred = affinity("g", 2)
        dispatcher.worker_down(preferred)  # trips the breaker open
        dispatcher.ack(request(), deadline=clock() + 10)
        batch = dispatcher.assign(ready=[0, 1])
        assert [worker for worker, _ in batch] == [1 - preferred]

    def test_window_limits_inflight_per_worker(self):
        dispatcher, clock = self.make(workers=1, worker_window=2)
        for index in range(4):
            dispatcher.ack(request(request_id=f"r{index}"),
                           deadline=clock() + 10)
        assert len(dispatcher.assign(ready=[0])) == 2
        assert dispatcher.queued_ids() == ["r2", "r3"]

    def test_take_completed_releases_prefix_in_ack_order(self):
        dispatcher, clock = self.make(workers=1, worker_window=4)
        for index in range(3):
            dispatcher.ack(request(request_id=f"r{index}"),
                           deadline=clock() + 10)
        batch = dispatcher.assign(ready=[0])
        # Finish r1 and r2 first: nothing releases past the r0 gap.
        dispatcher.record_result(0, ok_payload("r1"))
        dispatcher.record_result(0, ok_payload("r2"))
        assert dispatcher.take_completed() == []
        dispatcher.record_result(0, ok_payload("r0"))
        taken = dispatcher.take_completed()
        assert [r.request_id for r in taken] == ["r0", "r1", "r2"]
        assert dispatcher.take_completed() == []
        assert len(batch) == 3

    def test_validation(self):
        with pytest.raises(ValueError, match="workers"):
            Dispatcher(workers=0)
        with pytest.raises(ValueError, match="max_queue"):
            Dispatcher(workers=1, max_queue=0)
        with pytest.raises(ValueError, match="worker_window"):
            Dispatcher(workers=1, worker_window=0)


# -- the invariant, property-based ----------------------------------------------------

#: One step of a random interleaving; integers parameterize the step.
_steps = st.one_of(
    st.tuples(st.just("ack"), st.integers(0, 3), st.floats(0.5, 20.0)),
    st.tuples(st.just("deliver"), st.integers(0, 2), st.just(0.0)),
    st.tuples(st.just("kill"), st.integers(0, 2), st.just(0.0)),
    st.tuples(st.just("advance"), st.just(0), st.floats(0.1, 3.0)),
    st.tuples(st.just("late_duplicate"), st.integers(0, 2), st.just(0.0)),
)


@settings(max_examples=60, deadline=None)
@given(workers=st.integers(1, 3), max_queue=st.integers(1, 6),
       window=st.integers(1, 3), steps=st.lists(_steps, max_size=40))
def test_no_ack_lost_or_double_scored_under_any_interleaving(
        workers, max_queue, window, steps):
    """Simulate the cluster pump against virtual workers that can be
    killed at any time; at quiescence every acknowledged request has
    exactly one terminal outcome and the counters balance."""
    clock = FakeClock()
    dispatcher = Dispatcher(workers, max_queue=max_queue,
                            worker_window=window, breaker_threshold=2,
                            breaker_cooldown_s=1.0, clock=clock)
    acked: list[str] = []
    # Mirror of what each virtual worker holds (assignment messages it
    # received and has not yet answered or died with).
    held: dict[int, list[str]] = {index: [] for index in range(workers)}
    answered: list[str] = []
    counter = 0

    def pump() -> None:
        for worker, pending in dispatcher.assign(ready=list(range(workers))):
            held[worker].append(pending.request.request_id)
        dispatcher.expire(hang_grace_s=math.inf)

    for kind, index, value in steps:
        assert (dispatcher.outstanding()
                + dispatcher.stats.accounted()) == dispatcher.stats.submitted
        if kind == "ack":
            graph_id = f"g{index}"
            request_id = f"r{counter}"
            counter += 1
            acked.append(request_id)
            dispatcher.ack(request(graph_id, request_id),
                           deadline=clock() + value)
        elif kind == "deliver":
            worker = index % workers
            if held[worker]:
                request_id = held[worker].pop(0)
                answered.append(request_id)
                dispatcher.record_result(worker, ok_payload(request_id))
        elif kind == "kill":
            worker = index % workers
            held[worker].clear()  # a killed process answers nothing
            dispatcher.worker_down(worker)
        elif kind == "advance":
            clock.advance(value)
        elif kind == "late_duplicate":
            worker = index % workers
            if answered:
                # A restarted worker re-serves an already-answered id.
                dispatcher.record_result(worker,
                                         ok_payload(answered[index %
                                                            len(answered)]))
        pump()

    # Drive to quiescence: advance past breaker cooldowns and deadlines,
    # answer everything still assigned.
    for _ in range(200):
        if dispatcher.outstanding() == 0:
            break
        clock.advance(1.5)
        pump()
        for worker, ids in held.items():
            while ids:
                dispatcher.record_result(worker, ok_payload(ids.pop(0)))
    assert dispatcher.outstanding() == 0

    stats = dispatcher.stats
    assert (stats.ok + stats.failed + stats.timeout + stats.shed
            + stats.rejected) == stats.submitted == len(acked)
    # Exactly one terminal outcome per acknowledged id; none invented.
    results = dispatcher.take_completed()
    assert sorted(r.request_id for r in results) == sorted(acked)
    assert len({r.request_id for r in results}) == len(acked)


@settings(max_examples=30, deadline=None)
@given(deadlines=st.lists(st.floats(0.5, 10.0), min_size=1, max_size=12),
       max_queue=st.integers(1, 4))
def test_shedding_prefers_earliest_deadline(deadlines, max_queue):
    """Whenever the queue overflows, the shed victim's deadline is <=
    every deadline that stayed queued."""
    clock = FakeClock()
    dispatcher = Dispatcher(workers=1, max_queue=max_queue, clock=clock)
    by_id = {}
    for index, deadline in enumerate(deadlines):
        request_id = f"r{index}"
        by_id[request_id] = deadline
        dispatcher.ack(request(request_id=request_id), deadline=deadline)
        shed_ids = [r for r in by_id
                    if (res := dispatcher.result_for(r)) is not None
                    and res.status == "shed"]
        queued = dispatcher.queued_ids()
        if shed_ids and queued:
            assert max(by_id[r] for r in shed_ids) <= \
                min(by_id[r] for r in queued)
    assert len(dispatcher.queued_ids()) <= max_queue
