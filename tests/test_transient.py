"""Transient analysis tests against analytic solutions."""

import numpy as np
import pytest

from repro.extraction import extract_schematic
from repro.simulation import Testbench
from repro.simulation.mna import MnaSystem
from repro.simulation.transient import (
    StepMetrics,
    step_response_metrics,
    transient,
)


def _rc_system(r=1e3, c=1e-9):
    sys = MnaSystem()
    sys.add_resistance("in", "out", r)
    sys.add_capacitance("out", "0", c)
    sys.add_conductance("in", "0", 1e3)  # stiff source node
    return sys


class TestTransientRc:
    def test_rc_step_matches_analytic(self):
        r, c = 1e3, 1e-9
        tau = r * c
        sys = _rc_system(r, c)

        def drive(t):
            return {"in": 1.0 * 1e3}  # 1 V through the stiff source

        result = transient(sys, drive, t_stop=5 * tau, dt=tau / 200)
        wave = result.waveform("out")
        analytic = 1.0 - np.exp(-result.times / tau)
        # Backward Euler at tau/200: sub-percent accuracy expected.
        assert np.abs(wave - analytic).max() < 0.01

    def test_initial_condition_decay(self):
        r, c = 1e3, 1e-9
        tau = r * c
        sys = MnaSystem()
        sys.add_resistance("out", "0", r)
        sys.add_capacitance("out", "0", c)
        result = transient(sys, lambda t: {}, t_stop=3 * tau, dt=tau / 100,
                           initial={"out": 1.0})
        wave = result.waveform("out")
        analytic = np.exp(-result.times / tau)
        assert np.abs(wave - analytic).max() < 0.02

    def test_ground_waveform_is_zero(self):
        sys = _rc_system()
        result = transient(sys, lambda t: {"in": 1.0}, t_stop=1e-6, dt=1e-8)
        assert (result.waveform("0") == 0).all()

    def test_invalid_steps_raise(self):
        sys = _rc_system()
        with pytest.raises(ValueError):
            transient(sys, lambda t: {}, t_stop=0.0, dt=1e-9)
        with pytest.raises(ValueError):
            transient(sys, lambda t: {}, t_stop=1e-9, dt=1e-6)


class TestStepMetrics:
    def _rc_result(self, tau=1e-6, steps=1000):
        sys = MnaSystem()
        sys.add_resistance("in", "out", 1e3)
        sys.add_capacitance("out", "0", tau / 1e3)
        sys.add_conductance("in", "0", 1e3)
        return transient(sys, lambda t: {"in": 1e3}, t_stop=8 * tau,
                         dt=8 * tau / steps)

    def test_final_value(self):
        metrics = step_response_metrics(self._rc_result(), "out")
        assert metrics.final_value == pytest.approx(1.0, abs=0.01)

    def test_settling_time_near_4_tau(self):
        tau = 1e-6
        metrics = step_response_metrics(self._rc_result(tau), "out",
                                        tolerance=0.02)
        # First-order settling to 2%: t = tau * ln(50) ~ 3.9 tau.
        assert metrics.settling_time == pytest.approx(3.9 * tau, rel=0.15)

    def test_first_order_has_no_overshoot(self):
        metrics = step_response_metrics(self._rc_result(), "out")
        assert metrics.overshoot < 0.01

    def test_slew_rate_positive(self):
        metrics = step_response_metrics(self._rc_result(), "out")
        assert metrics.slew_rate > 0

    def test_flat_waveform(self):
        sys = MnaSystem()
        sys.add_resistance("a", "0", 1.0)
        result = transient(sys, lambda t: {}, t_stop=1e-6, dt=1e-8)
        metrics = step_response_metrics(result, "a")
        assert metrics == StepMetrics(0.0, 0.0, 0.0, 0.0)


class TestOtaTransient:
    def test_ota_differential_step_settles(self, ota1):
        """Open-loop OTA driven by a tiny differential step must slew and
        settle to its DC-gain-scaled output without numerical blowup."""
        bench = Testbench(ota1, extract_schematic(list(ota1.nets)))
        v_in = 1e-5  # small enough that output stays in linear range
        from repro.simulation.testbench import G_STIFF

        def drive(t):
            return {"VINP": v_in / 2 * G_STIFF, "VINN": -v_in / 2 * G_STIFF}

        result = transient(bench.system, drive, t_stop=2e-6, dt=2e-9)
        out = result.waveform("VOUTP") - result.waveform("VOUTN")
        assert np.isfinite(out).all()
        metrics = step_response_metrics(
            TransientLike(result.times, out), node=None)
        # ~40 dB gain: output approaches 100x the input step.
        assert abs(metrics.final_value) == pytest.approx(100 * v_in, rel=0.3)


class TransientLike:
    """Adapter exposing a differential waveform to step_response_metrics."""

    def __init__(self, times, wave):
        self.times = times
        self._wave = wave

    def waveform(self, _node):
        return self._wave
