"""Tests for the 3D routing grid and pin access assignment."""

import numpy as np
import pytest

from repro.router import BLOCKED, FREE, RoutingGrid


class TestGridGeometry:
    def test_covers_placement_with_halo(self, ota1_grid, ota1_placement):
        x0, y0, x1, y1 = ota1_placement.bounding_box()
        gx1, gy1, _ = ota1_grid.to_um((ota1_grid.nx - 1, ota1_grid.ny - 1, 0))
        assert ota1_grid.origin[0] < x0
        assert ota1_grid.origin[1] < y0
        assert gx1 > x1 - ota1_grid.pitch
        assert gy1 > y1 - ota1_grid.pitch

    def test_to_cell_um_roundtrip(self, ota1_grid):
        cell = (5, 7, 2)
        x, y, layer = ota1_grid.to_um(cell)
        assert ota1_grid.to_cell(x, y, layer) == cell

    def test_in_bounds(self, ota1_grid):
        assert ota1_grid.in_bounds((0, 0, 0))
        assert not ota1_grid.in_bounds((-1, 0, 0))
        assert not ota1_grid.in_bounds((ota1_grid.nx, 0, 0))
        assert not ota1_grid.in_bounds((0, 0, ota1_grid.num_layers))

    def test_pitch_below_rule_pitch_raises(self, ota1_placement, tech):
        with pytest.raises(ValueError):
            RoutingGrid(ota1_placement, tech, pitch=0.01)

    def test_mirror_is_involution(self, ota1_grid):
        for cell in [(3, 4, 0), (10, 2, 1), (0, 0, 3)]:
            assert ota1_grid.mirror_cell(ota1_grid.mirror_cell(cell)) == cell

    def test_mirror_preserves_adjacency(self, ota1_grid):
        a, b = (5, 5, 0), (6, 5, 0)
        ma, mb = ota1_grid.mirror_cell(a), ota1_grid.mirror_cell(b)
        assert abs(ma[0] - mb[0]) == 1
        assert ma[1:] == a[1:]


class TestBlockages:
    def test_device_bodies_block_m1(self, ota1_grid, ota1_placement):
        name = "MN_TAIL"
        x0, y0, x1, y1 = ota1_placement.device_box(name)
        cell = ota1_grid.to_cell((x0 + x1) / 2, (y0 + y1) / 2, 0)
        occ = ota1_grid.occupancy[cell]
        assert occ == BLOCKED or occ >= 0  # body or a pin reservation

    def test_upper_layers_start_free(self, ota1_grid):
        # Layers above M1 only carry access-point reservations if a pin is
        # defined there; with all pins on M1 they must be fully free.
        assert (ota1_grid.occupancy[:, :, 1:] == FREE).all()

    def test_halo_region_free(self, ota1_grid):
        assert ota1_grid.occupancy[0, :, 0].max() == FREE
        assert ota1_grid.occupancy[:, 0, 0].max() == FREE


class TestPinAccess:
    def test_every_terminal_has_access_point(self, ota1, ota1_grid):
        for net in ota1.nets.values():
            aps = ota1_grid.access_points[net.name]
            assert len(aps) == net.degree

    def test_access_cells_unique(self, ota1_grid):
        cells = [
            ap.cell
            for aps in ota1_grid.access_points.values()
            for ap in aps
        ]
        assert len(cells) == len(set(cells))

    def test_access_cells_reserved_for_net(self, ota1_grid):
        for net_name, aps in ota1_grid.access_points.items():
            for ap in aps:
                assert ota1_grid.occupancy[ap.cell] == ota1_grid.net_index[net_name]

    def test_access_cell_near_pin(self, ota1_grid):
        for aps in ota1_grid.access_points.values():
            for ap in aps:
                x, y, _ = ota1_grid.to_um(ap.cell)
                # Collision resolution may shift by a few cells at most.
                assert abs(x - ap.position[0]) <= 3 * ota1_grid.pitch
                assert abs(y - ap.position[1]) <= 3 * ota1_grid.pitch


class TestOccupancy:
    def test_claim_and_release(self, fresh_grid):
        net = fresh_grid.net_names[0]
        cell = (1, 1, 1)
        assert fresh_grid.is_available(cell, net)
        fresh_grid.claim(cell, net)
        assert fresh_grid.owner(cell) == fresh_grid.net_index[net]
        other = fresh_grid.net_names[1]
        assert not fresh_grid.is_available(cell, other)
        assert fresh_grid.is_available(cell, net)
        fresh_grid.release_net(net)
        assert fresh_grid.owner(cell) == FREE

    def test_release_keeps_access_points(self, fresh_grid):
        net = "NET1L"
        fresh_grid.release_net(net)
        for ap in fresh_grid.access_points[net]:
            assert fresh_grid.owner(ap.cell) == fresh_grid.net_index[net]

    def test_congestion_map_shape(self, ota1_grid):
        cmap = ota1_grid.congestion_map()
        assert cmap.shape == (ota1_grid.num_layers,)
        assert (cmap >= 0).all() and (cmap <= 1).all()

    def test_blocked_not_available_to_anyone(self, fresh_grid):
        blocked_cells = np.argwhere(fresh_grid.occupancy == BLOCKED)
        assert len(blocked_cells) > 0
        cell = tuple(int(v) for v in blocked_cells[0])
        for net in fresh_grid.net_names[:3]:
            assert not fresh_grid.is_available(cell, net)
