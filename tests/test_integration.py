"""Cross-module integration tests: the full physical chain end to end."""

import numpy as np
import pytest

from repro import (
    AnalogFold,
    AnalogFoldConfig,
    DatasetConfig,
    FoMWeights,
    IterativeRouter,
    RoutingGrid,
    build_benchmark,
    extract,
    extract_schematic,
    place_benchmark,
    simulate_performance,
    uniform_guidance,
    generic_40nm,
)
from repro.core import RelaxationConfig
from repro.model import Gnn3dConfig, TrainConfig
from repro.router import check_drc
from repro.router.guidance import random_guidance


class TestPhysicalChain:
    """Placement -> routing -> extraction -> simulation invariants."""

    @pytest.mark.parametrize("name", ["OTA1", "OTA2", "OTA3", "OTA4"])
    def test_every_benchmark_routes_and_simulates(self, name, tech):
        circuit = build_benchmark(name)
        placement = place_benchmark(circuit, variant="A", iterations=100)
        grid = RoutingGrid(placement, tech)
        result = IterativeRouter(grid).route_all()
        assert result.success, result.failed_nets
        hard = [v for v in check_drc(result, grid)
                if v.kind in ("short", "open", "unrouted")]
        assert hard == []
        metrics = simulate_performance(circuit, extract(result, grid, tech))
        assert np.isfinite(metrics.to_normalized()).all()

    def test_layout_vs_schematic_ordering(self, tech):
        """Post-layout must never beat the schematic on offset and CMRR."""
        for name in ("OTA1", "OTA3"):
            circuit = build_benchmark(name)
            schem = simulate_performance(
                circuit, extract_schematic(list(circuit.nets)))
            placement = place_benchmark(circuit, variant="A", iterations=100)
            grid = RoutingGrid(placement, tech)
            result = IterativeRouter(grid).route_all()
            layout = simulate_performance(circuit, extract(result, grid, tech))
            assert layout.offset_uv >= schem.offset_uv
            assert layout.cmrr_db <= schem.cmrr_db

    def test_worse_routing_worse_fom_on_average(self, ota1, ota1_placement,
                                                tech):
        """Deliberately chaotic guidance should not beat neutral on FoM
        across several seeds (sanity of the whole objective landscape)."""
        weights = FoMWeights()
        grid = RoutingGrid(ota1_placement, tech)
        keys = [ap.key for aps in grid.access_points.values() for ap in aps]
        neutral_grid = RoutingGrid(ota1_placement, tech)
        neutral = IterativeRouter(neutral_grid, uniform_guidance()).route_all()
        fom_neutral = weights.fom(simulate_performance(
            ota1, extract(neutral, neutral_grid, tech)))

        foms = []
        for seed in range(3):
            g = RoutingGrid(ota1_placement, tech)
            guided = IterativeRouter(
                g, random_guidance(keys, np.random.default_rng(seed))
            ).route_all()
            foms.append(weights.fom(simulate_performance(
                ota1, extract(guided, g, tech))))
        assert fom_neutral <= max(foms)


class TestLearningSignal:
    """The 3DGNN must learn something real from the database."""

    def test_model_beats_mean_predictor(self, ota1, ota1_placement, tech):
        from repro.core import generate_dataset
        from repro.model import Gnn3d, Trainer

        db = generate_dataset(ota1, ota1_placement, tech,
                              DatasetConfig(num_samples=14, seed=3))
        samples = db.train_samples()
        train, test = samples[:11], samples[11:]
        model = Gnn3d(db.graph.ap_features.shape[1],
                      db.graph.module_features.shape[1],
                      Gnn3dConfig(hidden=16, num_layers=2, seed=0))
        trainer = Trainer(model, db.graph,
                          TrainConfig(epochs=30, val_fraction=0.0, patience=0,
                                      lr=3e-3))
        trainer.fit(train)

        targets = np.stack([s.targets for s in train])
        mean_pred = targets.mean(axis=0)
        model_err, mean_err = 0.0, 0.0
        from repro.nn import Tensor
        for s in test:
            pred = model(db.graph, Tensor(s.guidance)).numpy()
            model_err += float(((pred - s.targets) ** 2).mean())
            mean_err += float(((mean_pred - s.targets) ** 2).mean())
        assert model_err <= mean_err * 1.5  # at least competitive


class TestAnalogFoldEndToEnd:
    def test_fold_result_not_catastrophic(self, ota1, ota1_placement, tech):
        """AnalogFold's chosen routing must stay within a sane FoM band of
        the unguided router even at tiny training scale."""
        from repro.baselines import route_magical

        fold = AnalogFold(
            ota1, ota1_placement, tech,
            config=AnalogFoldConfig(
                dataset=DatasetConfig(num_samples=8, seed=0),
                gnn=Gnn3dConfig(hidden=16, num_layers=2, seed=0),
                training=TrainConfig(epochs=8, val_fraction=0.0, patience=0),
                relaxation=RelaxationConfig(n_restarts=4, pool_size=3,
                                            n_derive=2, maxiter=15, seed=0),
            ),
        )
        result = fold.run()
        magical, _ = route_magical(ota1, ota1_placement, tech)
        weights = FoMWeights()
        assert weights.fom(result.metrics) < weights.fom(magical.metrics) + 3.0

    def test_derived_guidance_in_feasible_region(self, ota1, ota1_placement,
                                                 tech):
        fold = AnalogFold(
            ota1, ota1_placement, tech,
            config=AnalogFoldConfig(
                dataset=DatasetConfig(num_samples=4, seed=1),
                gnn=Gnn3dConfig(hidden=8, num_layers=1, seed=1),
                training=TrainConfig(epochs=2, val_fraction=0.0, patience=0),
                relaxation=RelaxationConfig(n_restarts=2, pool_size=2,
                                            n_derive=1, maxiter=5, seed=1),
            ),
        )
        derived = fold.derive_guidance()
        for d in derived:
            assert (d.guidance > 0).all()
            assert (d.guidance < fold.config.dataset.c_max).all()
