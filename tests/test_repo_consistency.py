"""Repository hygiene: docs, examples, and public API stay consistent."""

import ast
import importlib
import pathlib
import re

import pytest

import repro

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


class TestPublicApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing {name}"

    @pytest.mark.parametrize("module", [
        "repro.tech", "repro.netlist", "repro.placement", "repro.router",
        "repro.extraction", "repro.simulation", "repro.graph", "repro.nn",
        "repro.model", "repro.core", "repro.baselines", "repro.eval",
        "repro.io", "repro.cli", "repro.reliability", "repro.perf",
        "repro.obs", "repro.lint", "repro.serve",
    ])
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.__all__ lists missing {name}"

    def test_version_matches_pyproject(self):
        pyproject = (REPO_ROOT / "pyproject.toml").read_text()
        match = re.search(r'version = "([^"]+)"', pyproject)
        assert match and match.group(1) == repro.__version__


class TestExamples:
    @pytest.mark.parametrize("script", sorted(
        (REPO_ROOT / "examples").glob("*.py")))
    def test_example_parses_and_has_main(self, script):
        tree = ast.parse(script.read_text())
        functions = {n.name for n in ast.walk(tree)
                     if isinstance(n, ast.FunctionDef)}
        assert "main" in functions, f"{script.name} lacks a main()"
        assert ast.get_docstring(tree), f"{script.name} lacks a docstring"

    def test_at_least_five_examples(self):
        assert len(list((REPO_ROOT / "examples").glob("*.py"))) >= 5

    def test_quickstart_exists(self):
        assert (REPO_ROOT / "examples" / "quickstart.py").exists()


class TestBenchmarks:
    def test_one_bench_per_paper_artifact(self):
        benches = {p.name for p in (REPO_ROOT / "benchmarks").glob("bench_*.py")}
        required = {
            "bench_table1.py", "bench_table2.py", "bench_fig1_guidance.py",
            "bench_fig2_relaxation.py", "bench_fig5_runtime.py",
            "bench_fig6_layouts.py",
        }
        assert required <= benches

    def test_ablations_present(self):
        benches = {p.name for p in (REPO_ROOT / "benchmarks").glob("bench_*.py")}
        ablations = {b for b in benches if "ablation" in b}
        assert len(ablations) >= 4

    @pytest.mark.parametrize("bench", sorted(
        (REPO_ROOT / "benchmarks").glob("bench_*.py")))
    def test_bench_docstrings_state_expectations(self, bench):
        doc = ast.get_docstring(ast.parse(bench.read_text()))
        assert doc, f"{bench.name} lacks a docstring"


class TestDocs:
    @pytest.mark.parametrize("name", ["README.md", "DESIGN.md",
                                      "EXPERIMENTS.md",
                                      "docs/PAPER_MAPPING.md"])
    def test_doc_exists_and_nonempty(self, name):
        path = REPO_ROOT / name
        assert path.exists(), name
        assert len(path.read_text()) > 500

    def test_design_references_existing_benches(self):
        design = (REPO_ROOT / "DESIGN.md").read_text()
        for match in re.finditer(r"benchmarks/(bench_\w+\.py)", design):
            assert (REPO_ROOT / "benchmarks" / match.group(1)).exists(), (
                f"DESIGN.md references missing {match.group(1)}")

    def test_experiments_covers_every_table_and_figure(self):
        experiments = (REPO_ROOT / "EXPERIMENTS.md").read_text()
        for token in ("Table 1", "Table 2", "Figure 1", "Figure 2",
                      "Figure 5", "Figure 6"):
            assert token in experiments, f"EXPERIMENTS.md misses {token}"

    def test_paper_mapping_references_real_modules(self):
        mapping = (REPO_ROOT / "docs" / "PAPER_MAPPING.md").read_text()
        for match in set(re.findall(r"`repro\.([a-z_.]+)`", mapping)):
            module = f"repro.{match}"
            try:
                importlib.import_module(module)
            except ImportError:
                # May be a module.attr reference; try the parent.
                parent, _, attr = module.rpartition(".")
                mod = importlib.import_module(parent)
                assert hasattr(mod, attr), f"PAPER_MAPPING references {module}"
