"""Tests for parasitic extraction (R, C, coupling)."""

import numpy as np
import pytest

from repro.extraction import (
    extract,
    extract_schematic,
    path_resistance,
    segment_capacitance,
    segment_resistance,
)
from repro.extraction.coupling import extract_coupling, lateral_coupling, vertical_coupling
from repro.router import IterativeRouter, RoutingGrid


class TestSegmentRules:
    def test_planar_resistance_positive(self, tech):
        r = segment_resistance(tech, (0, 0, 0), (1, 0, 0), 0.5)
        assert r > 0

    def test_via_resistance_used_for_layer_change(self, tech):
        r = segment_resistance(tech, (0, 0, 0), (0, 0, 1), 0.5)
        assert r == tech.stack.via_between(0, 1).resistance

    def test_upper_layers_less_resistive(self, tech):
        r_m1 = segment_resistance(tech, (0, 0, 0), (1, 0, 0), 0.5)
        r_m4 = segment_resistance(tech, (0, 0, 3), (1, 0, 3), 0.5)
        assert r_m4 < r_m1

    def test_capacitance_positive_and_layer_dependent(self, tech):
        c_m1 = segment_capacitance(tech, (0, 0, 0), 0.5)
        c_m4 = segment_capacitance(tech, (0, 0, 3), 0.5)
        assert c_m1 > 0 and c_m4 > 0
        assert c_m4 < c_m1  # higher metal couples less to substrate


class TestPathResistance:
    def test_direct_path(self):
        adjacency = {
            (0, 0, 0): {(1, 0, 0): 2.0},
            (1, 0, 0): {(0, 0, 0): 2.0, (2, 0, 0): 3.0},
            (2, 0, 0): {(1, 0, 0): 3.0},
        }
        r = path_resistance(None, adjacency, (0, 0, 0), (2, 0, 0))
        assert r == pytest.approx(5.0)

    def test_same_cell_zero(self):
        assert path_resistance(None, {}, (0, 0, 0), (0, 0, 0)) == 0.0

    def test_disconnected_is_inf(self):
        adjacency = {(0, 0, 0): {}, (5, 5, 0): {}}
        assert path_resistance(None, adjacency, (0, 0, 0), (5, 5, 0)) == float("inf")

    def test_picks_cheapest_branch(self):
        a, b, c = (0, 0, 0), (1, 0, 0), (2, 0, 0)
        adjacency = {
            a: {b: 10.0, c: 1.0},
            b: {a: 10.0, c: 1.0},
            c: {a: 1.0, b: 1.0},
        }
        assert path_resistance(None, adjacency, a, b) == pytest.approx(2.0)


class TestCoupling:
    def test_lateral_scales_with_weight(self, tech):
        near = lateral_coupling(tech, 0, 0.5, 1.0)
        far = lateral_coupling(tech, 0, 0.5, 0.5)
        assert near == pytest.approx(2.0 * far)

    def test_vertical_positive(self, tech):
        assert vertical_coupling(tech, 0, 0.5) > 0

    def test_coupling_keys_sorted(self, ota1_routed, tech):
        result, grid = ota1_routed
        coupling = extract_coupling(result, grid, tech)
        for a, b in coupling:
            assert a < b

    def test_no_self_coupling(self, ota1_routed, tech):
        result, grid = ota1_routed
        coupling = extract_coupling(result, grid, tech)
        assert all(a != b for a, b in coupling)

    def test_all_coupling_positive(self, ota1_routed, tech):
        result, grid = ota1_routed
        coupling = extract_coupling(result, grid, tech)
        assert coupling, "routed layout should have some coupling"
        assert all(v > 0 for v in coupling.values())


class TestExtract:
    def test_every_routed_net_extracted(self, ota1_routed, ota1_parasitics):
        result, _ = ota1_routed
        assert set(ota1_parasitics.nets) == set(result.routes)

    def test_terminal_resistances_nonnegative_finite(self, ota1_parasitics):
        for para in ota1_parasitics.nets.values():
            for r in para.terminal_resistance.values():
                assert 0.0 <= r < 1e7

    def test_ground_cap_scales_with_wirelength(self, ota1_routed, ota1_parasitics):
        result, _ = ota1_routed
        wl = {n: r.wirelength() for n, r in result.routes.items()}
        caps = {n: p.ground_cap for n, p in ota1_parasitics.nets.items()}
        longest = max(wl, key=wl.get)
        shortest = min((n for n in wl if wl[n] > 0), key=wl.get)
        assert caps[longest] > caps[shortest]

    def test_symmetric_pair_mismatch_small_when_mirrored(
        self, ota1_routed, ota1_parasitics
    ):
        result, grid = ota1_routed
        circuit = grid.placement.circuit
        for pair in circuit.symmetry_pairs:
            route_b = result.routes.get(pair.net_b)
            if route_b is None or not route_b.symmetric_ok:
                continue
            mismatch = ota1_parasitics.resistance_mismatch(pair.net_a, pair.net_b)
            total = ota1_parasitics.nets[pair.net_a].total_resistance
            assert mismatch <= 0.05 * max(total, 1.0) + 1e-6

    def test_resistance_mismatch_missing_net_is_zero(self, ota1_parasitics):
        assert ota1_parasitics.resistance_mismatch("NET1L", "GHOST") == 0.0

    def test_net_coupling_sums_pairs(self, ota1_parasitics):
        net = "NET1L"
        expected = sum(v for (a, b), v in ota1_parasitics.coupling.items()
                       if net in (a, b))
        assert ota1_parasitics.net_coupling(net) == pytest.approx(expected)

    def test_schematic_extraction_is_zero(self, ota1):
        para = extract_schematic(list(ota1.nets))
        for net_para in para.nets.values():
            assert net_para.ground_cap == 0.0
            assert net_para.terminal_resistance == {}
        assert para.coupling == {}

    def test_asymmetric_routing_increases_mismatch(self, ota1_placement, tech, rng):
        """Random guidance that breaks mirroring should raise mismatch on
        at least one symmetric pair compared to neutral routing."""
        from repro.router.guidance import random_guidance

        grid_n = RoutingGrid(ota1_placement, tech)
        neutral = extract(IterativeRouter(grid_n).route_all(), grid_n, tech)
        keys = [ap.key for aps in grid_n.access_points.values() for ap in aps]

        worst_neutral = worst_random = 0.0
        circuit = ota1_placement.circuit
        for seed in range(3):
            grid_r = RoutingGrid(ota1_placement, tech)
            guided = IterativeRouter(
                grid_r, random_guidance(keys, np.random.default_rng(seed))
            ).route_all()
            para_r = extract(guided, grid_r, tech)
            for pair in circuit.symmetry_pairs:
                worst_random = max(
                    worst_random,
                    para_r.resistance_mismatch(pair.net_a, pair.net_b))
        for pair in circuit.symmetry_pairs:
            worst_neutral = max(
                worst_neutral,
                neutral.resistance_mismatch(pair.net_a, pair.net_b))
        assert worst_random >= worst_neutral
