"""Tests for the heterogeneous graph construction."""

import numpy as np
import pytest

from repro.graph import EdgeType, build_hetero_graph
from repro.graph.features import ap_feature_dim, module_feature_dim
from repro.graph.hetero import HeteroGraph


class TestGraphStructure:
    def test_ap_count_matches_terminals(self, ota1, ota1_graph):
        total_terminals = sum(n.degree for n in ota1.nets.values())
        assert ota1_graph.num_aps == total_terminals

    def test_module_count_matches_devices(self, ota1, ota1_graph):
        assert ota1_graph.num_modules == len(ota1.devices)

    def test_feature_dims(self, ota1_graph):
        assert ota1_graph.ap_features.shape == (
            ota1_graph.num_aps, ap_feature_dim())
        assert ota1_graph.module_features.shape == (
            ota1_graph.num_modules, module_feature_dim())

    def test_all_edge_types_present(self, ota1_graph):
        for edge_type in EdgeType:
            assert ota1_graph.num_edges(edge_type) > 0

    def test_positions_shape(self, ota1_graph):
        assert ota1_graph.positions.shape == (ota1_graph.num_nodes, 3)

    def test_edges_reference_valid_nodes(self, ota1_graph):
        for edge_type in EdgeType:
            pairs = ota1_graph.edges[edge_type]
            if len(pairs):
                assert pairs.min() >= 0
                assert pairs.max() < ota1_graph.num_nodes

    def test_pp_edges_between_aps_only(self, ota1_graph):
        pairs = ota1_graph.edges[EdgeType.PP]
        assert pairs.max() < ota1_graph.num_aps

    def test_mm_edges_between_modules_only(self, ota1_graph):
        pairs = ota1_graph.edges[EdgeType.MM]
        assert pairs.min() >= ota1_graph.num_aps

    def test_mp_edges_bridge(self, ota1_graph):
        pairs = ota1_graph.edges[EdgeType.MP]
        assert (pairs[:, 0] < ota1_graph.num_aps).all()
        assert (pairs[:, 1] >= ota1_graph.num_aps).all()

    def test_same_net_aps_fully_connected(self, ota1, ota1_graph):
        net = "NET1L"
        indices = [i for i, n in enumerate(ota1_graph.ap_nets) if n == net]
        degree = ota1.net(net).degree
        pp = {tuple(p) for p in ota1_graph.edges[EdgeType.PP]}
        expected = degree * (degree - 1) // 2
        found = sum(1 for a in indices for b in indices
                    if a < b and (a, b) in pp)
        assert found == expected

    def test_cross_net_competition_edges_exist(self, ota1_graph):
        pp = ota1_graph.edges[EdgeType.PP]
        cross = [
            (a, b) for a, b in pp
            if ota1_graph.ap_nets[a] != ota1_graph.ap_nets[b]
        ]
        assert cross, "proximity edges between different nets expected"

    def test_every_ap_linked_to_its_module(self, ota1_graph):
        mp = {tuple(p) for p in ota1_graph.edges[EdgeType.MP]}
        for i, (device, _pin) in enumerate(ota1_graph.ap_keys):
            module_idx = ota1_graph.module_names.index(device) + ota1_graph.num_aps
            assert (i, module_idx) in mp

    def test_directed_edges_doubles_pairs(self, ota1_graph):
        src, dst = ota1_graph.directed_edges(EdgeType.PP)
        assert len(src) == 2 * ota1_graph.num_edges(EdgeType.PP)
        assert len(src) == len(dst)

    def test_ap_index_of_key(self, ota1_graph):
        key = ota1_graph.ap_keys[3]
        assert ota1_graph.ap_index_of_key(key) == 3
        with pytest.raises(KeyError):
            ota1_graph.ap_index_of_key(("nope", "G"))

    def test_proximity_radius_controls_density(self, ota1_grid):
        tight = build_hetero_graph(ota1_grid, proximity_radius=1.0)
        wide = build_hetero_graph(ota1_grid, proximity_radius=12.0)
        assert wide.num_edges(EdgeType.PP) > tight.num_edges(EdgeType.PP)

    def test_deterministic(self, ota1_grid):
        a = build_hetero_graph(ota1_grid)
        b = build_hetero_graph(ota1_grid)
        assert a.ap_keys == b.ap_keys
        for edge_type in EdgeType:
            np.testing.assert_array_equal(a.edges[edge_type], b.edges[edge_type])


class TestValidation:
    def test_misaligned_positions_rejected(self):
        with pytest.raises(ValueError):
            HeteroGraph(
                ap_keys=[("a", "p")], ap_nets=["n"], module_names=[],
                ap_positions=np.zeros((2, 3)),
                module_positions=np.zeros((0, 3)),
                ap_features=np.zeros((1, 4)),
                module_features=np.zeros((0, 4)),
            )

    def test_bad_edge_index_rejected(self):
        with pytest.raises(ValueError):
            HeteroGraph(
                ap_keys=[("a", "p")], ap_nets=["n"], module_names=[],
                ap_positions=np.zeros((1, 3)),
                module_positions=np.zeros((0, 3)),
                ap_features=np.zeros((1, 4)),
                module_features=np.zeros((0, 4)),
                edges={EdgeType.PP: np.array([[0, 5]])},
            )

    def test_feature_values_finite(self, ota1_graph):
        assert np.isfinite(ota1_graph.ap_features).all()
        assert np.isfinite(ota1_graph.module_features).all()
