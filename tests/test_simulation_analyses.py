"""Tests for small-signal models, the testbench, and the analyses."""

import numpy as np
import pytest

from repro.extraction import extract_schematic
from repro.netlist import MOSFET, MOSType, build_benchmark
from repro.simulation import (
    PerformanceMetrics,
    Testbench,
    TestbenchConfig,
    mos_small_signal,
    simulate_performance,
)
from repro.simulation.analyses import (
    ac_analysis,
    cmrr_db,
    dc_gain_db,
    offset_voltage_uv,
    output_noise_uvrms,
    unity_gain_bandwidth_hz,
)
from repro.simulation.smallsignal import mismatch_factor


class TestSmallSignal:
    def test_gm_scales_with_current(self):
        lo = mos_small_signal(MOSFET(name="a", bias_current=10e-6))
        hi = mos_small_signal(MOSFET(name="a", bias_current=40e-6))
        assert hi.gm == pytest.approx(4.0 * lo.gm)

    def test_gds_scales_inverse_length(self):
        short = mos_small_signal(MOSFET(name="a", l=0.04))
        long = mos_small_signal(MOSFET(name="a", l=0.08))
        assert short.gds == pytest.approx(2.0 * long.gds)

    def test_caps_scale_with_width(self):
        narrow = mos_small_signal(MOSFET(name="a", w=2.0))
        wide = mos_small_signal(MOSFET(name="a", w=8.0))
        assert wide.cgs > narrow.cgs
        assert wide.cgd == pytest.approx(4.0 * narrow.cgd)

    def test_noise_positive(self):
        p = mos_small_signal(MOSFET(name="a"))
        assert p.thermal_noise_psd > 0
        assert p.flicker_coeff > 0

    def test_mismatch_deterministic(self):
        a = mismatch_factor("OTA1", "M1", 1e-3)
        b = mismatch_factor("OTA1", "M1", 1e-3)
        assert a == b

    def test_mismatch_differs_by_device_and_circuit(self):
        assert mismatch_factor("OTA1", "M1", 1e-3) != mismatch_factor(
            "OTA1", "M2", 1e-3)
        assert mismatch_factor("OTA1", "M1", 1e-3) != mismatch_factor(
            "OTA2", "M1", 1e-3)

    def test_zero_sigma_is_exact_unity(self):
        assert mos_small_signal(MOSFET(name="a"), "OTA1", 0.0).gm == \
            mos_small_signal(MOSFET(name="a"), "OTA1", 0.0).gm


class TestTestbench:
    def test_terminal_nodes_merge_without_parasitics(self, ota1):
        bench = Testbench(ota1, extract_schematic(list(ota1.nets)))
        assert bench.terminal_node("MN_IN_L", "G") == "VINP"

    def test_terminal_nodes_split_with_parasitics(self, ota1, ota1_parasitics):
        bench = Testbench(ota1, ota1_parasitics)
        split = [
            node for (dev, pin), node in bench._terminal_node.items()
            if "@" in node
        ]
        assert split, "extracted resistances should create terminal nodes"

    def test_unknown_pin_raises(self, ota1):
        bench = Testbench(ota1, extract_schematic(list(ota1.nets)))
        with pytest.raises(KeyError):
            bench.terminal_node("MN_IN_L", "NOPE")

    def test_noise_sources_cover_mosfets_and_resistors(self, ota3):
        bench = Testbench(ota3, extract_schematic(list(ota3.nets)))
        num_mos = sum(1 for d in ota3.devices.values()
                      if isinstance(d, MOSFET))
        assert len(bench.noise_sources) == num_mos + 4  # + resistors


class TestAnalyses:
    @pytest.fixture(scope="class")
    def schematic_bench(self):
        circuit = build_benchmark("OTA1")
        return Testbench(circuit, extract_schematic(list(circuit.nets)))

    @pytest.fixture(scope="class")
    def ac(self, schematic_bench):
        return ac_analysis(schematic_bench)

    def test_gain_rolls_off(self, ac):
        mags = np.abs(ac.h_diff)
        assert mags[0] > mags[-1]

    def test_dc_gain_reasonable(self, ac):
        assert 20.0 < dc_gain_db(ac) < 80.0

    def test_ugb_within_sweep(self, ac):
        ugb = unity_gain_bandwidth_hz(ac)
        assert ac.freqs[0] < ugb < ac.freqs[-1]

    def test_ugb_zero_when_gain_below_unity(self, ac):
        import dataclasses
        tiny = dataclasses.replace(ac, h_diff=ac.h_diff * 1e-6)
        assert unity_gain_bandwidth_hz(tiny) == 0.0

    def test_cmrr_large_for_schematic(self, ac):
        assert cmrr_db(ac) > 100.0

    def test_noise_positive(self, schematic_bench):
        assert output_noise_uvrms(schematic_bench) > 0.0

    def test_offset_zero_parasitics_small(self, ota1):
        para = extract_schematic(list(ota1.nets))
        offset = offset_voltage_uv(ota1, para, mismatch_sigma=5e-7)
        assert 0.0 < offset < 10.0

    def test_offset_grows_with_mismatch(self, ota1, ota1_parasitics):
        small = offset_voltage_uv(ota1, ota1_parasitics, mismatch_sigma=1e-8)
        large = offset_voltage_uv(ota1, ota1_parasitics, mismatch_sigma=1e-4)
        assert large > small


class TestSimulatePerformance:
    def test_all_benchmarks_simulate(self):
        for name in ("OTA1", "OTA2", "OTA3", "OTA4"):
            circuit = build_benchmark(name)
            metrics = simulate_performance(
                circuit, extract_schematic(list(circuit.nets)))
            assert metrics.gain_db > 10.0
            assert metrics.bandwidth_mhz > 1.0
            assert metrics.cmrr_db > 60.0
            assert metrics.noise_uvrms > 0.0

    def test_layout_degrades_cmrr_and_offset(self, ota1, ota1_parasitics):
        schem = simulate_performance(ota1, extract_schematic(list(ota1.nets)))
        layout = simulate_performance(ota1, ota1_parasitics)
        assert layout.cmrr_db < schem.cmrr_db
        assert layout.offset_uv > schem.offset_uv

    def test_deterministic(self, ota1, ota1_parasitics):
        a = simulate_performance(ota1, ota1_parasitics)
        b = simulate_performance(ota1, ota1_parasitics)
        assert a == b

    def test_custom_load_shifts_bandwidth(self, ota1):
        para = extract_schematic(list(ota1.nets))
        light = simulate_performance(ota1, para, TestbenchConfig(load_cap=0.1e-12))
        heavy = simulate_performance(ota1, para, TestbenchConfig(load_cap=5e-12))
        assert light.bandwidth_mhz > heavy.bandwidth_mhz


class TestMetrics:
    def test_normalization_roundtrip(self):
        m = PerformanceMetrics(offset_uv=123.0, cmrr_db=88.0,
                               bandwidth_mhz=45.0, gain_db=37.0,
                               noise_uvrms=250.0)
        back = PerformanceMetrics.from_normalized(m.to_normalized())
        assert back.offset_uv == pytest.approx(m.offset_uv, rel=1e-9)
        assert back.cmrr_db == pytest.approx(m.cmrr_db, rel=1e-9)
        assert back.bandwidth_mhz == pytest.approx(m.bandwidth_mhz, rel=1e-9)
        assert back.gain_db == pytest.approx(m.gain_db, rel=1e-9)
        assert back.noise_uvrms == pytest.approx(m.noise_uvrms, rel=1e-9)

    def test_from_normalized_bad_shape(self):
        with pytest.raises(ValueError):
            PerformanceMetrics.from_normalized(np.zeros(4))

    def test_fom_lower_for_better_metrics(self):
        from repro.simulation import FoMWeights
        weights = FoMWeights()
        good = PerformanceMetrics(10.0, 120.0, 100.0, 40.0, 200.0)
        bad = PerformanceMetrics(1000.0, 60.0, 10.0, 20.0, 2000.0)
        assert weights.fom(good) < weights.fom(bad)

    def test_improvement_signs(self):
        from repro.simulation.metrics import improvement
        ours = PerformanceMetrics(10.0, 120.0, 100.0, 40.0, 200.0)
        base = PerformanceMetrics(20.0, 100.0, 80.0, 35.0, 300.0)
        imp = improvement(ours, base)
        assert all(v > 0 for v in imp.values())
