"""Tests for the A* maze router."""

import numpy as np
import pytest

from repro.router import AStarRouter, CostParams, RoutingGrid


@pytest.fixture()
def router(fresh_grid):
    return AStarRouter(fresh_grid)


def _free_cell(grid, layer=1, start=(2, 2)):
    """Find a free cell on a given layer."""
    for ix in range(start[0], grid.nx):
        for iy in range(start[1], grid.ny):
            if grid.occupancy[ix, iy, layer] == -1:
                return (ix, iy, layer)
    raise AssertionError("no free cell found")


class TestBasicRouting:
    def test_trivial_same_cell(self, router, fresh_grid):
        net = fresh_grid.net_names[0]
        cell = (3, 3, 1)
        path = router.route_connection(net, {cell}, {cell})
        assert path == [cell]

    def test_straight_line(self, router, fresh_grid):
        net = fresh_grid.net_names[0]
        a, b = (2, 5, 1), (9, 5, 1)
        path = router.route_connection(net, {a}, {b})
        assert path is not None
        assert path[0] == a and path[-1] == b

    def test_path_is_connected(self, router, fresh_grid):
        net = fresh_grid.net_names[0]
        path = router.route_connection(net, {(2, 2, 1)}, {(10, 8, 2)})
        assert path is not None
        for u, v in zip(path, path[1:]):
            assert sum(abs(a - b) for a, b in zip(u, v)) == 1

    def test_path_avoids_blocked(self, router, fresh_grid):
        net = fresh_grid.net_names[0]
        blocked = set()
        fresh_grid.occupancy[5, :, 1] = -2  # wall on layer 1
        for iy in range(fresh_grid.ny):
            blocked.add((5, iy, 1))
        path = router.route_connection(net, {(2, 5, 1)}, {(9, 5, 1)})
        assert path is not None
        assert not (set(path) & blocked)

    def test_other_net_blocks_in_hard_mode(self, router, fresh_grid):
        net_a, net_b = fresh_grid.net_names[:2]
        # Wall of net_b across every layer at ix = 5.
        for iy in range(fresh_grid.ny):
            for layer in range(fresh_grid.num_layers):
                fresh_grid.occupancy[5, iy, layer] = fresh_grid.net_index[net_b]
        path = router.route_connection(net_a, {(2, 5, 1)}, {(9, 5, 1)}, soft=False)
        assert path is None

    def test_soft_mode_crosses_with_penalty(self, router, fresh_grid):
        net_a, net_b = fresh_grid.net_names[:2]
        for iy in range(fresh_grid.ny):
            for layer in range(fresh_grid.num_layers):
                fresh_grid.occupancy[5, iy, layer] = fresh_grid.net_index[net_b]
        path = router.route_connection(net_a, {(2, 5, 1)}, {(9, 5, 1)}, soft=True)
        assert path is not None

    def test_multi_source(self, router, fresh_grid):
        net = fresh_grid.net_names[0]
        sources = {(2, 2, 1), (8, 8, 1)}
        path = router.route_connection(net, sources, {(9, 8, 1)})
        assert path is not None
        assert path[0] in sources
        assert len(path) <= 3  # picks the near source

    def test_empty_sources_returns_none(self, router):
        assert router.route_connection("VDD", set(), {(1, 1, 1)}) is None

    def test_expansion_budget(self, router, fresh_grid):
        net = fresh_grid.net_names[0]
        path = router.route_connection(
            net, {(2, 2, 1)}, {(fresh_grid.nx - 2, fresh_grid.ny - 2, 1)},
            max_expansions=3,
        )
        assert path is None


class TestCosts:
    def test_preferred_direction_on_layer(self, fresh_grid):
        """On M2 (vertical-preferred) a horizontal run should detour to an
        adjacent horizontal layer when vias are cheap."""
        params = CostParams(wrong_way_penalty=10.0, via_cost=0.5)
        router = AStarRouter(fresh_grid, params)
        net = fresh_grid.net_names[0]
        path = router.route_connection(net, {(2, 5, 1)}, {(12, 5, 1)})
        layers = {c[2] for c in path}
        assert layers != {1}, "should have used another layer for the x-run"

    def test_guidance_steers_direction(self, fresh_grid):
        """Guidance with cheap x and expensive y flips the chosen detour."""
        net = fresh_grid.net_names[0]
        router = AStarRouter(fresh_grid, CostParams(via_cost=100.0,
                                                    wrong_way_penalty=1.0))
        a, b = (3, 3, 1), (9, 9, 1)
        cheap_x = router.route_connection(net, {a}, {b},
                                          guidance_vec=np.array([0.1, 3.0, 1.0]))
        cheap_y = router.route_connection(net, {a}, {b},
                                          guidance_vec=np.array([3.0, 0.1, 1.0]))
        # The cheap-x path should do its x-moves early (first step in x);
        # the cheap-y path starts with y-moves.
        dx_first = abs(cheap_x[1][0] - cheap_x[0][0])
        dy_first = abs(cheap_y[1][1] - cheap_y[0][1])
        assert dx_first == 1
        assert dy_first == 1

    def test_guidance_z_cost_controls_vias(self, fresh_grid):
        net = fresh_grid.net_names[0]
        router = AStarRouter(fresh_grid)
        a, b = (3, 3, 1), (9, 3, 1)
        few_vias = router.route_connection(net, {a}, {b},
                                           guidance_vec=np.array([1.0, 1.0, 50.0]))
        many_ok = router.route_connection(net, {a}, {b},
                                          guidance_vec=np.array([1.0, 1.0, 0.01]))
        vias_few = sum(1 for u, v in zip(few_vias, few_vias[1:]) if u[2] != v[2])
        vias_many = sum(1 for u, v in zip(many_ok, many_ok[1:]) if u[2] != v[2])
        assert vias_few <= vias_many

    def test_history_cost_diverts(self, fresh_grid):
        net = fresh_grid.net_names[0]
        router = AStarRouter(fresh_grid)
        a, b = (2, 5, 1), (9, 5, 1)
        base = router.route_connection(net, {a}, {b})
        # Penalize the found path heavily; rerouting should avoid it.
        for cell in base[1:-1]:
            fresh_grid.history[cell] = 1000.0
        rerouted = router.route_connection(net, {a}, {b})
        assert not (set(rerouted[1:-1]) & set(base[1:-1]))

    def test_invalid_guidance_shape_raises(self, router):
        with pytest.raises(ValueError):
            router.route_connection("VDD", {(1, 1, 1)}, {(2, 2, 1)},
                                    guidance_vec=np.ones(4))
