"""Exact-value extraction tests on hand-built routes."""

import pytest

from repro.extraction import extract
from repro.netlist import Circuit, MOSFET, MOSType, NetType
from repro.placement.layout import PlacedDevice, Placement
from repro.router import RoutingGrid
from repro.router.guidance import AccessPoint
from repro.router.result import NetRoute, RoutingResult
from repro.tech import generic_40nm


@pytest.fixture()
def straight_wire_setup():
    """Two devices, one net, and a hand-built straight 10-cell route."""
    circuit = Circuit(name="wire")
    circuit.add_device(MOSFET(name="A", mos_type=MOSType.NMOS))
    circuit.add_device(MOSFET(name="B", mos_type=MOSType.NMOS))
    net = circuit.new_net("N", NetType.SIGNAL)
    net.connect("A", "D").connect("B", "D")
    gnd = circuit.new_net("VSS", NetType.GROUND)
    gnd.connect("A", "S").connect("B", "S")
    g = circuit.new_net("G", NetType.BIAS)
    g.connect("A", "G").connect("B", "G")
    circuit.validate()

    placement = Placement(circuit=circuit, symmetry_axis=5.0)
    placement.positions["A"] = PlacedDevice("A", 0.0, 0.0)
    placement.positions["B"] = PlacedDevice("B", 8.0, 0.0)
    tech = generic_40nm()
    grid = RoutingGrid(placement, tech, pitch=0.5)
    return circuit, grid, tech


def _manual_route(grid, net_name, cells):
    aps = grid.access_points[net_name]
    route = NetRoute(net=net_name, access_points=aps, paths=[cells])
    return route


class TestExactValues:
    def test_straight_m2_wire_resistance(self, straight_wire_setup):
        _, grid, tech = straight_wire_setup
        # 11 cells on layer 1 (M2): 10 unit segments of pitch 0.5um at
        # default width 0.08um, sheet 1.2 ohm/sq.
        cells = [(i, 5, 1) for i in range(2, 13)]
        route = NetRoute(net="N", access_points=[], paths=[cells])
        # Fake APs at the two ends so terminal resistance is the full path.
        aps = grid.access_points["N"]
        route.access_points = [
            AccessPoint(net="N", device=aps[0].device, pin=aps[0].pin,
                        cell=cells[0], position=(0, 0)),
            AccessPoint(net="N", device=aps[1].device, pin=aps[1].pin,
                        cell=cells[-1], position=(0, 0)),
        ]
        result = RoutingResult(routes={"N": route})
        network = extract(result, grid, tech)

        r_segment = 1.2 * 0.5 / 0.08  # sheet * length / width = 7.5 ohm
        para = network.nets["N"]
        assert para.total_resistance == pytest.approx(10 * r_segment)
        # Root is the first AP: terminal 0 at 0 ohm, terminal 1 at full path.
        values = sorted(para.terminal_resistance.values())
        assert values[0] == pytest.approx(0.0)
        assert values[1] == pytest.approx(10 * r_segment)

    def test_straight_wire_ground_cap(self, straight_wire_setup):
        _, grid, tech = straight_wire_setup
        cells = [(i, 5, 1) for i in range(2, 13)]
        aps = grid.access_points["N"]
        route = NetRoute(net="N", access_points=list(aps[:1]), paths=[cells])
        result = RoutingResult(routes={"N": route})
        network = extract(result, grid, tech)
        layer = tech.layer(1)
        per_cell = layer.area_cap * 0.5 * 0.08 + layer.fringe_cap * 2 * 0.5
        assert network.nets["N"].ground_cap == pytest.approx(11 * per_cell)

    def test_via_adds_via_resistance(self, straight_wire_setup):
        _, grid, tech = straight_wire_setup
        cells = [(5, 5, 1), (5, 5, 2)]
        route = NetRoute(net="N", access_points=[], paths=[cells])
        result = RoutingResult(routes={"N": route})
        network = extract(result, grid, tech)
        assert network.nets["N"].total_resistance == pytest.approx(
            tech.stack.via_between(1, 2).resistance)

    def test_parallel_wires_couple_exactly(self, straight_wire_setup):
        _, grid, tech = straight_wire_setup
        run = 8
        cells_a = [(i, 5, 1) for i in range(2, 2 + run)]
        cells_b = [(i, 6, 1) for i in range(2, 2 + run)]
        result = RoutingResult(routes={
            "N": NetRoute(net="N", access_points=[], paths=[cells_a]),
            "G": NetRoute(net="G", access_points=[], paths=[cells_b]),
        })
        network = extract(result, grid, tech)
        layer = tech.layer(1)
        spacing = 0.5 - 0.08
        # Adjacent (weight 1) for `run` cell pairs, plus distance-2 pairs
        # (weight 0.5) do not exist here because the wires are 1 apart in y
        # and offsets (0, 2) would need a third wire.
        per_pair = layer.coupling_cap * 0.5 * (layer.min_spacing / spacing)
        expected = run * per_pair
        assert network.coupling[("G", "N")] == pytest.approx(expected, rel=1e-9)

    def test_crossing_wires_couple_vertically(self, straight_wire_setup):
        _, grid, tech = straight_wire_setup
        result = RoutingResult(routes={
            "N": NetRoute(net="N", access_points=[], paths=[[(5, 5, 1)]]),
            "G": NetRoute(net="G", access_points=[], paths=[[(5, 5, 2)]]),
        })
        network = extract(result, grid, tech)
        assert network.coupling[("G", "N")] > 0
