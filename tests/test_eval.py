"""Tests for the evaluation harness (tables, runtime, visualization)."""

import pytest

from repro.eval import (
    SCALES,
    evaluate_cell,
    format_table1,
    format_table2,
    normalized_averages,
    render_guidance,
    render_layout,
    runtime_breakdown_table,
)
from repro.eval.compare import CellResult, MethodResult, wins_against
from repro.eval.runtime import runtime_breakdown
from repro.eval.visualize import guidance_histogram, render_stack
from repro.router.guidance import uniform_guidance
from repro.simulation import PerformanceMetrics


def _metrics(offset=100.0, cmrr=80.0, bw=50.0, gain=35.0, noise=500.0):
    return PerformanceMetrics(offset, cmrr, bw, gain, noise)


def _fake_cell(name="OTA1", variant="A"):
    cell = CellResult(circuit=name, variant=variant, schematic=_metrics(1.0, 150.0))
    cell.methods["magical"] = MethodResult(_metrics(), 1.0)
    cell.methods["genius"] = MethodResult(_metrics(offset=120.0), 2.0)
    cell.methods["analogfold"] = MethodResult(
        _metrics(offset=50.0, cmrr=90.0), 1.5)
    return cell


class TestTables:
    def test_table1_contains_paper_rows(self):
        table = format_table1()
        assert "OTA1" in table and "OTA4" in table
        assert "25" in table and "36" in table

    def test_table2_formats_all_methods(self):
        table = format_table2([_fake_cell()])
        for token in ("OTA1-A", "Schematic", "[16]", "[11]", "Ours",
                      "Offset Voltage", "Runtime"):
            assert token in table

    def test_table2_average_block(self):
        table = format_table2([_fake_cell(), _fake_cell("OTA2")])
        assert "Average" in table
        assert "1.000" in table  # magical normalized to itself

    def test_normalized_averages_magical_is_unity(self):
        averages = normalized_averages([_fake_cell()])
        for metric, value in averages["magical"].items():
            assert value == pytest.approx(1.0)

    def test_normalized_averages_directions(self):
        averages = normalized_averages([_fake_cell()])
        assert averages["analogfold"]["offset_uv"] < 1.0  # improved
        assert averages["analogfold"]["cmrr_db"] > 1.0
        assert averages["genius"]["offset_uv"] > 1.0  # worse

    def test_empty_cells_raise(self):
        with pytest.raises(ValueError):
            normalized_averages([])

    def test_wins_against(self):
        wins = wins_against([_fake_cell()], "analogfold", "magical")
        assert wins["offset_uv"] == 1
        assert wins["cmrr_db"] == 1
        assert wins["bandwidth_mhz"] == 0


class TestRuntime:
    def _result(self):
        from repro.core.pipeline import AnalogFoldResult
        from repro.router.result import RoutingResult
        return AnalogFoldResult(
            guidance=uniform_guidance(),
            routing=RoutingResult(),
            metrics=_metrics(),
            stage_seconds={
                "construct_database": 1.0,
                "model_training": 8.0,
                "guide_generation": 0.5,
                "guided_routing": 0.5,
            },
        )

    def test_fractions_sum_to_one(self):
        fractions = runtime_breakdown(self._result(), placement_seconds=2.0)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_training_dominates(self):
        fractions = runtime_breakdown(self._result())
        assert max(fractions, key=fractions.get) == "model_training"

    def test_table_renders(self):
        table = runtime_breakdown_table(self._result(), placement_seconds=2.0)
        assert "Model Training" in table
        assert "Placement" in table
        assert "%" in table


class TestVisualize:
    def test_render_layout_dimensions(self, ota1_routed):
        result, grid = ota1_routed
        art = render_layout(result, grid, layer=1)
        rows = art.splitlines()[1:-1]  # strip header and legend
        assert len(rows) == grid.ny
        assert all(len(r) == grid.nx for r in rows)

    def test_render_layout_shows_nets_and_blockage(self, ota1_routed):
        result, grid = ota1_routed
        m1 = render_layout(result, grid, layer=0)
        assert "#" in m1  # device bodies
        assert "*" in m1  # access points
        assert "legend:" in m1

    def test_render_layout_bad_layer(self, ota1_routed):
        result, grid = ota1_routed
        with pytest.raises(ValueError):
            render_layout(result, grid, layer=99)

    def test_render_stack_has_all_layers(self, ota1_routed):
        result, grid = ota1_routed
        art = render_stack(result, grid)
        for i in range(grid.num_layers):
            assert f"layer M{i + 1}" in art

    def test_render_guidance_lists_aps(self, ota1_routed):
        result, grid = ota1_routed
        keys = [ap.key for aps in grid.access_points.values() for ap in aps]
        art = render_guidance(uniform_guidance(keys), grid)
        assert "NET1L" in art
        assert "prefers" in art

    def test_guidance_histogram(self):
        keys = [("a", "p"), ("b", "q")]
        art = guidance_histogram(uniform_guidance(keys))
        assert "x:" in art and "z:" in art

    def test_guidance_histogram_empty(self):
        from repro.router.guidance import RoutingGuidance
        assert guidance_histogram(RoutingGuidance()) == "empty guidance"


class TestEvaluateCell:
    def test_smoke_scale_cell(self):
        cell = evaluate_cell("OTA1", "A", scale="smoke")
        assert set(cell.methods) == {"magical", "genius", "analogfold"}
        for method in cell.methods.values():
            assert method.metrics.noise_uvrms > 0
            assert method.runtime_s > 0
        assert cell.cell_name == "OTA1-A"

    def test_scales_registry(self):
        assert set(SCALES) == {"smoke", "fast", "full", "paper"}
        assert SCALES["paper"].dataset_samples == 2000
