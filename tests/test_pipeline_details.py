"""Focused tests on pipeline selection and relaxation seeding behavior."""

import numpy as np
import pytest

from repro.core import (
    AnalogFold,
    AnalogFoldConfig,
    DatasetConfig,
    PotentialFunction,
    PotentialRelaxer,
    RelaxationConfig,
)
from repro.model import Gnn3dConfig, TrainConfig
from repro.simulation import FoMWeights


@pytest.fixture(scope="module")
def tiny_fold(ota1, ota1_placement, tech):
    fold = AnalogFold(
        ota1, ota1_placement, tech,
        config=AnalogFoldConfig(
            dataset=DatasetConfig(num_samples=6, seed=2),
            gnn=Gnn3dConfig(hidden=16, num_layers=2, seed=2),
            training=TrainConfig(epochs=4, val_fraction=0.0, patience=0),
            relaxation=RelaxationConfig(n_restarts=4, pool_size=3, n_derive=2,
                                        maxiter=8, seed=2, seed_points=2),
        ),
    )
    fold.train()
    return fold


class TestRelaxationSeeding:
    def test_seed_guidance_used_for_first_restarts(self, tiny_fold):
        potential = PotentialFunction(tiny_fold.model, tiny_fold.database.graph)
        seeds = tiny_fold._best_database_guidance()
        assert len(seeds) == 2
        for s in seeds:
            assert s.shape == (tiny_fold.database.graph.num_aps, 3)

    def test_seeds_are_best_measured_samples(self, tiny_fold):
        weights = FoMWeights()
        ranked = sorted(tiny_fold.database.samples,
                        key=lambda s: weights.fom(s.metrics))
        seeds = tiny_fold._best_database_guidance()
        keys = tiny_fold.database.graph.ap_keys
        np.testing.assert_allclose(seeds[0], ranked[0].guidance.as_array(keys))

    def test_bad_seed_shape_raises(self, tiny_fold):
        potential = PotentialFunction(tiny_fold.model, tiny_fold.database.graph)
        relaxer = PotentialRelaxer(RelaxationConfig(
            n_restarts=2, pool_size=2, n_derive=1, maxiter=3, seed_points=1))
        with pytest.raises(ValueError, match="seed guidance"):
            relaxer.run(potential, seed_guidance=[np.ones(5)])

    def test_seeded_run_at_least_as_good_as_unseeded(self, tiny_fold):
        potential = PotentialFunction(tiny_fold.model, tiny_fold.database.graph)
        seeds = tiny_fold._best_database_guidance()

        def best(seed_guidance):
            relaxer = PotentialRelaxer(RelaxationConfig(
                n_restarts=3, pool_size=2, n_derive=1, maxiter=10, seed=0,
                seed_points=2))
            return relaxer.run(potential, seed_guidance=seed_guidance)[0].potential

        # With identical budgets and the same RNG, the seeded variant
        # replaces random inits with known-good points: its best potential
        # must not be dramatically worse.
        assert best(seeds) <= best(None) + 0.5


class TestSelection:
    def test_simulation_selection_never_worse_than_database_best(
        self, tiny_fold
    ):
        result = tiny_fold.run()
        weights = FoMWeights()
        best_db = min(weights.fom(s.metrics)
                      for s in tiny_fold.database.samples)
        assert weights.fom(result.metrics) <= best_db + 1e-9

    def test_potential_selection_routes_once(self, ota1, ota1_placement, tech):
        fold = AnalogFold(
            ota1, ota1_placement, tech,
            config=AnalogFoldConfig(
                dataset=DatasetConfig(num_samples=4, seed=3),
                gnn=Gnn3dConfig(hidden=8, num_layers=1, seed=3),
                training=TrainConfig(epochs=2, val_fraction=0.0, patience=0),
                relaxation=RelaxationConfig(n_restarts=2, pool_size=2,
                                            n_derive=2, maxiter=4, seed=3),
                select_by="potential",
            ),
        )
        result = fold.run()
        # The chosen guidance must correspond to the lowest-potential
        # derived solution.
        best = min(result.derived, key=lambda d: d.potential)
        keys = fold.database.graph.ap_keys
        np.testing.assert_allclose(
            result.guidance.as_array(keys), np.clip(best.guidance, None, None))

    def test_stage_seconds_cover_all_stages(self, tiny_fold):
        result = tiny_fold.run()
        assert set(result.stage_seconds) == {
            "construct_database", "model_training", "guide_generation",
            "guided_routing",
        }
