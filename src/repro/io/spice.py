"""SPICE-style netlist export/import.

The dialect is a practical subset: MOSFETs (``M``), capacitors (``C``),
resistors (``R``), plus comment-encoded extensions carrying what plain
SPICE cannot express — device footprints are re-derived, and symmetry
constraints / net types ride in ``*.SYMNET`` / ``*.NETTYPE`` control
comments so a round trip preserves the full Circuit.
"""

from __future__ import annotations

from pathlib import Path

from repro.netlist.circuit import Circuit
from repro.netlist.devices import Capacitor, Dummy, MOSFET, MOSType, Resistor
from repro.netlist.nets import Net, NetType, SymmetryPair
from repro.reliability.errors import SpiceParseError

#: Sentinel net name the writer emits for unconnected terminals.  The
#: importer must never materialize it as a real net: a round trip would
#: otherwise short every floating pin together through one phantom net.
_FLOATING = "_FLOAT_"


def _terminal_net(circuit: Circuit, device: str, pin: str) -> str:
    net = circuit.net_of(device, pin)
    return net.name if net is not None else _FLOATING


def circuit_to_spice(circuit: Circuit) -> str:
    """Serialize a circuit to SPICE-style text."""
    lines = [f"* circuit: {circuit.name}", f"*.TOPOLOGY {circuit.topology}"]

    for name in sorted(circuit.devices):
        device = circuit.devices[name]
        if isinstance(device, MOSFET):
            d = _terminal_net(circuit, name, "D")
            g = _terminal_net(circuit, name, "G")
            s = _terminal_net(circuit, name, "S")
            b = _terminal_net(circuit, name, "B")
            model = "pch" if device.mos_type is MOSType.PMOS else "nch"
            lines.append(
                f"M{name} {d} {g} {s} {b} {model} W={device.w}u L={device.l}u "
                f"NF={device.fingers} IBIAS={device.bias_current} "
                f"BIASDEV={int(device.is_bias_device)}"
            )
        elif isinstance(device, Capacitor):
            p = _terminal_net(circuit, name, "PLUS")
            m = _terminal_net(circuit, name, "MINUS")
            lines.append(f"C{name} {p} {m} {device.value}")
        elif isinstance(device, Resistor):
            p = _terminal_net(circuit, name, "PLUS")
            m = _terminal_net(circuit, name, "MINUS")
            lines.append(f"R{name} {p} {m} {device.value}")
        elif isinstance(device, Dummy):
            lines.append(f"*.DUMMY {name} W={device.width} H={device.height}")

    for net in sorted(circuit.nets.values(), key=lambda n: n.name):
        flags = f" WEIGHT={net.weight}"
        if net.self_symmetric:
            flags += " SELFSYM=1"
        lines.append(f"*.NETTYPE {net.name} {net.net_type.value}{flags}")

    for pair in circuit.symmetry_pairs:
        devices = " ".join(f"{l}:{r}" for l, r in pair.device_pairs)
        lines.append(f"*.SYMNET {pair.net_a} {pair.net_b} {devices}".rstrip())

    lines.append(".END")
    return "\n".join(lines) + "\n"


def _net_from_meta(name: str, meta: dict) -> Net:
    return Net(
        name=name,
        net_type=meta.get("type", NetType.SIGNAL),
        weight=meta.get("weight", 1.0),
        self_symmetric=meta.get("self_symmetric", False),
    )


def spice_to_circuit(text: str, path: str | None = None) -> Circuit:
    """Parse SPICE-style text produced by :func:`circuit_to_spice`.

    Malformed cards (missing ``W=``/``L=``, non-numeric values, duplicate
    device names, unsupported elements) raise a typed
    :class:`~repro.reliability.errors.SpiceParseError` carrying ``path``
    and the one-based line number of the offending card.
    """
    circuit = Circuit(name="imported")
    # terminal -> net name, gathered first; nets materialize afterwards.
    terminals: list[tuple[str, str, str]] = []  # (device, pin, net)
    net_meta: dict[str, dict] = {}
    sym_lines: list[tuple[str, str, tuple[tuple[str, str], ...]]] = []

    def note_terminal(device: str, pin: str, net: str) -> None:
        if net != _FLOATING:
            terminals.append((device, pin, net))

    for line_no, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line or line == ".END":
            continue
        if line.startswith("* circuit:"):
            circuit.name = line.split(":", 1)[1].strip()
            continue
        if line.startswith("*.TOPOLOGY"):
            circuit.topology = line.split(None, 1)[1].strip()
            continue
        try:
            if line.startswith("*.DUMMY"):
                parts = line.split()
                kwargs = dict(part.split("=") for part in parts[2:])
                circuit.add_device(Dummy(name=parts[1],
                                         width=float(kwargs["W"]),
                                         height=float(kwargs["H"])))
                continue
            if line.startswith("*.NETTYPE"):
                parts = line.split()
                meta = {"type": NetType(parts[2])}
                for extra in parts[3:]:
                    key, value = extra.split("=")
                    if key == "WEIGHT":
                        meta["weight"] = float(value)
                    elif key == "SELFSYM":
                        meta["self_symmetric"] = bool(int(value))
                if parts[1] != _FLOATING:
                    net_meta[parts[1]] = meta
                continue
            if line.startswith("*.SYMNET"):
                parts = line.split()
                pairs = tuple(
                    tuple(token.split(":")) for token in parts[3:]
                )
                sym_lines.append((parts[1], parts[2], pairs))
                continue
            if line.startswith("*"):
                continue

            parts = line.split()
            card, name = parts[0][0].upper(), parts[0][1:]
            if card == "M":
                if len(parts) < 6:
                    raise SpiceParseError(
                        f"MOSFET card needs 4 terminals and a model: "
                        f"{line!r}", path=path, line_no=line_no)
                kwargs = dict(p.split("=") for p in parts[6:])
                for required in ("W", "L"):
                    if required not in kwargs:
                        raise SpiceParseError(
                            f"MOSFET {parts[0]} is missing {required}=",
                            path=path, line_no=line_no)
                mos = MOSFET(
                    name=name,
                    mos_type=(MOSType.PMOS if parts[5] == "pch"
                              else MOSType.NMOS),
                    w=float(kwargs["W"].rstrip("u")),
                    l=float(kwargs["L"].rstrip("u")),
                    fingers=int(kwargs.get("NF", 1)),
                    bias_current=float(kwargs.get("IBIAS", 0.0) or 1e-9),
                    is_bias_device=bool(int(kwargs.get("BIASDEV", 0))),
                )
                circuit.add_device(mos)
                for pin, net in zip(("D", "G", "S", "B"), parts[1:5]):
                    note_terminal(name, pin, net)
            elif card == "C":
                circuit.add_device(Capacitor(name=name,
                                             value=float(parts[3])))
                note_terminal(name, "PLUS", parts[1])
                note_terminal(name, "MINUS", parts[2])
            elif card == "R":
                circuit.add_device(Resistor(name=name,
                                            value=float(parts[3])))
                note_terminal(name, "PLUS", parts[1])
                note_terminal(name, "MINUS", parts[2])
            else:
                raise SpiceParseError(
                    f"unsupported SPICE card: {line!r}",
                    path=path, line_no=line_no)
        except SpiceParseError:
            raise
        except (ValueError, KeyError, IndexError) as exc:
            # Malformed card: short tokens, non-numeric values, duplicate
            # device names (Circuit.add_device raises ValueError), ...
            raise SpiceParseError(
                f"malformed card {line!r}: {exc}",
                path=path, line_no=line_no) from exc

    for device, pin, net_name in terminals:
        if net_name not in circuit.nets:
            circuit.add_net(_net_from_meta(net_name,
                                           net_meta.get(net_name, {})))
        circuit.net(net_name).connect(device, pin)

    # Declared nets never referenced by a device card (e.g. a probe net
    # or a net whose only terminals float) keep their declared type and
    # weight instead of being silently dropped.
    for net_name, meta in net_meta.items():
        if net_name not in circuit.nets:
            circuit.add_net(_net_from_meta(net_name, meta))

    for net_a, net_b, device_pairs in sym_lines:
        circuit.add_symmetry_pair(SymmetryPair(net_a, net_b, device_pairs))

    circuit.validate()
    return circuit


def write_spice(circuit: Circuit, path: str | Path) -> None:
    """Write a circuit to a .sp file."""
    Path(path).write_text(circuit_to_spice(circuit))


def read_spice(path: str | Path) -> Circuit:
    """Read a circuit from a .sp file."""
    return spice_to_circuit(Path(path).read_text(), path=str(path))
