"""Wild-dialect SPICE ingestion: real-world netlists into Circuits.

:mod:`repro.io.spice` round-trips the repo's own dialect; this module
accepts netlists as they exist in the wild — ``.subckt``/``.ends``
hierarchies, ``X`` instances, ``.param`` substitution, line
continuations, case-insensitive cards, model-card naming conventions
(``nmos``/``nch``/``NMOS_VTL``/...), and sizes written in meters or
microns with SI suffixes.  The output is a flattened
:class:`~repro.netlist.circuit.Circuit` whose W/L are in microns, ready
for symmetry inference (:mod:`repro.netlist.symmetry`) and testbench
synthesis (:mod:`repro.netlist.autobench`).

Anything the flow cannot represent raises a typed
:class:`~repro.reliability.errors.SpiceParseError` (malformed or
unsupported cards, with file/line context) or
:class:`~repro.reliability.errors.IngestError` (no viable top cell,
unresolved subcircuit references) — never a raw ``ValueError`` from deep
inside a ``float()`` call.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.netlist.circuit import Circuit
from repro.netlist.devices import Capacitor, MOSFET, MOSType, Resistor
from repro.netlist.nets import Net, NetType
from repro.reliability.errors import IngestError, SpiceParseError

#: SI magnitude suffixes (SPICE convention: ``meg`` is 1e6, ``m`` is 1e-3).
_SI_SUFFIXES = (
    ("MEG", 1e6),
    ("T", 1e12), ("G", 1e9), ("K", 1e3),
    ("M", 1e-3), ("U", 1e-6), ("N", 1e-9), ("P", 1e-12), ("F", 1e-15),
)

_NUMBER_RE = re.compile(r"^[+-]?(\d+\.?\d*|\.\d+)([eE][+-]?\d+)?")

#: Model-name fragments that identify device polarity.
_NMOS_HINTS = ("NMOS", "NCH", "NFET", "NSVT", "NLVT", "NHVT")
_PMOS_HINTS = ("PMOS", "PCH", "PFET", "PSVT", "PLVT", "PHVT")

#: Dot-cards that are legal but carry nothing the flow needs.
_IGNORED_CARDS = {
    ".OP", ".TRAN", ".AC", ".DC", ".NOISE", ".PROBE", ".PRINT", ".PLOT",
    ".OPTION", ".OPTIONS", ".TEMP", ".SAVE", ".IC", ".NODESET", ".MEAS",
    ".MEASURE", ".WIDTH", ".BACKANNO",
}

#: Element letters the flow cannot represent electrically.
_UNSUPPORTED_ELEMENTS = {
    "Q": "bipolar transistor", "D": "diode", "J": "JFET",
    "L": "inductor", "K": "coupled inductor", "E": "VCVS", "F": "CCCS",
    "G": "VCCS", "H": "CCVS", "T": "transmission line", "S": "switch",
    "W": "current-controlled switch", "B": "behavioural source",
}


def parse_si_value(token: str, *, path: str | None = None,
                   line_no: int | None = None) -> float:
    """Parse a SPICE numeric token with optional SI suffix (``2u``,
    ``1.5MEG``, ``4e-15``, ``0.18``)."""
    text = token.strip().upper()
    match = _NUMBER_RE.match(text)
    if not match:
        raise SpiceParseError(f"not a numeric value: {token!r}",
                              path=path, line_no=line_no)
    value = float(match.group(0))
    rest = text[match.end():]
    if rest:
        for suffix, scale in _SI_SUFFIXES:
            if rest.startswith(suffix):
                return value * scale
        raise SpiceParseError(
            f"unknown unit suffix {rest!r} in {token!r}",
            path=path, line_no=line_no)
    return value


def size_to_microns(token: str, *, path: str | None = None,
                    line_no: int | None = None) -> float:
    """A W/L token, normalized to microns.

    Netlists write sizes either in meters (``2e-6``, ``0.5u``) or as a
    bare micron count (``0.18``, ``4``).  Any SI value below one
    millimeter is taken as meters; larger values would be absurd
    dimensions in meters, so they are already microns.
    """
    value = parse_si_value(token, path=path, line_no=line_no)
    if value <= 0.0:
        raise SpiceParseError(f"non-positive device size: {token!r}",
                              path=path, line_no=line_no)
    if value < 1e-3:
        return value * 1e6
    return value


def classify_model(model: str, models: dict[str, MOSType], *,
                   path: str | None = None,
                   line_no: int | None = None) -> MOSType:
    """Device polarity from a ``.model`` card or the model's name."""
    name = model.upper()
    if name in models:
        return models[name]
    for hint in _NMOS_HINTS:
        if hint in name:
            return MOSType.NMOS
    for hint in _PMOS_HINTS:
        if hint in name:
            return MOSType.PMOS
    if name.startswith("N"):
        return MOSType.NMOS
    if name.startswith("P"):
        return MOSType.PMOS
    raise SpiceParseError(
        f"cannot tell NMOS from PMOS for model {model!r} — add a .model "
        "card or use a conventional name (nch/pch/nmos*/pmos*)",
        path=path, line_no=line_no)


@dataclass
class _Card:
    """One logical netlist line after continuation joining."""

    line_no: int  # of the first physical line
    tokens: list[str]

    @property
    def head(self) -> str:
        return self.tokens[0]


@dataclass
class _Subckt:
    """A ``.subckt`` definition."""

    name: str
    pins: list[str]
    defaults: dict[str, str]  # header param defaults (raw tokens)
    cards: list[_Card] = field(default_factory=list)


@dataclass
class WildNetlist:
    """Parsed (unflattened) wild-dialect netlist."""

    path: str | None = None
    title: str | None = None
    subckts: dict[str, _Subckt] = field(default_factory=dict)
    top_cards: list[_Card] = field(default_factory=list)
    params: dict[str, str] = field(default_factory=dict)
    globals_: list[str] = field(default_factory=list)
    models: dict[str, MOSType] = field(default_factory=dict)
    sources: list[tuple[str, str, str]] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)


def _logical_cards(text: str, path: str | None) -> list[_Card]:
    """Split text into logical cards: comments stripped, ``+``
    continuations joined, tokens uppercased (SPICE is case-insensitive)."""
    cards: list[_Card] = []
    for line_no, raw in enumerate(text.splitlines(), 1):
        line = raw.split("$", 1)[0].split(";", 1)[0].rstrip()
        stripped = line.strip()
        if not stripped or stripped.startswith("*"):
            continue
        if stripped.startswith("+"):
            if not cards:
                raise SpiceParseError(
                    "continuation line with nothing to continue",
                    path=path, line_no=line_no)
            cards[-1].tokens.extend(stripped[1:].upper().split())
            continue
        cards.append(_Card(line_no=line_no, tokens=stripped.upper().split()))
    return cards


def _split_kwargs(tokens: list[str], *, path: str | None,
                  line_no: int) -> tuple[list[str], dict[str, str]]:
    """Split trailing ``KEY=VALUE`` tokens off a card.

    Handles the space-separated variants ``W = 2u`` and ``W= 2u`` by
    re-joining around bare ``=`` tokens first.
    """
    joined: list[str] = []
    for token in tokens:
        if token == "=" and joined:
            joined[-1] += "="
        elif joined and joined[-1].endswith("="):
            joined[-1] += token
        else:
            joined.append(token)
    positional: list[str] = []
    kwargs: dict[str, str] = {}
    for token in joined:
        if "=" in token:
            key, _, value = token.partition("=")
            if not key or not value:
                raise SpiceParseError(
                    f"malformed KEY=VALUE token {token!r}",
                    path=path, line_no=line_no)
            kwargs[key] = value
        else:
            if kwargs:
                raise SpiceParseError(
                    f"positional token {token!r} after KEY=VALUE tokens",
                    path=path, line_no=line_no)
            positional.append(token)
    return positional, kwargs


def parse_wild_spice(text: str, path: str | None = None) -> WildNetlist:
    """Parse wild-dialect SPICE text into an unflattened netlist."""
    netlist = WildNetlist(path=path)
    cards = _logical_cards(text, path)
    current: _Subckt | None = None

    for index, card in enumerate(cards):
        head = card.head
        if index == 0 and not head.startswith((".", "*")) \
                and head[0] not in "MXCRVI" and len(card.tokens) >= 1 \
                and "=" not in head:
            # A classic title line would have been consumed here, but a
            # device card is indistinguishable only by its element letter;
            # anything starting with a known letter falls through.
            netlist.title = " ".join(card.tokens)
            continue
        if head == ".SUBCKT":
            if current is not None:
                raise SpiceParseError(
                    "nested .subckt definitions are not supported",
                    path=path, line_no=card.line_no)
            if len(card.tokens) < 2:
                raise SpiceParseError(".subckt needs a name",
                                      path=path, line_no=card.line_no)
            pins, defaults = _split_kwargs(card.tokens[2:], path=path,
                                           line_no=card.line_no)
            name = card.tokens[1]
            if name in netlist.subckts:
                raise SpiceParseError(
                    f"duplicate .subckt {name}", path=path,
                    line_no=card.line_no)
            current = _Subckt(name=name, pins=pins, defaults=defaults)
            netlist.subckts[name] = current
            continue
        if head == ".ENDS":
            if current is None:
                raise SpiceParseError(".ends without .subckt",
                                      path=path, line_no=card.line_no)
            current = None
            continue
        if head == ".PARAM":
            _, kwargs = _split_kwargs(card.tokens[1:], path=path,
                                      line_no=card.line_no)
            target = current.defaults if current is not None else netlist.params
            target.update(kwargs)
            continue
        if head == ".GLOBAL":
            netlist.globals_.extend(card.tokens[1:])
            continue
        if head == ".MODEL":
            if len(card.tokens) < 3:
                raise SpiceParseError(".model needs a name and a type",
                                      path=path, line_no=card.line_no)
            kind = card.tokens[2].split("(")[0]
            if kind in ("NMOS", "PMOS"):
                netlist.models[card.tokens[1]] = (
                    MOSType.NMOS if kind == "NMOS" else MOSType.PMOS)
            else:
                netlist.warnings.append(
                    f"line {card.line_no}: ignoring non-MOS .model "
                    f"{card.tokens[1]} ({kind})")
            continue
        if head == ".END":
            break
        if head in (".INCLUDE", ".INC", ".LIB"):
            raise SpiceParseError(
                f"{head.lower()} references an external file — flatten "
                "the netlist before ingestion", path=path,
                line_no=card.line_no)
        if head in _IGNORED_CARDS or head.split("(")[0] in _IGNORED_CARDS:
            netlist.warnings.append(
                f"line {card.line_no}: ignoring analysis card {head}")
            continue
        if head.startswith("."):
            raise SpiceParseError(f"unsupported control card {head}",
                                  path=path, line_no=card.line_no)
        if head[0] in ("V", "I"):
            # Independent sources carry bench intent, not devices; keep
            # their terminal names as classification hints.
            if len(card.tokens) >= 3:
                netlist.sources.append((head, card.tokens[1], card.tokens[2]))
            if current is None:
                continue
            netlist.warnings.append(
                f"line {card.line_no}: ignoring source {head} inside "
                f".subckt {current.name}")
            continue
        if head[0] in _UNSUPPORTED_ELEMENTS:
            raise SpiceParseError(
                f"unsupported element {head!r} "
                f"({_UNSUPPORTED_ELEMENTS[head[0]]})",
                path=path, line_no=card.line_no)
        if head[0] not in ("M", "X", "C", "R"):
            raise SpiceParseError(f"unsupported card {head!r}",
                                  path=path, line_no=card.line_no)
        (current.cards if current is not None
         else netlist.top_cards).append(card)

    if current is not None:
        raise SpiceParseError(
            f".subckt {current.name} is never closed with .ends",
            path=path, line_no=len(text.splitlines()))
    return netlist


def _resolve(token: str, params: dict[str, str], *, path: str | None,
             line_no: int, depth: int = 0) -> str:
    """Resolve ``{name}`` / ``'name'`` / bare-name parameter references."""
    if depth > 16:
        raise SpiceParseError(
            f"circular .param reference via {token!r}",
            path=path, line_no=line_no)
    text = token.strip().strip("'\"").strip()
    if text.startswith("{") and text.endswith("}"):
        text = text[1:-1].strip()
    if text in params:
        return _resolve(params[text], params, path=path, line_no=line_no,
                        depth=depth + 1)
    return text


@dataclass
class _FlattenState:
    circuit: Circuit
    netlist: WildNetlist
    warnings: list[str]


def _canonical_net(name: str, prefix: str, pin_map: dict[str, str],
                   globals_: frozenset[str]) -> str:
    if name in pin_map:
        return pin_map[name]
    if name in globals_ or name == "0":
        return name
    return f"{prefix}{name}"


def _flatten_cards(state: _FlattenState, cards: list[_Card], prefix: str,
                   pin_map: dict[str, str], params: dict[str, str],
                   stack: tuple[str, ...]) -> None:
    netlist = state.netlist
    path = netlist.path
    globals_ = frozenset(netlist.globals_)

    for card in cards:
        positional, kwargs = _split_kwargs(card.tokens, path=path,
                                           line_no=card.line_no)
        head = card.head
        # The full card name (element letter included) stays the device
        # name: wild netlists routinely have RX/CX pairs that would
        # collide if the letter were stripped the way the round-trip
        # dialect does.
        name = f"{prefix}{head}"
        kind = head[0]

        def net_of(token: str) -> str:
            return _canonical_net(token, prefix, pin_map, globals_)

        def value_of(token: str) -> float:
            return parse_si_value(
                _resolve(token, params, path=path, line_no=card.line_no),
                path=path, line_no=card.line_no)

        if kind == "M":
            # MNAME d g s [b] model — detect the 3-terminal form by
            # checking whether the last positional token is a known or
            # conventionally named model.
            if len(positional) < 5:
                raise SpiceParseError(
                    f"MOSFET {head} needs at least 3 terminals and a "
                    "model", path=path, line_no=card.line_no)
            model = positional[-1]
            nets = positional[1:-1]
            if len(nets) not in (3, 4):
                raise SpiceParseError(
                    f"MOSFET {head} has {len(nets)} terminals "
                    "(expected 3 or 4)", path=path, line_no=card.line_no)
            mos_type = classify_model(model, netlist.models, path=path,
                                      line_no=card.line_no)
            sizes = {}
            for key in ("W", "L"):
                if key not in kwargs:
                    raise SpiceParseError(
                        f"MOSFET {head} is missing {key}=",
                        path=path, line_no=card.line_no)
                sizes[key] = size_to_microns(
                    _resolve(kwargs[key], params, path=path,
                             line_no=card.line_no),
                    path=path, line_no=card.line_no)
            fingers = 1
            for key in ("NF", "M"):
                if key in kwargs:
                    fingers *= max(1, int(value_of(kwargs[key])))
            try:
                state.circuit.add_device(MOSFET(
                    name=name, mos_type=mos_type, w=sizes["W"],
                    l=sizes["L"], fingers=fingers))
            except ValueError as exc:
                raise SpiceParseError(
                    f"bad MOSFET {head}: {exc}", path=path,
                    line_no=card.line_no) from exc
            # Bulk is a substrate/well tap in this flow (repo convention:
            # benchmark MOSFETs leave B unconnected), so it is dropped.
            for pin, net in zip(("D", "G", "S"), nets[:3]):
                _connect(state.circuit, net_of(net), name, pin)
        elif kind in ("C", "R"):
            if len(positional) >= 4:
                value_token = positional[3]
            elif kind in kwargs:  # Cxx a b C=1p
                value_token = kwargs[kind]
            else:
                raise SpiceParseError(
                    f"{'capacitor' if kind == 'C' else 'resistor'} {head} "
                    "has no value", path=path, line_no=card.line_no)
            value = value_of(value_token)
            try:
                device = (Capacitor(name=name, value=value) if kind == "C"
                          else Resistor(name=name, value=value))
                state.circuit.add_device(device)
            except ValueError as exc:
                raise SpiceParseError(
                    f"bad {'capacitor' if kind == 'C' else 'resistor'} "
                    f"{head}: {exc}", path=path,
                    line_no=card.line_no) from exc
            _connect(state.circuit, net_of(positional[1]), name, "PLUS")
            _connect(state.circuit, net_of(positional[2]), name, "MINUS")
        elif kind == "X":
            if len(positional) < 2:
                raise SpiceParseError(
                    f"subcircuit instance {head} has no definition name",
                    path=path, line_no=card.line_no)
            sub_name = positional[-1]
            sub = netlist.subckts.get(sub_name)
            if sub is None:
                raise IngestError(
                    f"instance {head} references undefined subcircuit "
                    f"{sub_name!r}", stage="ingest",
                    details={"path": path, "line_no": card.line_no})
            if sub_name in stack:
                raise IngestError(
                    f"recursive subcircuit instantiation: "
                    f"{' -> '.join(stack + (sub_name,))}", stage="ingest",
                    details={"path": path})
            actuals = positional[1:-1]
            if len(actuals) != len(sub.pins):
                raise SpiceParseError(
                    f"instance {head} connects {len(actuals)} nets but "
                    f".subckt {sub_name} declares {len(sub.pins)} pins",
                    path=path, line_no=card.line_no)
            child_pin_map = {pin: net_of(actual)
                             for pin, actual in zip(sub.pins, actuals)}
            child_params = dict(params)
            child_params.update(sub.defaults)
            child_params.update(kwargs)
            _flatten_cards(state, sub.cards, f"{name}_", child_pin_map,
                           child_params, stack + (sub_name,))
        else:  # pragma: no cover - parse_wild_spice filters other kinds
            raise SpiceParseError(f"unsupported card {head!r}",
                                  path=path, line_no=card.line_no)


def _connect(circuit: Circuit, net_name: str, device: str, pin: str) -> None:
    if net_name not in circuit.nets:
        circuit.add_net(Net(name=net_name, net_type=NetType.SIGNAL))
    circuit.net(net_name).connect(device, pin)


def pick_top_cell(netlist: WildNetlist) -> str | None:
    """The cell to flatten: ``None`` for top-level cards, else the
    largest subcircuit that nothing instantiates."""
    if netlist.top_cards:
        return None
    if not netlist.subckts:
        raise IngestError(
            "netlist has no device cards and no subcircuits",
            stage="ingest", details={"path": netlist.path})
    instantiated = set()
    for sub in netlist.subckts.values():
        for card in sub.cards:
            if card.head[0] == "X":
                positional, _ = _split_kwargs(card.tokens,
                                              path=netlist.path,
                                              line_no=card.line_no)
                if len(positional) >= 2:
                    instantiated.add(positional[-1])
    roots = [name for name in netlist.subckts if name not in instantiated]
    if not roots:
        raise IngestError(
            "no viable top cell: every subcircuit is instantiated by "
            "another (recursive hierarchy?)", stage="ingest",
            details={"path": netlist.path})
    # Deterministic: most device cards wins, name breaks ties.
    return max(sorted(roots),
               key=lambda name: len(netlist.subckts[name].cards))


def wild_to_circuit(text: str, path: str | None = None,
                    top: str | None = None) -> Circuit:
    """Parse and flatten wild-dialect SPICE text into a Circuit."""
    netlist = parse_wild_spice(text, path=path)
    return flatten_netlist(netlist, top=top)


def flatten_netlist(netlist: WildNetlist, top: str | None = None) -> Circuit:
    """Flatten a parsed netlist into a single-level Circuit.

    Instance-local nets and devices get an ``{INST}_`` prefix;
    ``.global`` nets, the literal ground net ``0``, and top pins keep
    their names.
    """
    if top is None:
        top = pick_top_cell(netlist)
    if top is None:
        name = (netlist.title or "ingested").replace(" ", "_")
        if netlist.title is None and len(netlist.top_cards) == 1 \
                and netlist.top_cards[0].head[0] == "X":
            # A lone wrapper instance: borrow the cell's name.
            positional, _ = _split_kwargs(
                netlist.top_cards[0].tokens, path=netlist.path,
                line_no=netlist.top_cards[0].line_no)
            if len(positional) >= 2:
                name = positional[-1]
        circuit = Circuit(name=name)
        cards = netlist.top_cards
        pin_map: dict[str, str] = {}
        params = dict(netlist.params)
    else:
        sub = netlist.subckts.get(top)
        if sub is None:
            raise IngestError(
                f"requested top cell {top!r} is not defined "
                f"(have: {sorted(netlist.subckts)})", stage="ingest",
                details={"path": netlist.path})
        circuit = Circuit(name=sub.name)
        cards = sub.cards
        pin_map = {pin: pin for pin in sub.pins}
        params = dict(netlist.params)
        params.update(sub.defaults)
    state = _FlattenState(circuit=circuit, netlist=netlist,
                          warnings=netlist.warnings)
    _flatten_cards(state, cards, "", pin_map, params, (top,) if top else ())
    if not circuit.devices:
        raise IngestError(
            f"top cell {top or '<toplevel>'} flattens to zero devices",
            stage="ingest", details={"path": netlist.path})
    circuit.validate()
    return circuit


def read_wild_spice(path: str | Path, top: str | None = None) -> Circuit:
    """Read and flatten a wild-dialect ``.sp`` file."""
    return wild_to_circuit(Path(path).read_text(), path=str(path), top=top)


@dataclass
class IngestResult:
    """A fully ingested netlist: circuit, synthesized bench, manifest."""

    circuit: Circuit
    bench: "AutobenchReport"
    warnings: list[str]
    source: str

    @property
    def config(self):
        """The synthesized TestbenchConfig."""
        return self.bench.config()

    def manifest(self) -> dict:
        """JSON-ready summary of everything ingestion decided."""
        circuit = self.circuit
        bench = self.bench
        type_counts: dict[str, int] = {}
        for device in circuit.devices.values():
            key = device.device_type.value
            type_counts[key] = type_counts.get(key, 0) + 1
        return {
            "schema_version": 1,
            "source": self.source,
            "circuit": {
                "name": circuit.name,
                "devices": dict(sorted(type_counts.items())),
                "nets": len(circuit.nets),
                "terminals": sum(net.degree
                                 for net in circuit.nets.values()),
            },
            "classification": {
                "power": list(bench.power),
                "ground": list(bench.ground),
                "inputs": list(bench.inputs or ()),
                "outputs": list(bench.outputs or ()),
                "single_ended": bench.single_ended,
                "clocks": list(bench.clocks),
                "biases": list(bench.biases),
                "dc_drive_nets": list(bench.dc_drive_nets),
            },
            "symmetry": {
                "net_pairs": [list(p) for p in bench.symmetry.net_pairs],
                "self_symmetric": list(bench.symmetry.self_symmetric),
                "device_pairs": [list(p)
                                 for p in bench.symmetry.device_pairs],
            },
            "warnings": list(self.warnings),
        }


def ingest_spice(text: str, path: str | None = None,
                 top: str | None = None) -> IngestResult:
    """Full ingestion: parse, flatten, infer symmetry, synthesize bench."""
    from repro.netlist.autobench import synthesize_testbench

    netlist = parse_wild_spice(text, path=path)
    circuit = flatten_netlist(netlist, top=top)
    bench = synthesize_testbench(circuit)
    return IngestResult(circuit=circuit, bench=bench,
                        warnings=list(netlist.warnings),
                        source=path or "<string>")


def ingest_file(path: str | Path, top: str | None = None) -> IngestResult:
    """Ingest a wild-dialect ``.sp`` file end to end."""
    return ingest_spice(Path(path).read_text(), path=str(path), top=top)
