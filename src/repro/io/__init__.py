"""Persistence: SPICE-style netlists, placements, guidance, and layouts."""

from repro.io.guidance_io import load_guidance, save_guidance
from repro.io.layout_io import (
    load_placement,
    routing_to_def_text,
    save_placement,
)
from repro.io.spice import circuit_to_spice, spice_to_circuit

__all__ = [
    "save_guidance",
    "load_guidance",
    "save_placement",
    "load_placement",
    "routing_to_def_text",
    "circuit_to_spice",
    "spice_to_circuit",
]
