"""Persistence: SPICE-style netlists, placements, guidance, and layouts.

Two SPICE surfaces live here: :mod:`repro.io.spice` round-trips the
repo's own dialect losslessly, and :mod:`repro.io.ingest` accepts
wild-dialect netlists (``.subckt`` hierarchies, ``.param``, unit
suffixes) and flattens them into Circuits.
"""

from repro.io.guidance_io import load_guidance, save_guidance
from repro.io.ingest import (
    IngestResult,
    ingest_file,
    ingest_spice,
    read_wild_spice,
    wild_to_circuit,
)
from repro.io.layout_io import (
    load_placement,
    routing_to_def_text,
    save_placement,
)
from repro.io.spice import circuit_to_spice, spice_to_circuit

__all__ = [
    "save_guidance",
    "load_guidance",
    "save_placement",
    "load_placement",
    "routing_to_def_text",
    "circuit_to_spice",
    "spice_to_circuit",
    "IngestResult",
    "ingest_file",
    "ingest_spice",
    "read_wild_spice",
    "wild_to_circuit",
]
