"""JSON persistence for routing guidance."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.router.guidance import RoutingGuidance


def save_guidance(guidance: RoutingGuidance, path: str | Path) -> None:
    """Write guidance vectors to a JSON file."""
    payload = {
        "c_max": guidance.c_max,
        "vectors": {
            f"{device}.{pin}": [float(v) for v in vec]
            for (device, pin), vec in sorted(guidance.vectors.items())
        },
    }
    Path(path).write_text(json.dumps(payload, indent=2))


def load_guidance(path: str | Path) -> RoutingGuidance:
    """Read guidance saved by :func:`save_guidance`."""
    payload = json.loads(Path(path).read_text())
    vectors = {}
    for key, values in payload["vectors"].items():
        device, _, pin = key.rpartition(".")
        if not device:
            raise ValueError(f"malformed guidance key {key!r}")
        vectors[(device, pin)] = np.asarray(values, dtype=float)
    return RoutingGuidance(vectors=vectors, c_max=float(payload["c_max"]))
