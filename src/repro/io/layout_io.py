"""Placement persistence and DEF-like routing export."""

from __future__ import annotations

import json
from pathlib import Path

from repro.netlist.circuit import Circuit
from repro.placement.layout import Orientation, PlacedDevice, Placement
from repro.router.grid import RoutingGrid
from repro.router.result import RoutingResult


def save_placement(placement: Placement, path: str | Path) -> None:
    """Write a placement (positions, orientation, axis) to JSON."""
    payload = {
        "circuit": placement.circuit.name,
        "variant": placement.variant,
        "symmetry_axis": placement.symmetry_axis,
        "positions": {
            name: {"x": p.x, "y": p.y, "orientation": p.orientation.value}
            for name, p in sorted(placement.positions.items())
        },
    }
    Path(path).write_text(json.dumps(payload, indent=2))


def load_placement(circuit: Circuit, path: str | Path) -> Placement:
    """Read a placement saved by :func:`save_placement`.

    The circuit must be the same design the placement was saved for.
    """
    payload = json.loads(Path(path).read_text())
    if payload["circuit"] != circuit.name:
        raise ValueError(
            f"placement was saved for {payload['circuit']!r}, "
            f"not {circuit.name!r}"
        )
    placement = Placement(
        circuit=circuit,
        symmetry_axis=float(payload["symmetry_axis"]),
        variant=payload.get("variant", "A"),
    )
    for name, entry in payload["positions"].items():
        if name not in circuit.devices:
            raise ValueError(f"placement references unknown device {name!r}")
        placement.positions[name] = PlacedDevice(
            name=name, x=float(entry["x"]), y=float(entry["y"]),
            orientation=Orientation(entry["orientation"]),
        )
    missing = set(circuit.devices) - set(placement.positions)
    if missing:
        raise ValueError(f"placement misses devices: {sorted(missing)}")
    return placement


def routing_to_def_text(result: RoutingResult, grid: RoutingGrid) -> str:
    """Export a routing solution as DEF-flavoured text.

    One ``NET`` block per net; each path is a sequence of (x um, y um,
    layer) points on the routing grid.  Intended for inspection and for
    downstream tools that consume simple geometric dumps.
    """
    pitch = grid.pitch
    lines = [
        "VERSION 5.8 ;",
        f"DESIGN {grid.placement.circuit.name} ;",
        f"UNITS DISTANCE MICRONS 1000 ;",
        f"# grid {grid.nx} x {grid.ny} x {grid.num_layers}, pitch {pitch} um",
        f"NETS {len(result.routes)} ;",
    ]
    for name in sorted(result.routes):
        route = result.routes[name]
        lines.append(f"- {name}")
        for path in route.paths:
            points = " ".join(
                f"( {grid.to_um(c)[0]:.3f} {grid.to_um(c)[1]:.3f} M{c[2] + 1} )"
                for c in path
            )
            lines.append(f"  + ROUTED {points}")
        lines.append("  ;")
    lines.append("END NETS")
    lines.append("END DESIGN")
    return "\n".join(lines) + "\n"
