"""The paper's benchmark circuits (Table 1).

Two fully-differential two-stage Miller-compensated OTAs (OTA1, OTA2 — same
topology, different sizing) and two fully-differential telescopic-cascode
OTAs (OTA3, OTA4 — same topology, different sizing).  Device counts match
Table 1 exactly:

=========  ======  ======  =====  =====  ======
Benchmark  #PMOS   #NMOS   #Cap   #Res   #Total
=========  ======  ======  =====  =====  ======
OTA1/OTA2  6       8       2      0      25
OTA3/OTA4  16      10      6      4      36
=========  ======  ======  =====  =====  ======

OTA1/OTA2 carry 9 dummy/guard devices to reach the Table 1 totals; dummies
occupy placement area but have no electrical role.  MOSFET bulk pins are
treated as substrate/well taps (not routed as signal nets), as is standard
in analog flows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.netlist.circuit import Circuit
from repro.netlist.devices import Capacitor, Dummy, MOSFET, MOSType, Resistor
from repro.netlist.nets import NetType, SymmetryPair


@dataclass(frozen=True)
class MillerSizing:
    """Sizing knobs distinguishing OTA1 from OTA2."""

    w_in: float = 8.0
    w_load: float = 4.0
    w_tail: float = 6.0
    w_out_p: float = 12.0
    w_out_n: float = 6.0
    l: float = 0.08
    i_branch: float = 20e-6
    i_out: float = 80e-6
    c_miller: float = 1.0e-12


@dataclass(frozen=True)
class TelescopicSizing:
    """Sizing knobs distinguishing OTA3 from OTA4."""

    w_in: float = 16.0
    w_cas_n: float = 8.0
    w_cas_p: float = 10.0
    w_src: float = 12.0
    w_tail: float = 10.0
    l: float = 0.06
    i_branch: float = 100e-6
    c_load: float = 0.5e-12
    r_cmfb: float = 200e3


def _miller_ota(name: str, s: MillerSizing) -> Circuit:
    """Fully differential two-stage Miller OTA."""
    c = Circuit(name=name, topology="miller")

    # First stage: NMOS diff pair, PMOS loads, NMOS tail.
    c.add_device(MOSFET(name="MN_IN_L", mos_type=MOSType.NMOS, w=s.w_in, l=s.l,
                        fingers=4, bias_current=s.i_branch))
    c.add_device(MOSFET(name="MN_IN_R", mos_type=MOSType.NMOS, w=s.w_in, l=s.l,
                        fingers=4, bias_current=s.i_branch))
    c.add_device(MOSFET(name="MP_LOAD_L", mos_type=MOSType.PMOS, w=s.w_load, l=s.l,
                        fingers=2, bias_current=s.i_branch, is_bias_device=True))
    c.add_device(MOSFET(name="MP_LOAD_R", mos_type=MOSType.PMOS, w=s.w_load, l=s.l,
                        fingers=2, bias_current=s.i_branch, is_bias_device=True))
    c.add_device(MOSFET(name="MN_TAIL", mos_type=MOSType.NMOS, w=s.w_tail, l=s.l,
                        fingers=2, bias_current=2 * s.i_branch, is_bias_device=True))

    # Second stage: PMOS drivers, NMOS sinks, Miller caps.
    c.add_device(MOSFET(name="MP_OUT_L", mos_type=MOSType.PMOS, w=s.w_out_p, l=s.l,
                        fingers=4, bias_current=s.i_out))
    c.add_device(MOSFET(name="MP_OUT_R", mos_type=MOSType.PMOS, w=s.w_out_p, l=s.l,
                        fingers=4, bias_current=s.i_out))
    c.add_device(MOSFET(name="MN_OUT_L", mos_type=MOSType.NMOS, w=s.w_out_n, l=s.l,
                        fingers=2, bias_current=s.i_out, is_bias_device=True))
    c.add_device(MOSFET(name="MN_OUT_R", mos_type=MOSType.NMOS, w=s.w_out_n, l=s.l,
                        fingers=2, bias_current=s.i_out, is_bias_device=True))
    c.add_device(Capacitor(name="CC_L", value=s.c_miller))
    c.add_device(Capacitor(name="CC_R", value=s.c_miller))

    # Bias network and common-mode feedback.
    c.add_device(MOSFET(name="MN_BIAS", mos_type=MOSType.NMOS, w=s.w_tail / 2, l=s.l,
                        bias_current=s.i_branch, is_bias_device=True))
    c.add_device(MOSFET(name="MP_BIASP", mos_type=MOSType.PMOS, w=s.w_load / 2, l=s.l,
                        bias_current=s.i_branch, is_bias_device=True))
    c.add_device(MOSFET(name="MN_CMFB_L", mos_type=MOSType.NMOS, w=s.w_out_n / 2, l=s.l,
                        bias_current=s.i_branch / 2, is_bias_device=True))
    c.add_device(MOSFET(name="MN_CMFB_R", mos_type=MOSType.NMOS, w=s.w_out_n / 2, l=s.l,
                        bias_current=s.i_branch / 2, is_bias_device=True))
    c.add_device(MOSFET(name="MP_CMFB", mos_type=MOSType.PMOS, w=s.w_load / 2, l=s.l,
                        bias_current=s.i_branch, is_bias_device=True))

    # Dummies/guards bring the total to 25 as in Table 1.
    for i in range(9):
        c.add_device(Dummy(name=f"DUM{i}", width=0.8, height=0.8))

    # Nets -------------------------------------------------------------------
    vdd = c.new_net("VDD", NetType.POWER)
    for dev in ("MP_LOAD_L", "MP_LOAD_R", "MP_OUT_L", "MP_OUT_R", "MP_BIASP",
                "MP_CMFB"):
        vdd.connect(dev, "S")
    vss = c.new_net("VSS", NetType.GROUND)
    for dev in ("MN_TAIL", "MN_OUT_L", "MN_OUT_R", "MN_BIAS", "MN_CMFB_L",
                "MN_CMFB_R"):
        vss.connect(dev, "S")

    c.new_net("VINP", NetType.INPUT, weight=2.0).connect("MN_IN_L", "G")
    c.new_net("VINN", NetType.INPUT, weight=2.0).connect("MN_IN_R", "G")

    n1l = c.new_net("NET1L", NetType.SIGNAL, weight=2.0)
    n1l.connect("MN_IN_L", "D").connect("MP_LOAD_L", "D")
    n1l.connect("MP_OUT_L", "G").connect("CC_L", "PLUS")
    n1r = c.new_net("NET1R", NetType.SIGNAL, weight=2.0)
    n1r.connect("MN_IN_R", "D").connect("MP_LOAD_R", "D")
    n1r.connect("MP_OUT_R", "G").connect("CC_R", "PLUS")

    voutp = c.new_net("VOUTP", NetType.OUTPUT, weight=2.0)
    voutp.connect("MP_OUT_L", "D").connect("MN_OUT_L", "D")
    voutp.connect("CC_L", "MINUS").connect("MN_CMFB_L", "G")
    voutn = c.new_net("VOUTN", NetType.OUTPUT, weight=2.0)
    voutn.connect("MP_OUT_R", "D").connect("MN_OUT_R", "D")
    voutn.connect("CC_R", "MINUS").connect("MN_CMFB_R", "G")

    tail = c.new_net("TAIL", NetType.SIGNAL, self_symmetric=True)
    tail.connect("MN_IN_L", "S").connect("MN_IN_R", "S").connect("MN_TAIL", "D")

    vbn = c.new_net("VBN", NetType.BIAS)
    vbn.connect("MN_TAIL", "G").connect("MN_BIAS", "G").connect("MN_BIAS", "D")
    vbp = c.new_net("VBP", NetType.BIAS)
    vbp.connect("MP_LOAD_L", "G").connect("MP_LOAD_R", "G")
    vbp.connect("MP_BIASP", "G").connect("MP_BIASP", "D").connect("MP_CMFB", "G")

    vcmfb = c.new_net("VCMFB", NetType.BIAS)
    vcmfb.connect("MP_CMFB", "D").connect("MN_CMFB_L", "D")
    vcmfb.connect("MN_CMFB_R", "D").connect("MN_OUT_L", "G").connect("MN_OUT_R", "G")

    # Symmetry constraints -----------------------------------------------------
    c.add_symmetry_pair(SymmetryPair(
        "NET1L", "NET1R",
        device_pairs=(("MN_IN_L", "MN_IN_R"), ("MP_LOAD_L", "MP_LOAD_R")),
    ))
    c.add_symmetry_pair(SymmetryPair(
        "VOUTP", "VOUTN",
        device_pairs=(("MP_OUT_L", "MP_OUT_R"), ("MN_OUT_L", "MN_OUT_R"),
                      ("CC_L", "CC_R"), ("MN_CMFB_L", "MN_CMFB_R")),
    ))
    c.add_symmetry_pair(SymmetryPair("VINP", "VINN"))

    c.validate()
    return c


def _telescopic_ota(name: str, s: TelescopicSizing) -> Circuit:
    """Fully differential telescopic-cascode OTA with bias network and CMFB."""
    c = Circuit(name=name, topology="telescopic")

    # Signal path: NMOS input pair, NMOS cascodes, PMOS cascodes, PMOS sources.
    c.add_device(MOSFET(name="MN_IN_L", mos_type=MOSType.NMOS, w=s.w_in, l=s.l,
                        fingers=4, bias_current=s.i_branch))
    c.add_device(MOSFET(name="MN_IN_R", mos_type=MOSType.NMOS, w=s.w_in, l=s.l,
                        fingers=4, bias_current=s.i_branch))
    c.add_device(MOSFET(name="MN_CAS_L", mos_type=MOSType.NMOS, w=s.w_cas_n, l=s.l,
                        fingers=2, bias_current=s.i_branch))
    c.add_device(MOSFET(name="MN_CAS_R", mos_type=MOSType.NMOS, w=s.w_cas_n, l=s.l,
                        fingers=2, bias_current=s.i_branch))
    c.add_device(MOSFET(name="MP_CAS_L", mos_type=MOSType.PMOS, w=s.w_cas_p, l=s.l,
                        fingers=2, bias_current=s.i_branch))
    c.add_device(MOSFET(name="MP_CAS_R", mos_type=MOSType.PMOS, w=s.w_cas_p, l=s.l,
                        fingers=2, bias_current=s.i_branch))
    c.add_device(MOSFET(name="MP_SRC_L", mos_type=MOSType.PMOS, w=s.w_src, l=s.l,
                        fingers=4, bias_current=s.i_branch, is_bias_device=True))
    c.add_device(MOSFET(name="MP_SRC_R", mos_type=MOSType.PMOS, w=s.w_src, l=s.l,
                        fingers=4, bias_current=s.i_branch, is_bias_device=True))
    c.add_device(MOSFET(name="MN_TAIL", mos_type=MOSType.NMOS, w=s.w_tail, l=s.l,
                        fingers=2, bias_current=2 * s.i_branch, is_bias_device=True))

    # Bias network: a PMOS chain generating the three bias voltages, plus
    # NMOS mirrors.  All diode-connected / bias devices.
    for i in range(1, 13):
        c.add_device(MOSFET(name=f"MP_B{i}", mos_type=MOSType.PMOS, w=s.w_src / 2,
                            l=s.l, bias_current=s.i_branch / 4, is_bias_device=True))
    for i in range(1, 4):
        c.add_device(MOSFET(name=f"MN_B{i}", mos_type=MOSType.NMOS, w=s.w_tail / 2,
                            l=s.l, bias_current=s.i_branch / 4, is_bias_device=True))
    c.add_device(MOSFET(name="MN_CMFB_L", mos_type=MOSType.NMOS, w=s.w_tail / 2,
                        l=s.l, bias_current=s.i_branch / 2, is_bias_device=True))
    c.add_device(MOSFET(name="MN_CMFB_R", mos_type=MOSType.NMOS, w=s.w_tail / 2,
                        l=s.l, bias_current=s.i_branch / 2, is_bias_device=True))

    # Passives: load caps, CMFB caps, decoupling caps, CMFB/bias resistors.
    c.add_device(Capacitor(name="CL_L", value=s.c_load))
    c.add_device(Capacitor(name="CL_R", value=s.c_load))
    c.add_device(Capacitor(name="CCM_L", value=s.c_load / 4))
    c.add_device(Capacitor(name="CCM_R", value=s.c_load / 4))
    c.add_device(Capacitor(name="CDEC1", value=s.c_load))
    c.add_device(Capacitor(name="CDEC2", value=s.c_load))
    c.add_device(Resistor(name="RCM_L", value=s.r_cmfb))
    c.add_device(Resistor(name="RCM_R", value=s.r_cmfb))
    c.add_device(Resistor(name="RB1", value=s.r_cmfb / 2))
    c.add_device(Resistor(name="RB2", value=s.r_cmfb / 2))

    # Nets -------------------------------------------------------------------
    vdd = c.new_net("VDD", NetType.POWER)
    for dev in ("MP_SRC_L", "MP_SRC_R", "MP_B1", "MP_B3", "MP_B7", "MP_B9",
                "MP_B11", "MP_B12"):
        vdd.connect(dev, "S")
    vdd.connect("CDEC1", "PLUS").connect("CDEC2", "PLUS")
    vss = c.new_net("VSS", NetType.GROUND)
    for dev in ("MN_TAIL", "MN_B1", "MN_B2", "MN_B3", "MN_CMFB_L", "MN_CMFB_R"):
        vss.connect(dev, "S")
    vss.connect("RB2", "MINUS")

    c.new_net("VINP", NetType.INPUT, weight=2.0).connect("MN_IN_L", "G")
    c.new_net("VINN", NetType.INPUT, weight=2.0).connect("MN_IN_R", "G")

    nlo_l = c.new_net("NLO_L", NetType.SIGNAL, weight=2.0)
    nlo_l.connect("MN_IN_L", "D").connect("MN_CAS_L", "S")
    nlo_r = c.new_net("NLO_R", NetType.SIGNAL, weight=2.0)
    nlo_r.connect("MN_IN_R", "D").connect("MN_CAS_R", "S")

    voutp = c.new_net("VOUTP", NetType.OUTPUT, weight=2.0)
    voutp.connect("MN_CAS_L", "D").connect("MP_CAS_L", "D")
    voutp.connect("CL_L", "PLUS").connect("RCM_L", "PLUS")
    voutn = c.new_net("VOUTN", NetType.OUTPUT, weight=2.0)
    voutn.connect("MN_CAS_R", "D").connect("MP_CAS_R", "D")
    voutn.connect("CL_R", "PLUS").connect("RCM_R", "PLUS")

    nhi_l = c.new_net("NHI_L", NetType.SIGNAL, weight=1.5)
    nhi_l.connect("MP_CAS_L", "S").connect("MP_SRC_L", "D")
    nhi_r = c.new_net("NHI_R", NetType.SIGNAL, weight=1.5)
    nhi_r.connect("MP_CAS_R", "S").connect("MP_SRC_R", "D")

    tail = c.new_net("TAIL", NetType.SIGNAL, self_symmetric=True)
    tail.connect("MN_IN_L", "S").connect("MN_IN_R", "S").connect("MN_TAIL", "D")

    # Bias voltages.
    vbn_cas = c.new_net("VBN_CAS", NetType.BIAS)
    vbn_cas.connect("MN_CAS_L", "G").connect("MN_CAS_R", "G")
    vbn_cas.connect("MP_B2", "D").connect("MN_B2", "D").connect("MN_B2", "G")
    vbp_cas = c.new_net("VBP_CAS", NetType.BIAS)
    vbp_cas.connect("MP_CAS_L", "G").connect("MP_CAS_R", "G")
    vbp_cas.connect("MP_B3", "G").connect("MP_B3", "D").connect("MP_B4", "S")
    vbp_src = c.new_net("VBP_SRC", NetType.BIAS)
    vbp_src.connect("MP_SRC_L", "G").connect("MP_SRC_R", "G")
    vbp_src.connect("MP_B1", "G").connect("MP_B1", "D").connect("CDEC1", "MINUS")
    vbp_src.connect("MP_B11", "G").connect("MP_B12", "G")
    vbn_tail = c.new_net("VBN_TAIL", NetType.BIAS)
    vbn_tail.connect("MN_TAIL", "G").connect("MN_B1", "G").connect("MN_B1", "D")
    vbn_tail.connect("MP_B4", "D")

    # CMFB: outputs sensed through RCM into VCM_SENSE, compared by the CMFB
    # mirror, correction injected at VCMFB.
    vcm_sense = c.new_net("VCM_SENSE", NetType.SIGNAL, self_symmetric=True)
    vcm_sense.connect("RCM_L", "MINUS").connect("RCM_R", "MINUS")
    vcm_sense.connect("CCM_L", "PLUS").connect("CCM_R", "PLUS")
    vcm_sense.connect("MN_CMFB_L", "G")
    vcmfb = c.new_net("VCMFB", NetType.BIAS)
    vcmfb.connect("MN_CMFB_L", "D").connect("MN_CMFB_R", "D")
    vcmfb.connect("MP_B5", "D").connect("MP_B5", "G").connect("CDEC2", "MINUS")
    vref = c.new_net("VREF_CM", NetType.BIAS)
    vref.connect("MN_CMFB_R", "G").connect("RB1", "PLUS").connect("RB2", "PLUS")
    vref.connect("MP_B6", "D")

    # Remaining bias-chain wiring (keeps every device pin attached).
    b_mid = c.new_net("NBIAS_MID", NetType.BIAS)
    b_mid.connect("MP_B2", "S").connect("MP_B6", "G").connect("MP_B6", "S")
    b_mid.connect("MP_B7", "D").connect("RB1", "MINUS").connect("MP_B11", "D")
    b_hi = c.new_net("NBIAS_HI", NetType.BIAS)
    b_hi.connect("MP_B7", "G").connect("MP_B8", "D").connect("MP_B8", "G")
    b_hi.connect("MP_B9", "D").connect("MP_B10", "S")
    b_lo = c.new_net("NBIAS_LO", NetType.BIAS)
    b_lo.connect("MP_B8", "S").connect("MP_B9", "G").connect("MP_B10", "G")
    b_lo.connect("MP_B10", "D").connect("MN_B3", "D").connect("MN_B3", "G")
    b_lo.connect("MP_B12", "D")
    b_caps = c.new_net("NBIAS_CAP", NetType.BIAS)
    b_caps.connect("MP_B2", "G").connect("MP_B4", "G").connect("MP_B5", "S")
    b_caps.connect("CCM_L", "MINUS").connect("CCM_R", "MINUS")

    # Symmetry constraints -----------------------------------------------------
    c.add_symmetry_pair(SymmetryPair(
        "NLO_L", "NLO_R", device_pairs=(("MN_IN_L", "MN_IN_R"),)))
    c.add_symmetry_pair(SymmetryPair(
        "VOUTP", "VOUTN",
        device_pairs=(("MN_CAS_L", "MN_CAS_R"), ("MP_CAS_L", "MP_CAS_R"),
                      ("CL_L", "CL_R"), ("RCM_L", "RCM_R")),
    ))
    c.add_symmetry_pair(SymmetryPair(
        "NHI_L", "NHI_R", device_pairs=(("MP_SRC_L", "MP_SRC_R"),)))
    c.add_symmetry_pair(SymmetryPair("VINP", "VINN"))

    c.validate()
    return c


def build_ota1() -> Circuit:
    """OTA1: 2-stage Miller OTA, nominal sizing."""
    return _miller_ota("OTA1", MillerSizing())


def build_ota2() -> Circuit:
    """OTA2: same topology as OTA1, smaller devices / lower current."""
    return _miller_ota(
        "OTA2",
        MillerSizing(w_in=4.0, w_load=2.5, w_tail=3.0, w_out_p=8.0, w_out_n=4.0,
                     l=0.06, i_branch=10e-6, i_out=40e-6, c_miller=0.6e-12),
    )


def build_ota3() -> Circuit:
    """OTA3: telescopic cascode OTA, nominal sizing."""
    return _telescopic_ota("OTA3", TelescopicSizing())


def build_ota4() -> Circuit:
    """OTA4: same topology as OTA3, larger devices / higher current."""
    return _telescopic_ota(
        "OTA4",
        TelescopicSizing(w_in=24.0, w_cas_n=12.0, w_cas_p=14.0, w_src=16.0,
                         w_tail=14.0, l=0.05, i_branch=150e-6, c_load=0.4e-12,
                         r_cmfb=150e3),
    )


BENCHMARKS: "dict[str, Callable[[], Circuit]]" = {
    "OTA1": build_ota1,
    "OTA2": build_ota2,
    "OTA3": build_ota3,
    "OTA4": build_ota4,
}


def build_benchmark(name: str) -> Circuit:
    """Build a Table 1 benchmark circuit by name ("OTA1".."OTA4")."""
    try:
        return BENCHMARKS[name]()
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {sorted(BENCHMARKS)}"
        ) from None
