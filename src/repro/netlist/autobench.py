"""Automatic testbench synthesis for ingested circuits.

The repo's benchmarks ship with hand-labeled net types and a
:class:`~repro.simulation.testbench.TestbenchConfig`; an ingested
netlist has neither.  This module classifies nets by name and, where
names carry no signal, by structure:

* **ground** — conventional names (``VSS``/``GND``/``0``), else the net
  sinking the most NMOS sources;
* **power** — conventional names (``VDD``/``VCC``), else the net
  feeding the most PMOS sources;
* **inputs** — a symmetric, gate-only net pair (the differential pair's
  gates), name hints breaking ties;
* **outputs** — name hints first, else symmetric drain pairs, else the
  most-loaded single-ended drain net (benched against ground);
* **clock / bias** — name hints plus gate-only leftovers; both are
  stiffly driven via ``dc_drive_nets`` so the MNA system stays regular.

Bias currents, absent from a schematic netlist, are assigned with a
W/L-proportional current-density heuristic; diode-connected devices are
flagged ``is_bias_device`` so the small-signal model treats them as
loads rather than gain elements.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netlist.circuit import Circuit
from repro.netlist.devices import MOSFET, MOSType
from repro.netlist.nets import NetType
from repro.netlist.symmetry import SymmetryReport, apply_symmetry, infer_symmetry
from repro.reliability.errors import IngestError

_GROUND_NAMES = ("VSS", "GND", "AGND", "DGND", "VGND", "VSSA", "VSSD", "0")
_POWER_NAMES = ("VDD", "VCC", "AVDD", "DVDD", "VPWR", "VDDA", "VDDD")
_CLOCK_HINTS = ("CLK", "CK", "PHI", "CLOCK")
_INPUT_HINTS = ("VIN", "VIP", "INP", "INN", "INM", "IN+", "IN-", "IN_")
_OUTPUT_HINTS = ("OUT", "VON", "VOP", "VO_")

#: Saturation current density heuristic: amperes per unit W/L ratio.
_J_PER_WL = 5e-6
_I_MIN, _I_MAX = 1e-6, 5e-4


def _name_matches(net: str, hints: tuple[str, ...]) -> bool:
    upper = net.upper()
    return any(hint in upper for hint in hints)


def _source_histogram(circuit: Circuit, polarity: MOSType) -> dict[str, int]:
    counts: dict[str, int] = {}
    drains: set[str] = set()
    for net in circuit.nets.values():
        for device, pin in net.connections:
            mos = circuit.devices[device]
            if not isinstance(mos, MOSFET):
                continue
            if pin == "S" and mos.mos_type is polarity:
                counts[net.name] = counts.get(net.name, 0) + 1
            elif pin == "D":
                drains.add(net.name)
    # A supply rail is never a device drain; without this filter the
    # tail node of a differential pair (two sources, one drain) would
    # out-count the actual rail.
    filtered = {n: c for n, c in counts.items() if n not in drains}
    return filtered or counts


def _gate_only(circuit: Circuit, net_name: str) -> bool:
    net = circuit.net(net_name)
    return bool(net.connections) and all(
        pin == "G" for _, pin in net.connections)


def _has_drain(circuit: Circuit, net_name: str) -> bool:
    return any(pin == "D" for _, pin in circuit.net(net_name).connections)


@dataclass
class AutobenchReport:
    """What the synthesis decided, for manifests and debugging."""

    power: list[str] = field(default_factory=list)
    ground: list[str] = field(default_factory=list)
    inputs: tuple[str, str] | None = None
    outputs: tuple[str, str] | None = None
    single_ended: bool = False
    clocks: list[str] = field(default_factory=list)
    biases: list[str] = field(default_factory=list)
    dc_drive_nets: list[str] = field(default_factory=list)
    symmetry: SymmetryReport = field(default_factory=SymmetryReport)

    def config(self):
        """The synthesized :class:`TestbenchConfig`.

        Imported lazily: ``repro.simulation`` transitively imports
        ``repro.netlist``, so a module-level import here would be
        circular.
        """
        from repro.simulation.testbench import TestbenchConfig

        if self.inputs is None or self.outputs is None:
            raise IngestError(
                "autobench classification is incomplete "
                "(no input or output nets)", stage="ingest")
        return TestbenchConfig(
            input_nets=self.inputs,
            output_nets=self.outputs,
            dc_drive_nets=tuple(self.dc_drive_nets),
        )


def classify_supplies(circuit: Circuit) -> tuple[list[str], list[str]]:
    """(power, ground) net names, by convention then by structure."""
    power = sorted(n for n in circuit.nets
                   if _name_matches(n, _POWER_NAMES))
    ground = sorted(n for n in circuit.nets
                    if n == "0" or _name_matches(n, _GROUND_NAMES))
    if not power:
        hist = _source_histogram(circuit, MOSType.PMOS)
        if hist:
            best = max(sorted(hist), key=lambda n: hist[n])
            if best not in ground:
                power = [best]
    if not ground:
        hist = _source_histogram(circuit, MOSType.NMOS)
        hist = {n: c for n, c in hist.items() if n not in power}
        if hist:
            ground = [max(sorted(hist), key=lambda n: hist[n])]
    return power, ground


def _pick_inputs(circuit: Circuit, report: SymmetryReport,
                 taken: set[str]) -> tuple[str, str] | None:
    """The gate-only symmetric pair with the most gate terminals."""
    best: tuple[int, int, tuple[str, str]] | None = None
    for net_a, net_b in report.net_pairs:
        if net_a in taken or net_b in taken:
            continue
        if not (_gate_only(circuit, net_a) and _gate_only(circuit, net_b)):
            continue
        hinted = int(_name_matches(net_a, _INPUT_HINTS)
                     or _name_matches(net_b, _INPUT_HINTS))
        degree = circuit.net(net_a).degree
        key = (hinted, degree, (net_a, net_b))
        if best is None or key > best:
            best = key
    if best is None:
        return None
    net_a, net_b = best[2]
    # Positive input first when names tell them apart (INP before INN).
    if _name_matches(net_b, ("INP", "VIP", "IN+")) \
            and not _name_matches(net_a, ("INP", "VIP", "IN+")):
        return net_b, net_a
    return net_a, net_b


def _pick_outputs(circuit: Circuit, report: SymmetryReport, taken: set[str],
                  ground: list[str]) -> tuple[tuple[str, str] | None, bool]:
    """((pos, neg), single_ended); a single-ended output benches against
    ground so the differential probe reads the full swing."""
    for net_a, net_b in report.net_pairs:
        if net_a in taken or net_b in taken:
            continue
        if _has_drain(circuit, net_a) and _has_drain(circuit, net_b):
            if _name_matches(net_a, _OUTPUT_HINTS) \
                    or _name_matches(net_b, _OUTPUT_HINTS):
                return (net_a, net_b), False
    candidates = [n for n in sorted(circuit.nets)
                  if n not in taken and _has_drain(circuit, n)
                  and not _gate_only(circuit, n)]
    hinted = [n for n in candidates if _name_matches(n, _OUTPUT_HINTS)]
    pool = hinted or candidates
    if not pool or not ground:
        return None, False
    # Most capacitively/drain-loaded net wins; name hints already won.
    best = max(pool, key=lambda n: (circuit.net(n).degree, n))
    return (best, ground[0]), True


def assign_bias_currents(circuit: Circuit,
                         bias_nets: frozenset[str] = frozenset()) -> None:
    """W/L-proportional bias currents + bias-device flags, in place.

    A device is a bias element when it is diode-connected, when its gate
    hangs on an externally-driven bias/clock net (tail and cascode
    current sources), or when its gate shares a net with a
    diode-connected gate (current-mirror outputs).
    """
    diode_gate_nets: set[str] = set()
    for device in circuit.devices.values():
        if not isinstance(device, MOSFET):
            continue
        gate = circuit.net_of(device.name, "G")
        drain = circuit.net_of(device.name, "D")
        if gate is not None and drain is not None \
                and gate.name == drain.name:
            diode_gate_nets.add(gate.name)
    for device in circuit.devices.values():
        if not isinstance(device, MOSFET):
            continue
        current = _J_PER_WL * device.w * device.fingers / device.l
        device.bias_current = min(_I_MAX, max(_I_MIN, current))
        gate = circuit.net_of(device.name, "G")
        if gate is not None and (gate.name in diode_gate_nets
                                 or gate.name in bias_nets):
            device.is_bias_device = True


def synthesize_testbench(circuit: Circuit) -> AutobenchReport:
    """Classify nets, infer symmetry, and build a testbench config.

    Mutates the circuit: net types are set, inferred symmetry pairs and
    self-symmetric flags are applied, bias currents are assigned.
    Raises :class:`~repro.reliability.errors.IngestError` when no
    input pair or output net can be identified.
    """
    report = AutobenchReport()
    report.power, report.ground = classify_supplies(circuit)
    supplies = frozenset(report.power) | frozenset(report.ground)

    report.symmetry = infer_symmetry(circuit, exclude=supplies)
    apply_symmetry(circuit, report.symmetry)

    taken: set[str] = set(supplies)
    report.clocks = sorted(
        n for n in circuit.nets
        if n not in taken and _name_matches(n, _CLOCK_HINTS))
    taken.update(report.clocks)

    report.inputs = _pick_inputs(circuit, report.symmetry, taken)
    if report.inputs is None:
        # No symmetric gate pair — fall back to name-hinted gate nets.
        hinted = [n for n in sorted(circuit.nets)
                  if n not in taken and _gate_only(circuit, n)
                  and _name_matches(n, _INPUT_HINTS)]
        if len(hinted) >= 2:
            report.inputs = (hinted[0], hinted[1])
    if report.inputs is None:
        raise IngestError(
            "autobench could not identify a differential input pair "
            "(no symmetric gate-only nets, no VIN*/IN* names)",
            stage="ingest", details={"circuit": circuit.name})
    taken.update(report.inputs)

    report.outputs, report.single_ended = _pick_outputs(
        circuit, report.symmetry, taken, report.ground)
    if report.outputs is None:
        raise IngestError(
            "autobench could not identify an output net",
            stage="ingest", details={"circuit": circuit.name})
    taken.update(report.outputs)

    # Leftover gate-only nets are external biases: no device drives
    # them, so without a stiff drive the MNA matrix is singular.
    report.biases = sorted(
        n for n in circuit.nets
        if n not in taken and _gate_only(circuit, n))
    report.dc_drive_nets = sorted(set(report.clocks) | set(report.biases))

    assign_bias_currents(
        circuit, frozenset(report.biases) | frozenset(report.clocks))
    _apply_net_types(circuit, report)
    circuit.validate()
    return report


def _apply_net_types(circuit: Circuit, report: AutobenchReport) -> None:
    for name in report.power:
        circuit.net(name).net_type = NetType.POWER
    for name in report.ground:
        circuit.net(name).net_type = NetType.GROUND
    for name in report.clocks:
        circuit.net(name).net_type = NetType.CLOCK
    for name in report.biases:
        circuit.net(name).net_type = NetType.BIAS
    if report.inputs:
        for name in report.inputs:
            circuit.net(name).net_type = NetType.INPUT
    if report.outputs:
        outputs = (report.outputs[:1] if report.single_ended
                   else report.outputs)
        for name in outputs:
            circuit.net(name).net_type = NetType.OUTPUT
            circuit.net(name).weight = 2.0
