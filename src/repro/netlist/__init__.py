"""Circuit netlist representation and the paper's OTA benchmarks."""

from repro.netlist.circuit import Circuit, CircuitStats
from repro.netlist.devices import (
    Capacitor,
    Device,
    DeviceType,
    Dummy,
    MOSFET,
    MOSType,
    Pin,
    Resistor,
)
from repro.netlist.nets import Net, NetType, SymmetryPair
from repro.netlist.autobench import (
    AutobenchReport,
    assign_bias_currents,
    synthesize_testbench,
)
from repro.netlist.extensions import EXTENSION_BENCHMARKS, build_folded_cascode
from repro.netlist.otas import BENCHMARKS, build_benchmark, build_ota1, build_ota2, build_ota3, build_ota4
from repro.netlist.symmetry import (
    SymmetryReport,
    apply_symmetry,
    device_fingerprint,
    infer_symmetry,
)

__all__ = [
    "Circuit",
    "CircuitStats",
    "Device",
    "DeviceType",
    "Dummy",
    "MOSFET",
    "MOSType",
    "Pin",
    "Capacitor",
    "Resistor",
    "Net",
    "NetType",
    "SymmetryPair",
    "BENCHMARKS",
    "EXTENSION_BENCHMARKS",
    "build_folded_cascode",
    "build_benchmark",
    "build_ota1",
    "build_ota2",
    "build_ota3",
    "build_ota4",
    "AutobenchReport",
    "assign_bias_currents",
    "synthesize_testbench",
    "SymmetryReport",
    "apply_symmetry",
    "device_fingerprint",
    "infer_symmetry",
]
