"""Nets, net types, and symmetry constraints.

The paper's Problem 1 distinguishes plain nets, self-symmetry nets,
symmetry net pairs, and special net types.  All are represented here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class NetType(enum.Enum):
    """Special net types (the paper's ``N^T``)."""

    SIGNAL = "signal"
    INPUT = "input"
    OUTPUT = "output"
    BIAS = "bias"
    POWER = "power"
    GROUND = "ground"
    CLOCK = "clock"

    @property
    def is_supply(self) -> bool:
        return self in (NetType.POWER, NetType.GROUND)

    @property
    def is_critical(self) -> bool:
        """Nets whose routing strongly affects post-layout performance."""
        return self in (NetType.SIGNAL, NetType.INPUT, NetType.OUTPUT)


@dataclass
class Net:
    """A net connecting device pins.

    Attributes:
        name: unique net name within a circuit.
        net_type: special type of the net.
        connections: ordered list of (device_name, pin_name) terminals.
        self_symmetric: True when the net must be routed symmetrically
            about the circuit symmetry axis (the paper's ``N^SS``).
        weight: relative criticality weight, used by placement variants.
    """

    name: str
    net_type: NetType = NetType.SIGNAL
    connections: list[tuple[str, str]] = field(default_factory=list)
    self_symmetric: bool = False
    weight: float = 1.0

    def connect(self, device: str, pin: str) -> "Net":
        """Attach a device pin to this net (chainable)."""
        terminal = (device, pin)
        if terminal in self.connections:
            raise ValueError(f"{device}.{pin} already on net {self.name}")
        self.connections.append(terminal)
        return self

    @property
    def degree(self) -> int:
        return len(self.connections)

    def devices(self) -> list[str]:
        """Names of devices touched by this net, in connection order."""
        seen: dict[str, None] = {}
        for device, _ in self.connections:
            seen.setdefault(device)
        return list(seen)


@dataclass(frozen=True)
class SymmetryPair:
    """A pair of nets that must be routed mirror-symmetrically.

    The paper's ``N^SP``.  Device-level symmetry (matched pairs placed
    mirror-symmetrically) is carried alongside because the placer needs it.

    Attributes:
        net_a: left net name.
        net_b: right net name.
        device_pairs: matched device pairs ((left, right), ...) whose
            placement must mirror about the symmetry axis.
    """

    net_a: str
    net_b: str
    device_pairs: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if self.net_a == self.net_b:
            raise ValueError(
                f"symmetry pair must reference two distinct nets, got {self.net_a}"
            )

    def partner(self, net: str) -> str:
        if net == self.net_a:
            return self.net_b
        if net == self.net_b:
            return self.net_a
        raise KeyError(f"net {net} is not part of pair ({self.net_a}, {self.net_b})")

    def contains(self, net: str) -> bool:
        return net in (self.net_a, self.net_b)
