"""Device primitives: MOSFETs, capacitors, resistors, and dummies.

Each device owns a set of named :class:`Pin` objects.  Electrical values
(W/L, bias current, capacitance, resistance) feed the small-signal models in
:mod:`repro.simulation.smallsignal`; physical footprints feed the placer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class DeviceType(enum.Enum):
    """Coarse device category, used for Table 1 statistics."""

    PMOS = "pmos"
    NMOS = "nmos"
    CAPACITOR = "cap"
    RESISTOR = "res"
    DUMMY = "dummy"


class MOSType(enum.Enum):
    """MOSFET polarity."""

    NMOS = "nmos"
    PMOS = "pmos"


@dataclass(frozen=True)
class Pin:
    """A named terminal of a device.

    Attributes:
        device: owning device name.
        name: terminal name ("G", "D", "S", "B", "PLUS", "MINUS").
        offset: (dx, dy) of the pin center relative to the device origin,
            in micrometers.
        layer: metal layer index the pin shape sits on.
    """

    device: str
    name: str
    offset: tuple[float, float] = (0.0, 0.0)
    layer: int = 0

    @property
    def full_name(self) -> str:
        return f"{self.device}.{self.name}"


@dataclass
class Device:
    """Base class for all placeable devices.

    Attributes:
        name: unique device name within a circuit.
        width: footprint width in micrometers.
        height: footprint height in micrometers.
        pins: terminal pins, keyed by pin name.
    """

    name: str
    width: float = 1.0
    height: float = 1.0
    pins: dict[str, Pin] = field(default_factory=dict)

    @property
    def device_type(self) -> DeviceType:
        raise NotImplementedError

    @property
    def is_electrical(self) -> bool:
        """Whether the device participates in the small-signal circuit."""
        return True

    def pin(self, name: str) -> Pin:
        try:
            return self.pins[name]
        except KeyError:
            raise KeyError(f"device {self.name} has no pin {name!r}") from None

    def area(self) -> float:
        return self.width * self.height

    def _add_pins(self, names: list[str]) -> None:
        """Lay pins out evenly along the device top edge on M1."""
        n = len(names)
        for i, pin_name in enumerate(names):
            dx = self.width * (i + 1) / (n + 1)
            self.pins[pin_name] = Pin(
                device=self.name, name=pin_name, offset=(dx, self.height / 2.0)
            )


@dataclass
class MOSFET(Device):
    """A MOSFET with square-law sizing parameters.

    Attributes:
        mos_type: polarity.
        w: total gate width in micrometers.
        l: gate length in micrometers.
        fingers: number of gate fingers.
        bias_current: drain bias current magnitude in amperes; devices in
            signal paths are assumed biased in saturation.
        is_bias_device: True for diode-connected / bias-network devices,
            which are modeled as conductances rather than gain elements.
    """

    mos_type: MOSType = MOSType.NMOS
    w: float = 1.0
    l: float = 0.04
    fingers: int = 1
    bias_current: float = 10e-6
    is_bias_device: bool = False

    def __post_init__(self) -> None:
        if self.w <= 0 or self.l <= 0:
            raise ValueError(f"{self.name}: W and L must be positive")
        if self.fingers < 1:
            raise ValueError(f"{self.name}: fingers must be >= 1")
        if self.bias_current < 0:
            raise ValueError(f"{self.name}: bias current must be >= 0")
        if not self.pins:
            # Footprint grows with device area; pins stay >= 0.5um apart so
            # they land on distinct routing-grid cells.
            finger_w = self.w / self.fingers
            self.width = max(2.6, 0.4 * self.fingers + 1.2)
            self.height = max(1.0, 0.15 * finger_w + 0.8)
            self._add_pins(["D", "G", "S", "B"])

    @property
    def device_type(self) -> DeviceType:
        if self.mos_type is MOSType.PMOS:
            return DeviceType.PMOS
        return DeviceType.NMOS


@dataclass
class Capacitor(Device):
    """A MOM/MIM capacitor.

    Attributes:
        value: capacitance in farads.
    """

    value: float = 1e-12

    def __post_init__(self) -> None:
        if self.value <= 0:
            raise ValueError(f"{self.name}: capacitance must be positive")
        if not self.pins:
            # Stacked MOM density ~20 fF/um^2, square aspect.
            side = max(1.6, (self.value / 20e-15) ** 0.5)
            self.width = side
            self.height = side
            self._add_pins(["PLUS", "MINUS"])

    @property
    def device_type(self) -> DeviceType:
        return DeviceType.CAPACITOR


@dataclass
class Resistor(Device):
    """A poly resistor.

    Attributes:
        value: resistance in ohms.
    """

    value: float = 1e3

    def __post_init__(self) -> None:
        if self.value <= 0:
            raise ValueError(f"{self.name}: resistance must be positive")
        if not self.pins:
            # Poly sheet ~300 ohm/sq at 0.4um width, serpentine footprint.
            squares = self.value / 300.0
            self.width = max(0.8, min(4.0, 0.4 * squares**0.5 + 0.6))
            self.height = max(0.8, min(4.0, 0.4 * squares**0.5 + 0.6))
            self._add_pins(["PLUS", "MINUS"])

    @property
    def device_type(self) -> DeviceType:
        return DeviceType.RESISTOR


@dataclass
class Dummy(Device):
    """A dummy/guard device: occupies area, has no electrical role."""

    def __post_init__(self) -> None:
        if not self.pins:
            self.width = max(self.width, 0.6)
            self.height = max(self.height, 0.6)

    @property
    def device_type(self) -> DeviceType:
        return DeviceType.DUMMY

    @property
    def is_electrical(self) -> bool:
        return False
