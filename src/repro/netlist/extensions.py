"""Extension benchmark circuits beyond the paper's Table 1.

The paper restricts evaluation to the four OTAs; these extras exercise the
library on additional topologies (the folded cascode is the other OTA
workhorse in practice) and back the extension benches.
"""

from __future__ import annotations

from repro.netlist.circuit import Circuit
from repro.netlist.devices import Capacitor, MOSFET, MOSType, Resistor
from repro.netlist.nets import NetType, SymmetryPair


def build_folded_cascode() -> Circuit:
    """Fully differential folded-cascode OTA (extension benchmark "OTA_FC").

    NMOS input pair folded into PMOS cascode branches, NMOS cascode loads,
    resistive-sense CMFB, load caps.
    """
    c = Circuit(name="OTA_FC", topology="telescopic")

    # Input pair and tail.
    c.add_device(MOSFET(name="MN_IN_L", mos_type=MOSType.NMOS, w=12.0, l=0.06,
                        fingers=4, bias_current=60e-6))
    c.add_device(MOSFET(name="MN_IN_R", mos_type=MOSType.NMOS, w=12.0, l=0.06,
                        fingers=4, bias_current=60e-6))
    c.add_device(MOSFET(name="MN_TAIL", mos_type=MOSType.NMOS, w=8.0, l=0.06,
                        fingers=2, bias_current=120e-6, is_bias_device=True))

    # Folding PMOS current sources and cascodes.
    c.add_device(MOSFET(name="MP_SRC_L", mos_type=MOSType.PMOS, w=10.0, l=0.06,
                        fingers=2, bias_current=90e-6, is_bias_device=True))
    c.add_device(MOSFET(name="MP_SRC_R", mos_type=MOSType.PMOS, w=10.0, l=0.06,
                        fingers=2, bias_current=90e-6, is_bias_device=True))
    c.add_device(MOSFET(name="MP_CAS_L", mos_type=MOSType.PMOS, w=8.0, l=0.06,
                        fingers=2, bias_current=30e-6))
    c.add_device(MOSFET(name="MP_CAS_R", mos_type=MOSType.PMOS, w=8.0, l=0.06,
                        fingers=2, bias_current=30e-6))

    # NMOS cascode loads.
    c.add_device(MOSFET(name="MN_CAS_L", mos_type=MOSType.NMOS, w=6.0, l=0.06,
                        fingers=2, bias_current=30e-6))
    c.add_device(MOSFET(name="MN_CAS_R", mos_type=MOSType.NMOS, w=6.0, l=0.06,
                        fingers=2, bias_current=30e-6))
    c.add_device(MOSFET(name="MN_LOAD_L", mos_type=MOSType.NMOS, w=6.0, l=0.06,
                        fingers=2, bias_current=30e-6, is_bias_device=True))
    c.add_device(MOSFET(name="MN_LOAD_R", mos_type=MOSType.NMOS, w=6.0, l=0.06,
                        fingers=2, bias_current=30e-6, is_bias_device=True))

    # Bias diodes.
    c.add_device(MOSFET(name="MN_B1", mos_type=MOSType.NMOS, w=4.0, l=0.06,
                        bias_current=30e-6, is_bias_device=True))
    c.add_device(MOSFET(name="MP_B1", mos_type=MOSType.PMOS, w=5.0, l=0.06,
                        bias_current=30e-6, is_bias_device=True))

    # Passives: load caps and CMFB sense.
    c.add_device(Capacitor(name="CL_L", value=0.4e-12))
    c.add_device(Capacitor(name="CL_R", value=0.4e-12))
    c.add_device(Resistor(name="RCM_L", value=150e3))
    c.add_device(Resistor(name="RCM_R", value=150e3))

    # Nets -----------------------------------------------------------------
    vdd = c.new_net("VDD", NetType.POWER)
    for dev in ("MP_SRC_L", "MP_SRC_R", "MP_B1"):
        vdd.connect(dev, "S")
    vss = c.new_net("VSS", NetType.GROUND)
    for dev in ("MN_TAIL", "MN_LOAD_L", "MN_LOAD_R", "MN_B1"):
        vss.connect(dev, "S")
    vss.connect("CL_L", "MINUS").connect("CL_R", "MINUS")

    c.new_net("VINP", NetType.INPUT, weight=2.0).connect("MN_IN_L", "G")
    c.new_net("VINN", NetType.INPUT, weight=2.0).connect("MN_IN_R", "G")

    # Folding nodes: input drains meet PMOS source branches.
    fold_l = c.new_net("FOLD_L", NetType.SIGNAL, weight=2.0)
    fold_l.connect("MN_IN_L", "D").connect("MP_SRC_L", "D").connect("MP_CAS_L", "S")
    fold_r = c.new_net("FOLD_R", NetType.SIGNAL, weight=2.0)
    fold_r.connect("MN_IN_R", "D").connect("MP_SRC_R", "D").connect("MP_CAS_R", "S")

    voutp = c.new_net("VOUTP", NetType.OUTPUT, weight=2.0)
    voutp.connect("MP_CAS_L", "D").connect("MN_CAS_L", "D")
    voutp.connect("CL_L", "PLUS").connect("RCM_L", "PLUS")
    voutn = c.new_net("VOUTN", NetType.OUTPUT, weight=2.0)
    voutn.connect("MP_CAS_R", "D").connect("MN_CAS_R", "D")
    voutn.connect("CL_R", "PLUS").connect("RCM_R", "PLUS")

    nlo_l = c.new_net("NLO_L", NetType.SIGNAL)
    nlo_l.connect("MN_CAS_L", "S").connect("MN_LOAD_L", "D")
    nlo_r = c.new_net("NLO_R", NetType.SIGNAL)
    nlo_r.connect("MN_CAS_R", "S").connect("MN_LOAD_R", "D")

    tail = c.new_net("TAIL", NetType.SIGNAL, self_symmetric=True)
    tail.connect("MN_IN_L", "S").connect("MN_IN_R", "S").connect("MN_TAIL", "D")

    vbn_cas = c.new_net("VBN_CAS", NetType.BIAS)
    vbn_cas.connect("MN_CAS_L", "G").connect("MN_CAS_R", "G")
    vbn_cas.connect("MN_B1", "D").connect("MN_B1", "G")
    vbp = c.new_net("VBP", NetType.BIAS)
    vbp.connect("MP_SRC_L", "G").connect("MP_SRC_R", "G")
    vbp.connect("MP_B1", "G").connect("MP_B1", "D")
    vbp_cas = c.new_net("VBP_CAS", NetType.BIAS)
    vbp_cas.connect("MP_CAS_L", "G").connect("MP_CAS_R", "G")
    vbp_cas.connect("RCM_L", "MINUS").connect("RCM_R", "MINUS")
    vbn_tail = c.new_net("VBN_TAIL", NetType.BIAS)
    vbn_tail.connect("MN_TAIL", "G").connect("MN_LOAD_L", "G")
    vbn_tail.connect("MN_LOAD_R", "G")

    # Symmetry constraints ---------------------------------------------------
    c.add_symmetry_pair(SymmetryPair(
        "FOLD_L", "FOLD_R",
        device_pairs=(("MN_IN_L", "MN_IN_R"), ("MP_SRC_L", "MP_SRC_R")),
    ))
    c.add_symmetry_pair(SymmetryPair(
        "VOUTP", "VOUTN",
        device_pairs=(("MP_CAS_L", "MP_CAS_R"), ("MN_CAS_L", "MN_CAS_R"),
                      ("CL_L", "CL_R"), ("RCM_L", "RCM_R")),
    ))
    c.add_symmetry_pair(SymmetryPair(
        "NLO_L", "NLO_R", device_pairs=(("MN_LOAD_L", "MN_LOAD_R"),)))
    c.add_symmetry_pair(SymmetryPair("VINP", "VINN"))

    c.validate()
    return c


EXTENSION_BENCHMARKS = {"OTA_FC": build_folded_cascode}
