"""Structural symmetry inference for imported circuits.

The repo's own benchmarks carry hand-written symmetry constraints; a
netlist ingested from the wild carries none.  This module recovers them
from structure alone: two devices are a *matched pair* when they share an
electrical fingerprint (type, polarity, W, L, fingers — or component
value) and their pin connectivity is mirrored, i.e. mapping each pin's
net of one device onto the other's yields a globally consistent net
involution.  Shared nets (a common source node, a supply) map to
themselves; distinct nets become symmetric net pairs.

The search is greedy and deterministic: candidate device pairs are
scored (differential signatures first), then accepted only when their
implied net mapping is consistent with everything accepted so far and
each device is used at most once.  Cross-coupled pairs (comparator
latches: A.G on B's drain net and vice versa) map consistently and are
found without special-casing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from repro.netlist.circuit import Circuit
from repro.netlist.devices import Capacitor, MOSFET, Resistor
from repro.netlist.nets import SymmetryPair

#: Pins that participate in the mirror map, per device class.  Bulk is a
#: tap in this flow and MOSFET cards may leave it floating, so it is out.
_MIRROR_PINS = {
    MOSFET: ("D", "G", "S"),
    Capacitor: ("PLUS", "MINUS"),
    Resistor: ("PLUS", "MINUS"),
}


def device_fingerprint(device) -> tuple | None:
    """Hashable electrical identity; None for non-matchable devices."""
    if isinstance(device, MOSFET):
        return ("M", device.mos_type.value, round(device.w, 6),
                round(device.l, 6), device.fingers)
    if isinstance(device, Capacitor):
        return ("C", round(device.value, 21))
    if isinstance(device, Resistor):
        return ("R", round(device.value, 6))
    return None


@dataclass
class SymmetryReport:
    """Everything the inference recovered, ready to apply to a Circuit."""

    net_pairs: list[tuple[str, str]] = field(default_factory=list)
    self_symmetric: list[str] = field(default_factory=list)
    device_pairs: list[tuple[str, str]] = field(default_factory=list)
    #: net pair -> mirrored device pairs touching it
    pair_devices: dict[tuple[str, str], list[tuple[str, str]]] = field(
        default_factory=dict)


def _pin_nets(circuit: Circuit, device: str,
              pins: tuple[str, ...]) -> list[str | None]:
    out = []
    for pin in pins:
        net = circuit.net_of(device, pin)
        out.append(net.name if net is not None else None)
    return out


def _implied_mapping(circuit: Circuit, dev_a: str, dev_b: str,
                     pins: tuple[str, ...]) -> dict[str, str] | None:
    """Net mapping implied by mirroring dev_a onto dev_b, or None if the
    pair is inconsistent on its own (one net would need two partners)."""
    nets_a = _pin_nets(circuit, dev_a, pins)
    nets_b = _pin_nets(circuit, dev_b, pins)
    mapping: dict[str, str] = {}
    for net_a, net_b in zip(nets_a, nets_b):
        if (net_a is None) != (net_b is None):
            return None  # a floating pin can only mirror a floating pin
        if net_a is None:
            continue
        for src, dst in ((net_a, net_b), (net_b, net_a)):
            if mapping.setdefault(src, dst) != dst:
                return None
    return mapping


def _pair_score(circuit: Circuit, dev_a: str, dev_b: str,
                mapping: dict[str, str]) -> tuple:
    """Sort key: most-differential candidate pairs first.

    More distinct-net mirror edges means a stronger structural claim
    (input pairs, mirrored branches) and should win over degenerate
    pairs that only share supply nets.
    """
    mirrored = sum(1 for src, dst in mapping.items() if src != dst)
    shared = sum(1 for src, dst in mapping.items() if src == dst)
    return (-mirrored, -shared, dev_a, dev_b)


def infer_symmetry(circuit: Circuit,
                   exclude: frozenset[str] = frozenset()) -> SymmetryReport:
    """Recover symmetric net pairs and self-symmetric nets structurally.

    Args:
        circuit: the circuit to analyze (typically freshly ingested).
        exclude: net names never emitted as symmetric pairs or
            self-symmetric nets (supplies — they are stiffly driven, so
            mirroring them buys nothing and bloats the constraint set).
    """
    candidates = []
    by_fingerprint: dict[tuple, list[str]] = {}
    for name in sorted(circuit.devices):
        fp = device_fingerprint(circuit.devices[name])
        if fp is not None:
            by_fingerprint.setdefault(fp, []).append(name)

    for fp, names in sorted(by_fingerprint.items(), key=lambda kv: kv[1]):
        for dev_a, dev_b in combinations(names, 2):
            pins = _MIRROR_PINS[type(circuit.devices[dev_a])]
            mapping = _implied_mapping(circuit, dev_a, dev_b, pins)
            if mapping is None:
                continue
            if not any(src != dst for src, dst in mapping.items()):
                continue  # fully shared nets: parallel, not mirrored
            candidates.append((dev_a, dev_b, mapping))

    candidates.sort(key=lambda c: _pair_score(circuit, c[0], c[1], c[2]))

    partner: dict[str, str] = {}
    used: set[str] = set()
    accepted: list[tuple[str, str, dict[str, str]]] = []
    for dev_a, dev_b, mapping in candidates:
        if dev_a in used or dev_b in used:
            continue
        if any(partner.get(src, dst) != dst for src, dst in mapping.items()):
            continue
        partner.update(mapping)
        used.update((dev_a, dev_b))
        accepted.append((dev_a, dev_b, mapping))

    report = SymmetryReport()
    seen_pairs: set[tuple[str, str]] = set()
    for dev_a, dev_b, mapping in accepted:
        report.device_pairs.append((dev_a, dev_b))
        nets_a = {net for net in
                  _pin_nets(circuit, dev_a,
                            _MIRROR_PINS[type(circuit.devices[dev_a])])
                  if net is not None}
        for src, dst in sorted(mapping.items()):
            if src >= dst:
                continue  # each unordered net pair once
            key = (src, dst)
            if key[0] in exclude or key[1] in exclude:
                continue
            if key not in seen_pairs:
                if circuit.net(key[0]).degree != circuit.net(key[1]).degree:
                    continue  # unbalanced nets cannot be mirror-routed
                seen_pairs.add(key)
                report.net_pairs.append(key)
                report.pair_devices[key] = []
            if key in report.pair_devices:
                # Orient: left device sits on the pair's first net (a
                # cross-coupled device sits on both; keep sorted order).
                ordered = ((dev_a, dev_b) if key[0] in nets_a
                           else (dev_b, dev_a))
                if ordered not in report.pair_devices[key]:
                    report.pair_devices[key].append(ordered)

    # Shared (self-mapped) non-supply nets touched by ≥1 mirrored pair
    # must straddle the symmetry axis.
    self_sym: set[str] = set()
    for dev_a, dev_b, mapping in accepted:
        if not any(s != d for s, d in mapping.items()):
            continue
        for src, dst in mapping.items():
            if src == dst and src not in exclude:
                self_sym.add(src)
    report.self_symmetric = sorted(self_sym)
    return report


def apply_symmetry(circuit: Circuit, report: SymmetryReport) -> Circuit:
    """Write an inference report onto a circuit in place (chainable)."""
    existing = {(p.net_a, p.net_b) for p in circuit.symmetry_pairs}
    existing |= {(p.net_b, p.net_a) for p in circuit.symmetry_pairs}
    for net_a, net_b in report.net_pairs:
        if (net_a, net_b) in existing:
            continue
        circuit.add_symmetry_pair(SymmetryPair(
            net_a, net_b,
            tuple(report.pair_devices.get((net_a, net_b), ()))))
    for net in report.self_symmetric:
        circuit.net(net).self_symmetric = True
    circuit.validate()
    return circuit
