"""The Circuit container: devices + nets + symmetry constraints."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netlist.devices import Device, DeviceType
from repro.netlist.nets import Net, NetType, SymmetryPair


@dataclass(frozen=True)
class CircuitStats:
    """Device statistics matching the columns of the paper's Table 1."""

    num_pmos: int
    num_nmos: int
    num_cap: int
    num_res: int
    num_total: int

    def as_row(self) -> tuple[int, int, int, int, int]:
        return (self.num_pmos, self.num_nmos, self.num_cap, self.num_res, self.num_total)


@dataclass
class Circuit:
    """A complete analog circuit.

    Attributes:
        name: circuit name (e.g. "OTA1").
        topology: topology family tag ("miller" / "telescopic"), consumed
            by the simulation testbench.
        devices: devices keyed by name.
        nets: nets keyed by name.
        symmetry_pairs: symmetric net pairs (paper's ``N^SP``).
    """

    name: str
    topology: str = "generic"
    devices: dict[str, Device] = field(default_factory=dict)
    nets: dict[str, Net] = field(default_factory=dict)
    symmetry_pairs: list[SymmetryPair] = field(default_factory=list)

    # -- construction --------------------------------------------------------

    def add_device(self, device: Device) -> Device:
        if device.name in self.devices:
            raise ValueError(f"duplicate device name {device.name!r}")
        self.devices[device.name] = device
        return device

    def add_net(self, net: Net) -> Net:
        if net.name in self.nets:
            raise ValueError(f"duplicate net name {net.name!r}")
        self.nets[net.name] = net
        return net

    def new_net(self, name: str, net_type: NetType = NetType.SIGNAL, **kwargs) -> Net:
        return self.add_net(Net(name=name, net_type=net_type, **kwargs))

    def add_symmetry_pair(self, pair: SymmetryPair) -> SymmetryPair:
        for net_name in (pair.net_a, pair.net_b):
            if net_name not in self.nets:
                raise KeyError(f"symmetry pair references unknown net {net_name!r}")
        for left, right in pair.device_pairs:
            for dev in (left, right):
                if dev not in self.devices:
                    raise KeyError(f"symmetry pair references unknown device {dev!r}")
        self.symmetry_pairs.append(pair)
        return pair

    # -- queries --------------------------------------------------------------

    def device(self, name: str) -> Device:
        try:
            return self.devices[name]
        except KeyError:
            raise KeyError(f"circuit {self.name} has no device {name!r}") from None

    def net(self, name: str) -> Net:
        try:
            return self.nets[name]
        except KeyError:
            raise KeyError(f"circuit {self.name} has no net {name!r}") from None

    def net_of(self, device: str, pin: str) -> Net | None:
        """The net a device pin is attached to, or None if floating."""
        for net in self.nets.values():
            if (device, pin) in net.connections:
                return net
        return None

    def signal_nets(self) -> list[Net]:
        """Nets routed by the detailed router (non-supply)."""
        return [n for n in self.nets.values() if not n.net_type.is_supply]

    def routable_nets(self) -> list[Net]:
        """Nets with at least two terminals, supply included."""
        return [n for n in self.nets.values() if n.degree >= 2]

    def symmetric_net_names(self) -> set[str]:
        names: set[str] = set()
        for pair in self.symmetry_pairs:
            names.add(pair.net_a)
            names.add(pair.net_b)
        return names

    def symmetry_pair_of(self, net_name: str) -> SymmetryPair | None:
        for pair in self.symmetry_pairs:
            if pair.contains(net_name):
                return pair
        return None

    def stats(self) -> CircuitStats:
        """Device statistics in the format of the paper's Table 1."""
        counts = {t: 0 for t in DeviceType}
        for device in self.devices.values():
            counts[device.device_type] += 1
        return CircuitStats(
            num_pmos=counts[DeviceType.PMOS],
            num_nmos=counts[DeviceType.NMOS],
            num_cap=counts[DeviceType.CAPACITOR],
            num_res=counts[DeviceType.RESISTOR],
            num_total=len(self.devices),
        )

    # -- validation -----------------------------------------------------------

    def validate(self) -> None:
        """Raise ValueError when the netlist is inconsistent.

        Checks that every connection references an existing device pin, that
        no pin appears on two nets, and that symmetric net pairs have equal
        terminal counts (a mirror route needs a mirror pin set).
        """
        seen: dict[tuple[str, str], str] = {}
        for net in self.nets.values():
            for device_name, pin_name in net.connections:
                if device_name not in self.devices:
                    raise ValueError(
                        f"net {net.name}: unknown device {device_name!r}"
                    )
                device = self.devices[device_name]
                if pin_name not in device.pins:
                    raise ValueError(
                        f"net {net.name}: device {device_name} has no pin {pin_name!r}"
                    )
                key = (device_name, pin_name)
                if key in seen:
                    raise ValueError(
                        f"pin {device_name}.{pin_name} on both {seen[key]} and {net.name}"
                    )
                seen[key] = net.name
        for pair in self.symmetry_pairs:
            a, b = self.net(pair.net_a), self.net(pair.net_b)
            if a.degree != b.degree:
                raise ValueError(
                    f"symmetry pair ({a.name}, {b.name}) has unequal terminal "
                    f"counts {a.degree} != {b.degree}"
                )
