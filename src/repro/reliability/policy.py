"""Degradation policies: how the pipeline behaves when a unit of work fails.

The sample-level policy (:class:`DegradationPolicy`) governs database
construction: a failed guidance sample is retried with perturbed
guidance, then skipped and replaced by a freshly drawn one; the run
aborts with :class:`~repro.reliability.errors.DataQualityError` only when
fewer than ``min_valid_fraction`` of the requested samples survive.

:func:`validate_sample` is the quality gate between "the stages ran" and
"the record is trainable": non-finite metrics poison both training
targets and FoM ranking, so they are rejected like hard failures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np


@dataclass(frozen=True)
class DegradationPolicy:
    """Per-sample failure handling during database construction.

    Attributes:
        max_retries: extra attempts per failed sample, each with the
            guidance perturbed by ``retry_noise`` (a failed sample is
            deterministic in its inputs; retrying them verbatim would
            fail identically).
        min_valid_fraction: fraction of ``num_samples`` that must survive
            or database construction raises ``DataQualityError``.
        resample_budget: replacement guidance draws allowed to backfill
            skipped samples; ``None`` means one per requested sample.
        retry_noise: std of the Gaussian perturbation applied to guidance
            vectors on retry.
        retry_seed: base seed of the perturbation stream (mixed with the
            sample index and attempt number).
        require_routed: when true, samples with unrouted nets are
            rejected by the quality gate even if simulation succeeded.
    """

    max_retries: int = 1
    min_valid_fraction: float = 0.5
    resample_budget: int | None = None
    retry_noise: float = 0.2
    retry_seed: int = 0x5EED
    require_routed: bool = False

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if not 0.0 <= self.min_valid_fraction <= 1.0:
            raise ValueError(
                f"min_valid_fraction must be in [0, 1], "
                f"got {self.min_valid_fraction}"
            )
        if self.retry_noise < 0:
            raise ValueError(f"retry_noise must be >= 0, got {self.retry_noise}")
        if self.resample_budget is not None and self.resample_budget < 0:
            raise ValueError(
                f"resample_budget must be >= 0, got {self.resample_budget}"
            )

    def min_valid_samples(self, num_samples: int) -> int:
        """The floor on surviving samples for a requested count."""
        return min(num_samples, max(1, math.ceil(
            self.min_valid_fraction * num_samples)))

    def resamples_for(self, num_samples: int) -> int:
        """Replacement draws allowed for a requested count."""
        if self.resample_budget is not None:
            return self.resample_budget
        return num_samples


def validate_sample(sample: Any, require_routed: bool = False) -> str | None:
    """Quality-gate one :class:`~repro.core.dataset.GuidanceSample`.

    Returns ``None`` for a valid sample, else a short rejection reason.
    Typed loosely (attribute access only) so the reliability package does
    not import the core package it instruments.
    """
    metrics = sample.metrics.as_tuple()
    if not np.isfinite(metrics).all():
        bad = [name for name, value in
               zip(("offset_uv", "cmrr_db", "bandwidth_mhz", "gain_db",
                    "noise_uvrms"), metrics)
               if not np.isfinite(value)]
        return f"non-finite metrics: {', '.join(bad)}"
    if require_routed and not sample.result.success:
        failed = ", ".join(sample.result.failed_nets[:5])
        return f"unrouted nets: {failed}"
    return None


@dataclass
class FailureRecord:
    """One skipped unit of work, for the construction report."""

    sample_index: int
    stage: str
    error: str
    attempts: int


@dataclass
class ConstructionReport:
    """What happened while building a database under a degradation policy.

    Attributes:
        requested: samples asked for.
        valid: samples that survived all stages and the quality gate.
        reused: samples restored from a checkpoint instead of recomputed.
        retried: retry attempts spent across all samples.
        resampled: replacement guidance draws consumed.
        skipped: per-failure records for samples abandoned after retries.
    """

    requested: int = 0
    valid: int = 0
    reused: int = 0
    retried: int = 0
    resampled: int = 0
    skipped: list[FailureRecord] = field(default_factory=list)

    def failures_by_stage(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for record in self.skipped:
            out[record.stage] = out.get(record.stage, 0) + 1
        return out

    def emit_metrics(self, obs: Any) -> None:
        """Publish this report's totals as counters on an obs context.

        ``obs`` is duck-typed (a :class:`repro.obs.RunContext`) so the
        reliability package does not import the packages it instruments.
        ``retry_total{stage}`` is *not* emitted here — retries are
        counted at the failure site, where the failing stage is known.
        """
        obs.counter("samples_requested").inc(self.requested)
        obs.counter("samples_valid").inc(self.valid)
        obs.counter("samples_reused").inc(self.reused)
        obs.counter("samples_resampled").inc(self.resampled)
        obs.counter("samples_skipped").inc(len(self.skipped))
        for stage, count in sorted(self.failures_by_stage().items()):
            obs.counter("failure_total", stage=stage).inc(count)

    def summary(self) -> str:
        parts = [f"{self.valid}/{self.requested} valid"]
        if self.reused:
            parts.append(f"{self.reused} from checkpoint")
        if self.retried:
            parts.append(f"{self.retried} retries")
        if self.resampled:
            parts.append(f"{self.resampled} resampled")
        if self.skipped:
            by_stage = ", ".join(
                f"{stage}: {count}"
                for stage, count in sorted(self.failures_by_stage().items())
            )
            parts.append(f"skipped {len(self.skipped)} ({by_stage})")
        return "; ".join(parts)
