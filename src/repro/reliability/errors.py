"""Structured exception taxonomy for the AnalogFold pipeline.

Every failure inside the flow is (re-)raised as a :class:`ReproError`
subclass carrying *where* it happened (stage), *which* unit of work was
being processed (sample index, net, restart), and *how many* attempts had
been made.  Degradation policies dispatch on these types: a
:class:`RoutingError` on sample 17 is retried with a perturbed guidance,
a :class:`RelaxationError` on restart 3 drops that restart, and a
:class:`DataQualityError` at the end of database construction is terminal.

``ReproError`` subclasses :class:`RuntimeError` so call sites that predate
the taxonomy (``except RuntimeError``) keep working.
"""

from __future__ import annotations

from typing import Any


class ReproError(RuntimeError):
    """Base class for all pipeline failures.

    Args:
        message: human-readable description.
        stage: pipeline stage name (``"routing"``, ``"extraction"``,
            ``"simulation"``, ``"relaxation"``, ``"database"``, ...).
        sample_index: dataset sample being processed, when applicable.
        net: net name involved in the failure, when applicable.
        attempt: zero-based retry attempt the failure occurred on.
        details: free-form structured payload (counts, traces, ...).
    """

    def __init__(
        self,
        message: str,
        *,
        stage: str | None = None,
        sample_index: int | None = None,
        net: str | None = None,
        attempt: int | None = None,
        details: dict[str, Any] | None = None,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.stage = stage
        self.sample_index = sample_index
        self.net = net
        self.attempt = attempt
        self.details = dict(details or {})

    def context(self) -> dict[str, Any]:
        """The attached context as a plain dict (for logs / checkpoints)."""
        out: dict[str, Any] = {}
        for key in ("stage", "sample_index", "net", "attempt"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.details:
            out["details"] = self.details
        return out

    def with_context(
        self,
        *,
        stage: str | None = None,
        sample_index: int | None = None,
        net: str | None = None,
        attempt: int | None = None,
    ) -> "ReproError":
        """Fill in missing context fields in place; returns self.

        Existing values win: an error raised deep inside the router keeps
        its own net name when the dataset loop adds the sample index.
        """
        if self.stage is None:
            self.stage = stage
        if self.sample_index is None:
            self.sample_index = sample_index
        if self.net is None:
            self.net = net
        if self.attempt is None:
            self.attempt = attempt
        return self

    def __str__(self) -> str:
        parts = []
        for key in ("stage", "sample_index", "net", "attempt"):
            value = getattr(self, key)
            if value is not None:
                parts.append(f"{key}={value}")
        if not parts:
            return self.message
        return f"{self.message} [{', '.join(parts)}]"


class RoutingError(ReproError):
    """Detailed routing failed (unroutable net, exhausted grid, ...)."""


class ExtractionError(ReproError):
    """Parasitic extraction failed on a routed solution."""


class SimulationError(ReproError):
    """MNA assembly or solve failed (singular matrix, non-finite node
    voltages, malformed testbench)."""


class RelaxationError(ReproError):
    """Potential relaxation failed (non-finite potential/gradient, or no
    restart survived the degradation policy)."""


class DataQualityError(ReproError):
    """A constructed sample or database failed a quality gate (NaN/inf
    metrics, too few valid samples)."""


class CheckpointError(ReproError):
    """A checkpoint file is unreadable or belongs to a different run."""


class IngestError(ReproError):
    """External-netlist ingestion failed (unsupported construct, no
    viable top cell, symmetry/testbench synthesis could not produce a
    routable scenario)."""


class SpiceParseError(IngestError):
    """A SPICE netlist could not be parsed: malformed device card,
    unresolvable parameter or subcircuit reference, or an unsupported
    element.  Carries the source path and one-based line number so the
    offending card is addressable.

    Args:
        message: human-readable description.
        path: source file (``"<string>"`` for in-memory text).
        line_no: one-based line number of the offending card.
    """

    def __init__(
        self,
        message: str,
        *,
        path: str | None = None,
        line_no: int | None = None,
        **kwargs: Any,
    ) -> None:
        details = dict(kwargs.pop("details", None) or {})
        if path is not None:
            details.setdefault("path", path)
        if line_no is not None:
            details.setdefault("line_no", line_no)
        kwargs.setdefault("stage", "ingest")
        super().__init__(message, details=details, **kwargs)
        self.path = path
        self.line_no = line_no

    def __str__(self) -> str:
        base = super().__str__()
        if self.path is None and self.line_no is None:
            return base
        where = f"{self.path or '<string>'}:{self.line_no or '?'}"
        return f"{where}: {base}"


class ServeError(ReproError):
    """A scoring-service failure: rejected admission (queue full), a
    model-registry artifact that fails integrity checks, or a request
    that cannot be scored."""


class ServeTimeoutError(ServeError):
    """An acknowledged scoring request missed its deadline — while
    queued, in flight on a worker that stalled, or waiting out a
    supervisor restart.  Subclasses :class:`ServeError` so existing
    serve-failure handlers keep working; catch it specifically to
    distinguish "too slow" from "cannot be scored"."""


#: Stage name -> error type raised when a fault is injected at that stage.
STAGE_ERRORS: dict[str, type[ReproError]] = {
    "routing": RoutingError,
    "extraction": ExtractionError,
    "simulation": SimulationError,
    "relaxation": RelaxationError,
    "serve": ServeError,
    "ingest": IngestError,
}


def error_for_stage(stage: str) -> type[ReproError]:
    """The taxonomy type for a stage name (``ReproError`` for unknown)."""
    return STAGE_ERRORS.get(stage, ReproError)
