"""Generic retry with exponential backoff and per-attempt reseeding.

The pipeline's unit of work is usually a pure function of an RNG seed (a
guidance sample, an L-BFGS restart).  Retrying the identical inputs would
fail identically, so :func:`retry_call` threads the attempt number into a
``reseed`` callback that perturbs the inputs before each retry — e.g. a
failed guidance sample is retried with noise added to its guidance
vectors, then skipped.

Backoff sleeping defaults to zero: the failures here are deterministic
(solver divergence, unroutable nets), not transient I/O, and tests need
determinism.  A nonzero ``backoff_base`` enables real sleeping for
service deployments where the failure may be resource contention; those
deployments should also set ``jitter="full"`` so colliding retriers
(e.g. several supervisor-restarted workers hammering one registry)
decorrelate instead of thundering in lockstep.  Jitter draws come from
a ``default_rng([jitter_seed, attempt])`` stream — deterministic given
the policy, independent of call history — so the RNG discipline that
makes parallel runs bit-identical (RNG001) holds for backoff too.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass
from typing import Any, Callable, TypeVar

import numpy as np

from repro.reliability.errors import ReproError

T = TypeVar("T")

#: Valid values of :attr:`RetryPolicy.jitter`.
JITTER_MODES = ("none", "full")


@dataclass(frozen=True)
class RetryPolicy:
    """Retry knobs.

    Attributes:
        max_attempts: total tries (1 = no retry).
        retry_on: exception types that trigger a retry; anything else
            propagates immediately.
        backoff_base: seconds slept before the first retry (0 disables).
        backoff_factor: multiplier applied per subsequent retry.
        backoff_max: cap on a single sleep, seconds.
        jitter: ``"none"`` sleeps the exact exponential schedule;
            ``"full"`` draws uniformly from ``[0, schedule]`` (AWS-style
            full jitter), bounded by the same ``backoff_max`` cap.
        jitter_seed: seed of the jitter stream; draws depend only on
            ``(jitter_seed, attempt)``, so two policies with different
            seeds decorrelate while each stays deterministic.
    """

    max_attempts: int = 3
    retry_on: tuple[type[BaseException], ...] = (ReproError,)
    backoff_base: float = 0.0
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    jitter: str = "none"
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base < 0:
            raise ValueError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.jitter not in JITTER_MODES:
            raise ValueError(
                f"jitter must be one of {JITTER_MODES}, got {self.jitter!r}")

    def sleep_for(self, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (1-based retries).

        With ``jitter="full"`` the return value is a deterministic
        uniform draw from ``[0, min(base * factor**(attempt-1), max)]``
        seeded by ``(jitter_seed, attempt)``.
        """
        if self.backoff_base <= 0:
            return 0.0
        ceiling = min(self.backoff_base * self.backoff_factor ** (attempt - 1),
                      self.backoff_max)
        if self.jitter == "none":
            return ceiling
        draw = np.random.default_rng([self.jitter_seed, attempt]).random()
        return draw * ceiling


def retry_call(
    fn: Callable[..., T],
    *args: Any,
    policy: RetryPolicy | None = None,
    reseed: Callable[[int, dict[str, Any]], dict[str, Any]] | None = None,
    on_retry: Callable[[int, BaseException], None] | None = None,
    **kwargs: Any,
) -> T:
    """Call ``fn(*args, **kwargs)``, retrying per ``policy``.

    Args:
        fn: the callable to run.
        policy: retry policy (default :class:`RetryPolicy`).
        reseed: optional hook called before each retry with
            ``(attempt, kwargs)``; returns the perturbed kwargs for that
            attempt.  ``attempt`` is 1-based for retries (first call is
            attempt 0 and is never reseeded).
        on_retry: optional observer called with ``(attempt, error)``
            after each failed attempt that will be retried.

    Raises:
        The last error, with ``attempt`` context attached when it is a
        :class:`ReproError`.
    """
    pol = policy or RetryPolicy()
    attempt_kwargs = dict(kwargs)
    last_error: BaseException | None = None
    for attempt in range(pol.max_attempts):
        if attempt > 0:
            delay = pol.sleep_for(attempt)
            if delay > 0:
                time.sleep(delay)
            if reseed is not None:
                attempt_kwargs = reseed(attempt, dict(kwargs))
        try:
            return fn(*args, **attempt_kwargs)
        except pol.retry_on as exc:
            last_error = exc
            if isinstance(exc, ReproError):
                exc.with_context(attempt=attempt)
            if on_retry is not None and attempt + 1 < pol.max_attempts:
                on_retry(attempt, exc)
    assert last_error is not None
    raise last_error


def retry(
    policy: RetryPolicy | None = None,
    *,
    reseed: Callable[[int, dict[str, Any]], dict[str, Any]] | None = None,
    on_retry: Callable[[int, BaseException], None] | None = None,
) -> Callable[[Callable[..., T]], Callable[..., T]]:
    """Decorator form of :func:`retry_call`.

    Example::

        @retry(RetryPolicy(max_attempts=3),
               reseed=lambda attempt, kw: {**kw, "seed": kw["seed"] + attempt})
        def sample(seed: int = 0): ...
    """

    def wrap(fn: Callable[..., T]) -> Callable[..., T]:
        @functools.wraps(fn)
        def wrapped(*args: Any, **kwargs: Any) -> T:
            return retry_call(fn, *args, policy=policy, reseed=reseed,
                              on_retry=on_retry, **kwargs)

        return wrapped

    return wrap
