"""Reliability subsystem: error taxonomy, retries, degradation, checkpoints.

The AnalogFold flow is a long chain (sample guidance -> route -> extract
-> simulate, many times over, then train, relax, and route again).  This
package makes per-unit failures survivable instead of fatal:

* :mod:`~repro.reliability.errors` — the structured exception taxonomy
  every stage raises, with stage/sample context attached;
* :mod:`~repro.reliability.retry` — generic retry/backoff with
  per-attempt input reseeding;
* :mod:`~repro.reliability.policy` — degradation policies (skip, retry,
  resample, quality gates, minimum-survivor floors);
* :mod:`~repro.reliability.checkpoint` — incremental JSONL checkpointing
  of database construction with resume support;
* :mod:`~repro.reliability.faults` — deterministic fault injection used
  by the test suite to prove every degradation path.

See ``docs/RELIABILITY.md`` for the operational overview.
"""

from repro.reliability.errors import (
    CheckpointError,
    DataQualityError,
    ExtractionError,
    IngestError,
    RelaxationError,
    ReproError,
    RoutingError,
    ServeError,
    SpiceParseError,
    ServeTimeoutError,
    SimulationError,
    error_for_stage,
)
from repro.reliability.faults import (
    FaultInjector,
    FaultPlan,
    active_plans,
    fault_scope,
    inject_faults,
    maybe_stall,
)
from repro.reliability.retry import RetryPolicy, retry, retry_call
from repro.reliability.policy import (
    ConstructionReport,
    DegradationPolicy,
    FailureRecord,
    validate_sample,
)
from repro.reliability.checkpoint import (
    CheckpointWriter,
    dataset_fingerprint,
    load_checkpoint,
    validate_header,
)

__all__ = [
    "ReproError",
    "RoutingError",
    "ExtractionError",
    "SimulationError",
    "RelaxationError",
    "DataQualityError",
    "CheckpointError",
    "ServeError",
    "ServeTimeoutError",
    "IngestError",
    "SpiceParseError",
    "error_for_stage",
    "RetryPolicy",
    "retry",
    "retry_call",
    "DegradationPolicy",
    "ConstructionReport",
    "FailureRecord",
    "validate_sample",
    "CheckpointWriter",
    "dataset_fingerprint",
    "load_checkpoint",
    "validate_header",
    "FaultPlan",
    "FaultInjector",
    "inject_faults",
    "fault_scope",
    "active_plans",
    "maybe_stall",
]
