"""Deterministic fault injection for the pipeline's failure paths.

Production EDA failures — an unroutable net, a singular MNA matrix, a
NaN-diverged restart — are rare and input-dependent, so the degradation
paths that handle them would otherwise go untested.  This harness makes
the router, extractor, simulator, and relaxer fail *on demand*:

    plan = FaultPlan(stage="routing", fail_indices={1, 3})
    with inject_faults(plan):
        db = generate_dataset(...)   # samples 1 and 3 see RoutingError

Each instrumented entry point calls :func:`maybe_inject(stage)`; the
active injectors count calls per stage and raise the stage's taxonomy
error when the current call index is selected, either explicitly
(``fail_indices``) or probabilistically (``probability`` + ``seed``,
hashed per index so outcomes are independent of call order history).
:func:`poison(stage, value)` is the non-raising variant used by the
relaxer: selected calls get their value replaced with NaN, exercising
the non-finite-potential degradation path.  :func:`maybe_stall(stage)`
is the serve-scoped variant: a plan with ``stall_seconds > 0`` makes
selected calls report a stall duration instead of raising, which the
cluster worker sleeps out — simulating a wedged forward so deadline
enforcement and hung-worker recovery can be proven on a schedule.

Call-order counting is process-local, so ``fail_indices`` cannot
describe a *parallel* database construction, where each worker process
counts its own calls.  For that, plans may select by **unit**: dataset
construction wraps each sample attempt in :func:`fault_scope` with the
sample index, and ``fail_units`` selects calls by ``(unit, nth call to
the stage within that unit)`` — an addressing scheme that is identical
in serial and parallel runs.  A bare int in ``fail_units`` fails every
call of that unit (exhausting the sample's retries).

When no injector is active every hook is a constant-time no-op, so the
instrumentation costs nothing in production.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.reliability.errors import error_for_stage

#: Active injectors, innermost last.  Module-level so instrumented code
#: needs no plumbing; fault injection is test-only and single-threaded.
_ACTIVE: list["FaultInjector"] = []

#: Stack of active fault units (innermost last); a unit is the sample
#: index that dataset construction is currently attempting.
_UNITS: list[int] = []


@contextmanager
def fault_scope(unit: int) -> Iterator[None]:
    """Attribute the enclosed stage calls to ``unit`` (a sample index)."""
    # The unit stack is process-local bookkeeping for *deterministic*
    # fault attribution: selection keys on the unit id, not on call
    # order, so the balanced push/pop below cannot skew results across
    # worker counts.
    # repro-lint: disable-next-line=WRK001 -- balanced, unit-keyed
    _UNITS.append(unit)
    try:
        yield
    finally:
        # repro-lint: disable-next-line=WRK001 -- balanced, unit-keyed
        _UNITS.pop()


def current_unit() -> int | None:
    """The innermost active fault unit, or ``None`` outside any scope."""
    return _UNITS[-1] if _UNITS else None


def active_plans() -> tuple["FaultPlan", ...]:
    """All plans of currently active injectors (for shipping to workers)."""
    return tuple(plan for inj in _ACTIVE for plan in inj.plans)


@dataclass(frozen=True)
class FaultPlan:
    """Selects which calls to a stage fail.

    Attributes:
        stage: instrumented stage name (``"routing"``, ``"extraction"``,
            ``"simulation"``, ``"relaxation"``).
        fail_indices: explicit zero-based call indices that fail.
        fail_units: unit-scoped selection, robust to parallel execution:
            a bare int fails every call within that fault unit (sample
            index); an ``(unit, k)`` pair fails only the ``k``-th call to
            the stage within that unit (e.g. ``(3, 0)`` fails sample 3's
            first attempt, letting its retry succeed).
        probability: independent failure probability per call.
        seed: RNG seed for probabilistic selection; outcomes depend only
            on ``(seed, call index)``, never on call history.
        message: text of the injected error.
        stall_seconds: when > 0, selected calls *stall* for this long
            (via :func:`maybe_stall`) instead of raising — the
            slow-forward fault the serving chaos harness uses to
            exercise deadlines and hung-worker recovery.
    """

    stage: str
    fail_indices: frozenset[int] = frozenset()
    fail_units: frozenset = frozenset()
    probability: float = 0.0
    seed: int = 0
    message: str = "injected fault"
    stall_seconds: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.stall_seconds < 0:
            raise ValueError(
                f"stall_seconds must be >= 0, got {self.stall_seconds}"
            )
        object.__setattr__(self, "fail_indices", frozenset(self.fail_indices))
        object.__setattr__(self, "fail_units", frozenset(self.fail_units))

    def selects(self, index: int) -> bool:
        """Whether call number ``index`` to the stage fails."""
        if index in self.fail_indices:
            return True
        if self.probability > 0.0:
            draw = np.random.default_rng([self.seed, index]).random()
            return bool(draw < self.probability)
        return False

    def selects_unit(self, unit: int, unit_call: int) -> bool:
        """Whether the ``unit_call``-th stage call within ``unit`` fails."""
        return unit in self.fail_units or (unit, unit_call) in self.fail_units


class FaultInjector:
    """Context manager activating a set of :class:`FaultPlan`.

    Also an observation harness: ``calls`` records how many times each
    stage was entered while active, whether or not a fault fired — tests
    use it to assert e.g. that resuming from a checkpoint does not
    re-invoke the router.
    """

    def __init__(self, *plans: FaultPlan) -> None:
        self.plans = list(plans)
        self.calls: dict[str, int] = {}
        self.unit_calls: dict[tuple[str, int], int] = {}
        self.injected: list[tuple[str, int]] = []

    def __enter__(self) -> "FaultInjector":
        _ACTIVE.append(self)
        return self

    def __exit__(self, *exc_info: object) -> None:
        _ACTIVE.remove(self)

    # -- hooks called by instrumented code -------------------------------------

    def _observe(self, stage: str) -> int:
        index = self.calls.get(stage, 0)
        self.calls[stage] = index + 1
        return index

    def _observe_unit(self, stage: str) -> tuple[int | None, int]:
        unit = current_unit()
        if unit is None:
            return None, 0
        key = (stage, unit)
        unit_call = self.unit_calls.get(key, 0)
        self.unit_calls[key] = unit_call + 1
        return unit, unit_call

    def _selected(self, stage: str, index: int, unit: int | None,
                  unit_call: int,
                  stalls: bool = False) -> "FaultPlan | None":
        for plan in self.plans:
            if plan.stage != stage:
                continue
            if (plan.stall_seconds > 0) != stalls:
                continue
            if plan.selects(index):
                return plan
            if unit is not None and plan.selects_unit(unit, unit_call):
                return plan
        return None

    def check(self, stage: str) -> None:
        index = self._observe(stage)
        unit, unit_call = self._observe_unit(stage)
        plan = self._selected(stage, index, unit, unit_call)
        if plan is not None:
            self.injected.append((stage, index))
            raise error_for_stage(stage)(
                plan.message, stage=stage,
                details={"injected": True, "call_index": index,
                         "unit": unit, "unit_call": unit_call},
            )

    def poison(self, stage: str, value: float) -> float:
        index = self._observe(stage)
        unit, unit_call = self._observe_unit(stage)
        if self._selected(stage, index, unit, unit_call) is not None:
            self.injected.append((stage, index))
            return math.nan
        return value

    def stall(self, stage: str) -> float:
        """Seconds this call should stall (0.0 when not selected).

        Only plans with ``stall_seconds > 0`` participate; raising plans
        on the same stage keep flowing through :meth:`check`.
        """
        index = self._observe(stage)
        unit, unit_call = self._observe_unit(stage)
        plan = self._selected(stage, index, unit, unit_call, stalls=True)
        if plan is not None:
            self.injected.append((stage, index))
            return plan.stall_seconds
        return 0.0


#: Alias reading naturally at the ``with`` site.
inject_faults = FaultInjector


def maybe_inject(stage: str) -> None:
    """Raise the stage's taxonomy error if an active plan selects this call.

    No-op (beyond a truthiness check) when no injector is active.
    """
    if not _ACTIVE:
        return
    for injector in _ACTIVE:
        injector.check(stage)


def poison(stage: str, value: float) -> float:
    """Return ``value``, or NaN if an active plan selects this call."""
    if not _ACTIVE:
        return value
    for injector in _ACTIVE:
        value = injector.poison(stage, value)
    return value


def maybe_stall(stage: str) -> float:
    """Seconds the current call should stall; 0.0 when nothing selects it.

    The caller is responsible for actually sleeping — the hook only
    reports the injected duration, so tests can also assert on it
    without burning wall time.
    """
    if not _ACTIVE:
        return 0.0
    return sum(injector.stall(stage) for injector in _ACTIVE)
