"""Deterministic fault injection for the pipeline's failure paths.

Production EDA failures — an unroutable net, a singular MNA matrix, a
NaN-diverged restart — are rare and input-dependent, so the degradation
paths that handle them would otherwise go untested.  This harness makes
the router, extractor, simulator, and relaxer fail *on demand*:

    plan = FaultPlan(stage="routing", fail_indices={1, 3})
    with inject_faults(plan):
        db = generate_dataset(...)   # samples 1 and 3 see RoutingError

Each instrumented entry point calls :func:`maybe_inject(stage)`; the
active injectors count calls per stage and raise the stage's taxonomy
error when the current call index is selected, either explicitly
(``fail_indices``) or probabilistically (``probability`` + ``seed``,
hashed per index so outcomes are independent of call order history).
:func:`poison(stage, value)` is the non-raising variant used by the
relaxer: selected calls get their value replaced with NaN, exercising
the non-finite-potential degradation path.

When no injector is active every hook is a constant-time no-op, so the
instrumentation costs nothing in production.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.reliability.errors import error_for_stage

#: Active injectors, innermost last.  Module-level so instrumented code
#: needs no plumbing; fault injection is test-only and single-threaded.
_ACTIVE: list["FaultInjector"] = []


@dataclass(frozen=True)
class FaultPlan:
    """Selects which calls to a stage fail.

    Attributes:
        stage: instrumented stage name (``"routing"``, ``"extraction"``,
            ``"simulation"``, ``"relaxation"``).
        fail_indices: explicit zero-based call indices that fail.
        probability: independent failure probability per call.
        seed: RNG seed for probabilistic selection; outcomes depend only
            on ``(seed, call index)``, never on call history.
        message: text of the injected error.
    """

    stage: str
    fail_indices: frozenset[int] = frozenset()
    probability: float = 0.0
    seed: int = 0
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        object.__setattr__(self, "fail_indices", frozenset(self.fail_indices))

    def selects(self, index: int) -> bool:
        """Whether call number ``index`` to the stage fails."""
        if index in self.fail_indices:
            return True
        if self.probability > 0.0:
            draw = np.random.default_rng([self.seed, index]).random()
            return bool(draw < self.probability)
        return False


class FaultInjector:
    """Context manager activating a set of :class:`FaultPlan`.

    Also an observation harness: ``calls`` records how many times each
    stage was entered while active, whether or not a fault fired — tests
    use it to assert e.g. that resuming from a checkpoint does not
    re-invoke the router.
    """

    def __init__(self, *plans: FaultPlan) -> None:
        self.plans = list(plans)
        self.calls: dict[str, int] = {}
        self.injected: list[tuple[str, int]] = []

    def __enter__(self) -> "FaultInjector":
        _ACTIVE.append(self)
        return self

    def __exit__(self, *exc_info: object) -> None:
        _ACTIVE.remove(self)

    # -- hooks called by instrumented code -------------------------------------

    def _observe(self, stage: str) -> int:
        index = self.calls.get(stage, 0)
        self.calls[stage] = index + 1
        return index

    def check(self, stage: str) -> None:
        index = self._observe(stage)
        for plan in self.plans:
            if plan.stage == stage and plan.selects(index):
                self.injected.append((stage, index))
                raise error_for_stage(stage)(
                    plan.message, stage=stage,
                    details={"injected": True, "call_index": index},
                )

    def poison(self, stage: str, value: float) -> float:
        index = self._observe(stage)
        for plan in self.plans:
            if plan.stage == stage and plan.selects(index):
                self.injected.append((stage, index))
                return math.nan
        return value


#: Alias reading naturally at the ``with`` site.
inject_faults = FaultInjector


def maybe_inject(stage: str) -> None:
    """Raise the stage's taxonomy error if an active plan selects this call.

    No-op (beyond a truthiness check) when no injector is active.
    """
    if not _ACTIVE:
        return
    for injector in _ACTIVE:
        injector.check(stage)


def poison(stage: str, value: float) -> float:
    """Return ``value``, or NaN if an active plan selects this call."""
    if not _ACTIVE:
        return value
    for injector in _ACTIVE:
        value = injector.poison(stage, value)
    return value
