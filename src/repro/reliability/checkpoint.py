"""Incremental JSON-lines checkpointing of database construction.

Database construction is the pipeline's longest stage (route + extract +
simulate per sample); a crash near the end used to discard everything.
Samples are now appended to a checkpoint file *as they complete*:

* line 1 is a header record carrying a fingerprint of the run
  (circuit, dataset config, access-point count) so a checkpoint is never
  resumed against a different design or configuration;
* each subsequent line is one completed sample — guidance vectors,
  metrics, and routed paths — flushed immediately so a kill mid-run
  loses at most the sample in flight.

On resume, completed sample indices are restored without re-invoking the
router/extractor/simulator.  A torn final line (the in-flight sample at
kill time) is tolerated and dropped; corruption anywhere else, or a
fingerprint mismatch, raises :class:`CheckpointError` rather than
silently mixing runs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, TYPE_CHECKING

import numpy as np

from repro.reliability.errors import CheckpointError

if TYPE_CHECKING:  # avoid importing the packages this module instruments
    from repro.core.dataset import GuidanceSample

CHECKPOINT_VERSION = 1

#: Metric field order in checkpoint records (matches
#: ``repro.simulation.metrics.METRIC_NAMES``; duplicated here because the
#: instrumented packages import ``repro.reliability`` at module load, so
#: this module must not import them back at module level).
_METRIC_NAMES = ("offset_uv", "cmrr_db", "bandwidth_mhz", "gain_db",
                 "noise_uvrms")


def dataset_fingerprint(circuit, config, grid) -> dict[str, Any]:
    """Identity of a database-construction run, for resume validation."""
    return {
        "circuit": circuit.name,
        "devices": len(circuit.devices),
        "nets": len(circuit.nets),
        "seed": config.seed,
        "num_samples": config.num_samples,
        "c_max": config.c_max,
        "routing_pitch": config.routing_pitch,
        "include_uniform": config.include_uniform,
        "num_aps": sum(len(aps) for aps in grid.access_points.values()),
    }


# -- serialization -------------------------------------------------------------------


def _encode_sample(index: int, sample: "GuidanceSample") -> dict[str, Any]:
    return {
        "kind": "sample",
        "index": index,
        "guidance": {
            "c_max": sample.guidance.c_max,
            "vectors": {
                f"{device}.{pin}": [float(v) for v in vec]
                for (device, pin), vec in sorted(sample.guidance.vectors.items())
            },
        },
        "metrics": {
            name: float(getattr(sample.metrics, name))
            for name in _METRIC_NAMES
        },
        "result": {
            "iterations": sample.result.iterations,
            "failed_nets": list(sample.result.failed_nets),
            "routes": {
                name: {
                    "paths": [[list(cell) for cell in path]
                              for path in route.paths],
                    "symmetric_ok": route.symmetric_ok,
                }
                for name, route in sorted(sample.result.routes.items())
            },
        },
    }


def _decode_sample(record: dict[str, Any], grid) -> "GuidanceSample":
    from repro.core.dataset import GuidanceSample
    from repro.router.guidance import RoutingGuidance
    from repro.router.result import NetRoute, RoutingResult
    from repro.simulation.metrics import PerformanceMetrics

    vectors = {}
    for key, values in record["guidance"]["vectors"].items():
        device, _, pin = key.rpartition(".")
        if not device:
            raise CheckpointError(f"malformed guidance key {key!r}",
                                  stage="checkpoint")
        vectors[(device, pin)] = np.asarray(values, dtype=float)
    guidance = RoutingGuidance(vectors=vectors,
                               c_max=float(record["guidance"]["c_max"]))

    metrics = PerformanceMetrics(
        **{name: float(record["metrics"][name]) for name in _METRIC_NAMES})

    result = RoutingResult(iterations=int(record["result"]["iterations"]),
                           failed_nets=list(record["result"]["failed_nets"]))
    for name, payload in record["result"]["routes"].items():
        result.routes[name] = NetRoute(
            net=name,
            paths=[[tuple(cell) for cell in path]
                   for path in payload["paths"]],
            access_points=list(grid.access_points.get(name, [])),
            symmetric_ok=bool(payload["symmetric_ok"]),
        )
    return GuidanceSample(guidance=guidance, result=result, metrics=metrics)


# -- writing -------------------------------------------------------------------------


class CheckpointWriter:
    """Appends completed samples to a JSONL checkpoint, flushing per line.

    Args:
        path: checkpoint file.
        fingerprint: run identity written to (or validated against) the
            header line.
        resume: keep an existing compatible file and append to it; when
            false, any existing file is overwritten.
    """

    def __init__(self, path: str | Path, fingerprint: dict[str, Any],
                 resume: bool = False) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        fresh = not (resume and self.path.exists())
        if not fresh:
            validate_header(self.path, fingerprint)
        self._handle = self.path.open("a" if not fresh else "w",
                                      encoding="utf-8")
        if fresh:
            self._write({"kind": "header", "version": CHECKPOINT_VERSION,
                         "fingerprint": fingerprint})

    def _write(self, record: dict[str, Any]) -> None:
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def append_sample(self, index: int, sample: "GuidanceSample") -> None:
        self._write(_encode_sample(index, sample))

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "CheckpointWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# -- reading -------------------------------------------------------------------------


def _read_records(path: Path) -> list[dict[str, Any]]:
    """All complete records in a checkpoint; a torn final line is dropped."""
    lines = path.read_text(encoding="utf-8").splitlines()
    records: list[dict[str, Any]] = []
    for lineno, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if lineno == len(lines) - 1:
                break  # torn write from a mid-run kill; sample is redone
            raise CheckpointError(
                f"corrupt checkpoint line {lineno + 1} in {path}",
                stage="checkpoint", details={"line": lineno + 1},
            ) from exc
    return records


def validate_header(path: str | Path, fingerprint: dict[str, Any]) -> None:
    """Raise :class:`CheckpointError` unless ``path`` matches this run."""
    path = Path(path)
    records = _read_records(path)
    if not records or records[0].get("kind") != "header":
        raise CheckpointError(f"checkpoint {path} has no header",
                              stage="checkpoint")
    header = records[0]
    if header.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version {header.get('version')} != "
            f"{CHECKPOINT_VERSION}", stage="checkpoint")
    if header.get("fingerprint") != fingerprint:
        mismatched = sorted(
            key for key in set(header.get("fingerprint", {})) | set(fingerprint)
            if header.get("fingerprint", {}).get(key) != fingerprint.get(key)
        )
        raise CheckpointError(
            f"checkpoint {path} belongs to a different run "
            f"(mismatched: {', '.join(mismatched)})",
            stage="checkpoint", details={"mismatched": mismatched},
        )


def load_checkpoint(
    path: str | Path, fingerprint: dict[str, Any], grid
) -> dict[int, "GuidanceSample"]:
    """Completed samples by index from a checkpoint, validating identity.

    Returns an empty mapping when the file does not exist.
    """
    path = Path(path)
    if not path.exists():
        return {}
    validate_header(path, fingerprint)
    samples: dict[int, "GuidanceSample"] = {}
    for record in _read_records(path)[1:]:
        if record.get("kind") != "sample":
            continue
        samples[int(record["index"])] = _decode_sample(record, grid)
    return samples
