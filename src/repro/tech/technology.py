"""Technology bundle and the generic 40nm-class instance.

The paper evaluates under TSMC 40nm.  That PDK is proprietary, so
:func:`generic_40nm` builds an open 4-metal stack with constants of 40nm-class
magnitude (sheet R a fraction of an ohm/sq on thick metals to a few ohm/sq on
M1, wire capacitance ~0.2 fF/um).  See DESIGN.md section 2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tech.layers import Direction, Layer, LayerStack, Via
from repro.tech.rules import DesignRules, SpacingRule, WidthRule


@dataclass
class Technology:
    """A complete technology: layer stack plus design rules.

    Attributes:
        name: technology name.
        stack: metal layer stack with vias.
        rules: design rule deck, aligned layer-by-layer with the stack.
    """

    name: str
    stack: LayerStack
    rules: DesignRules

    def __post_init__(self) -> None:
        if self.stack.num_layers != self.rules.num_layers:
            raise ValueError(
                f"stack has {self.stack.num_layers} layers but rules cover "
                f"{self.rules.num_layers}"
            )

    @property
    def num_layers(self) -> int:
        return self.stack.num_layers

    @property
    def grid_pitch(self) -> float:
        return self.rules.grid_pitch

    def layer(self, index: int) -> Layer:
        return self.stack.layer(index)


def generic_40nm(num_layers: int = 4) -> Technology:
    """Build the generic 40nm-class technology used by all benchmarks.

    Args:
        num_layers: number of routing metals (2..6).  The paper's designs
            route on the lower metals; 4 is the default.

    Returns:
        A :class:`Technology` with alternating preferred directions
        (M1 horizontal, M2 vertical, ...), 0.2um routing pitch, and
        RC constants of 40nm-class magnitude.
    """
    if not 2 <= num_layers <= 6:
        raise ValueError(f"num_layers must be in [2, 6], got {num_layers}")

    # Lower metals are thin (high sheet R); upper metals are progressively
    # thicker.  Capacitance to substrate drops with height while coupling
    # stays comparable.
    sheet_r = [2.0, 1.2, 0.8, 0.4, 0.2, 0.1]
    area_c = [0.10e-15, 0.08e-15, 0.06e-15, 0.05e-15, 0.04e-15, 0.03e-15]
    fringe_c = [0.04e-15, 0.04e-15, 0.035e-15, 0.03e-15, 0.03e-15, 0.025e-15]
    coup_c = [0.08e-15, 0.08e-15, 0.07e-15, 0.06e-15, 0.05e-15, 0.05e-15]

    layers = []
    for i in range(num_layers):
        direction = Direction.HORIZONTAL if i % 2 == 0 else Direction.VERTICAL
        layers.append(
            Layer(
                name=f"M{i + 1}",
                index=i,
                direction=direction,
                sheet_resistance=sheet_r[i],
                area_cap=area_c[i],
                fringe_cap=fringe_c[i],
                coupling_cap=coup_c[i],
                min_width=0.06,
                min_spacing=0.06,
            )
        )
    vias = [
        Via(name=f"V{i + 1}{i + 2}", lower=i, resistance=4.0, cap=0.02e-15)
        for i in range(num_layers - 1)
    ]
    stack = LayerStack(layers=layers, vias=vias)

    rules = DesignRules(
        width_rules=[
            WidthRule(layer=i, min_width=0.06, default_width=0.08)
            for i in range(num_layers)
        ],
        spacing_rules=[
            SpacingRule(layer=i, min_spacing=0.06) for i in range(num_layers)
        ],
        grid_pitch=0.2,
        via_enclosure=0.02,
        max_via_stack=num_layers,
    )
    return Technology(name="generic-40nm", stack=stack, rules=rules)
