"""Metal layer stack description.

A :class:`LayerStack` is an ordered list of routing layers, bottom (M1) to
top.  Each layer carries its preferred routing direction and the electrical
constants needed by parasitic extraction: sheet resistance, area capacitance
to the substrate, and fringe/coupling capacitance per unit length.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Direction(enum.Enum):
    """Preferred routing direction of a metal layer."""

    HORIZONTAL = "horizontal"
    VERTICAL = "vertical"

    @property
    def axis(self) -> int:
        """Grid axis index: 0 for x (horizontal runs), 1 for y."""
        return 0 if self is Direction.HORIZONTAL else 1

    def orthogonal(self) -> "Direction":
        if self is Direction.HORIZONTAL:
            return Direction.VERTICAL
        return Direction.HORIZONTAL


class LayerPurpose(enum.Enum):
    """What a layer is used for."""

    ROUTING = "routing"
    PIN = "pin"
    DEVICE = "device"


@dataclass(frozen=True)
class Layer:
    """A single metal routing layer.

    Attributes:
        name: layer name, e.g. ``"M1"``.
        index: zero-based position in the stack (0 = lowest metal).
        direction: preferred routing direction.
        sheet_resistance: ohm per square.
        area_cap: farad per square micrometer to substrate.
        fringe_cap: farad per micrometer of edge.
        coupling_cap: farad per micrometer of parallel run at minimum
            spacing (scaled by spacing/actual-spacing during extraction).
        min_width: minimum wire width in micrometers.
        min_spacing: minimum spacing to a neighbouring wire in micrometers.
        purpose: what this layer is used for (routing by default).
    """

    name: str
    index: int
    direction: Direction
    sheet_resistance: float
    area_cap: float
    fringe_cap: float
    coupling_cap: float
    min_width: float
    min_spacing: float
    purpose: LayerPurpose = LayerPurpose.ROUTING

    def wire_resistance(self, length: float, width: float | None = None) -> float:
        """Resistance of a wire of ``length`` um and ``width`` um."""
        w = self.min_width if width is None else width
        if length < 0:
            raise ValueError(f"negative wire length {length}")
        if w <= 0:
            raise ValueError(f"non-positive wire width {w}")
        return self.sheet_resistance * length / w

    def wire_ground_cap(self, length: float, width: float | None = None) -> float:
        """Ground (area + fringe) capacitance of a wire segment."""
        w = self.min_width if width is None else width
        if length < 0:
            raise ValueError(f"negative wire length {length}")
        return self.area_cap * length * w + self.fringe_cap * 2.0 * length


@dataclass(frozen=True)
class Via:
    """A via cut connecting two adjacent metal layers.

    Attributes:
        name: via name, e.g. ``"V12"``.
        lower: index of the lower layer.
        resistance: ohm per single cut.
        cap: parasitic capacitance added per cut (farad).
    """

    name: str
    lower: int
    resistance: float
    cap: float

    @property
    def upper(self) -> int:
        return self.lower + 1


@dataclass
class LayerStack:
    """Ordered collection of routing layers and the vias between them."""

    layers: list[Layer] = field(default_factory=list)
    vias: list[Via] = field(default_factory=list)

    def __post_init__(self) -> None:
        for i, layer in enumerate(self.layers):
            if layer.index != i:
                raise ValueError(
                    f"layer {layer.name} has index {layer.index}, expected {i}"
                )
        if len(self.vias) != max(0, len(self.layers) - 1):
            raise ValueError(
                f"need exactly {len(self.layers) - 1} vias for "
                f"{len(self.layers)} layers, got {len(self.vias)}"
            )
        for i, via in enumerate(self.vias):
            if via.lower != i:
                raise ValueError(f"via {via.name} connects {via.lower}, expected {i}")

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def layer(self, index: int) -> Layer:
        return self.layers[index]

    def by_name(self, name: str) -> Layer:
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"no layer named {name!r}")

    def via_between(self, lower: int, upper: int) -> Via:
        """Via connecting two adjacent layer indices (order-insensitive)."""
        lo, hi = min(lower, upper), max(lower, upper)
        if hi - lo != 1:
            raise ValueError(f"layers {lower} and {upper} are not adjacent")
        return self.vias[lo]
