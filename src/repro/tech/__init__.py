"""Technology substrate: layer stack, design rules, RC constants.

This replaces the proprietary TSMC 40nm PDK with a generic 40nm-class
technology (see DESIGN.md, section 2).  The routing, extraction, and
simulation layers consume only this interface.
"""

from repro.tech.layers import Direction, Layer, LayerPurpose, LayerStack
from repro.tech.rules import DesignRules, SpacingRule, WidthRule
from repro.tech.technology import Technology, generic_40nm

__all__ = [
    "Direction",
    "Layer",
    "LayerPurpose",
    "LayerStack",
    "DesignRules",
    "SpacingRule",
    "WidthRule",
    "Technology",
    "generic_40nm",
]
