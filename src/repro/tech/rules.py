"""Design rules consumed by the router and the post-processing pass.

Rules are expressed on the routing grid: the router works on integer grid
coordinates, and the rules translate geometric constraints (width, spacing)
into grid-level constraints (forbidden adjacencies, blocked cells).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class WidthRule:
    """Minimum and default wire width on a layer (micrometers)."""

    layer: int
    min_width: float
    default_width: float

    def __post_init__(self) -> None:
        if self.min_width <= 0:
            raise ValueError(f"min_width must be positive, got {self.min_width}")
        if self.default_width < self.min_width:
            raise ValueError(
                f"default_width {self.default_width} < min_width {self.min_width}"
            )


@dataclass(frozen=True)
class SpacingRule:
    """Minimum spacing between wires of different nets on a layer."""

    layer: int
    min_spacing: float

    def __post_init__(self) -> None:
        if self.min_spacing <= 0:
            raise ValueError(f"min_spacing must be positive, got {self.min_spacing}")


@dataclass
class DesignRules:
    """Complete rule deck for one technology.

    Attributes:
        width_rules: per-layer width rules, indexed by layer.
        spacing_rules: per-layer spacing rules, indexed by layer.
        grid_pitch: routing grid pitch in micrometers; one grid cell per
            pitch.  The pitch is chosen so that min_width + min_spacing fits
            inside one pitch, making "one net per grid cell" DRC-clean by
            construction for same-layer parallel wires.
        via_enclosure: required metal enclosure of a via cut (micrometers).
        max_via_stack: maximum number of vias stacked at one (x, y).
    """

    width_rules: list[WidthRule] = field(default_factory=list)
    spacing_rules: list[SpacingRule] = field(default_factory=list)
    grid_pitch: float = 0.2
    via_enclosure: float = 0.02
    max_via_stack: int = 4

    def __post_init__(self) -> None:
        if self.grid_pitch <= 0:
            raise ValueError(f"grid_pitch must be positive, got {self.grid_pitch}")
        for i, rule in enumerate(self.width_rules):
            if rule.layer != i:
                raise ValueError(f"width rule {i} is for layer {rule.layer}")
        for i, rule in enumerate(self.spacing_rules):
            if rule.layer != i:
                raise ValueError(f"spacing rule {i} is for layer {rule.layer}")
        for w, s in zip(self.width_rules, self.spacing_rules):
            if w.default_width + s.min_spacing > self.grid_pitch:
                raise ValueError(
                    f"layer {w.layer}: default width {w.default_width} + spacing "
                    f"{s.min_spacing} exceeds grid pitch {self.grid_pitch}"
                )

    @property
    def num_layers(self) -> int:
        return len(self.width_rules)

    def default_width(self, layer: int) -> float:
        return self.width_rules[layer].default_width

    def min_spacing(self, layer: int) -> float:
        return self.spacing_rules[layer].min_spacing

    def to_grid(self, coord: float) -> int:
        """Snap a micrometer coordinate to the nearest grid index."""
        return int(round(coord / self.grid_pitch))

    def to_um(self, grid_index: int) -> float:
        """Convert a grid index back to micrometers."""
        return grid_index * self.grid_pitch
