"""Symmetry-aware simulated-annealing placer.

The placer arranges devices in a symmetric block: device pairs constrained
by symmetry mirror about a vertical axis, axis-centered devices sit on it,
and unconstrained devices (bias network, dummies) pack into rows below the
block.  Simulated annealing permutes the packing order to minimize weighted
half-perimeter wirelength; legality and exact symmetry hold by construction.

Net-weight variants A/B/C/D reproduce the paper's "placements of different
net weights": each variant emphasizes a different net class, which steers
the annealer to a different placement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.netlist.circuit import Circuit
from repro.netlist.nets import NetType
from repro.placement.layout import Orientation, PlacedDevice, Placement

#: Net-weight multipliers per variant, applied on top of per-net weights.
NET_WEIGHT_VARIANTS: dict[str, dict[NetType, float]] = {
    "A": {},
    "B": {NetType.INPUT: 4.0, NetType.OUTPUT: 4.0},
    "C": {NetType.SIGNAL: 4.0},
    "D": {NetType.BIAS: 4.0},
}


@dataclass(frozen=True)
class _PairGroup:
    """Two devices mirrored about the symmetry axis."""

    left: str
    right: str


@dataclass(frozen=True)
class _CenterGroup:
    """A device centered on the symmetry axis."""

    device: str


@dataclass
class _Genome:
    """SA state: packing orders for the symmetric block and the singles."""

    sym_order: list = field(default_factory=list)
    single_order: list[str] = field(default_factory=list)


class Placer:
    """Simulated-annealing analog placer.

    Args:
        circuit: circuit to place.
        variant: net-weight variant, one of ``NET_WEIGHT_VARIANTS``.
        seed: RNG seed; different seeds give different placements.
        iterations: annealing steps.
        row_side_width: max packed width on each side of the axis (um).
        spacing: gap between neighbouring devices (um).
    """

    def __init__(
        self,
        circuit: Circuit,
        variant: str = "A",
        seed: int = 0,
        iterations: int = 1500,
        row_side_width: float = 8.0,
        spacing: float = 0.6,
    ) -> None:
        if variant not in NET_WEIGHT_VARIANTS:
            raise ValueError(
                f"unknown variant {variant!r}; choose from {sorted(NET_WEIGHT_VARIANTS)}"
            )
        self.circuit = circuit
        self.variant = variant
        self.rng = np.random.default_rng(seed)
        self.iterations = iterations
        self.row_side_width = row_side_width
        self.spacing = spacing
        self.net_weights = self._net_weights()
        self._groups, self._singles = self._partition()

    # -- setup -----------------------------------------------------------------

    def _net_weights(self) -> dict[str, float]:
        multipliers = NET_WEIGHT_VARIANTS[self.variant]
        weights = {}
        for net in self.circuit.nets.values():
            weights[net.name] = net.weight * multipliers.get(net.net_type, 1.0)
        return weights

    def _partition(self) -> tuple[list, list[str]]:
        """Split devices into symmetric groups and free singles."""
        paired: set[str] = set()
        groups: list = []
        for pair in self.circuit.symmetry_pairs:
            for left, right in pair.device_pairs:
                if left in paired or right in paired:
                    continue
                groups.append(_PairGroup(left=left, right=right))
                paired.add(left)
                paired.add(right)
        # Devices only touched by self-symmetric nets go on the axis.
        centered: set[str] = set()
        for net in self.circuit.nets.values():
            if not net.self_symmetric:
                continue
            for device_name in net.devices():
                if device_name not in paired and device_name not in centered:
                    groups.append(_CenterGroup(device=device_name))
                    centered.add(device_name)
        singles = [
            name
            for name in sorted(self.circuit.devices)
            if name not in paired and name not in centered
        ]
        return groups, singles

    # -- genome -> placement ----------------------------------------------------

    def _realize(self, genome: _Genome) -> Placement:
        """Derive a legal symmetric placement from a genome."""
        placement = Placement(
            circuit=self.circuit, symmetry_axis=0.0, variant=self.variant
        )
        positions = placement.positions
        gap = self.spacing

        # Symmetric block above y=0, mirrored about x=0.
        y = 0.0
        row_height = 0.0
        offset = gap / 2.0
        has_center = False
        for group in genome.sym_order:
            if isinstance(group, _CenterGroup):
                device = self.circuit.device(group.device)
                row_occupied = has_center or offset > gap / 2.0
                if row_occupied and row_height > 0.0:
                    y += row_height + gap
                    row_height, offset, has_center = 0.0, gap / 2.0, False
                positions[group.device] = PlacedDevice(
                    name=group.device, x=-device.width / 2.0, y=y
                )
                offset = max(offset, device.width / 2.0 + gap)
                row_height = max(row_height, device.height)
                has_center = True
            else:
                left = self.circuit.device(group.left)
                right = self.circuit.device(group.right)
                side = max(left.width, right.width)
                if offset + side > self.row_side_width and offset > gap:
                    y += row_height + gap
                    row_height, offset, has_center = 0.0, gap / 2.0, False
                positions[group.left] = PlacedDevice(
                    name=group.left, x=-offset - left.width, y=y
                )
                positions[group.right] = PlacedDevice(
                    name=group.right, x=offset, y=y, orientation=Orientation.MY
                )
                offset += side + gap
                row_height = max(row_height, left.height, right.height)

        # Singles packed in rows below y=0 spanning both sides.
        y = 0.0
        row_height = 0.0
        x = -self.row_side_width
        for name in genome.single_order:
            device = self.circuit.device(name)
            if x + device.width > self.row_side_width and x > -self.row_side_width:
                y -= row_height + gap
                row_height, x = 0.0, -self.row_side_width
            positions[name] = PlacedDevice(name=name, x=x, y=y - device.height - gap)
            row_height = max(row_height, device.height + gap)
            x += device.width + gap

        # Translate everything to positive coordinates with a margin.
        min_x = min(p.x for p in positions.values())
        min_y = min(p.y for p in positions.values())
        margin = 2.0 * gap
        dx, dy = margin - min_x, margin - min_y
        for placed in positions.values():
            placed.x += dx
            placed.y += dy
        placement.symmetry_axis = dx
        return placement

    # -- annealing ---------------------------------------------------------------

    def _cost(self, genome: _Genome) -> float:
        return self._realize(genome).total_hpwl(self.net_weights)

    def _neighbour(self, genome: _Genome) -> _Genome:
        new = _Genome(sym_order=list(genome.sym_order),
                      single_order=list(genome.single_order))
        pools = []
        if len(new.sym_order) >= 2:
            pools.append(new.sym_order)
        if len(new.single_order) >= 2:
            pools.append(new.single_order)
        if not pools:
            return new
        pool = pools[self.rng.integers(len(pools))]
        i, j = self.rng.choice(len(pool), size=2, replace=False)
        if self.rng.random() < 0.5:
            pool[i], pool[j] = pool[j], pool[i]
        else:
            item = pool.pop(i)
            pool.insert(j, item)
        return new

    def place(self) -> Placement:
        """Run annealing and return the best legal placement found."""
        genome = _Genome(sym_order=list(self._groups),
                         single_order=list(self._singles))
        self.rng.shuffle(genome.sym_order)
        self.rng.shuffle(genome.single_order)
        best = genome
        best_cost = cost = self._cost(genome)
        temperature = max(best_cost * 0.05, 1e-9)
        cooling = 0.995
        for _ in range(self.iterations):
            candidate = self._neighbour(genome)
            candidate_cost = self._cost(candidate)
            delta = candidate_cost - cost
            if delta <= 0 or self.rng.random() < np.exp(-delta / temperature):
                genome, cost = candidate, candidate_cost
                if cost < best_cost:
                    best, best_cost = genome, cost
            temperature *= cooling
        placement = self._realize(best)
        if not placement.is_legal():
            raise RuntimeError(
                f"placer produced illegal placement for {self.circuit.name}: "
                f"{placement.overlapping_pairs()[:3]}"
            )
        return placement


def place_benchmark(
    circuit: Circuit, variant: str = "A", seed: int = 0, iterations: int = 1500
) -> Placement:
    """Place a benchmark circuit with one of the A/B/C/D net-weight variants.

    The seed is mixed with the variant so "OTA1-A" and "OTA1-B" explore
    different annealing trajectories even at the same base seed.
    """
    mixed_seed = seed * 8191 + ord(variant[0])
    placer = Placer(circuit, variant=variant, seed=mixed_seed, iterations=iterations)
    return placer.place()
