"""Placement geometry: placed devices, pin positions, wirelength.

All coordinates are micrometers; the origin is the lower-left corner of the
die.  A placement stores the symmetry axis so the router can mirror
symmetric net pairs about it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.netlist.circuit import Circuit
from repro.netlist.nets import Net


class Orientation(enum.Enum):
    """Device orientation: identity or mirrored about its vertical axis."""

    R0 = "R0"
    MY = "MY"


@dataclass
class PlacedDevice:
    """A device instance with a position and orientation.

    Attributes:
        name: device name.
        x: lower-left x in micrometers.
        y: lower-left y in micrometers.
        orientation: R0 or MY (the right half of a mirrored pair uses MY so
            its pins mirror the left device's pins).
    """

    name: str
    x: float
    y: float
    orientation: Orientation = Orientation.R0


@dataclass
class Placement:
    """A complete placement of a circuit.

    Attributes:
        circuit: the placed circuit.
        positions: placed devices keyed by device name.
        symmetry_axis: x coordinate of the vertical symmetry axis.
        variant: net-weight variant tag ("A".."D") that produced this
            placement; informational.
    """

    circuit: Circuit
    positions: dict[str, PlacedDevice] = field(default_factory=dict)
    symmetry_axis: float = 0.0
    variant: str = "A"

    # -- geometry --------------------------------------------------------------

    def device_box(self, name: str) -> tuple[float, float, float, float]:
        """Bounding box (x0, y0, x1, y1) of a placed device."""
        device = self.circuit.device(name)
        placed = self.positions[name]
        return (placed.x, placed.y, placed.x + device.width, placed.y + device.height)

    def pin_position(self, device_name: str, pin_name: str) -> tuple[float, float]:
        """Absolute (x, y) of a pin center, honoring orientation."""
        device = self.circuit.device(device_name)
        placed = self.positions[device_name]
        pin = device.pin(pin_name)
        dx, dy = pin.offset
        if placed.orientation is Orientation.MY:
            dx = device.width - dx
        return (placed.x + dx, placed.y + dy)

    def net_pin_positions(self, net: Net) -> list[tuple[float, float]]:
        """Pin positions of every terminal on a net."""
        return [self.pin_position(d, p) for d, p in net.connections]

    def bounding_box(self) -> tuple[float, float, float, float]:
        """Bounding box of all placed devices."""
        if not self.positions:
            raise ValueError("empty placement has no bounding box")
        boxes = [self.device_box(name) for name in self.positions]
        return (
            min(b[0] for b in boxes),
            min(b[1] for b in boxes),
            max(b[2] for b in boxes),
            max(b[3] for b in boxes),
        )

    def die_size(self) -> tuple[float, float]:
        x0, y0, x1, y1 = self.bounding_box()
        return (x1 - x0, y1 - y0)

    # -- metrics ---------------------------------------------------------------

    def hpwl(self, net: Net) -> float:
        """Half-perimeter wirelength of one net."""
        pins = self.net_pin_positions(net)
        if len(pins) < 2:
            return 0.0
        xs = [p[0] for p in pins]
        ys = [p[1] for p in pins]
        return (max(xs) - min(xs)) + (max(ys) - min(ys))

    def total_hpwl(self, weights: dict[str, float] | None = None) -> float:
        """Sum of per-net HPWL, optionally weighted by net name."""
        total = 0.0
        for net in self.circuit.nets.values():
            w = 1.0 if weights is None else weights.get(net.name, 1.0)
            total += w * self.hpwl(net)
        return total

    # -- validity --------------------------------------------------------------

    def overlapping_pairs(self) -> list[tuple[str, str]]:
        """Pairs of devices whose boxes overlap (a legal placement has none)."""
        names = sorted(self.positions)
        bad = []
        for i, a in enumerate(names):
            ax0, ay0, ax1, ay1 = self.device_box(a)
            for b in names[i + 1:]:
                bx0, by0, bx1, by1 = self.device_box(b)
                if ax0 < bx1 and bx0 < ax1 and ay0 < by1 and by0 < ay1:
                    bad.append((a, b))
        return bad

    def is_legal(self) -> bool:
        return not self.overlapping_pairs()

    def symmetry_error(self) -> float:
        """Total mirror-placement error over constrained device pairs.

        Zero for a placement that honors every device-pair symmetry
        constraint: the right device's box is the left box mirrored about
        the symmetry axis, at equal height.
        """
        error = 0.0
        for pair in self.circuit.symmetry_pairs:
            for left, right in pair.device_pairs:
                lx0, ly0, lx1, _ = self.device_box(left)
                rx0, ry0, rx1, _ = self.device_box(right)
                mirrored_x0 = 2.0 * self.symmetry_axis - lx1
                mirrored_x1 = 2.0 * self.symmetry_axis - lx0
                error += abs(rx0 - mirrored_x0) + abs(rx1 - mirrored_x1)
                error += abs(ry0 - ly0)
        return error
