"""Analog placement: layout geometry and a symmetry-aware SA placer."""

from repro.placement.layout import Orientation, PlacedDevice, Placement
from repro.placement.placer import NET_WEIGHT_VARIANTS, Placer, place_benchmark

__all__ = [
    "Orientation",
    "PlacedDevice",
    "Placement",
    "Placer",
    "NET_WEIGHT_VARIANTS",
    "place_benchmark",
]
