"""Runtime breakdown reporting (the paper's Figure 5)."""

from __future__ import annotations

from repro.core.pipeline import AnalogFoldResult

#: Stage keys -> Figure 5 labels, in the paper's display order.
STAGE_LABELS = {
    "model_training": "Model Training",
    "placement": "Placement",
    "guide_generation": "Inference: Routing Guide Generation",
    "guided_routing": "Inference: Guided Detailed Routing",
    "construct_database": "Construct Database",
}


def runtime_breakdown(
    result: AnalogFoldResult, placement_seconds: float = 0.0
) -> dict[str, float]:
    """Stage fractions, including placement time measured by the caller."""
    seconds = dict(result.stage_seconds)
    if placement_seconds > 0.0:
        seconds["placement"] = placement_seconds
    total = sum(seconds.values())
    if total <= 0:
        return {k: 0.0 for k in seconds}
    return {k: v / total for k, v in seconds.items()}


def runtime_breakdown_table(
    result: AnalogFoldResult, placement_seconds: float = 0.0
) -> str:
    """Render the Figure 5 pie as a text table."""
    fractions = runtime_breakdown(result, placement_seconds)
    seconds = dict(result.stage_seconds)
    if placement_seconds > 0.0:
        seconds["placement"] = placement_seconds
    lines = ["Figure 5: runtime breakdown"]
    for key, label in STAGE_LABELS.items():
        if key not in fractions:
            continue
        lines.append(
            f"  {fractions[key] * 100:6.2f}%  {label}  ({seconds[key]:.2f}s)"
        )
    lines.append(f"  total: {sum(seconds.values()):.2f}s")
    if result.stage_stats:
        lines.append("  hot paths:")
        for name, stats in result.stage_stats.items():
            lines.append(
                f"    {name}: {stats['seconds']:.2f}s "
                f"over {stats['calls']} calls"
            )
    return "\n".join(lines)
