"""Cross-topology generalization: train on OTAs, score unseen circuits.

The 3DGNN's inputs are topology-agnostic (fixed per-node feature widths,
graph passed at forward time) and its targets are the fixed normalized
metric scheme, so one model can be trained on several designs at once
(:meth:`~repro.model.training.Trainer.fit_multi`) and asked to rank
guidance candidates for a circuit it has never seen — exactly the
deployment story for ingested netlists, which arrive with no training
database of their own.

This module measures that transfer: train on benchmark OTAs, then for
each held-out design (typically ingested from ``tests/corpus/``)
compare predicted vs measured figure-of-merit over a fresh sample set —
normalized-metric MAE, Spearman rank correlation, and where the
predicted-best guidance lands in the measured ranking.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.dataset import Database, DatasetConfig, generate_dataset
from repro.io.ingest import ingest_file
from repro.model import Gnn3d, Gnn3dConfig, TrainConfig, Trainer
from repro.netlist import build_benchmark
from repro.nn import Tensor
from repro.placement import place_benchmark
from repro.simulation.metrics import FoMWeights
from repro.tech import generic_40nm


@dataclass(frozen=True)
class CrossTopoScale:
    """Problem-size preset for a cross-topology run."""

    name: str
    train_samples: int
    eval_samples: int
    epochs: int
    placement_iterations: int


CROSSTOPO_SCALES: dict[str, CrossTopoScale] = {
    "smoke": CrossTopoScale("smoke", train_samples=6, eval_samples=6,
                            epochs=4, placement_iterations=100),
    "fast": CrossTopoScale("fast", train_samples=24, eval_samples=16,
                           epochs=20, placement_iterations=300),
    "full": CrossTopoScale("full", train_samples=80, eval_samples=40,
                           epochs=60, placement_iterations=1000),
}


def spearman(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman rank correlation with average ranks for ties."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("spearman needs two equal-length 1-D arrays")
    ra, rb = _average_ranks(a), _average_ranks(b)
    ca, cb = ra - ra.mean(), rb - rb.mean()
    denom = float(np.sqrt((ca * ca).sum() * (cb * cb).sum()))
    # repro-lint: disable-next-line=NUM001 -- exact zero: constant ranking
    if denom == 0.0:
        return 0.0  # a constant ranking carries no order information
    return float((ca * cb).sum() / denom)


def _average_ranks(values: np.ndarray) -> np.ndarray:
    order = np.argsort(values, kind="stable")
    ranks = np.empty(len(values), dtype=float)
    ranks[order] = np.arange(len(values), dtype=float)
    # Replace tie-group ranks with the group average.
    for v in np.unique(values):
        mask = values == v
        if mask.sum() > 1:
            ranks[mask] = ranks[mask].mean()
    return ranks


@dataclass
class DesignScore:
    """Transfer quality of the shared model on one held-out design."""

    design: str
    n_samples: int
    mae: float
    rank_corr: float
    #: measured-FoM percentile of the predicted-best sample (0 = the
    #: prediction picked the truly best guidance; 100 = the worst).
    pred_best_percentile: float
    runtime_s: float


@dataclass
class CrossTopoResult:
    """A full cross-topology evaluation."""

    train_designs: list[str]
    scale: str
    seed: int
    rows: list[DesignScore] = field(default_factory=list)
    train_seconds: float = 0.0


def _benchmark_database(name: str, scale: CrossTopoScale, seed: int,
                        num_samples: int) -> Database:
    circuit = build_benchmark(name)
    placement = place_benchmark(circuit, seed=seed,
                                iterations=scale.placement_iterations)
    return generate_dataset(
        circuit, placement, generic_40nm(),
        config=DatasetConfig(num_samples=num_samples, seed=seed))


def _ingested_database(path: str | Path, scale: CrossTopoScale,
                       seed: int) -> tuple[str, Database]:
    result = ingest_file(path)
    circuit = result.circuit
    placement = place_benchmark(circuit, seed=seed,
                                iterations=scale.placement_iterations)
    database = generate_dataset(
        circuit, placement, generic_40nm(),
        config=DatasetConfig(num_samples=scale.eval_samples, seed=seed),
        testbench_config=result.config)
    return circuit.name, database


def score_design(model: Gnn3d, database: Database,
                 weights: FoMWeights | None = None) -> tuple[float, float, float]:
    """(MAE, Spearman, pred-best percentile) of model vs measurements."""
    weights = weights or FoMWeights()
    signed = weights.as_signed_vector()
    samples = database.train_samples()
    preds = np.stack([
        np.asarray(model(database.graph, Tensor(s.guidance)).data)
        for s in samples])
    targets = np.stack([s.targets for s in samples])
    mae = float(np.abs(preds - targets).mean())
    fom_pred = preds @ signed
    fom_true = targets @ signed
    corr = spearman(fom_pred, fom_true)
    best = int(np.argmin(fom_pred))
    # Rank of the predicted winner in the measured ordering (lower FoM
    # is better).
    measured_rank = float((fom_true < fom_true[best]).sum())
    percentile = 100.0 * measured_rank / max(1, len(samples) - 1)
    return mae, corr, percentile


def run_crosstopo(
    corpus: list[str | Path],
    train_designs: tuple[str, ...] = ("OTA1", "OTA2"),
    scale: CrossTopoScale | str = "smoke",
    seed: int = 0,
) -> CrossTopoResult:
    """Train once on benchmark OTAs, score every corpus netlist.

    Args:
        corpus: wild-dialect ``.sp`` files to ingest and evaluate on.
        train_designs: benchmark names the model is trained on.
        scale: problem-size preset or its name.
        seed: base RNG seed for placement, sampling, and training.
    """
    if isinstance(scale, str):
        scale = CROSSTOPO_SCALES[scale]

    train_dbs = [
        _benchmark_database(name, scale, seed + i, scale.train_samples)
        for i, name in enumerate(train_designs)
    ]

    first_graph = train_dbs[0].graph
    model = Gnn3d(first_graph.ap_features.shape[1],
                  first_graph.module_features.shape[1],
                  Gnn3dConfig(seed=seed))
    trainer = Trainer(model, first_graph,
                      TrainConfig(epochs=scale.epochs, seed=seed))
    start = time.perf_counter()
    trainer.fit_multi([(db.graph, db.train_samples()) for db in train_dbs])
    result = CrossTopoResult(train_designs=list(train_designs),
                             scale=scale.name, seed=seed,
                             train_seconds=time.perf_counter() - start)

    for offset, path in enumerate(corpus):
        t0 = time.perf_counter()
        name, database = _ingested_database(path, scale, seed + 100 + offset)
        mae, corr, percentile = score_design(model, database)
        result.rows.append(DesignScore(
            design=name, n_samples=len(database.samples), mae=mae,
            rank_corr=corr, pred_best_percentile=percentile,
            runtime_s=time.perf_counter() - t0))
    return result


def format_crosstopo_table(result: CrossTopoResult) -> str:
    """Markdown table of a cross-topology run (for EXPERIMENTS.md)."""
    lines = [
        f"Trained on {', '.join(result.train_designs)} "
        f"(scale `{result.scale}`, seed {result.seed}, "
        f"{result.train_seconds:.1f}s training); evaluated zero-shot on "
        "ingested netlists.",
        "",
        "| Held-out design | Samples | Norm. MAE | Spearman rho "
        "| Pred-best percentile | Eval time |",
        "|---|---:|---:|---:|---:|---:|",
    ]
    for row in result.rows:
        lines.append(
            f"| {row.design} | {row.n_samples} | {row.mae:.3f} "
            f"| {row.rank_corr:+.2f} | {row.pred_best_percentile:.0f}% "
            f"| {row.runtime_s:.1f}s |")
    return "\n".join(lines)
