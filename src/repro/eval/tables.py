"""Plain-text rendering of the paper's tables."""

from __future__ import annotations

from repro.eval.compare import CellResult, METHOD_ORDER, normalized_averages
from repro.netlist import build_benchmark

#: Metric display rows of Table 2: (attribute, label, better-direction).
_TABLE2_ROWS = (
    ("offset_uv", "Offset Voltage(uV)", "v"),
    ("cmrr_db", "CMRR(dB)", "^"),
    ("bandwidth_mhz", "BandWidth(MHz)", "^"),
    ("gain_db", "DC Gain(dB)", "^"),
    ("noise_uvrms", "Noise(uVrms)", "v"),
)

_METHOD_LABELS = {
    "magical": "[16]",
    "genius": "[11]",
    "analogfold": "Ours",
}


def format_table1(names: tuple[str, ...] = ("OTA1", "OTA2", "OTA3", "OTA4")) -> str:
    """Render Table 1 (benchmark circuit statistics)."""
    lines = [
        "Table 1: Benchmark circuits information.",
        f"{'Benchmark':<10} {'#PMOS':>6} {'#NMOS':>6} {'#Cap':>5} {'#Res':>5} {'#Total':>7}",
    ]
    for name in names:
        stats = build_benchmark(name).stats()
        lines.append(
            f"{name:<10} {stats.num_pmos:>6} {stats.num_nmos:>6} "
            f"{stats.num_cap:>5} {stats.num_res:>5} {stats.num_total:>7}"
        )
    return "\n".join(lines)


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1e4 or abs(value) < 1e-2:
        return f"{value:.3g}"
    return f"{value:.4g}"


def format_table2(cells: list[CellResult], include_average: bool = True) -> str:
    """Render Table 2 (method comparison per cell plus normalized averages)."""
    header = (
        f"{'Cell':<9} {'Metric':<20} {'Schematic':>10} "
        + " ".join(f"{_METHOD_LABELS[m]:>10}" for m in METHOD_ORDER)
    )
    lines = [
        "Table 2: Comparison between baseline methods and AnalogFold.",
        header,
        "-" * len(header),
    ]
    for cell in cells:
        for attr, label, arrow in _TABLE2_ROWS:
            schematic = _fmt(getattr(cell.schematic, attr))
            values = " ".join(
                f"{_fmt(getattr(cell.methods[m].metrics, attr)):>10}"
                for m in METHOD_ORDER
            )
            lines.append(
                f"{cell.cell_name:<9} {label + ' ' + arrow:<20} {schematic:>10} {values}"
            )
        runtimes = " ".join(
            f"{_fmt(cell.methods[m].runtime_s):>10}" for m in METHOD_ORDER
        )
        lines.append(f"{cell.cell_name:<9} {'Runtime(s) v':<20} {'-':>10} {runtimes}")
        lines.append("")

    if include_average and cells:
        averages = normalized_averages(cells)
        lines.append("Average (normalized to [16] = 1.000):")
        for attr, label, arrow in _TABLE2_ROWS:
            values = " ".join(
                f"{averages[m][attr]:>10.3f}" for m in METHOD_ORDER
            )
            lines.append(f"{'Average':<9} {label + ' ' + arrow:<20} {'-':>10} {values}")
        values = " ".join(
            f"{averages[m]['runtime_s']:>10.3f}" for m in METHOD_ORDER
        )
        lines.append(f"{'Average':<9} {'Runtime(s) v':<20} {'-':>10} {values}")
    return "\n".join(lines)
