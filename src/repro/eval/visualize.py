"""ASCII rendering of layouts and guidance (Figures 1 and 6)."""

from __future__ import annotations

import numpy as np

from repro.router.grid import BLOCKED, RoutingGrid
from repro.router.guidance import RoutingGuidance
from repro.router.result import RoutingResult

#: Characters assigned to nets, cycling when there are many.
_NET_CHARS = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"


def render_layout(
    result: RoutingResult, grid: RoutingGrid, layer: int = 0
) -> str:
    """Render one routing layer as ASCII art (Figure 6 style).

    ``#`` marks blocked device bodies, ``.`` free cells, letters routed
    nets, ``*`` access points.
    """
    if not 0 <= layer < grid.num_layers:
        raise ValueError(f"layer {layer} out of range [0, {grid.num_layers})")
    net_char = {
        name: _NET_CHARS[i % len(_NET_CHARS)]
        for i, name in enumerate(sorted(result.routes))
    }
    canvas = np.full((grid.nx, grid.ny), ".", dtype="<U1")
    canvas[grid.occupancy[:, :, layer] == BLOCKED] = "#"
    for name, route in result.routes.items():
        for ix, iy, l in route.cells():
            if l == layer:
                canvas[ix, iy] = net_char[name]
        for ap in route.access_points:
            if ap.cell[2] == layer:
                canvas[ap.cell[0], ap.cell[1]] = "*"
    rows = []
    for iy in range(grid.ny - 1, -1, -1):
        rows.append("".join(canvas[ix, iy] for ix in range(grid.nx)))
    legend = "  ".join(f"{c}={n}" for n, c in sorted(net_char.items(), key=lambda kv: kv[1]))
    return "\n".join([f"layer M{layer + 1}"] + rows + [f"legend: {legend}"])


def render_stack(result: RoutingResult, grid: RoutingGrid) -> str:
    """Render every layer, separated by blank lines."""
    return "\n\n".join(
        render_layout(result, grid, layer) for layer in range(grid.num_layers)
    )


def render_guidance(guidance: RoutingGuidance, grid: RoutingGrid) -> str:
    """List per-AP guidance vectors with the preferred direction marked
    (Figure 1(a)/(b) as text: each access point and its 1x3 cost vector)."""
    dir_names = ("x", "y", "z")
    lines = ["Non-uniform routing guidance (per pin access point):",
             f"{'net':<10} {'pin':<16} {'cell':<14} {'C[x]':>6} {'C[y]':>6} "
             f"{'C[z]':>6}  prefers"]
    for net_name in sorted(grid.access_points):
        for ap in grid.access_points[net_name]:
            vec = guidance.get(ap.key)
            pref = dir_names[int(np.argmin(vec))]
            cell = f"({ap.cell[0]},{ap.cell[1]},{ap.cell[2]})"
            lines.append(
                f"{net_name:<10} {ap.device + '.' + ap.pin:<16} {cell:<14} "
                f"{vec[0]:>6.2f} {vec[1]:>6.2f} {vec[2]:>6.2f}  {pref}"
            )
    return "\n".join(lines)


def guidance_histogram(guidance: RoutingGuidance, bins: int = 8) -> str:
    """Distribution of guidance components per direction (Figure 2(b) aid)."""
    if not guidance.vectors:
        return "empty guidance"
    stacked = np.stack(list(guidance.vectors.values()))
    lines = ["Guidance component distribution:"]
    for d, name in enumerate(("x", "y", "z")):
        hist, edges = np.histogram(stacked[:, d], bins=bins,
                                   range=(0.0, guidance.c_max))
        bar = " ".join(f"{int(c):3d}" for c in hist)
        lines.append(f"  {name}: [{edges[0]:.1f}..{edges[-1]:.1f}]  {bar}")
    return "\n".join(lines)
