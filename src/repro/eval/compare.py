"""Head-to-head comparison of Schematic / MagicalRoute / GeniusRoute /
AnalogFold on the benchmark cells (the paper's Table 2).

Problem sizes are controlled by an :class:`EvalScale`; the ``smoke`` scale
runs in seconds for CI, ``fast`` is the default benchmark scale, ``paper``
approaches the paper's sample budget (2000 samples per design).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.geniusroute import GeniusRoute, GeniusRouteConfig
from repro.baselines.magical import route_magical
from repro.core.dataset import DatasetConfig
from repro.core.pipeline import AnalogFold, AnalogFoldConfig
from repro.core.relaxation import RelaxationConfig
from repro.model import Gnn3dConfig, TrainConfig
from repro.netlist import build_benchmark
from repro.placement import place_benchmark
from repro.simulation.metrics import (
    HIGHER_IS_BETTER,
    METRIC_NAMES,
    PerformanceMetrics,
)
from repro.extraction import extract_schematic
from repro.simulation import simulate_performance
from repro.tech import generic_40nm


@dataclass(frozen=True)
class EvalScale:
    """Problem-size preset for a comparison run."""

    name: str
    dataset_samples: int
    train_epochs: int
    relax_restarts: int
    relax_pool: int
    placement_iterations: int

    def analogfold_config(self, seed: int = 0) -> AnalogFoldConfig:
        return AnalogFoldConfig(
            dataset=DatasetConfig(num_samples=self.dataset_samples, seed=seed),
            gnn=Gnn3dConfig(seed=seed),
            training=TrainConfig(epochs=self.train_epochs, seed=seed),
            relaxation=RelaxationConfig(
                n_restarts=self.relax_restarts,
                pool_size=self.relax_pool,
                n_derive=min(3, self.relax_pool),
                seed=seed,
            ),
        )


SCALES: dict[str, EvalScale] = {
    "smoke": EvalScale("smoke", dataset_samples=6, train_epochs=3,
                       relax_restarts=3, relax_pool=2, placement_iterations=100),
    "fast": EvalScale("fast", dataset_samples=40, train_epochs=20,
                      relax_restarts=10, relax_pool=5, placement_iterations=400),
    "full": EvalScale("full", dataset_samples=150, train_epochs=60,
                      relax_restarts=16, relax_pool=8, placement_iterations=1500),
    "paper": EvalScale("paper", dataset_samples=2000, train_epochs=200,
                       relax_restarts=32, relax_pool=12, placement_iterations=3000),
}


@dataclass
class MethodResult:
    """One method's outcome on one cell."""

    metrics: PerformanceMetrics
    runtime_s: float


@dataclass
class CellResult:
    """All methods' outcomes on one benchmark cell (e.g. OTA1-A)."""

    circuit: str
    variant: str
    schematic: PerformanceMetrics
    methods: dict[str, MethodResult] = field(default_factory=dict)

    @property
    def cell_name(self) -> str:
        return f"{self.circuit}-{self.variant}"


#: Method display order, matching the paper's column order.
METHOD_ORDER = ("magical", "genius", "analogfold")


def evaluate_cell(
    circuit_name: str,
    variant: str = "A",
    scale: EvalScale | str = "fast",
    seed: int = 0,
) -> CellResult:
    """Run all methods on one cell and collect metrics + runtimes.

    Runtime accounting follows the paper's Table 2: per-design routing
    runtime including guidance inference, excluding one-time model training
    (training is reported in the Figure 5 breakdown instead).
    """
    if isinstance(scale, str):
        scale = SCALES[scale]
    tech = generic_40nm()
    circuit = build_benchmark(circuit_name)
    placement = place_benchmark(
        circuit, variant=variant, seed=seed,
        iterations=scale.placement_iterations,
    )

    schematic = simulate_performance(circuit, extract_schematic(list(circuit.nets)))
    result = CellResult(circuit=circuit_name, variant=variant, schematic=schematic)

    # MagicalRoute: unguided constraint-aware routing.
    magical_sample, magical_time = route_magical(circuit, placement, tech)
    result.methods["magical"] = MethodResult(magical_sample.metrics, magical_time)

    # AnalogFold: full pipeline; per-design runtime = guide gen + routing.
    fold = AnalogFold(circuit, placement, tech,
                      config=scale.analogfold_config(seed=seed))
    fold_result = fold.run()
    fold_time = (fold_result.stage_seconds.get("guide_generation", 0.0)
                 + fold_result.stage_seconds.get("guided_routing", 0.0))
    result.methods["analogfold"] = MethodResult(fold_result.metrics, fold_time)

    # GeniusRoute: VAE guidance trained on the same database.
    genius = GeniusRoute(circuit, placement, tech,
                         config=GeniusRouteConfig(seed=seed))
    genius.fit(fold.database)
    genius_sample, genius_time = genius.run(fold.database)
    result.methods["genius"] = MethodResult(genius_sample.metrics, genius_time)

    return result


def normalized_averages(cells: list[CellResult]) -> dict[str, dict[str, float]]:
    """Per-method geometric-mean metric ratios vs MagicalRoute (= 1.000).

    Reproduces the paper's "Average" block at the bottom of Table 2.
    """
    import math

    if not cells:
        raise ValueError("no cells to average")
    averages: dict[str, dict[str, float]] = {}
    for method in METHOD_ORDER:
        ratios: dict[str, float] = {}
        for metric in METRIC_NAMES:
            logs = []
            for cell in cells:
                ours = getattr(cell.methods[method].metrics, metric)
                base = getattr(cell.methods["magical"].metrics, metric)
                ours = max(abs(ours), 1e-9)
                base = max(abs(base), 1e-9)
                logs.append(math.log(ours / base))
            ratios[metric] = math.exp(sum(logs) / len(logs))
        runtime_logs = []
        for cell in cells:
            ours = max(cell.methods[method].runtime_s, 1e-9)
            base = max(cell.methods["magical"].runtime_s, 1e-9)
            runtime_logs.append(math.log(ours / base))
        ratios["runtime_s"] = math.exp(sum(runtime_logs) / len(runtime_logs))
        averages[method] = ratios
    return averages


def wins_against(
    cells: list[CellResult], method: str, baseline: str
) -> dict[str, int]:
    """Count of cells where ``method`` beats ``baseline`` per metric."""
    wins = {metric: 0 for metric in METRIC_NAMES}
    for cell in cells:
        ours = cell.methods[method].metrics
        theirs = cell.methods[baseline].metrics
        for metric in METRIC_NAMES:
            a, b = getattr(ours, metric), getattr(theirs, metric)
            better = a > b if HIGHER_IS_BETTER[metric] else a < b
            if better:
                wins[metric] += 1
    return wins
