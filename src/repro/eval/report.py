"""Collate benchmark artifacts into a single markdown reproduction report."""

from __future__ import annotations

from pathlib import Path

#: Artifact file -> report section title, in paper order.
ARTIFACT_SECTIONS = [
    ("table1.txt", "Table 1 — benchmark circuits"),
    ("table2.txt", "Table 2 — method comparison"),
    ("fig1_guidance.txt", "Figure 1 — non-uniform guidance"),
    ("fig2_relaxation.txt", "Figure 2(b) — potential relaxation"),
    ("fig5_runtime.txt", "Figure 5 — runtime breakdown"),
    ("fig6_layouts.txt", "Figure 6 — routing solutions"),
    ("ablation_rbf.txt", "Ablation — RBF expansion"),
    ("ablation_distance.txt", "Ablation — cost-aware distance"),
    ("ablation_pool.txt", "Ablation — pool-assisted relaxation"),
    ("ablation_hetero.txt", "Ablation — heterogeneous graph"),
]


def collate_report(results_dir: str | Path) -> str:
    """Build a markdown report from whatever artifacts exist.

    Missing artifacts are listed so a partial bench run is visible instead
    of silently shrinking the report.
    """
    results = Path(results_dir)
    lines = ["# AnalogFold reproduction report", "",
             f"Artifacts from `{results}`.", ""]
    missing = []
    for filename, title in ARTIFACT_SECTIONS:
        path = results / filename
        if not path.exists():
            missing.append(filename)
            continue
        lines.append(f"## {title}")
        lines.append("")
        lines.append("```text")
        lines.append(path.read_text().rstrip())
        lines.append("```")
        lines.append("")
    if missing:
        lines.append("## Missing artifacts")
        lines.append("")
        lines.append("Re-run `pytest benchmarks/ --benchmark-only` to produce:")
        for filename in missing:
            lines.append(f"- `{filename}`")
        lines.append("")
    return "\n".join(lines)


def write_report(results_dir: str | Path, out_path: str | Path) -> Path:
    """Write the collated report; returns the output path."""
    out = Path(out_path)
    out.write_text(collate_report(results_dir))
    return out
