"""Evaluation harness: Table 1/2, Figure 5/6, and formatting helpers."""

from repro.eval.compare import (
    CellResult,
    EvalScale,
    MethodResult,
    SCALES,
    evaluate_cell,
    normalized_averages,
)
from repro.eval.crosstopo import (
    CROSSTOPO_SCALES,
    CrossTopoResult,
    CrossTopoScale,
    DesignScore,
    format_crosstopo_table,
    run_crosstopo,
    spearman,
)
from repro.eval.runtime import runtime_breakdown_table
from repro.eval.tables import format_table1, format_table2
from repro.eval.visualize import render_guidance, render_layout

__all__ = [
    "CellResult",
    "MethodResult",
    "EvalScale",
    "SCALES",
    "evaluate_cell",
    "normalized_averages",
    "CROSSTOPO_SCALES",
    "CrossTopoResult",
    "CrossTopoScale",
    "DesignScore",
    "format_crosstopo_table",
    "run_crosstopo",
    "spearman",
    "format_table1",
    "format_table2",
    "runtime_breakdown_table",
    "render_layout",
    "render_guidance",
]
