"""Performance metrics and figure-of-merit definitions (Eq. 6-7)."""

from __future__ import annotations

import math
from dataclasses import dataclass, fields

import numpy as np

#: Metric names in the paper's reporting order.
METRIC_NAMES = ("offset_uv", "cmrr_db", "bandwidth_mhz", "gain_db", "noise_uvrms")

#: Whether a larger value is better, per metric.
HIGHER_IS_BETTER = {
    "offset_uv": False,
    "cmrr_db": True,
    "bandwidth_mhz": True,
    "gain_db": True,
    "noise_uvrms": False,
}


@dataclass(frozen=True)
class PerformanceMetrics:
    """The paper's five post-layout metrics.

    Attributes:
        offset_uv: input-referred offset voltage, microvolts (lower better).
        cmrr_db: common-mode rejection ratio at DC, dB (higher better).
        bandwidth_mhz: unity-gain bandwidth, MHz (higher better).
        gain_db: DC differential gain, dB (higher better).
        noise_uvrms: integrated output noise, microvolts rms (lower better).
    """

    offset_uv: float
    cmrr_db: float
    bandwidth_mhz: float
    gain_db: float
    noise_uvrms: float

    def as_tuple(self) -> tuple[float, float, float, float, float]:
        return tuple(getattr(self, name) for name in METRIC_NAMES)

    # -- normalization for model training ---------------------------------------
    #
    # Metrics span decades; the network trains on compressed targets and
    # predictions invert the same transform.

    def to_normalized(self) -> np.ndarray:
        """Compress metrics to O(1) training targets."""
        return np.array([
            math.log10(max(self.offset_uv, 1e-3)),
            self.cmrr_db / 40.0,
            math.log10(max(self.bandwidth_mhz, 1e-3)),
            self.gain_db / 20.0,
            math.log10(max(self.noise_uvrms, 1e-3)),
        ])

    @staticmethod
    def from_normalized(vec: np.ndarray) -> "PerformanceMetrics":
        """Invert :meth:`to_normalized`."""
        arr = np.asarray(vec, dtype=float)
        if arr.shape != (5,):
            raise ValueError(f"expected 5 normalized metrics, got shape {arr.shape}")
        return PerformanceMetrics(
            offset_uv=float(10.0 ** arr[0]),
            cmrr_db=float(arr[1] * 40.0),
            bandwidth_mhz=float(10.0 ** arr[2]),
            gain_db=float(arr[3] * 20.0),
            noise_uvrms=float(10.0 ** arr[4]),
        )

    def __str__(self) -> str:
        return (
            f"offset={self.offset_uv:.3g}uV cmrr={self.cmrr_db:.4g}dB "
            f"bw={self.bandwidth_mhz:.4g}MHz gain={self.gain_db:.4g}dB "
            f"noise={self.noise_uvrms:.4g}uVrms"
        )


@dataclass(frozen=True)
class FoMWeights:
    """Figure-of-merit weights ``w_FoM`` of Eq. 7.

    The paper found equal weighting best; lower FoM is better, so metrics
    where higher is better enter with a negative sign.
    """

    offset: float = 1.0
    cmrr: float = 1.0
    bandwidth: float = 1.0
    gain: float = 1.0
    noise: float = 1.0

    def as_signed_vector(self) -> np.ndarray:
        """Weights on *normalized* metrics, sign-flipped where higher is better."""
        return np.array([
            self.offset,
            -self.cmrr,
            -self.bandwidth,
            -self.gain,
            self.noise,
        ])

    def fom(self, metrics: PerformanceMetrics) -> float:
        """Scalar figure of merit (lower is better)."""
        return float(self.as_signed_vector() @ metrics.to_normalized())


def improvement(
    ours: PerformanceMetrics, baseline: PerformanceMetrics
) -> dict[str, float]:
    """Signed per-metric improvement of ``ours`` over ``baseline``.

    Positive numbers always mean "ours is better": reductions for
    lower-is-better metrics, gains otherwise.
    """
    out: dict[str, float] = {}
    for field in fields(PerformanceMetrics):
        a = getattr(ours, field.name)
        b = getattr(baseline, field.name)
        if HIGHER_IS_BETTER[field.name]:
            out[field.name] = a - b
        else:
            out[field.name] = b - a
    return out
