"""Monte-Carlo mismatch analysis over post-layout metrics.

The deterministic per-device mismatch used by the testbench is one draw of
a mismatch distribution; this module sweeps many draws to produce the
offset / CMRR distributions an analog designer would quote (sigma values),
grounding the paper's offset metric statistically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.extraction.parasitics import ParasiticNetwork
from repro.netlist.circuit import Circuit
from repro.simulation.analyses import (
    ac_analysis,
    cmrr_db,
    offset_voltage_uv,
)
from repro.simulation.testbench import Testbench, TestbenchConfig


@dataclass
class MonteCarloResult:
    """Distribution statistics over mismatch draws.

    Attributes:
        offsets_uv: per-draw input-referred offsets (microvolts).
        cmrrs_db: per-draw CMRR values (dB).
    """

    offsets_uv: list[float] = field(default_factory=list)
    cmrrs_db: list[float] = field(default_factory=list)

    @property
    def num_draws(self) -> int:
        return len(self.offsets_uv)

    def offset_sigma_uv(self) -> float:
        return float(np.std(self.offsets_uv)) if self.offsets_uv else 0.0

    def offset_mean_uv(self) -> float:
        return float(np.mean(self.offsets_uv)) if self.offsets_uv else 0.0

    def cmrr_worst_db(self) -> float:
        return float(min(self.cmrrs_db)) if self.cmrrs_db else float("nan")

    def cmrr_median_db(self) -> float:
        return float(np.median(self.cmrrs_db)) if self.cmrrs_db else float("nan")


def _perturbed_circuit_name(base: str, draw: int) -> str:
    """Distinct mismatch realization: the mismatch hash keys off the
    circuit name, so renaming per draw re-seeds every device."""
    return f"{base}#mc{draw}"


def monte_carlo(
    circuit: Circuit,
    parasitics: ParasiticNetwork,
    num_draws: int = 20,
    mismatch_sigma: float = 5e-7,
    config: TestbenchConfig | None = None,
) -> MonteCarloResult:
    """Sweep mismatch realizations and collect offset/CMRR distributions.

    Each draw re-seeds every device's mismatch factor deterministically, so
    the sweep is reproducible.  Layout parasitics are held fixed — the
    spread isolates device mismatch on top of the layout-induced floor.
    """
    if num_draws < 1:
        raise ValueError(f"num_draws must be >= 1, got {num_draws}")
    base_cfg = config or TestbenchConfig()
    result = MonteCarloResult()
    original_name = circuit.name
    try:
        for draw in range(num_draws):
            circuit.name = _perturbed_circuit_name(original_name, draw)
            cfg = TestbenchConfig(
                input_nets=base_cfg.input_nets,
                output_nets=base_cfg.output_nets,
                load_cap=base_cfg.load_cap,
                mismatch_sigma=mismatch_sigma,
            )
            bench = Testbench(circuit, parasitics, cfg)
            ac = ac_analysis(bench)
            result.cmrrs_db.append(cmrr_db(ac))
            result.offsets_uv.append(
                offset_voltage_uv(circuit, parasitics, mismatch_sigma))
    finally:
        circuit.name = original_name
    return result
