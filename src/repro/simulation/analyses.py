"""AC, CMRR, noise, and offset analyses producing the paper's metrics."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.extraction.parasitics import ParasiticNetwork
from repro.netlist.circuit import Circuit
from repro.netlist.devices import MOSFET
from repro.reliability.faults import maybe_inject
from repro.simulation.metrics import PerformanceMetrics
from repro.simulation.smallsignal import V_OV, mismatch_factor
from repro.simulation.testbench import Testbench, TestbenchConfig

#: Default log-spaced analysis grid (hertz).
DEFAULT_FREQS = np.logspace(0, 10.5, 64)

#: Offset sensitivity of coupling imbalance: volts per farad of mismatch.
OFFSET_PER_COUPLING_F = 20e-6 / 1e-15


@dataclass(frozen=True)
class AcResult:
    """Differential and common-mode transfer functions over frequency."""

    freqs: np.ndarray
    h_diff: np.ndarray
    h_cm: np.ndarray


def ac_analysis(bench: Testbench, freqs: np.ndarray = DEFAULT_FREQS) -> AcResult:
    """Differential and common-mode-to-differential sweeps."""
    h_diff = np.zeros(len(freqs), dtype=complex)
    h_cm = np.zeros(len(freqs), dtype=complex)
    inj_diff = bench.input_injections(0.5, -0.5)
    inj_cm = bench.input_injections(1.0, 1.0)
    for i, freq in enumerate(freqs):
        factor = bench.system.factorized(freq)
        sol_d = bench.system.solve(freq, inj_diff, factor=factor)
        sol_c = bench.system.solve(freq, inj_cm, factor=factor)
        h_diff[i] = bench.differential_output(sol_d)
        h_cm[i] = bench.differential_output(sol_c)
    return AcResult(freqs=freqs, h_diff=h_diff, h_cm=h_cm)


def dc_gain_db(ac: AcResult) -> float:
    """DC differential gain in dB (lowest analysis frequency)."""
    mag = abs(ac.h_diff[0])
    return 20.0 * np.log10(max(mag, 1e-12))


def unity_gain_bandwidth_hz(ac: AcResult) -> float:
    """Frequency where |H_diff| crosses unity (log interpolation).

    Returns the highest analysis frequency when the gain never drops below
    one, and 0 when the DC gain is already below one.
    """
    mags = np.abs(ac.h_diff)
    if mags[0] <= 1.0:
        return 0.0
    below = np.where(mags < 1.0)[0]
    if len(below) == 0:
        return float(ac.freqs[-1])
    j = below[0]
    i = j - 1
    # Interpolate log|H| vs log f between the bracketing points.
    lf0, lf1 = np.log10(ac.freqs[i]), np.log10(ac.freqs[j])
    lm0, lm1 = np.log10(mags[i]), np.log10(mags[j])
    if lm0 == lm1:
        return float(ac.freqs[j])
    t = (0.0 - lm0) / (lm1 - lm0)
    return float(10.0 ** (lf0 + t * (lf1 - lf0)))


def cmrr_db(ac: AcResult) -> float:
    """Common-mode rejection ratio at DC, in dB."""
    adm = abs(ac.h_diff[0])
    acm = abs(ac.h_cm[0])
    return 20.0 * np.log10(max(adm, 1e-12) / max(acm, 1e-15))


def output_noise_uvrms(
    bench: Testbench, freqs: np.ndarray = DEFAULT_FREQS
) -> float:
    """Integrated differential output noise in microvolts rms.

    One adjoint solve per frequency prices every thermal and flicker
    source; the PSD integrates by trapezoid over the log grid.
    """
    pos, neg = bench.config.output_nets
    weights = {bench.net_node(pos): 1.0, bench.net_node(neg): -1.0}
    psd = np.zeros(len(freqs))
    for i, freq in enumerate(freqs):
        transfers = bench.system.adjoint_solve(freq, weights)

        def transfer(node: str) -> complex:
            if node == bench.system.GROUND:
                return 0.0 + 0.0j
            return transfers[node]

        total = 0.0
        for node_d, node_s, thermal, flicker in bench.noise_sources:
            t = transfer(node_d) - transfer(node_s)
            source_psd = thermal + flicker / freq
            total += (abs(t) ** 2) * source_psd
        psd[i] = total
    variance = np.trapezoid(psd, freqs)
    return float(np.sqrt(max(variance, 0.0)) * 1e6)


def offset_voltage_uv(
    circuit: Circuit,
    parasitics: ParasiticNetwork,
    mismatch_sigma: float,
) -> float:
    """Input-referred offset voltage in microvolts (sensitivity model).

    Three contributions, per DESIGN.md section 2:

    * intrinsic device mismatch across constrained device pairs
      (``|delta_eps| * V_OV / 2`` per pair) — the schematic floor;
    * IR-drop asymmetry: each symmetric net pair contributes its terminal
      resistance mismatch times the mean bias current of the MOS devices on
      the pair;
    * coupling imbalance between symmetric nets, priced at
      ``OFFSET_PER_COUPLING_F`` volts per farad.
    """
    total = 0.0
    for pair in circuit.symmetry_pairs:
        for left, right in pair.device_pairs:
            dev_l = circuit.device(left)
            if not isinstance(dev_l, MOSFET):
                continue
            f_l = mismatch_factor(circuit.name, left, mismatch_sigma)
            f_r = mismatch_factor(circuit.name, right, mismatch_sigma)
            total += abs(f_l - f_r) * V_OV / 2.0

        delta_r = parasitics.resistance_mismatch(pair.net_a, pair.net_b)
        currents = [
            dev.bias_current
            for net_name in (pair.net_a, pair.net_b)
            for dev in (circuit.device(d) for d in circuit.net(net_name).devices())
            if isinstance(dev, MOSFET)
        ]
        mean_current = float(np.mean(currents)) if currents else 0.0
        total += mean_current * delta_r

        delta_cc = parasitics.coupling_mismatch(pair.net_a, pair.net_b)
        total += OFFSET_PER_COUPLING_F * delta_cc
    return total * 1e6


def simulate_performance(
    circuit: Circuit,
    parasitics: ParasiticNetwork,
    config: TestbenchConfig | None = None,
    freqs: np.ndarray = DEFAULT_FREQS,
) -> PerformanceMetrics:
    """Run all analyses and return the paper's five metrics.

    Raises :class:`~repro.reliability.errors.SimulationError` on singular
    systems, malformed testbenches, or under an active fault-injection
    plan for the ``"simulation"`` stage.
    """
    maybe_inject("simulation")
    cfg = config or TestbenchConfig()
    bench = Testbench(circuit, parasitics, cfg)
    ac = ac_analysis(bench, freqs)
    return PerformanceMetrics(
        offset_uv=offset_voltage_uv(circuit, parasitics, cfg.mismatch_sigma),
        cmrr_db=cmrr_db(ac),
        bandwidth_mhz=unity_gain_bandwidth_hz(ac) / 1e6,
        gain_db=dc_gain_db(ac),
        noise_uvrms=output_noise_uvrms(bench, freqs),
    )
