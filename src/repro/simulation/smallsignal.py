"""Square-law MOS small-signal parameters.

Every MOSFET is linearized about its stated bias point using the standard
long-channel relations, with short-channel-flavoured constants of 40nm-class
magnitude.  A deterministic per-device mismatch factor (seeded from the
circuit and device names) makes perfectly symmetric schematics show finite —
rather than infinite — CMRR, as real silicon does.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.netlist.devices import MOSFET

#: Overdrive voltage assumed for saturated devices (volts).
V_OV = 0.2
#: Channel-length modulation per unit length: lambda = LAMBDA_L / L(um).
LAMBDA_L = 0.04
#: Gate oxide capacitance (farad per square micrometer), 40nm-class.
C_OX = 8e-15
#: Overlap capacitance per micrometer of width.
C_OV = 0.3e-15
#: Junction capacitance per micrometer of width.
C_J = 0.8e-15
#: Thermal noise excess factor.
GAMMA_NOISE = 1.0
#: Flicker noise coefficient (V^2 * F).
K_FLICKER = 1e-26


@dataclass(frozen=True)
class MosSmallSignal:
    """Linearized MOSFET parameters.

    Attributes:
        gm: transconductance (siemens), mismatch applied.
        gds: output conductance (siemens).
        cgs: gate-source capacitance (farad).
        cgd: gate-drain capacitance (farad).
        cdb: drain-bulk capacitance (farad).
        thermal_noise_psd: drain current thermal noise PSD (A^2/Hz).
        flicker_coeff: drain current flicker noise coefficient; PSD at
            frequency f is ``flicker_coeff / f`` (A^2).
    """

    gm: float
    gds: float
    cgs: float
    cgd: float
    cdb: float
    thermal_noise_psd: float
    flicker_coeff: float


def mismatch_factor(circuit_name: str, device_name: str, sigma: float) -> float:
    """Deterministic relative mismatch for one device.

    The value is drawn from N(0, sigma) using a CRC of the circuit and
    device names, so the same device always gets the same mismatch and
    different circuits (OTA1 vs OTA2) get different mismatch patterns.
    """
    seed = zlib.crc32(f"{circuit_name}:{device_name}".encode())
    rng = np.random.default_rng(seed)
    return float(1.0 + sigma * rng.standard_normal())


def mos_small_signal(
    mos: MOSFET, circuit_name: str = "", mismatch_sigma: float = 0.0
) -> MosSmallSignal:
    """Small-signal parameters of one MOSFET at its stated bias."""
    i_d = max(mos.bias_current, 1e-9)
    factor = (
        mismatch_factor(circuit_name, mos.name, mismatch_sigma)
        if mismatch_sigma > 0.0
        else 1.0
    )
    gm = 2.0 * i_d / V_OV * factor
    gds = (LAMBDA_L / mos.l) * i_d
    cgs = (2.0 / 3.0) * C_OX * mos.w * mos.l + C_OV * mos.w
    cgd = C_OV * mos.w
    cdb = C_J * mos.w / max(mos.fingers, 1)

    k_boltzmann_t = 4.142e-21  # 4kT at 300K
    thermal = k_boltzmann_t * GAMMA_NOISE * gm
    flicker = K_FLICKER * gm * gm / (C_OX * mos.w * mos.l)
    return MosSmallSignal(
        gm=gm, gds=gds, cgs=cgs, cgd=cgd, cdb=cdb,
        thermal_noise_psd=thermal, flicker_coeff=flicker,
    )
