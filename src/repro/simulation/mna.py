"""Modified nodal analysis over complex frequency.

Element stamps accumulate into a conductance matrix ``G`` and a capacitance
matrix ``C``; an AC solve at angular frequency ``w`` factors ``G + jwC``
once and back-substitutes any number of right-hand sides — the noise
analysis exploits this by reusing one factorization for every device's
injection vector.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import LinAlgError, lu_factor, lu_solve

from repro.reliability.errors import SimulationError

#: Conductance from every node to ground, keeping G non-singular at DC for
#: nodes reached only through capacitors or MOS gates.
G_MIN = 1e-10


class MnaSystem:
    """A linear(ized) circuit ready for AC analysis.

    Nodes are referenced by string name; the ground node is the reserved
    name ``"0"``.  Stamps may be added in any order before solving.
    """

    GROUND = "0"

    def __init__(self) -> None:
        self._index: dict[str, int] = {}
        self._g_entries: list[tuple[int, int, float]] = []
        self._c_entries: list[tuple[int, int, float]] = []
        self._g: np.ndarray | None = None
        self._c: np.ndarray | None = None

    # -- node management --------------------------------------------------------

    def node(self, name: str) -> int:
        """Index of a node, creating it on first use.  Ground is -1."""
        if name == self.GROUND:
            return -1
        if name not in self._index:
            self._index[name] = len(self._index)
            self._g = None
        return self._index[name]

    @property
    def num_nodes(self) -> int:
        return len(self._index)

    def has_node(self, name: str) -> bool:
        return name in self._index

    # -- stamps -------------------------------------------------------------------

    def _stamp_pair(
        self, entries: list[tuple[int, int, float]], a: int, b: int, value: float
    ) -> None:
        if a >= 0:
            entries.append((a, a, value))
        if b >= 0:
            entries.append((b, b, value))
        if a >= 0 and b >= 0:
            entries.append((a, b, -value))
            entries.append((b, a, -value))
        self._g = None

    def add_conductance(self, a: str, b: str, g: float) -> None:
        """Conductance ``g`` siemens between nodes ``a`` and ``b``."""
        if g < 0:
            raise ValueError(f"negative conductance {g}")
        self._stamp_pair(self._g_entries, self.node(a), self.node(b), g)

    def add_resistance(self, a: str, b: str, r: float) -> None:
        if r <= 0:
            raise ValueError(f"non-positive resistance {r}")
        self.add_conductance(a, b, 1.0 / r)

    def add_capacitance(self, a: str, b: str, c: float) -> None:
        """Capacitance ``c`` farads between nodes ``a`` and ``b``."""
        if c < 0:
            raise ValueError(f"negative capacitance {c}")
        self._stamp_pair(self._c_entries, self.node(a), self.node(b), c)

    def add_vccs(self, out_p: str, out_n: str, in_p: str, in_n: str, gm: float) -> None:
        """Voltage-controlled current source: I(out_p -> out_n) = gm * V(in_p, in_n)."""
        op, on = self.node(out_p), self.node(out_n)
        ip, in_ = self.node(in_p), self.node(in_n)
        for row, sign_row in ((op, 1.0), (on, -1.0)):
            if row < 0:
                continue
            for col, sign_col in ((ip, 1.0), (in_, -1.0)):
                if col < 0:
                    continue
                self._g_entries.append((row, col, gm * sign_row * sign_col))
        self._g = None

    # -- assembly and solving -------------------------------------------------------

    def _assemble(self) -> None:
        n = self.num_nodes
        g = np.zeros((n, n))
        c = np.zeros((n, n))
        for i, j, v in self._g_entries:
            g[i, j] += v
        for i, j, v in self._c_entries:
            c[i, j] += v
        g[np.diag_indices(n)] += G_MIN
        self._g, self._c = g, c

    def factorized(self, freq: float):
        """LU factorization of (G + j*2*pi*f*C); reusable across RHS.

        Raises:
            SimulationError: the system matrix contains non-finite stamps
                or cannot be factorized.
        """
        if self._g is None:
            self._assemble()
        omega = 2.0 * np.pi * freq
        matrix = self._g.astype(complex) + 1j * omega * self._c
        if not np.isfinite(matrix).all():
            raise SimulationError(
                f"MNA matrix has non-finite entries at {freq:g} Hz",
                stage="simulation", details={"freq_hz": freq})
        try:
            return lu_factor(matrix)
        except (LinAlgError, ValueError) as exc:
            raise SimulationError(
                f"MNA factorization failed at {freq:g} Hz: {exc}",
                stage="simulation", details={"freq_hz": freq}) from exc

    def solve(
        self, freq: float, injections: dict[str, complex], factor=None
    ) -> dict[str, complex]:
        """Node voltages for current injections at one frequency.

        Args:
            freq: analysis frequency in hertz.
            injections: current (amperes) injected *into* each named node.
            factor: optional precomputed :meth:`factorized` result.

        Returns:
            Mapping of node name to complex voltage (ground excluded).
        """
        if factor is None:
            factor = self.factorized(freq)
        rhs = np.zeros(self.num_nodes, dtype=complex)
        for name, current in injections.items():
            idx = self.node(name)
            if idx >= 0:
                rhs[idx] += current
        solution = lu_solve(factor, rhs)
        if not np.isfinite(solution).all():
            # An exactly singular matrix passes LU factorization but
            # back-substitutes to inf/nan node voltages.
            raise SimulationError(
                f"singular MNA system at {freq:g} Hz "
                f"(non-finite node voltages)",
                stage="simulation", details={"freq_hz": freq})
        return {name: solution[i] for name, i in self._index.items()}

    def adjoint_solve(
        self, freq: float, output_weights: dict[str, float]
    ) -> dict[str, complex]:
        """Transfer from unit current injection at every node to an output.

        Solves the transposed system once: the returned mapping gives, for
        each node ``n``, the output voltage produced by injecting 1 A into
        ``n``, where the output is ``sum_k w_k * V(node_k)`` per
        ``output_weights``.  Noise analysis uses this to price every noise
        source with a single factorization per frequency.
        """
        if self._g is None:
            self._assemble()
        omega = 2.0 * np.pi * freq
        matrix = (self._g.astype(complex) + 1j * omega * self._c).T
        rhs = np.zeros(self.num_nodes, dtype=complex)
        for name, weight in output_weights.items():
            idx = self.node(name)
            if idx >= 0:
                rhs[idx] += weight
        try:
            solution = np.linalg.solve(matrix, rhs)
        except np.linalg.LinAlgError as exc:
            raise SimulationError(
                f"adjoint MNA solve failed at {freq:g} Hz: {exc}",
                stage="simulation", details={"freq_hz": freq}) from exc
        if not np.isfinite(solution).all():
            raise SimulationError(
                f"singular adjoint MNA system at {freq:g} Hz",
                stage="simulation", details={"freq_hz": freq})
        return {name: solution[i] for name, i in self._index.items()}

    def voltage(self, solution: dict[str, complex], name: str) -> complex:
        """Voltage of a node in a solve result (ground = 0)."""
        if name == self.GROUND:
            return 0.0 + 0.0j
        return solution[name]
