"""OTA testbench: builds the MNA system from a circuit and its parasitics.

Node construction:

* every net gets an *internal* node named after the net, carrying its wire
  ground capacitance and coupling capacitors;
* a terminal with nonzero extracted series resistance gets its own node
  ``net@device.pin`` joined to the internal node through that resistance —
  this is how routing asymmetry enters the electrical network;
* supply nets (VDD/VSS) are driven to AC ground through a stiff conductance
  at their internal node, so supply wire resistance still isolates
  terminals;
* differential inputs are driven through stiff Norton sources, outputs see
  an external load capacitance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.extraction.parasitics import ParasiticNetwork
from repro.netlist.circuit import Circuit
from repro.netlist.devices import Capacitor, MOSFET, Resistor
from repro.reliability.errors import ReproError, SimulationError
from repro.simulation.mna import MnaSystem
from repro.simulation.smallsignal import mos_small_signal

#: Series resistance below this is merged into the internal node (ohm).
R_MERGE_THRESHOLD = 1e-3
#: Stiff source / supply conductance (siemens).
G_STIFF = 1e3


@dataclass(frozen=True)
class TestbenchConfig:
    """Testbench knobs.

    Attributes:
        input_nets: differential input net names (positive, negative).
        output_nets: differential output net names (positive, negative).
        load_cap: external load capacitance per output (farad).
        mismatch_sigma: relative device mismatch; gives schematics a finite
            CMRR baseline.
        dc_drive_nets: extra nets pinned to AC ground through a stiff
            conductance (clocks, external bias voltages).  Auto-synthesized
            benches use this for gate-only nets that would otherwise leave
            the MNA matrix singular.
    """

    __test__ = False  # "Test" prefix is domain naming, not a pytest case

    input_nets: tuple[str, str] = ("VINP", "VINN")
    output_nets: tuple[str, str] = ("VOUTP", "VOUTN")
    load_cap: float = 0.5e-12
    mismatch_sigma: float = 5e-7
    dc_drive_nets: tuple[str, ...] = ()


class Testbench:
    """Small-signal testbench over a circuit + parasitic network."""

    __test__ = False  # "Test" prefix is domain naming, not a pytest case

    def __init__(
        self,
        circuit: Circuit,
        parasitics: ParasiticNetwork,
        config: TestbenchConfig | None = None,
    ) -> None:
        self.circuit = circuit
        self.parasitics = parasitics
        self.config = config or TestbenchConfig()
        self.system = MnaSystem()
        self.noise_sources: list[tuple[str, str, float, float]] = []
        self._terminal_node: dict[tuple[str, str], str] = {}
        try:
            self._build()
        except ReproError:
            raise
        except (ValueError, KeyError) as exc:
            # A malformed parasitic network (negative caps, dangling
            # terminals) becomes a typed, per-sample-skippable failure.
            raise SimulationError(
                f"testbench construction failed: {exc}",
                stage="simulation",
                details={"circuit": circuit.name},
            ) from exc

    # -- node helpers -------------------------------------------------------------

    def terminal_node(self, device: str, pin: str) -> str:
        """MNA node a device pin connects to (after parasitic insertion)."""
        node = self._terminal_node.get((device, pin))
        if node is None:
            raise KeyError(f"pin {device}.{pin} is not attached to any net")
        return node

    def net_node(self, net: str) -> str:
        """The internal node of a net."""
        return net

    # -- construction --------------------------------------------------------------

    def _build(self) -> None:
        system = self.system
        cfg = self.config

        # Nets: internal nodes, terminal resistances, ground caps.
        for net in self.circuit.nets.values():
            internal = self.net_node(net.name)
            para = self.parasitics.nets.get(net.name)
            ground_cap = para.ground_cap if para else 0.0
            if ground_cap > 0.0:
                system.add_capacitance(internal, MnaSystem.GROUND, ground_cap)
            if net.net_type.is_supply:
                system.add_conductance(internal, MnaSystem.GROUND, G_STIFF)
            for device, pin in net.connections:
                r = 0.0
                if para is not None:
                    r = para.terminal_resistance.get((device, pin), 0.0)
                if r > R_MERGE_THRESHOLD:
                    node = f"{net.name}@{device}.{pin}"
                    system.add_resistance(internal, node, r)
                else:
                    node = internal
                self._terminal_node[(device, pin)] = node

        # Coupling capacitors between internal nodes.
        for (net_a, net_b), cap in self.parasitics.coupling.items():
            if cap > 0.0:
                system.add_capacitance(self.net_node(net_a), self.net_node(net_b), cap)

        # Devices.
        for device in self.circuit.devices.values():
            if isinstance(device, MOSFET):
                self._stamp_mosfet(device)
            elif isinstance(device, Capacitor):
                self._stamp_two_terminal(device.name, "cap", device.value)
            elif isinstance(device, Resistor):
                self._stamp_two_terminal(device.name, "res", device.value)

        # Testbench fixtures: stiff input drives and output loads.
        for net in cfg.input_nets:
            if net in self.circuit.nets:
                system.add_conductance(self.net_node(net), MnaSystem.GROUND, G_STIFF)
        for net in cfg.dc_drive_nets:
            if net in self.circuit.nets:
                system.add_conductance(self.net_node(net), MnaSystem.GROUND, G_STIFF)
        for net in cfg.output_nets:
            if net in self.circuit.nets:
                system.add_capacitance(self.net_node(net), MnaSystem.GROUND,
                                       cfg.load_cap)

    def _pin_node_or_ground(self, device: str, pin: str) -> str:
        """Terminal node, or ground for unconnected pins (bulk taps)."""
        return self._terminal_node.get((device, pin), MnaSystem.GROUND)

    def _stamp_mosfet(self, mos: MOSFET) -> None:
        params = mos_small_signal(
            mos, circuit_name=self.circuit.name,
            mismatch_sigma=self.config.mismatch_sigma,
        )
        g = self._pin_node_or_ground(mos.name, "G")
        d = self._pin_node_or_ground(mos.name, "D")
        s = self._pin_node_or_ground(mos.name, "S")
        system = self.system
        system.add_vccs(d, s, g, s, params.gm)
        system.add_conductance(d, s, params.gds)
        system.add_capacitance(g, s, params.cgs)
        system.add_capacitance(g, d, params.cgd)
        system.add_capacitance(d, MnaSystem.GROUND, params.cdb)
        # Drain-source thermal + flicker current noise.
        self.noise_sources.append(
            (d, s, params.thermal_noise_psd, params.flicker_coeff)
        )

    def _stamp_two_terminal(self, name: str, kind: str, value: float) -> None:
        plus = self._pin_node_or_ground(name, "PLUS")
        minus = self._pin_node_or_ground(name, "MINUS")
        if kind == "cap":
            self.system.add_capacitance(plus, minus, value)
        else:
            self.system.add_resistance(plus, minus, value)
            k_boltzmann_t = 4.142e-21  # 4kT at 300K
            self.noise_sources.append((plus, minus, k_boltzmann_t / value, 0.0))

    # -- drives ----------------------------------------------------------------------

    def input_injections(self, v_p: complex, v_n: complex) -> dict[str, complex]:
        """Norton currents realizing input voltages through stiff sources."""
        inj: dict[str, complex] = {}
        pos, neg = self.config.input_nets
        if pos in self.circuit.nets:
            inj[self.net_node(pos)] = v_p * G_STIFF
        if neg in self.circuit.nets:
            inj[self.net_node(neg)] = v_n * G_STIFF
        return inj

    def differential_output(self, solution: dict[str, complex]) -> complex:
        pos, neg = self.config.output_nets
        vp = self.system.voltage(solution, self.net_node(pos))
        vn = self.system.voltage(solution, self.net_node(neg))
        return vp - vn
