"""Post-layout performance simulation.

Replaces Calibre PEX + Cadence Spectre (DESIGN.md section 2): a complex-
valued MNA engine over the small-signal circuit with the extracted parasitic
network embedded, producing the paper's five metrics — offset voltage, CMRR,
unity-gain bandwidth, DC gain, and integrated output noise.
"""

from repro.simulation.analyses import simulate_performance
from repro.simulation.metrics import FoMWeights, PerformanceMetrics
from repro.simulation.mna import MnaSystem
from repro.simulation.montecarlo import MonteCarloResult, monte_carlo
from repro.simulation.smallsignal import MosSmallSignal, mos_small_signal
from repro.simulation.testbench import Testbench, TestbenchConfig
from repro.simulation.transient import (
    StepMetrics,
    TransientResult,
    step_response_metrics,
    transient,
)

__all__ = [
    "simulate_performance",
    "FoMWeights",
    "PerformanceMetrics",
    "MnaSystem",
    "MonteCarloResult",
    "monte_carlo",
    "MosSmallSignal",
    "mos_small_signal",
    "Testbench",
    "TestbenchConfig",
    "StepMetrics",
    "TransientResult",
    "step_response_metrics",
    "transient",
]
