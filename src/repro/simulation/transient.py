"""Linear transient analysis: backward-Euler integration of the MNA system.

Solves ``G v + C dv/dt = i(t)`` on a fixed time step.  Backward Euler is
L-stable, so stiff post-layout networks (picofarad caps against kilo-ohm
wires) integrate robustly:

    (G + C/h) v_{n+1} = (C/h) v_n + i(t_{n+1})

The step matrix factors once and is reused for every step.  On top of the
raw waveforms, :func:`step_response_metrics` extracts the settling-time and
slew-rate figures designers quote for OTAs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy.linalg import lu_factor, lu_solve

from repro.simulation.mna import MnaSystem

#: Below this step amplitude (volts) a waveform counts as flat; real
#: OTA steps are ~1 V, so this only absorbs float residue.
AMPLITUDE_FLOOR = 1e-12


@dataclass
class TransientResult:
    """Waveforms from a transient run.

    Attributes:
        times: (n_steps + 1,) time points, starting at 0.
        voltages: node-name -> (n_steps + 1,) waveform arrays.
    """

    times: np.ndarray
    voltages: dict[str, np.ndarray]

    def waveform(self, node: str) -> np.ndarray:
        if node == MnaSystem.GROUND:
            return np.zeros_like(self.times)
        return self.voltages[node]


def transient(
    system: MnaSystem,
    injections: Callable[[float], dict[str, float]],
    t_stop: float,
    dt: float,
    initial: dict[str, float] | None = None,
) -> TransientResult:
    """Integrate the linear network over [0, t_stop].

    Args:
        system: assembled MNA system (all stamps added).
        injections: time -> node-name -> injected current (amperes).
        t_stop: end time (seconds).
        dt: fixed step (seconds).
        initial: optional initial node voltages (default: all zero).

    Returns:
        Waveforms for every node.
    """
    if dt <= 0 or t_stop <= 0:
        raise ValueError("dt and t_stop must be positive")
    if dt > t_stop:
        raise ValueError(f"dt {dt} exceeds t_stop {t_stop}")
    system._assemble()
    g, c = system._g, system._c
    n = system.num_nodes
    index = dict(system._index)

    step_matrix = g + c / dt
    factor = lu_factor(step_matrix)

    num_steps = int(round(t_stop / dt))
    times = np.linspace(0.0, num_steps * dt, num_steps + 1)
    waves = np.zeros((num_steps + 1, n))

    v = np.zeros(n)
    if initial:
        for name, value in initial.items():
            idx = index.get(name)
            if idx is not None:
                v[idx] = value
    waves[0] = v

    for step in range(1, num_steps + 1):
        rhs = (c / dt) @ v
        for name, current in injections(times[step]).items():
            idx = index.get(name)
            if idx is not None:
                rhs[idx] += current
        v = lu_solve(factor, rhs)
        waves[step] = v

    return TransientResult(
        times=times,
        voltages={name: waves[:, i].copy() for name, i in index.items()},
    )


@dataclass(frozen=True)
class StepMetrics:
    """Step-response figures.

    Attributes:
        final_value: settled output value (mean of the last 5% of points).
        slew_rate: maximum |dv/dt| during the transition (V/s).
        settling_time: first time after which the output stays within
            ``tolerance`` of the final value (seconds); NaN if never.
        overshoot: peak excursion beyond the final value, as a fraction of
            the step amplitude (0 when monotonic).
    """

    final_value: float
    slew_rate: float
    settling_time: float
    overshoot: float


def step_response_metrics(
    result: TransientResult, node: str, tolerance: float = 0.02
) -> StepMetrics:
    """Extract settling metrics from a step-response waveform."""
    wave = result.waveform(node)
    times = result.times
    tail = max(len(wave) // 20, 1)
    final = float(wave[-tail:].mean())
    amplitude = abs(final - wave[0])
    # Flat-waveform guard for the divisions by amplitude below: float
    # arithmetic can leave a denormal residue instead of exact zero, so
    # compare against a floor far below any real step (volts).
    if amplitude < AMPLITUDE_FLOOR:
        return StepMetrics(final_value=final, slew_rate=0.0,
                           settling_time=0.0, overshoot=0.0)

    dv = np.diff(wave)
    dt = np.diff(times)
    slew = float(np.abs(dv / dt).max())

    band = tolerance * amplitude
    outside = np.abs(wave - final) > band
    if outside.any():
        last_outside = int(np.flatnonzero(outside)[-1])
        settling = (float(times[last_outside + 1])
                    if last_outside + 1 < len(times) else float("nan"))
    else:
        settling = 0.0

    direction = np.sign(final - wave[0])
    excursion = direction * (wave - final)
    overshoot = float(max(excursion.max(), 0.0) / amplitude)
    return StepMetrics(final_value=final, slew_rate=slew,
                       settling_time=settling, overshoot=overshoot)
