"""AnalogFold: performance-driven analog routing via heterogeneous 3DGNN and
potential relaxation — a full reproduction of the DAC 2024 paper.

Quickstart::

    from repro import (
        build_benchmark, place_benchmark, generic_40nm,
        AnalogFold, AnalogFoldConfig,
    )

    circuit = build_benchmark("OTA1")
    placement = place_benchmark(circuit, variant="A")
    fold = AnalogFold(circuit, placement, generic_40nm())
    result = fold.run()
    print(result.metrics)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.core import (
    AnalogFold,
    AnalogFoldConfig,
    AnalogFoldResult,
    DatasetConfig,
    PotentialFunction,
    PotentialRelaxer,
    RelaxationConfig,
    generate_dataset,
)
from repro.extraction import ParasiticNetwork, extract, extract_schematic
from repro.graph import HeteroGraph, build_hetero_graph
from repro.model import Gnn3d, Gnn3dConfig, TrainConfig, Trainer
from repro.netlist import BENCHMARKS, Circuit, build_benchmark
from repro.placement import Placement, place_benchmark
from repro.reliability import (
    DataQualityError,
    DegradationPolicy,
    FaultPlan,
    ReproError,
    inject_faults,
)
from repro.router import (
    IterativeRouter,
    RouterConfig,
    RoutingGrid,
    RoutingGuidance,
    uniform_guidance,
)
from repro.simulation import (
    FoMWeights,
    PerformanceMetrics,
    TestbenchConfig,
    simulate_performance,
)
from repro.tech import Technology, generic_40nm

__version__ = "1.0.0"

__all__ = [
    "AnalogFold",
    "AnalogFoldConfig",
    "AnalogFoldResult",
    "DatasetConfig",
    "PotentialFunction",
    "PotentialRelaxer",
    "RelaxationConfig",
    "generate_dataset",
    "ParasiticNetwork",
    "extract",
    "extract_schematic",
    "HeteroGraph",
    "build_hetero_graph",
    "Gnn3d",
    "Gnn3dConfig",
    "Trainer",
    "TrainConfig",
    "BENCHMARKS",
    "Circuit",
    "build_benchmark",
    "Placement",
    "place_benchmark",
    "ReproError",
    "DataQualityError",
    "DegradationPolicy",
    "FaultPlan",
    "inject_faults",
    "IterativeRouter",
    "RouterConfig",
    "RoutingGrid",
    "RoutingGuidance",
    "uniform_guidance",
    "FoMWeights",
    "PerformanceMetrics",
    "TestbenchConfig",
    "simulate_performance",
    "Technology",
    "generic_40nm",
    "__version__",
]
