"""Per-segment wire resistance and ground capacitance rules."""

from __future__ import annotations

from repro.router.grid import GridNode, RoutingGrid
from repro.tech.technology import Technology


def segment_resistance(
    tech: Technology, a: GridNode, b: GridNode, pitch: float
) -> float:
    """Resistance of one unit routing segment between adjacent cells.

    Planar segments use sheet resistance at the layer's default width; layer
    changes use the via resistance.
    """
    if a[2] != b[2]:
        return tech.stack.via_between(a[2], b[2]).resistance
    layer = tech.layer(a[2])
    return layer.wire_resistance(pitch, tech.rules.default_width(a[2]))


def segment_capacitance(tech: Technology, cell: GridNode, pitch: float) -> float:
    """Ground capacitance contributed by one occupied grid cell."""
    layer = tech.layer(cell[2])
    return layer.wire_ground_cap(pitch, tech.rules.default_width(cell[2]))


def path_resistance(
    grid: RoutingGrid,
    adjacency: dict[GridNode, dict[GridNode, float]],
    source: GridNode,
    target: GridNode,
) -> float:
    """Resistance along the routed tree between two cells (Dijkstra).

    The routed net is a tree (or near-tree); Dijkstra over segment
    resistances gives the series resistance of the unique connecting path.
    Returns ``inf`` when the cells are not connected.
    """
    import heapq

    if source == target:
        return 0.0
    dist: dict[GridNode, float] = {source: 0.0}
    heap: list[tuple[float, GridNode]] = [(0.0, source)]
    while heap:
        d, node = heapq.heappop(heap)
        if node == target:
            return d
        if d > dist.get(node, float("inf")):
            continue
        for nxt, r in adjacency.get(node, {}).items():
            nd = d + r
            if nd < dist.get(nxt, float("inf")):
                dist[nxt] = nd
                heapq.heappush(heap, (nd, nxt))
    return float("inf")
