"""Reduced parasitic network: star RC per net + inter-net coupling.

Each routed net reduces to a star model: one internal node carrying the
net's total ground capacitance, with a series resistance from the internal
node to every terminal equal to the routed-tree resistance from that
terminal to the net root (first access point).  Coupling capacitors connect
internal nodes of different nets.

The star model overestimates terminal-to-terminal resistance when paths
share trunk segments, but it is monotone in routed length and preserves the
asymmetry between mirrored nets — the properties the performance model must
learn (DESIGN.md section 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.extraction.coupling import extract_coupling
from repro.extraction.rc import path_resistance, segment_capacitance, segment_resistance
from repro.router.grid import GridNode, RoutingGrid
from repro.router.result import RoutingResult
from repro.tech.technology import Technology

Terminal = tuple[str, str]


@dataclass
class NetParasitics:
    """Reduced parasitics of one net.

    Attributes:
        net: net name.
        terminal_resistance: series R (ohm) from the net's internal node to
            each terminal, keyed by (device, pin).
        ground_cap: total wire capacitance to substrate (farad).
        total_resistance: sum of all segment resistances (diagnostic).
    """

    net: str
    terminal_resistance: dict[Terminal, float] = field(default_factory=dict)
    ground_cap: float = 0.0
    total_resistance: float = 0.0


@dataclass
class ParasiticNetwork:
    """Complete extracted parasitics for a routed circuit.

    Attributes:
        nets: per-net reduced RC models.
        coupling: coupling capacitance between net pairs, keyed by the
            sorted (net_a, net_b) tuple, in farads.
    """

    nets: dict[str, NetParasitics] = field(default_factory=dict)
    coupling: dict[tuple[str, str], float] = field(default_factory=dict)

    def net_coupling(self, net: str) -> float:
        """Total coupling capacitance seen by one net."""
        return sum(v for (a, b), v in self.coupling.items() if net in (a, b))

    def resistance_mismatch(self, net_a: str, net_b: str) -> float:
        """Mean absolute terminal-resistance mismatch between two nets.

        Used by the offset model: symmetric net pairs with mismatched wire
        resistance generate input-referred offset.
        """
        pa = self.nets.get(net_a)
        pb = self.nets.get(net_b)
        if pa is None or pb is None:
            return 0.0
        ra = sorted(pa.terminal_resistance.values())
        rb = sorted(pb.terminal_resistance.values())
        if not ra or not rb:
            return 0.0
        n = min(len(ra), len(rb))
        return sum(abs(x - y) for x, y in zip(ra[:n], rb[:n])) / n

    def coupling_mismatch(self, net_a: str, net_b: str) -> float:
        """Difference in total coupling between two (symmetric) nets."""
        return abs(self.net_coupling(net_a) - self.net_coupling(net_b))


def extract(
    result: RoutingResult, grid: RoutingGrid, tech: Technology
) -> ParasiticNetwork:
    """Extract reduced parasitics from a routed solution."""
    network = ParasiticNetwork()
    pitch = grid.pitch

    for name, route in result.routes.items():
        parasitics = NetParasitics(net=name)
        cells = route.cells()
        adjacency: dict[GridNode, dict[GridNode, float]] = {c: {} for c in cells}
        total_r = 0.0
        for a, b in route.segments():
            r = segment_resistance(tech, a, b, pitch)
            adjacency[a][b] = min(adjacency[a].get(b, float("inf")), r)
            adjacency[b][a] = min(adjacency[b].get(a, float("inf")), r)
            total_r += r
        parasitics.total_resistance = total_r
        parasitics.ground_cap = sum(
            segment_capacitance(tech, cell, pitch) for cell in cells
        )
        if route.access_points:
            root = route.access_points[0].cell
            for ap in route.access_points:
                r = path_resistance(grid, adjacency, root, ap.cell)
                if r == float("inf"):
                    # Unconnected terminal (failed route): large but finite
                    # so the simulator stays solvable and the sample scores
                    # poorly rather than crashing.
                    r = 1e6
                parasitics.terminal_resistance[(ap.device, ap.pin)] = r
        network.nets[name] = parasitics

    network.coupling = extract_coupling(result, grid, tech)
    return network


def extract_schematic(net_names: list[str]) -> ParasiticNetwork:
    """The schematic-level (pre-layout) parasitic network: all zeros."""
    network = ParasiticNetwork()
    for name in net_names:
        network.nets[name] = NetParasitics(net=name)
    return network
