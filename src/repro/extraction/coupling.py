"""Inter-net coupling capacitance from parallel and crossing wires."""

from __future__ import annotations

from repro.router.grid import GridNode, RoutingGrid
from repro.router.result import RoutingResult
from repro.tech.technology import Technology

#: Same-layer neighbour offsets considered coupled, with 1/distance weight.
_LATERAL_OFFSETS = [
    ((1, 0), 1.0), ((-1, 0), 1.0), ((0, 1), 1.0), ((0, -1), 1.0),
    ((2, 0), 0.5), ((-2, 0), 0.5), ((0, 2), 0.5), ((0, -2), 0.5),
]


def lateral_coupling(tech: Technology, layer: int, pitch: float, weight: float) -> float:
    """Coupling capacitance for one cell-pair of same-layer parallel run.

    The layer's coupling constant is quoted at minimum spacing; on the
    routing grid the spacing is (pitch - width), so the value is scaled by
    min_spacing / actual_spacing and by the neighbour weight.
    """
    lyr = tech.layer(layer)
    spacing = max(pitch - tech.rules.default_width(layer), lyr.min_spacing)
    scale = lyr.min_spacing / spacing
    return lyr.coupling_cap * pitch * scale * weight


def vertical_coupling(tech: Technology, lower_layer: int, pitch: float) -> float:
    """Crossover capacitance where wires on adjacent layers overlap."""
    width = tech.rules.default_width(lower_layer)
    # Parallel-plate over the overlap area with an inter-layer constant of
    # the same magnitude as area cap to substrate.
    return tech.layer(lower_layer).area_cap * pitch * width * 2.0


def extract_coupling(
    result: RoutingResult, grid: RoutingGrid, tech: Technology
) -> dict[tuple[str, str], float]:
    """Total coupling capacitance between every pair of routed nets.

    Returns a dict keyed by sorted net-name pairs, in farads.
    """
    cell_owner: dict[GridNode, str] = {}
    for name, route in result.routes.items():
        for cell in route.cells():
            cell_owner[cell] = name

    coupling: dict[tuple[str, str], float] = {}

    def add(net_a: str, net_b: str, value: float) -> None:
        if net_a == net_b:
            return
        key = (net_a, net_b) if net_a < net_b else (net_b, net_a)
        coupling[key] = coupling.get(key, 0.0) + value

    pitch = grid.pitch
    for cell, net in cell_owner.items():
        ix, iy, layer = cell
        for (dx, dy), weight in _LATERAL_OFFSETS:
            other = cell_owner.get((ix + dx, iy + dy, layer))
            if other is not None and other != net:
                # Each pair is visited from both sides; halve to compensate.
                add(net, other, 0.5 * lateral_coupling(tech, layer, pitch, weight))
        if layer + 1 < grid.num_layers:
            above = cell_owner.get((ix, iy, layer + 1))
            if above is not None and above != net:
                add(net, above, vertical_coupling(tech, layer, pitch))
    return coupling
