"""Parasitic extraction (R + C + coupling C) from routed geometry.

Replaces Calibre PEX (DESIGN.md section 2): rule-based extraction over grid
geometry, producing a reduced star RC model per net plus inter-net coupling
capacitors, consumed directly by the MNA simulator.
"""

from repro.extraction.parasitics import (
    NetParasitics,
    ParasiticNetwork,
    extract,
    extract_schematic,
)
from repro.extraction.rc import path_resistance, segment_capacitance, segment_resistance

__all__ = [
    "NetParasitics",
    "ParasiticNetwork",
    "extract",
    "extract_schematic",
    "path_resistance",
    "segment_capacitance",
    "segment_resistance",
]
