"""Parasitic extraction (R + C + coupling C) from routed geometry.

Replaces Calibre PEX (DESIGN.md section 2): rule-based extraction over grid
geometry, producing a reduced star RC model per net plus inter-net coupling
capacitors, consumed directly by the MNA simulator.

:func:`extract` is the instrumented pipeline entry point: it honors
fault-injection plans for the ``"extraction"`` stage and converts any
internal failure into a typed
:class:`~repro.reliability.errors.ExtractionError`.
"""

from repro.extraction.parasitics import (
    NetParasitics,
    ParasiticNetwork,
    extract_schematic,
)
from repro.extraction.parasitics import extract as _extract_impl
from repro.extraction.rc import path_resistance, segment_capacitance, segment_resistance
from repro.reliability.errors import ExtractionError, ReproError
from repro.reliability.faults import maybe_inject


def extract(result, grid, tech) -> ParasiticNetwork:
    """Extract reduced parasitics from a routed solution.

    Raises:
        ExtractionError: extraction failed (or a fault was injected).
    """
    maybe_inject("extraction")
    try:
        return _extract_impl(result, grid, tech)
    except ReproError:
        raise
    except Exception as exc:
        raise ExtractionError(f"parasitic extraction failed: {exc}",
                              stage="extraction") from exc


__all__ = [
    "NetParasitics",
    "ParasiticNetwork",
    "extract",
    "extract_schematic",
    "path_resistance",
    "segment_capacitance",
    "segment_resistance",
]
