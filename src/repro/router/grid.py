"""The 3D routing grid.

The grid discretizes the die into ``(nx, ny, num_layers)`` cells at a
configurable routing pitch (a multiple of the rule grid pitch).  One net may
own a cell; because the pitch exceeds min-width + min-spacing, same-layer
spacing between different nets is DRC-clean by construction.

The grid also performs **pin access assignment** (Figure 1(c) of the paper):
each pin is mapped to a free grid cell on its layer; colliding pins are
deterministically shifted to the nearest free cell.
"""

from __future__ import annotations

import numpy as np

from repro.placement.layout import Placement
from repro.reliability.errors import RoutingError
from repro.router.guidance import AccessPoint
from repro.tech.layers import Direction
from repro.tech.technology import Technology

GridNode = tuple[int, int, int]

#: Occupancy value for a free cell.
FREE = -1
#: Occupancy value for a blocked cell (device body on M1).
BLOCKED = -2


class RoutingGrid:
    """3D occupancy grid over a placement.

    Args:
        placement: the placed circuit.
        tech: technology providing layer stack and rules.
        pitch: routing pitch in micrometers (default 0.5).
        halo: free margin around the placement bounding box, in micrometers.
    """

    def __init__(
        self,
        placement: Placement,
        tech: Technology,
        pitch: float = 0.5,
        halo: float = 2.0,
    ) -> None:
        if pitch < tech.rules.grid_pitch:
            raise ValueError(
                f"routing pitch {pitch} below rule pitch {tech.rules.grid_pitch}"
            )
        self.placement = placement
        self.tech = tech
        self.pitch = pitch

        x0, y0, x1, y1 = placement.bounding_box()
        self.origin = (x0 - halo, y0 - halo)
        self.nx = int(np.ceil((x1 - x0 + 2 * halo) / pitch)) + 1
        self.ny = int(np.ceil((y1 - y0 + 2 * halo) / pitch)) + 1
        self.num_layers = tech.num_layers

        # occupancy[ix, iy, l]: FREE, BLOCKED, or net index.
        self.occupancy = np.full((self.nx, self.ny, self.num_layers), FREE,
                                 dtype=np.int32)
        # PathFinder-style history cost, grown on congested cells.
        self.history = np.zeros((self.nx, self.ny, self.num_layers), dtype=float)

        self.net_index: dict[str, int] = {
            name: i for i, name in enumerate(sorted(placement.circuit.nets))
        }
        self.net_names: list[str] = sorted(placement.circuit.nets)

        self._block_device_bodies()
        self.access_points: dict[str, list[AccessPoint]] = {}
        self._assign_pin_access()

    # -- coordinate transforms --------------------------------------------------

    def to_cell(self, x: float, y: float, layer: int = 0) -> GridNode:
        """Snap physical (x, y) on ``layer`` to the nearest grid cell."""
        ix = int(round((x - self.origin[0]) / self.pitch))
        iy = int(round((y - self.origin[1]) / self.pitch))
        return (ix, iy, layer)

    def to_um(self, cell: GridNode) -> tuple[float, float, int]:
        """Physical center (x, y, layer) of a grid cell."""
        ix, iy, layer = cell
        return (
            self.origin[0] + ix * self.pitch,
            self.origin[1] + iy * self.pitch,
            layer,
        )

    def in_bounds(self, cell: GridNode) -> bool:
        ix, iy, layer = cell
        return 0 <= ix < self.nx and 0 <= iy < self.ny and 0 <= layer < self.num_layers

    def mirror_cell(self, cell: GridNode) -> GridNode:
        """Mirror a cell about the placement symmetry axis.

        The doubled axis coordinate is rounded once so mirroring is an exact
        involution that preserves cell adjacency.
        """
        axis_ix = (self.placement.symmetry_axis - self.origin[0]) / self.pitch
        mirror_sum = int(round(2.0 * axis_ix))
        ix, iy, layer = cell
        return (mirror_sum - ix, iy, layer)

    # -- setup -------------------------------------------------------------------

    def _block_device_bodies(self) -> None:
        """Block M1 over device bodies (no routing over active regions).

        MOS/cap/res bodies block layer 0 except where pins land; dummies
        block layer 0 entirely.  Upper layers stay free.
        """
        for name in self.placement.positions:
            x0, y0, x1, y1 = self.placement.device_box(name)
            ix0 = max(0, int(np.floor((x0 - self.origin[0]) / self.pitch)))
            iy0 = max(0, int(np.floor((y0 - self.origin[1]) / self.pitch)))
            ix1 = min(self.nx - 1, int(np.ceil((x1 - self.origin[0]) / self.pitch)))
            iy1 = min(self.ny - 1, int(np.ceil((y1 - self.origin[1]) / self.pitch)))
            self.occupancy[ix0:ix1 + 1, iy0:iy1 + 1, 0] = BLOCKED

    def _assign_pin_access(self) -> None:
        """Map every connected pin to a unique free cell (pin access).

        Pins land on their snapped cell when available; otherwise they
        spiral outward to the nearest cell not taken by another pin.  The
        chosen cell is reserved for the pin's net.
        """
        circuit = self.placement.circuit
        taken: dict[GridNode, tuple[str, str]] = {}
        for net_name in self.net_names:
            net = circuit.net(net_name)
            aps: list[AccessPoint] = []
            for device_name, pin_name in net.connections:
                x, y = self.placement.pin_position(device_name, pin_name)
                layer = circuit.device(device_name).pin(pin_name).layer
                cell = self._find_access_cell(self.to_cell(x, y, layer), taken)
                taken[cell] = (device_name, pin_name)
                self.occupancy[cell] = self.net_index[net_name]
                aps.append(AccessPoint(
                    net=net_name, device=device_name, pin=pin_name,
                    cell=cell, position=(x, y),
                ))
            self.access_points[net_name] = aps

    def _find_access_cell(
        self, cell: GridNode, taken: dict[GridNode, tuple[str, str]]
    ) -> GridNode:
        """Nearest in-bounds cell not already used as an access point."""
        ix, iy, layer = cell
        ix = min(max(ix, 0), self.nx - 1)
        iy = min(max(iy, 0), self.ny - 1)
        for radius in range(0, max(self.nx, self.ny)):
            for dx in range(-radius, radius + 1):
                for dy in range(-radius, radius + 1):
                    if max(abs(dx), abs(dy)) != radius:
                        continue
                    candidate = (ix + dx, iy + dy, layer)
                    if not self.in_bounds(candidate):
                        continue
                    if candidate in taken:
                        continue
                    # Device-body blockage is fine for a pin (the pin sits on
                    # the body); another net's reservation is not.
                    if self.occupancy[candidate] >= 0:
                        continue
                    return candidate
        raise RoutingError("no free access cell found; grid exhausted",
                           stage="pin_access")

    # -- occupancy helpers ---------------------------------------------------------

    def owner(self, cell: GridNode) -> int:
        return int(self.occupancy[cell])

    def claim(self, cell: GridNode, net: str) -> None:
        self.occupancy[cell] = self.net_index[net]

    def release_net(self, net: str) -> None:
        """Free every cell owned by a net, keeping its access points."""
        idx = self.net_index[net]
        self.occupancy[self.occupancy == idx] = FREE
        for ap in self.access_points.get(net, []):
            self.occupancy[ap.cell] = idx

    def is_available(self, cell: GridNode, net: str) -> bool:
        """Whether a net may occupy a cell (free or already its own)."""
        occ = int(self.occupancy[cell])
        if occ == FREE:
            return True
        if occ == BLOCKED:
            return False
        return occ == self.net_index[net]

    def preferred_direction(self, layer: int) -> Direction:
        return self.tech.layer(layer).direction

    def congestion_map(self) -> np.ndarray:
        """Fraction of occupied (non-free) cells per layer, shape (L,)."""
        used = (self.occupancy >= 0).sum(axis=(0, 1)).astype(float)
        return used / float(self.nx * self.ny)
