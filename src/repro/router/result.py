"""Routing results: per-net paths, wirelength and via statistics."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.router.guidance import AccessPoint

GridCell = tuple[int, int, int]


@dataclass
class NetRoute:
    """The routed geometry of one net.

    Attributes:
        net: net name.
        paths: list of grid-cell paths; each path connects a new terminal to
            the already-routed tree (Steiner decomposition).
        access_points: the net's access points, in terminal order.
        symmetric_ok: for nets in a symmetry pair, whether the mirror
            constraint was honored exactly.
    """

    net: str
    paths: list[list[GridCell]] = field(default_factory=list)
    access_points: list[AccessPoint] = field(default_factory=list)
    symmetric_ok: bool = True

    def cells(self) -> set[GridCell]:
        """All grid cells occupied by this net."""
        occupied: set[GridCell] = set()
        for path in self.paths:
            occupied.update(path)
        return occupied

    def segments(self) -> list[tuple[GridCell, GridCell]]:
        """Consecutive cell pairs along every path (unit wire/via edges)."""
        edges = []
        for path in self.paths:
            for a, b in zip(path, path[1:]):
                edges.append((a, b))
        return edges

    def wirelength(self) -> int:
        """Number of planar (same-layer) unit segments."""
        return sum(1 for a, b in self.segments() if a[2] == b[2])

    def via_count(self) -> int:
        """Number of layer-changing unit segments."""
        return sum(1 for a, b in self.segments() if a[2] != b[2])

    def is_connected(self) -> bool:
        """Whether the union of paths connects all access points."""
        if len(self.access_points) <= 1:
            return True
        cells = self.cells()
        if not cells:
            return False
        adjacency: dict[GridCell, set[GridCell]] = {c: set() for c in cells}
        for a, b in self.segments():
            adjacency[a].add(b)
            adjacency[b].add(a)
        start = self.access_points[0].cell
        if start not in cells:
            return False
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for nxt in adjacency[node]:
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return all(ap.cell in seen for ap in self.access_points)


@dataclass
class RoutingResult:
    """A complete routing solution for a circuit.

    Attributes:
        routes: per-net routes keyed by net name.
        failed_nets: nets the router could not complete.
        iterations: rip-up-and-reroute iterations used.
    """

    routes: dict[str, NetRoute] = field(default_factory=dict)
    failed_nets: list[str] = field(default_factory=list)
    iterations: int = 0

    @property
    def success(self) -> bool:
        return not self.failed_nets

    def total_wirelength(self) -> int:
        return sum(route.wirelength() for route in self.routes.values())

    def total_vias(self) -> int:
        return sum(route.via_count() for route in self.routes.values())

    def cell_owners(self) -> dict[GridCell, list[str]]:
        """Map each occupied cell to the nets using it (for overlap checks)."""
        owners: dict[GridCell, list[str]] = {}
        for name, route in self.routes.items():
            for cell in route.cells():
                owners.setdefault(cell, []).append(name)
        return owners

    def overlaps(self) -> dict[GridCell, list[str]]:
        """Cells claimed by more than one net."""
        return {c: nets for c, nets in self.cell_owners().items() if len(nets) > 1}
