"""Precomputed cost fields for the A* inner loop.

The router's per-node arithmetic — occupancy/blockage tests, history and
present-penalty lookups, per-direction guidance-scaled step costs, and the
multi-target heuristic — is folded into flat arrays once per
``route_connection`` so the expansion loop is pure lookups:

* ``add``: additive cost of *entering* a cell (``history_weight * history``
  plus the soft-mode present penalty), with ``inf`` marking impassable
  cells.  One comparison against ``inf`` replaces the bounds / blocked /
  ownership branch cascade.
* ``h``: the admissible heuristic for every cell, a vectorized ``min`` over
  the target coordinate arrays (the seed router re-derived this from a
  Python generator on every heap push).
* ``step_x`` / ``step_y``: per-layer planar step costs (wire cost, wrong-way
  penalty, guidance ``C[d]`` and per-layer multipliers premultiplied).

All fields use a **padded** layout: the grid is embedded in an
``(nx + 2, ny + 2, nl + 2)`` box whose border cells carry ``add = inf``.
Neighbor indices of in-grid cells are then always valid, so the expansion
loop needs no bounds checks at all.

:meth:`CostField.quantize` detects when the step-cost alphabet lies on a
dyadic lattice (all costs are exact multiples of ``2**-k``).  Integer cost
arithmetic is then *bit-exact* with the float arithmetic of the reference
router, which is what lets the bucketed queue engine (see
``repro.router.pqueue``) batch equal-priority frontier nodes without
changing a single routed path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.reliability.errors import RoutingError
from repro.router.grid import BLOCKED, FREE, GridNode, RoutingGrid

INF = float("inf")

#: Candidate dyadic quantization scales, coarse to fine.
_QUANT_SCALES = tuple(2 ** k for k in range(0, 21))

#: Integer cost values must keep every partial sum below this bound so the
#: equivalent float sums are exact (dyadics below 2**52 add without
#: rounding).
_EXACT_SUM_BOUND = 1 << 52

#: Cached marker for "this field's costs do not quantize".
_NO_QUANT = ("no-quant",)


def validate_connection_inputs(
    guidance_vec: "np.ndarray | None",
    layer_multipliers: "np.ndarray | None",
    num_layers: int,
) -> tuple[tuple[float, float, float], "np.ndarray | None"]:
    """Validate guidance / layer-multiplier inputs for one connection.

    A NaN or infinite guidance entry, or a negative / non-finite layer
    multiplier, would silently poison every g-score it touches; both raise
    :class:`~repro.reliability.errors.RoutingError` naming the offending
    value.  Shape errors keep raising ``ValueError`` (API contract).
    """
    if guidance_vec is None:
        guid = (1.0, 1.0, 1.0)
    else:
        arr = np.asarray(guidance_vec, dtype=float)
        if arr.shape != (3,):
            raise ValueError(
                f"guidance_vec must have shape (3,), got {arr.shape}")
        if not np.all(np.isfinite(arr)):
            raise RoutingError(
                f"non-finite guidance_vec entry: {arr.tolist()}",
                stage="routing", details={"guidance_vec": arr.tolist()})
        if np.any(arr < 0.0):
            raise RoutingError(
                f"negative guidance_vec entry: {arr.tolist()}",
                stage="routing", details={"guidance_vec": arr.tolist()})
        guid = (float(arr[0]), float(arr[1]), float(arr[2]))

    mult = None
    if layer_multipliers is not None:
        mult = np.asarray(layer_multipliers, dtype=float)
        if mult.shape != (num_layers,):
            raise ValueError(
                f"layer_multipliers needs {num_layers} entries, got "
                f"{len(mult)}")
        if not np.all(np.isfinite(mult)):
            raise RoutingError(
                f"non-finite layer_multipliers entry: {mult.tolist()}",
                stage="routing", details={"layer_multipliers": mult.tolist()})
        if np.any(mult < 0.0):
            raise RoutingError(
                f"negative layer_multipliers entry: {mult.tolist()}",
                stage="routing", details={"layer_multipliers": mult.tolist()})
    return guid, mult


@dataclass
class QuantizedField:
    """Integer twin of a :class:`CostField` on a dyadic cost lattice.

    Attributes:
        scale: ``int_cost = float_cost * scale`` for every alphabet member.
        add: int64 additive-entry costs (padded flat); ``impassable`` marks
            blocked cells (any value >= it is unreachable).
        h: int64 heuristic (padded flat).
        step_x / step_y: int64 planar step cost per *padded* layer index.
        via: integer via step cost.
        impassable: sentinel additive cost for blocked cells.
        f_bound: exclusive upper bound on any reachable f value; the bucket
            queue packs ``(f, g)`` keys with this modulus.
        add_list / h_list / step_x_list / step_y_list: plain-list mirrors
            of the arrays for the sequential small-batch loop (Python list
            indexing beats numpy scalar indexing by ~10x).
        h_factor: integer multiplier applied to ``h`` per push (folds
            ``h_scale * scale`` when ``h`` is the shared unscaled
            Manhattan field; 1 when ``h`` is a full precomputed field).
    """

    scale: int
    add: np.ndarray
    h: np.ndarray
    step_x: np.ndarray
    step_y: np.ndarray
    via: int
    impassable: int
    f_bound: int
    add_list: list
    h_list: list
    h_factor: int
    step_x_list: list
    step_y_list: list


class CostField:
    """Flat per-connection cost arrays over the padded grid.

    Built once per :meth:`AStarRouter.route_connection
    <repro.router.astar.AStarRouter.route_connection>`; every engine
    (reference, scalar, bucketed) reads its costs from here so their
    arithmetic — and therefore their tie-breaking — cannot diverge.
    """

    def __init__(
        self,
        grid: RoutingGrid,
        *,
        net: str,
        guid: tuple[float, float, float],
        layer_multipliers: "np.ndarray | None",
        soft: bool,
        targets: "set[GridNode] | frozenset[GridNode]",
        wire_cost: float,
        wrong_way_penalty: float,
        via_cost: float,
        present_penalty: float,
        history_weight: float,
        layer_aware_h: bool = False,
        add_core: "AddField | None" = None,
        man_cache: "dict | None" = None,
    ) -> None:
        nx, ny, nl = grid.nx, grid.ny, grid.num_layers
        self.nx, self.ny, self.nl = nx, ny, nl
        self.nyp, self.nlp = ny + 2, nl + 2
        self.dix = self.nyp * self.nlp  # +x neighbor stride (padded)
        self.soft = soft
        self.layer_aware_h = layer_aware_h

        # Per-(layer, axis) planar step cost, matching the seed router's
        # arithmetic term for term (identical float rounding).
        planar = np.empty((nl, 2), dtype=np.float64)
        for layer in range(nl):
            pref_axis = grid.preferred_direction(layer).axis
            scale = 1.0 if layer_multipliers is None else float(
                layer_multipliers[layer])
            for axis in range(2):
                base = wire_cost if axis == pref_axis else (
                    wire_cost * wrong_way_penalty)
                planar[layer, axis] = base * guid[axis] * scale
        self.planar = planar
        self.via = via_cost * guid[2]
        self.h_scale = float(planar.min())

        # Padded per-layer planar step costs, indexed by ``node % nlp``.
        pad_x = np.zeros(self.nlp, dtype=np.float64)
        pad_y = np.zeros(self.nlp, dtype=np.float64)
        pad_x[1:-1] = planar[:, 0]
        pad_y[1:-1] = planar[:, 1]
        self.step_x = pad_x.tolist()
        self.step_y = pad_y.tolist()
        self._step_x_arr = pad_x
        self._step_y_arr = pad_y

        # Additive entry costs.  The scalar engine keeps the history and
        # present-penalty terms separate in soft mode so its float sums
        # associate exactly like the seed router's
        # ``((g + step) + extra) + history`` chain; the combined array is
        # what the integer (bucketed) engine and the quantization probe
        # use — integer sums are association-free.  The list mirrors are
        # exposed lazily (see the properties below): a bucketed route
        # never touches the float lists and skips their ``tolist`` cost.
        if add_core is None:
            add_core = build_add_core(
                grid, net=net, soft=soft,
                present_penalty=present_penalty,
                history_weight=history_weight)
        self._add_core = add_core
        self.add = add_core.padded_combined()

        self._man_cache = man_cache
        self._quant_core: "tuple | None" = None
        self.retarget(targets)

    @property
    def add_list(self) -> list:
        """Float combined-cost list (scalar engine only), lazily built."""
        return self._add_core.padded_combined_list()

    @property
    def extra_list(self) -> "list | None":
        """Soft-mode present-penalty list; None in hard mode."""
        return self._add_core.padded_split()[0] if self.soft else None

    @property
    def hist_list(self) -> list:
        """History term list in the seed router's association order."""
        if self.soft:
            return self._add_core.padded_split()[1]
        return self._add_core.padded_combined_list()

    def retarget(self, targets: "set[GridNode] | frozenset[GridNode]"
                 ) -> None:
        """Point the target-dependent fields at a new target set.

        Everything else (step costs, additive costs, quantization core)
        depends only on (grid state, guidance, multipliers, mode) and is
        reused across the connections of one net attempt — the router
        caches the field per that key and calls this per connection.
        """
        nx, ny, nl = self.nx, self.ny, self.nl
        self.target_nodes = frozenset(self.encode(t) for t in targets)
        self.single_target = (next(iter(self.target_nodes))
                              if len(self.target_nodes) == 1 else None)

        # Heuristic field.  Single-target searches (the iterative router's
        # only shape) read an *unscaled* integer Manhattan-distance field,
        # cacheable across connections/guidance in ``man_cache``, and the
        # engines multiply by ``h_factor`` per push — ``man * h_scale`` is
        # the seed router's exact float expression.  Multi-target or
        # layer-aware searches precompute the full scaled field as a
        # vectorized min over the target coordinate arrays.
        if self.single_target is not None and not self.layer_aware_h:
            target = next(iter(targets))
            key = (target[0], target[1])
            man_cache = self._man_cache
            cached = None if man_cache is None else man_cache.get(key)
            if cached is None:
                mx = np.abs(np.arange(-1, nx + 1, dtype=np.int64)
                            - target[0])
                my = np.abs(np.arange(-1, ny + 1, dtype=np.int64)
                            - target[1])
                man = np.broadcast_to(
                    (mx[:, None] + my[None, :])[:, :, None],
                    (nx + 2, self.nyp, self.nlp)).reshape(-1)
                cached = (man, man.tolist())
                if man_cache is not None:
                    man_cache[key] = cached
            self.h, self.h_list = cached
            self.h_factor = self.h_scale
            self._h_is_man = True
            return

        txs = np.fromiter((t[0] for t in targets), dtype=np.int64,
                          count=len(targets))
        tys = np.fromiter((t[1] for t in targets), dtype=np.int64,
                          count=len(targets))
        tls = np.fromiter((t[2] for t in targets), dtype=np.int64,
                          count=len(targets))
        man = (np.abs(np.arange(nx)[:, None] - txs[None, :])[:, None, :]
               + np.abs(np.arange(ny)[:, None] - tys[None, :])[None, :, :])
        h_t = man * self.h_scale  # (nx, ny, T)
        if self.layer_aware_h:
            ldist = np.abs(np.arange(nl)[:, None] - tls[None, :])  # (nl, T)
            h_core = (h_t[:, :, None, :] + ldist[None, None, :, :] * self.via
                      ).min(axis=3)
        else:
            h_core = np.broadcast_to(
                h_t.min(axis=2)[:, :, None], (nx, ny, nl))
        h = np.zeros((nx + 2, self.nyp, self.nlp), dtype=np.float64)
        h[1:-1, 1:-1, 1:-1] = h_core
        self.h = h.reshape(-1)
        self.h_list = self.h.tolist()
        self.h_factor = 1.0
        self._h_is_man = False

    # -- coordinates ---------------------------------------------------------

    def encode(self, cell: GridNode) -> int:
        """Padded flat index of a grid cell."""
        return ((cell[0] + 1) * self.nyp + cell[1] + 1) * self.nlp + cell[2] + 1

    def decode(self, node: int) -> GridNode:
        """Grid cell of a padded flat index."""
        layer = node % self.nlp
        rem = node // self.nlp
        return (rem // self.nyp - 1, rem % self.nyp - 1, layer - 1)

    # -- quantization --------------------------------------------------------

    def quantize(self) -> QuantizedField | None:
        """Integer twin of this field, or None when costs don't quantize.

        Succeeds when every member of the step-cost alphabet (planar costs,
        via cost, additive entry costs, heuristic scale) is an exact dyadic
        multiple of ``2**-k`` for some ``k <= 20`` *and* the worst-case
        accumulated path cost stays below ``2**52`` in integer units — the
        regime where float and integer cost arithmetic agree bit for bit.

        The target-independent part (scale probe, bounds, integer cost
        arrays) is computed once per field and survives :meth:`retarget`;
        only the heuristic packaging is per-target.
        """
        core = self._quant_core
        if core is None:
            core = self._quant_core = self._build_quant_core()
        if core is _NO_QUANT:
            return None
        (scale, via_i, impassable, f_bound, add_i, add_i_list,
         sx_i, sy_i, sx_i_list, sy_i_list, h_factor_man) = core
        if self._h_is_man:
            # The cached Manhattan field is already integer and unscaled;
            # the integer factor folds ``h_scale * scale`` (exact dyadic).
            h_i = self.h
            h_i_list = self.h_list
            h_factor = h_factor_man
        else:
            h_i = (self.h * scale).astype(np.int64)
            h_i_list = h_i.tolist()
            h_factor = 1
        return QuantizedField(
            scale=scale,
            add=add_i,
            h=h_i,
            step_x=sx_i,
            step_y=sy_i,
            via=via_i,
            impassable=impassable,
            f_bound=f_bound,
            add_list=add_i_list,
            h_list=h_i_list,
            h_factor=h_factor,
            step_x_list=sx_i_list,
            step_y_list=sy_i_list,
        )

    def _build_quant_core(self):
        """Target-independent quantization pieces, or the no-quant marker."""
        # Probe the *separate* terms of the reference float chain
        # ``((g + step) + extra) + history`` — each must be dyadic for the
        # chain to be rounding-free under any association.
        add_alphabet = self._add_core.alphabet()
        alphabet = np.concatenate([
            self.planar.reshape(-1),
            np.array([self.via, self.h_scale], dtype=np.float64),
            add_alphabet,
        ])
        if float(min(self.planar.min(), self.via)) <= 0.0:
            # A zero step cost would let a relaxation re-enter the (f, g)
            # bucket currently being expanded, breaking the monotone-queue
            # invariant; the heap engine handles that regime instead.
            return _NO_QUANT
        # Fast-fail probe: if a value isn't dyadic at the finest scale it
        # isn't dyadic at any coarser one (power-of-two scaling is exact),
        # so continuous-guidance connections pay one check, not 21.
        finest = alphabet * _QUANT_SCALES[-1]
        if not np.all(finest == np.floor(finest)):
            return _NO_QUANT
        scale = None
        for cand in _QUANT_SCALES:
            scaled = alphabet * cand  # exact: power-of-two scaling
            if np.all(scaled == np.floor(scaled)):
                scale = cand
                break
        if scale is None:
            return _NO_QUANT
        max_step = float(max(self.planar.max(), self.via))
        # Upper bound on any finite additive entry cost (history + extra).
        max_add = 2.0 * float(add_alphabet.max()) if add_alphabet.size else 0.0
        cells = self.nx * self.ny * self.nl
        g_bound = int((cells + 1) * (max_step + max_add + 1.0) * scale) + 1
        h_bound = int((self.nx + self.ny) * self.h_scale * scale
                      + self.nl * self.via * scale) + 1
        f_bound = g_bound + h_bound
        if f_bound >= _EXACT_SUM_BOUND:
            return _NO_QUANT
        impassable = f_bound + 1
        add_i, add_i_list = self._add_core.quantized_add(scale, impassable)
        sx_i = (self._step_x_arr * scale).astype(np.int64)
        sy_i = (self._step_y_arr * scale).astype(np.int64)
        return (scale, int(self.via * scale), impassable, f_bound,
                add_i, add_i_list, sx_i, sy_i,
                sx_i.tolist(), sy_i.tolist(), int(self.h_scale * scale))


class AddField:
    """Additive-entry cost volumes for one (net, mode) grid state.

    Holds the occupancy/ownership-derived parts of the cost field — the
    only parts that rescan the grid — and caches their padded / quantized
    forms so :class:`~repro.router.iterative.IterativeRouter` can reuse
    one instance across every connection of a net attempt (the grid is
    static within one attempt).  Instances must be discarded whenever
    occupancy or history change.

    Attributes:
        combined: ``history + extra`` with ``inf`` on impassable cells
            (bucketed engine / quantization probe).
        history: the weighted history term alone (finite everywhere).
        extra: present penalty on foreign cells (soft mode), ``inf`` on
            impassable cells.
    """

    def __init__(self, combined: np.ndarray, history: np.ndarray,
                 extra: np.ndarray) -> None:
        self.combined = combined
        self.history = history
        self.extra = extra
        #: (guidance, multipliers, mode) -> reusable :class:`CostField`
        #: (see ``AStarRouter.route_connection``); dies with the instance,
        #: so it can never outlive the grid state it was built from.
        self.field_cache: dict = {}
        self._padded: "np.ndarray | None" = None
        self._padded_list: "list | None" = None
        self._split: "tuple[list, list] | None" = None
        self._alphabet: "np.ndarray | None" = None
        self._quant: dict[tuple[int, int], tuple[np.ndarray, list]] = {}

    def _pad(self, volume: np.ndarray, fill: float) -> np.ndarray:
        nx, ny, nl = self.combined.shape
        padded = np.full((nx + 2, ny + 2, nl + 2), fill, dtype=np.float64)
        padded[1:-1, 1:-1, 1:-1] = volume
        return padded.reshape(-1)

    def padded_combined(self) -> np.ndarray:
        """Padded flat combined costs (array), cached."""
        if self._padded is None:
            self._padded = self._pad(self.combined, INF)
        return self._padded

    def padded_combined_list(self) -> list:
        """Plain-list mirror of :meth:`padded_combined`, cached."""
        if self._padded_list is None:
            self._padded_list = self.padded_combined().tolist()
        return self._padded_list

    def padded_split(self) -> "tuple[list, list]":
        """Padded flat (extra, history) lists for soft mode, cached."""
        if self._split is None:
            self._split = (self._pad(self.extra, INF).tolist(),
                           self._pad(self.history, 0.0).tolist())
        return self._split

    def alphabet(self) -> np.ndarray:
        """Distinct finite history and extra values, cached."""
        if self._alphabet is None:
            self._alphabet = np.concatenate([
                np.unique(self.history),
                np.unique(self.extra[np.isfinite(self.extra)]),
            ])
        return self._alphabet

    def quantized_add(self, scale: int, impassable: int
                      ) -> "tuple[np.ndarray, list]":
        """Integer padded combined costs at ``scale``, cached per key."""
        key = (scale, impassable)
        cached = self._quant.get(key)
        if cached is None:
            flat = self.padded_combined()
            add_i = np.where(np.isfinite(flat), flat * scale,
                             float(impassable)).astype(np.int64)
            cached = (add_i, add_i.tolist())
            self._quant[key] = cached
        return cached


def build_add_core(
    grid: RoutingGrid,
    *,
    net: str,
    soft: bool,
    present_penalty: float,
    history_weight: float,
) -> AddField:
    """The unpadded additive-entry cost volumes for one (net, mode).

    Split out of :class:`CostField` so
    :class:`~repro.router.iterative.IterativeRouter` can reuse it across
    the guidance-dependent connections of one net attempt (occupancy and
    history only change between net attempts, never inside one).
    """
    occ = grid.occupancy
    hist = grid.history * history_weight
    net_idx = grid.net_index[net]
    foreign = (occ != FREE) & (occ != BLOCKED) & (occ != net_idx)
    if soft:
        extra = np.where(occ == BLOCKED, INF,
                         foreign * present_penalty)
        combined = np.where(occ == BLOCKED, INF,
                            hist + foreign * present_penalty)
    else:
        impassable = (occ == BLOCKED) | foreign
        extra = np.where(impassable, INF, 0.0)
        combined = np.where(impassable, INF, hist)
    return AddField(combined=combined, history=hist, extra=extra)
