"""Symmetric net-pair routing support.

A symmetry pair is routed by mirroring the left net's paths about the
placement symmetry axis.  When the mirrored geometry is unavailable (blocked
or taken by another net) the right net falls back to independent routing and
the route is flagged asymmetric — the asymmetry then shows up as parasitic
mismatch in extraction/simulation, exactly the mechanism the paper's offset
and CMRR metrics respond to.
"""

from __future__ import annotations

from repro.router.grid import GridNode, RoutingGrid
from repro.router.result import NetRoute


def mirror_path(grid: RoutingGrid, path: list[GridNode]) -> list[GridNode]:
    """Mirror a path about the symmetry axis (exact involution)."""
    return [grid.mirror_cell(cell) for cell in path]


def mirror_available(
    grid: RoutingGrid, paths: list[list[GridNode]], net: str
) -> bool:
    """Whether every mirrored cell is in bounds and available to ``net``."""
    for path in paths:
        for cell in path:
            mirrored = grid.mirror_cell(cell)
            if not grid.in_bounds(mirrored):
                return False
            if not grid.is_available(mirrored, net):
                return False
    return True


def mirror_route(
    grid: RoutingGrid, left_route: NetRoute, right_net: str
) -> NetRoute | None:
    """Build the right net's route as the mirror of the left route.

    Returns None when the mirrored geometry is unavailable or does not land
    on the right net's access points (pin positions not exactly mirrored).
    """
    if not mirror_available(grid, left_route.paths, right_net):
        return None
    mirrored_paths = [mirror_path(grid, p) for p in left_route.paths]
    right_aps = grid.access_points[right_net]
    route = NetRoute(
        net=right_net, paths=mirrored_paths, access_points=right_aps,
        symmetric_ok=True,
    )
    # The mirrored tree must reach every right-net access point; otherwise a
    # slightly asymmetric placement broke pin correspondence.
    if not route.is_connected():
        return None
    return route
