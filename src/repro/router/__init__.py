"""Grid-based analog detailed router with symmetry and guidance support."""

from repro.router.astar import ENGINES, AStarRouter, CostParams
from repro.router.costfield import CostField, build_add_core
from repro.router.pqueue import BucketQueue
from repro.router.global_route import (
    GlobalRouteConfig,
    congestion_map,
    seed_history_from_congestion,
)
from repro.router.grid import FREE, BLOCKED, GridNode, RoutingGrid
from repro.router.guidance import AccessPoint, RoutingGuidance, uniform_guidance
from repro.router.iterative import IterativeRouter, RouterConfig
from repro.router.postprocess import DrcViolation, check_drc, post_process
from repro.router.result import NetRoute, RoutingResult

__all__ = [
    "AStarRouter",
    "BucketQueue",
    "CostField",
    "CostParams",
    "ENGINES",
    "build_add_core",
    "FREE",
    "BLOCKED",
    "GridNode",
    "RoutingGrid",
    "GlobalRouteConfig",
    "congestion_map",
    "seed_history_from_congestion",
    "AccessPoint",
    "RoutingGuidance",
    "uniform_guidance",
    "IterativeRouter",
    "RouterConfig",
    "DrcViolation",
    "check_drc",
    "post_process",
    "NetRoute",
    "RoutingResult",
]
