"""Grid-based analog detailed router with symmetry and guidance support."""

from repro.router.astar import AStarRouter, CostParams
from repro.router.global_route import (
    GlobalRouteConfig,
    congestion_map,
    seed_history_from_congestion,
)
from repro.router.grid import FREE, BLOCKED, GridNode, RoutingGrid
from repro.router.guidance import AccessPoint, RoutingGuidance, uniform_guidance
from repro.router.iterative import IterativeRouter, RouterConfig
from repro.router.postprocess import DrcViolation, check_drc, post_process
from repro.router.result import NetRoute, RoutingResult

__all__ = [
    "AStarRouter",
    "CostParams",
    "FREE",
    "BLOCKED",
    "GridNode",
    "RoutingGrid",
    "GlobalRouteConfig",
    "congestion_map",
    "seed_history_from_congestion",
    "AccessPoint",
    "RoutingGuidance",
    "uniform_guidance",
    "IterativeRouter",
    "RouterConfig",
    "DrcViolation",
    "check_drc",
    "post_process",
    "NetRoute",
    "RoutingResult",
]
