"""Post-processing: DRC checking and violation repair (paper's step (2)).

Because the routing pitch exceeds min-width + min-spacing, same-layer
spacing between distinct nets is clean by construction; the checks that
remain meaningful on the grid are cell exclusivity (short check), bounds,
connectivity, and symmetry conformance.  ``post_process`` repairs repairable
violations by ripping up and re-routing the offending nets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.router.grid import RoutingGrid
from repro.router.result import NetRoute, RoutingResult


@dataclass(frozen=True)
class DrcViolation:
    """A single design-rule or constraint violation.

    Attributes:
        kind: "short" | "open" | "bounds" | "symmetry" | "unrouted".
        nets: nets involved.
        detail: human-readable description.
    """

    kind: str
    nets: tuple[str, ...]
    detail: str


def check_drc(result: RoutingResult, grid: RoutingGrid) -> list[DrcViolation]:
    """Run all grid-level DRC/constraint checks on a routing solution."""
    violations: list[DrcViolation] = []

    for cell, nets in sorted(result.overlaps().items()):
        violations.append(DrcViolation(
            kind="short", nets=tuple(sorted(nets)),
            detail=f"cell {cell} shared by {sorted(nets)}",
        ))

    for name, route in sorted(result.routes.items()):
        for cell in route.cells():
            if not grid.in_bounds(cell):
                violations.append(DrcViolation(
                    kind="bounds", nets=(name,),
                    detail=f"net {name} leaves the grid at {cell}",
                ))
                break
        if not route.is_connected():
            violations.append(DrcViolation(
                kind="open", nets=(name,),
                detail=f"net {name} does not connect all access points",
            ))

    for net_name in sorted(result.failed_nets):
        violations.append(DrcViolation(
            kind="unrouted", nets=(net_name,), detail=f"net {net_name} unrouted",
        ))

    circuit = grid.placement.circuit
    for pair in circuit.symmetry_pairs:
        route_b = result.routes.get(pair.net_b)
        if route_b is not None and not route_b.symmetric_ok:
            violations.append(DrcViolation(
                kind="symmetry", nets=(pair.net_a, pair.net_b),
                detail=f"pair ({pair.net_a}, {pair.net_b}) routed asymmetrically",
            ))
    return violations


def _dedupe_route(route: NetRoute) -> None:
    """Drop repeated consecutive cells inside each path (grid-snap loops)."""
    for i, path in enumerate(route.paths):
        cleaned = [path[0]] if path else []
        for cell in path[1:]:
            if cell != cleaned[-1]:
                cleaned.append(cell)
        route.paths[i] = cleaned


def post_process(
    result: RoutingResult, grid: RoutingGrid
) -> tuple[RoutingResult, list[DrcViolation]]:
    """Clean paths and report the violations that remain.

    Shorts and opens are hard errors the iterative router should not emit;
    symmetry violations are soft (they degrade performance but the layout is
    manufacturable), matching the paper's treatment.
    """
    for route in result.routes.values():
        _dedupe_route(route)
    return result, check_drc(result, grid)
