"""Probabilistic global routing: congestion estimation before detail route.

The paper frames guidance over "routing cost maps for global routing"
(Section 4.1).  This module builds that map: each net spreads unit routing
demand over its bounding box (the classic probabilistic / FLUTE-free
congestion model), giving a per-cell expected-usage map.  The iterative
router can pre-seed its PathFinder history from this map so that nets
routed early already avoid predicted hotspots.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.router.grid import RoutingGrid


@dataclass(frozen=True)
class GlobalRouteConfig:
    """Congestion-estimation knobs.

    Attributes:
        demand_weight: scale of the per-net demand spread over its bbox.
        history_scale: multiplier converting normalized congestion into
            initial PathFinder history cost.
        hotspot_percentile: cells above this demand percentile count as
            hotspots in :func:`hotspots`.
    """

    demand_weight: float = 1.0
    history_scale: float = 2.0
    hotspot_percentile: float = 90.0


def congestion_map(grid: RoutingGrid, config: GlobalRouteConfig | None = None
                   ) -> np.ndarray:
    """Expected routing demand per (x, y) cell, shape (nx, ny).

    Every net with >= 2 terminals spreads ``demand_weight * (hpwl /
    bbox_area)`` uniformly over its terminal bounding box — the standard
    probabilistic-usage approximation.
    """
    cfg = config or GlobalRouteConfig()
    demand = np.zeros((grid.nx, grid.ny))
    for net_name, aps in grid.access_points.items():
        if len(aps) < 2:
            continue
        xs = [ap.cell[0] for ap in aps]
        ys = [ap.cell[1] for ap in aps]
        x0, x1 = min(xs), max(xs)
        y0, y1 = min(ys), max(ys)
        hpwl = (x1 - x0) + (y1 - y0)
        if hpwl == 0:
            continue
        area = (x1 - x0 + 1) * (y1 - y0 + 1)
        demand[x0:x1 + 1, y0:y1 + 1] += cfg.demand_weight * hpwl / area
    return demand


def normalized_congestion(grid: RoutingGrid,
                          config: GlobalRouteConfig | None = None
                          ) -> np.ndarray:
    """Congestion map scaled to [0, 1]."""
    demand = congestion_map(grid, config)
    peak = demand.max()
    if peak > 0:
        demand = demand / peak
    return demand


def hotspots(grid: RoutingGrid, config: GlobalRouteConfig | None = None
             ) -> list[tuple[int, int]]:
    """(x, y) cells whose demand exceeds the hotspot percentile."""
    cfg = config or GlobalRouteConfig()
    demand = congestion_map(grid, cfg)
    positive = demand[demand > 0]
    if positive.size == 0:
        return []
    threshold = np.percentile(positive, cfg.hotspot_percentile)
    coords = np.argwhere(demand >= max(threshold, 1e-12))
    return [tuple(int(v) for v in c) for c in coords]


def seed_history_from_congestion(
    grid: RoutingGrid, config: GlobalRouteConfig | None = None
) -> np.ndarray:
    """Pre-seed the grid's PathFinder history with predicted congestion.

    Applies the same 2D congestion cost to every layer.  Returns the map
    used, for inspection.
    """
    cfg = config or GlobalRouteConfig()
    normalized = normalized_congestion(grid, cfg)
    grid.history += cfg.history_scale * normalized[:, :, None]
    return normalized
