"""Multi-source multi-target A* maze routing on the 3D grid.

Move costs honor per-layer preferred directions, via costs, PathFinder
history, and the paper's non-uniform guidance: a step along direction ``d``
is scaled by the active guidance vector's ``C[d]`` (Section 3.1 — a smaller
``C[d]`` encourages wires along ``d``).

The search runs over integer-encoded cells (``(ix * ny + iy) * nl + l``)
with flattened occupancy/history views — routing is the inner loop of
dataset generation, so constant factors matter.  G-scores, parents, and
visited marks live in preallocated flat arrays indexed by the cell
encoding, reused across connections via a generation stamp (bumping one
counter invalidates the whole previous search in O(1), so no per-call
allocation or dict churn).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.router.grid import BLOCKED, FREE, GridNode, RoutingGrid


@dataclass(frozen=True)
class CostParams:
    """Router cost knobs.

    Attributes:
        wire_cost: base cost of a planar unit step in the preferred
            direction.
        wrong_way_penalty: multiplier for planar steps against the layer's
            preferred direction.
        via_cost: base cost of a layer change.
        present_penalty: additive cost of stepping onto a cell owned by
            another net (soft/negotiation mode only).
        history_weight: multiplier on the grid's history cost.
    """

    wire_cost: float = 1.0
    wrong_way_penalty: float = 2.5
    via_cost: float = 4.0
    present_penalty: float = 25.0
    history_weight: float = 1.0


class AStarRouter:
    """Routes individual 2-pin connections on a :class:`RoutingGrid`."""

    def __init__(self, grid: RoutingGrid, params: CostParams | None = None) -> None:
        self.grid = grid
        self.params = params or CostParams()
        # Search state, persistent across connections: validity of a cell's
        # g/parent entry is "stamp[cell] == current generation", so a new
        # search begins by bumping the generation instead of reallocating.
        total = grid.nx * grid.ny * grid.num_layers
        self._g = np.empty(total, dtype=np.float64)
        self._parent = np.empty(total, dtype=np.int64)
        self._stamp = np.zeros(total, dtype=np.uint32)
        self._generation = 0
        #: Nodes expanded across every search this router has run; the
        #: ``astar_expansions`` observability counter reads the deltas.
        self.expansions_total = 0

    def _next_generation(self) -> int:
        if self._generation >= np.iinfo(np.uint32).max:
            # Wrapped: stale stamps could alias the new generation.
            self._stamp.fill(0)
            self._generation = 0
        self._generation += 1
        return self._generation

    def route_connection(
        self,
        net: str,
        sources: set[GridNode],
        targets: set[GridNode],
        guidance_vec: np.ndarray | None = None,
        soft: bool = False,
        max_expansions: int = 200_000,
        layer_multipliers: "np.ndarray | None" = None,
    ) -> list[GridNode] | None:
        """Find a cheapest path from any source to any target.

        Args:
            net: the net being routed (its own cells are passable).
            sources: starting cells (the already-routed tree).
            targets: goal cells.
            guidance_vec: length-3 guidance multipliers (x, y, z); neutral
                when None.
            soft: when True, cells owned by other nets are passable at
                ``present_penalty`` (negotiation mode); when False they are
                hard blocked.
            max_expansions: search budget before giving up.
            layer_multipliers: optional per-layer planar-cost multipliers
                (length = num layers); e.g. supply nets get > 1 on thin
                lower metals to prefer routing on thick upper metals.

        Returns:
            The path as a list of grid cells from a source to a target, or
            None when no path exists within budget.
        """
        if not sources or not targets:
            return None
        grid = self.grid
        p = self.params
        if guidance_vec is None:
            guid = (1.0, 1.0, 1.0)
        else:
            arr = np.asarray(guidance_vec, dtype=float)
            if arr.shape != (3,):
                raise ValueError(f"guidance_vec must have shape (3,), got {arr.shape}")
            guid = (float(arr[0]), float(arr[1]), float(arr[2]))

        nx, ny, nl = grid.nx, grid.ny, grid.num_layers
        if layer_multipliers is not None and len(layer_multipliers) != nl:
            raise ValueError(
                f"layer_multipliers needs {nl} entries, got "
                f"{len(layer_multipliers)}")
        # Per-(layer, axis) planar step cost, and via step cost.
        planar_cost = [[0.0, 0.0] for _ in range(nl)]
        for layer in range(nl):
            pref_axis = grid.preferred_direction(layer).axis
            scale = 1.0 if layer_multipliers is None else float(
                layer_multipliers[layer])
            for axis in range(2):
                base = p.wire_cost if axis == pref_axis else (
                    p.wire_cost * p.wrong_way_penalty)
                planar_cost[layer][axis] = base * guid[axis] * scale
        via_cost = p.via_cost * guid[2]
        h_scale = min(min(row) for row in planar_cost)

        # Integer cell encoding matching C-order of the occupancy array.
        def encode(cell: GridNode) -> int:
            return (cell[0] * ny + cell[1]) * nl + cell[2]

        target_nodes = {encode(t) for t in targets}
        target_xy = [(t[0], t[1]) for t in targets]
        single_target = target_xy[0] if len(target_xy) == 1 else None

        def heuristic(ix: int, iy: int) -> float:
            if single_target is not None:
                tx, ty = single_target
                return (abs(tx - ix) + abs(ty - iy)) * h_scale
            return min(abs(tx - ix) + abs(ty - iy) for tx, ty in target_xy) * h_scale

        occ = grid.occupancy.reshape(-1)
        history = grid.history.reshape(-1)
        net_idx = grid.net_index[net]
        hist_w = p.history_weight
        present = p.present_penalty
        free, blocked = FREE, BLOCKED

        open_heap: list[tuple[float, float, int]] = []
        g_arr, parent_arr, stamp = self._g, self._parent, self._stamp
        gen = self._next_generation()
        # Sources are pushed in sorted order so tie-breaking (and therefore
        # the chosen path) is identical across processes regardless of set
        # iteration order / PYTHONHASHSEED.
        for s in sorted(sources):
            node = encode(s)
            g_arr[node] = 0.0
            parent_arr[node] = -1
            stamp[node] = gen
            heapq.heappush(open_heap, (heuristic(s[0], s[1]), 0.0, node))

        heappush, heappop = heapq.heappush, heapq.heappop
        expansions = 0
        found: list[GridNode] | None = None
        while open_heap and expansions < max_expansions:
            _, g, node = heappop(open_heap)
            if g > g_arr[node]:
                continue
            if node in target_nodes:
                found = self._reconstruct(parent_arr, node, ny, nl)
                break
            expansions += 1
            layer = node % nl
            rem = node // nl
            iy = rem % ny
            ix = rem // ny
            costs = planar_cost[layer]
            # (neighbor, step_cost, in_bounds)
            steps = (
                (node + ny * nl, costs[0], ix + 1 < nx),
                (node - ny * nl, costs[0], ix >= 1),
                (node + nl, costs[1], iy + 1 < ny),
                (node - nl, costs[1], iy >= 1),
                (node + 1, via_cost, layer + 1 < nl),
                (node - 1, via_cost, layer >= 1),
            )
            for nxt, step, ok in steps:
                if not ok:
                    continue
                owner = occ[nxt]
                if owner == blocked:
                    continue
                extra = 0.0
                if owner != free and owner != net_idx:
                    if not soft:
                        continue
                    extra = present
                new_g = g + step + extra + hist_w * history[nxt]
                if stamp[nxt] != gen or new_g < g_arr[nxt]:
                    g_arr[nxt] = new_g
                    parent_arr[nxt] = node
                    stamp[nxt] = gen
                    n_rem = nxt // nl
                    heappush(open_heap,
                             (new_g + heuristic(n_rem // ny, n_rem % ny), new_g, nxt))
        self.expansions_total += expansions
        return found

    @staticmethod
    def _reconstruct(
        parent: np.ndarray, end: int, ny: int, nl: int
    ) -> list[GridNode]:
        path: list[GridNode] = []
        node = end
        while node != -1:
            layer = node % nl
            rem = node // nl
            path.append((rem // ny, rem % ny, layer))
            node = int(parent[node])
        path.reverse()
        return path
