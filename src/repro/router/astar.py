"""Multi-source multi-target A* maze routing on the 3D grid.

Move costs honor per-layer preferred directions, via costs, PathFinder
history, and the paper's non-uniform guidance: a step along direction ``d``
is scaled by the active guidance vector's ``C[d]`` (Section 3.1 — a smaller
``C[d]`` encourages wires along ``d``).

Routing is the inner loop of dataset generation, so the router ships three
interchangeable engines that return **bit-identical paths and expansion
counts** (enforced by test and by the perf gate):

``reference``
    The seed implementation, kept verbatim: a ``heapq`` of
    ``(f, g, node)`` float tuples over flat numpy arrays, with the
    heuristic recomputed on every push.  It defines the semantics — pop
    order ``(f, g, node)``, first-writer-wins on g-score ties — and is the
    baseline the perf benchmark measures speedups against.

``scalar``
    The fast general engine: all per-node arithmetic is precomputed into
    flat cost fields (``repro.router.costfield``) over a *padded* grid, so
    the unrolled expansion loop is pure Python-list lookups — no numpy
    scalar indexing, no bounds checks, no per-push heuristic calls.

``bucketed``
    Used automatically when the step-cost alphabet quantizes onto a dyadic
    lattice (:meth:`CostField.quantize`): costs become exact integers, the
    open set becomes a monotone :class:`~repro.router.pqueue.BucketQueue`
    over packed ``(f, g)`` keys, and all equal-priority frontier nodes are
    expanded as one numpy batch — bounds, occupancy, stamp, and relaxation
    masks computed for the whole batch in one shot.

G-scores, parents, and visited marks live in preallocated flat state
indexed by the cell encoding, reused across connections via a generation
stamp (bumping one counter invalidates the whole previous search in O(1));
the stamp wraps safely at ``uint32`` max by zero-filling once.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.router.costfield import (
    CostField,
    INF,
    validate_connection_inputs,
)
from repro.router.grid import BLOCKED, FREE, GridNode, RoutingGrid
from repro.router.pqueue import BucketQueue

#: Engine names accepted by :class:`AStarRouter`.
ENGINES = ("auto", "scalar", "bucketed", "reference")

_STAMP_MAX = np.iinfo(np.uint32).max


@dataclass(frozen=True)
class CostParams:
    """Router cost knobs.

    Attributes:
        wire_cost: base cost of a planar unit step in the preferred
            direction.
        wrong_way_penalty: multiplier for planar steps against the layer's
            preferred direction.
        via_cost: base cost of a layer change.
        present_penalty: additive cost of stepping onto a cell owned by
            another net (soft/negotiation mode only).
        history_weight: multiplier on the grid's history cost.
        layer_aware_h: add the ``|l_t - l| * via_cost`` layer-distance term
            to the heuristic.  Tighter and still admissible (a path to a
            target on another layer must pay that many vias), typically
            ~35% fewer expansions — but tighter f-values break g-score
            ties differently, so routed paths may be *equal-cost
            different* from the default heuristic's.  Off by default to
            keep paths bit-identical with the seed router.
    """

    wire_cost: float = 1.0
    wrong_way_penalty: float = 2.5
    via_cost: float = 4.0
    present_penalty: float = 25.0
    history_weight: float = 1.0
    layer_aware_h: bool = False


class _SearchState:
    """Flat g/parent/stamp storage with O(1) generation reset."""

    __slots__ = ("g", "parent", "stamp", "generation")

    def __init__(self, g, parent, stamp) -> None:
        self.g = g
        self.parent = parent
        self.stamp = stamp
        self.generation = 0

    def next_generation(self) -> int:
        if self.generation >= _STAMP_MAX:
            # Wrapped: stale stamps could alias the new generation.
            if isinstance(self.stamp, list):
                self.stamp[:] = [0] * len(self.stamp)
            else:
                self.stamp.fill(0)
            self.generation = 0
        self.generation += 1
        return self.generation


class AStarRouter:
    """Routes individual 2-pin connections on a :class:`RoutingGrid`.

    Args:
        grid: the occupancy grid to search.
        params: cost knobs; defaults to :class:`CostParams`.
        engine: ``"auto"`` (bucketed when costs quantize, scalar
            otherwise), or force ``"scalar"`` / ``"bucketed"`` /
            ``"reference"``.  A forced ``"bucketed"`` engine falls back to
            scalar on connections whose costs don't quantize.
    """

    def __init__(self, grid: RoutingGrid, params: CostParams | None = None,
                 engine: str = "auto") -> None:
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}, want one of {ENGINES}")
        self.grid = grid
        self.params = params or CostParams()
        self.engine = engine
        #: Nodes expanded across every search this router has run; the
        #: ``astar_expansions`` observability counter reads the deltas.
        self.expansions_total = 0
        #: Expansions split by the engine that performed them
        #: (``route_expansions_total{mode=...}``).
        self.expansions_by_mode: dict[str, int] = {}
        #: Batched-expansion size summary (``route_frontier_batch``):
        #: count / sum / min / max of nodes expanded per frontier batch.
        self.batch_stats = {"count": 0, "sum": 0.0,
                            "min": float("inf"), "max": float("-inf")}
        #: Same summary since the last :meth:`take_batch_window` — the
        #: iterative router drains it per net for per-net observability.
        self.batch_window = {"count": 0, "sum": 0.0,
                             "min": float("inf"), "max": float("-inf")}
        #: When True, every search unions the cells whose occupancy or
        #: history it examined into :attr:`reads` (used by the
        #: speculative net-parallel router to validate that a search
        #: would be identical against a mutated grid).
        self.record_reads = False
        self.reads: set[GridNode] = set()
        # Engine state, lazily allocated per family.
        self._ref_state: _SearchState | None = None
        self._list_state: _SearchState | None = None
        # (tx, ty) -> padded unscaled Manhattan heuristic field, shared
        # across connections, guidance vectors, and rip-up rounds.
        self._man_cache: dict = {}

    # -- state management ---------------------------------------------------

    @property
    def _generation(self) -> int:
        """Reference-engine generation (kept for test compatibility)."""
        return self._get_ref_state().generation

    @_generation.setter
    def _generation(self, value: int) -> None:
        self._get_ref_state().generation = value

    def _get_ref_state(self) -> _SearchState:
        if self._ref_state is None:
            grid = self.grid
            total = grid.nx * grid.ny * grid.num_layers
            self._ref_state = _SearchState(
                np.empty(total, dtype=np.float64),
                np.empty(total, dtype=np.int64),
                np.zeros(total, dtype=np.uint32),
            )
        return self._ref_state

    def _padded_total(self) -> int:
        grid = self.grid
        return (grid.nx + 2) * (grid.ny + 2) * (grid.num_layers + 2)

    def _get_list_state(self) -> _SearchState:
        if self._list_state is None:
            total = self._padded_total()
            self._list_state = _SearchState(
                [0.0] * total, [-1] * total, [0] * total)
        return self._list_state

    def _note_expansions(self, mode: str, count: int) -> None:
        self.expansions_total += count
        self.expansions_by_mode[mode] = (
            self.expansions_by_mode.get(mode, 0) + count)

    def _observe_batch(self, size: int) -> None:
        for stats in (self.batch_stats, self.batch_window):
            stats["count"] += 1
            stats["sum"] += size
            if size < stats["min"]:
                stats["min"] = size
            if size > stats["max"]:
                stats["max"] = size

    def take_batch_window(self) -> dict:
        """Return and reset the batch summary since the last call."""
        window = self.batch_window
        self.batch_window = {"count": 0, "sum": 0.0,
                             "min": float("inf"), "max": float("-inf")}
        return window

    # -- public API ---------------------------------------------------------

    def route_connection(
        self,
        net: str,
        sources: set[GridNode],
        targets: set[GridNode],
        guidance_vec: np.ndarray | None = None,
        soft: bool = False,
        max_expansions: int = 200_000,
        layer_multipliers: "np.ndarray | None" = None,
        add_core=None,
    ) -> list[GridNode] | None:
        """Find a cheapest path from any source to any target.

        Args:
            net: the net being routed (its own cells are passable).
            sources: starting cells (the already-routed tree).
            targets: goal cells.
            guidance_vec: length-3 guidance multipliers (x, y, z); neutral
                when None.  Non-finite or negative entries raise
                :class:`~repro.reliability.errors.RoutingError`.
            soft: when True, cells owned by other nets are passable at
                ``present_penalty`` (negotiation mode); when False they are
                hard blocked.
            max_expansions: search budget before giving up.
            layer_multipliers: optional per-layer planar-cost multipliers
                (length = num layers); e.g. supply nets get > 1 on thin
                lower metals to prefer routing on thick upper metals.
                Non-finite or negative entries raise ``RoutingError``.
            add_core: optional precomputed
                :class:`~repro.router.costfield.AddField` for this
                (net, soft) state, reused across a net's connections.

        Returns:
            The path as a list of grid cells from a source to a target, or
            None when no path exists within budget.
        """
        if not sources or not targets:
            return None
        if self.record_reads:
            # Source / target occupancy is consumed outside the search
            # (the iterative router's conflict scan reads ``owner()`` on
            # every path cell, and a path starts on a source); count them
            # as reads so speculative validation sees those dependencies.
            self.reads.update(sources)
            self.reads.update(targets)
        guid, mult = validate_connection_inputs(
            guidance_vec, layer_multipliers, self.grid.num_layers)
        p = self.params
        if self.engine == "reference":
            return self._route_reference(
                net, sources, targets, guid, mult, soft, max_expansions)
        # A caller-provided add_core pins the grid state, so the whole
        # cost field (and its quantization core) is reusable across that
        # net's connections whenever guidance/multipliers repeat — only
        # the target-dependent heuristic needs repointing.
        field = None
        cache_key = None
        if add_core is not None:
            cache_key = (guid,
                         None if mult is None else tuple(mult.tolist()),
                         soft, p.layer_aware_h)
            field = add_core.field_cache.get(cache_key)
        if field is not None:
            field.retarget(targets)
        else:
            field = CostField(
                self.grid, net=net, guid=guid, layer_multipliers=mult,
                soft=soft, targets=targets,
                wire_cost=p.wire_cost, wrong_way_penalty=p.wrong_way_penalty,
                via_cost=p.via_cost, present_penalty=p.present_penalty,
                history_weight=p.history_weight,
                layer_aware_h=p.layer_aware_h, add_core=add_core,
                man_cache=self._man_cache)
            if cache_key is not None:
                add_core.field_cache[cache_key] = field
        if self.engine in ("auto", "bucketed"):
            quantized = field.quantize()
            if quantized is not None:
                return self._route_bucketed(
                    field, quantized, sources, max_expansions)
        return self._route_scalar(field, sources, max_expansions)

    # -- scalar engine ------------------------------------------------------

    def _route_scalar(self, field: CostField, sources, max_expansions):
        """Heap engine over precomputed list fields (padded, unrolled).

        Emulates the reference engine exactly: identical pop keys
        ``(f, g, node)``, identical float arithmetic (see
        ``costfield.CostField``), identical first-writer-wins relaxation.
        """
        state = self._get_list_state()
        g_l, par_l, st_l = state.g, state.parent, state.stamp
        gen = state.next_generation()
        add_l = field.add_list
        h_l = field.h_list
        step_x, step_y = field.step_x, field.step_y
        via = field.via
        nlp = field.nlp
        dx = field.dix
        dy = nlp
        hf = field.h_factor
        t_set = field.target_nodes
        reads: list[int] | None = [] if self.record_reads else None
        heap: list[tuple[float, float, int]] = []
        push, pop = heapq.heappush, heapq.heappop
        for s in sorted(sources):
            node = field.encode(s)
            g_l[node] = 0.0
            par_l[node] = -1
            st_l[node] = gen
            push(heap, (h_l[node] * hf, 0.0, node))

        if field.extra_list is None:
            expansions, found = self._scalar_hard(
                heap, g_l, par_l, st_l, gen, add_l, h_l, hf, step_x, step_y,
                via, nlp, dx, dy, t_set, max_expansions, reads)
        else:
            expansions, found = self._scalar_soft(
                heap, g_l, par_l, st_l, gen, field.extra_list,
                field.hist_list, h_l, hf, step_x, step_y, via, nlp, dx, dy,
                t_set, max_expansions, reads)
        self._note_expansions("scalar", expansions)
        if reads is not None:
            self._absorb_reads(field, reads)
        if found < 0:
            return None
        return self._reconstruct_padded(field, par_l, found)

    @staticmethod
    def _scalar_hard(heap, g_l, par_l, st_l, gen, add_l, h_l, hf, step_x,
                     step_y, via, nlp, dx, dy, t_set, max_expansions, reads):
        """Hard-blocked inner loop: ``new_g = (g + step) + add``.

        With hard blocking the seed router's ``extra`` term is always
        ``0.0`` on passable cells, so folding history into one additive
        field keeps float sums bit-identical.
        """
        push, pop = heapq.heappush, heapq.heappop
        inf = INF
        expansions = 0
        found = -1
        while heap and expansions < max_expansions:
            _, g, node = pop(heap)
            if g > g_l[node]:
                continue
            if node in t_set:
                found = node
                break
            expansions += 1
            if reads is not None:
                reads.extend((node + dx, node - dx, node + dy, node - dy,
                              node + 1, node - 1))
            layer = node % nlp
            cx = step_x[layer]
            cy = step_y[layer]
            # Six unrolled neighbor relaxations in the seed's direction
            # order (+x, -x, +y, -y, +z, -z).  Padding guarantees every
            # index is valid; ``add == inf`` marks blocked/foreign/border.
            nxt = node + dx
            a = add_l[nxt]
            if a != inf:
                ng = g + cx + a
                if st_l[nxt] != gen:
                    g_l[nxt] = ng
                    par_l[nxt] = node
                    st_l[nxt] = gen
                    push(heap, (ng + h_l[nxt] * hf, ng, nxt))
                elif ng < g_l[nxt]:
                    g_l[nxt] = ng
                    par_l[nxt] = node
                    push(heap, (ng + h_l[nxt] * hf, ng, nxt))
            nxt = node - dx
            a = add_l[nxt]
            if a != inf:
                ng = g + cx + a
                if st_l[nxt] != gen:
                    g_l[nxt] = ng
                    par_l[nxt] = node
                    st_l[nxt] = gen
                    push(heap, (ng + h_l[nxt] * hf, ng, nxt))
                elif ng < g_l[nxt]:
                    g_l[nxt] = ng
                    par_l[nxt] = node
                    push(heap, (ng + h_l[nxt] * hf, ng, nxt))
            nxt = node + dy
            a = add_l[nxt]
            if a != inf:
                ng = g + cy + a
                if st_l[nxt] != gen:
                    g_l[nxt] = ng
                    par_l[nxt] = node
                    st_l[nxt] = gen
                    push(heap, (ng + h_l[nxt] * hf, ng, nxt))
                elif ng < g_l[nxt]:
                    g_l[nxt] = ng
                    par_l[nxt] = node
                    push(heap, (ng + h_l[nxt] * hf, ng, nxt))
            nxt = node - dy
            a = add_l[nxt]
            if a != inf:
                ng = g + cy + a
                if st_l[nxt] != gen:
                    g_l[nxt] = ng
                    par_l[nxt] = node
                    st_l[nxt] = gen
                    push(heap, (ng + h_l[nxt] * hf, ng, nxt))
                elif ng < g_l[nxt]:
                    g_l[nxt] = ng
                    par_l[nxt] = node
                    push(heap, (ng + h_l[nxt] * hf, ng, nxt))
            nxt = node + 1
            a = add_l[nxt]
            if a != inf:
                ng = g + via + a
                if st_l[nxt] != gen:
                    g_l[nxt] = ng
                    par_l[nxt] = node
                    st_l[nxt] = gen
                    push(heap, (ng + h_l[nxt] * hf, ng, nxt))
                elif ng < g_l[nxt]:
                    g_l[nxt] = ng
                    par_l[nxt] = node
                    push(heap, (ng + h_l[nxt] * hf, ng, nxt))
            nxt = node - 1
            a = add_l[nxt]
            if a != inf:
                ng = g + via + a
                if st_l[nxt] != gen:
                    g_l[nxt] = ng
                    par_l[nxt] = node
                    st_l[nxt] = gen
                    push(heap, (ng + h_l[nxt] * hf, ng, nxt))
                elif ng < g_l[nxt]:
                    g_l[nxt] = ng
                    par_l[nxt] = node
                    push(heap, (ng + h_l[nxt] * hf, ng, nxt))
        return expansions, found

    @staticmethod
    def _scalar_soft(heap, g_l, par_l, st_l, gen, extra_l, hist_l, h_l, hf,
                     step_x, step_y, via, nlp, dx, dy, t_set,
                     max_expansions, reads):
        """Soft-mode inner loop: ``new_g = ((g + step) + extra) + hist``.

        Keeps the present-penalty and history terms as separate additions
        in the seed router's association order — folding them first could
        shift the sum by an ulp and flip a float tie.
        """
        push, pop = heapq.heappush, heapq.heappop
        inf = INF
        expansions = 0
        found = -1
        deltas = (dx, -dx, dy, -dy, 1, -1)
        while heap and expansions < max_expansions:
            _, g, node = pop(heap)
            if g > g_l[node]:
                continue
            if node in t_set:
                found = node
                break
            expansions += 1
            if reads is not None:
                reads.extend(node + d for d in deltas)
            layer = node % nlp
            cx = step_x[layer]
            cy = step_y[layer]
            costs = (cx, cx, cy, cy, via, via)
            for i in range(6):
                nxt = node + deltas[i]
                e = extra_l[nxt]
                if e != inf:
                    ng = ((g + costs[i]) + e) + hist_l[nxt]
                    if st_l[nxt] != gen:
                        g_l[nxt] = ng
                        par_l[nxt] = node
                        st_l[nxt] = gen
                        push(heap, (ng + h_l[nxt] * hf, ng, nxt))
                    elif ng < g_l[nxt]:
                        g_l[nxt] = ng
                        par_l[nxt] = node
                        push(heap, (ng + h_l[nxt] * hf, ng, nxt))
        return expansions, found

    # -- bucketed engine ----------------------------------------------------

    #: Popped buckets at least this large take the vectorized numpy
    #: expansion path; smaller batches run the sequential integer loop
    #: (fixed numpy dispatch overhead dominates below this size).
    VECTOR_BATCH_MIN = 48

    def _route_bucketed(self, field: CostField, quantized, sources,
                        max_expansions):
        """Bucket-queue engine with batched frontier expansion.

        All nodes sharing one exact packed ``(f, g)`` integer priority pop
        as a batch.  Large batches relax all six neighbors of the whole
        batch with numpy (candidate generation, blocked masks, and
        winner-per-neighbor selection in one shot); small batches run an
        unrolled sequential integer loop with the queue push inlined.
        Both resolve candidates in node-major, direction-minor order — the
        order the reference loop would have visited them — and integer
        costs are bit-exact with the reference's float costs, so routed
        paths are identical.
        """
        state = self._get_list_state()
        g_l, par_l, st_l = state.g, state.parent, state.stamp
        gen = state.next_generation()
        add_l = quantized.add_list
        h_l = quantized.h_list
        step_x = quantized.step_x_list
        step_y = quantized.step_y_list
        via = quantized.via
        impassable = quantized.impassable
        hf = quantized.h_factor
        nlp = field.nlp
        dx = field.dix
        dy = nlp
        t_set = field.target_nodes
        queue = BucketQueue(quantized.f_bound)
        modulus = queue.modulus
        buckets = queue.buckets
        key_heap = queue.key_heap
        heappush, heappop = heapq.heappush, heapq.heappop
        vector_min = self.VECTOR_BATCH_MIN
        reads: set[int] | None = set() if self.record_reads else None
        for s in sorted(sources):
            node = field.encode(s)
            g_l[node] = 0
            par_l[node] = -1
            st_l[node] = gen
            queue.push(h_l[node] * hf, 0, node)

        expansions = 0
        found = -1
        b_count = 0
        b_sum = 0
        b_min = -1
        b_max = 0
        while key_heap and expansions < max_expansions:
            key = heappop(key_heap)
            nodes = buckets.pop(key)
            g = key % modulus
            if len(nodes) > 1:
                nodes.sort()
                if len(nodes) >= vector_min:
                    expansions, found, stop = self._expand_batch_vector(
                        quantized, field, queue, nodes, g, gen, state,
                        expansions, max_expansions, reads)
                    if stop:
                        break
                    continue
            batch_size = 0
            for node in nodes:
                if expansions >= max_expansions:
                    break
                if g_l[node] != g:
                    continue  # stale: improved after this push
                if node in t_set:
                    found = node
                    break
                expansions += 1
                batch_size += 1
                if reads is not None:
                    reads.update((node + dx, node - dx, node + dy,
                                  node - dy, node + 1, node - 1))
                layer = node % nlp
                cx = step_x[layer]
                cy = step_y[layer]
                nxt = node + dx
                a = add_l[nxt]
                if a != impassable:
                    ng = g + cx + a
                    if st_l[nxt] != gen:
                        g_l[nxt] = ng
                        par_l[nxt] = node
                        st_l[nxt] = gen
                        key = (ng + h_l[nxt] * hf) * modulus + ng
                        b = buckets.get(key)
                        if b is None:
                            buckets[key] = [nxt]
                            heappush(key_heap, key)
                        else:
                            b.append(nxt)
                    elif ng < g_l[nxt]:
                        g_l[nxt] = ng
                        par_l[nxt] = node
                        key = (ng + h_l[nxt] * hf) * modulus + ng
                        b = buckets.get(key)
                        if b is None:
                            buckets[key] = [nxt]
                            heappush(key_heap, key)
                        else:
                            b.append(nxt)
                nxt = node - dx
                a = add_l[nxt]
                if a != impassable:
                    ng = g + cx + a
                    if st_l[nxt] != gen:
                        g_l[nxt] = ng
                        par_l[nxt] = node
                        st_l[nxt] = gen
                        key = (ng + h_l[nxt] * hf) * modulus + ng
                        b = buckets.get(key)
                        if b is None:
                            buckets[key] = [nxt]
                            heappush(key_heap, key)
                        else:
                            b.append(nxt)
                    elif ng < g_l[nxt]:
                        g_l[nxt] = ng
                        par_l[nxt] = node
                        key = (ng + h_l[nxt] * hf) * modulus + ng
                        b = buckets.get(key)
                        if b is None:
                            buckets[key] = [nxt]
                            heappush(key_heap, key)
                        else:
                            b.append(nxt)
                nxt = node + dy
                a = add_l[nxt]
                if a != impassable:
                    ng = g + cy + a
                    if st_l[nxt] != gen:
                        g_l[nxt] = ng
                        par_l[nxt] = node
                        st_l[nxt] = gen
                        key = (ng + h_l[nxt] * hf) * modulus + ng
                        b = buckets.get(key)
                        if b is None:
                            buckets[key] = [nxt]
                            heappush(key_heap, key)
                        else:
                            b.append(nxt)
                    elif ng < g_l[nxt]:
                        g_l[nxt] = ng
                        par_l[nxt] = node
                        key = (ng + h_l[nxt] * hf) * modulus + ng
                        b = buckets.get(key)
                        if b is None:
                            buckets[key] = [nxt]
                            heappush(key_heap, key)
                        else:
                            b.append(nxt)
                nxt = node - dy
                a = add_l[nxt]
                if a != impassable:
                    ng = g + cy + a
                    if st_l[nxt] != gen:
                        g_l[nxt] = ng
                        par_l[nxt] = node
                        st_l[nxt] = gen
                        key = (ng + h_l[nxt] * hf) * modulus + ng
                        b = buckets.get(key)
                        if b is None:
                            buckets[key] = [nxt]
                            heappush(key_heap, key)
                        else:
                            b.append(nxt)
                    elif ng < g_l[nxt]:
                        g_l[nxt] = ng
                        par_l[nxt] = node
                        key = (ng + h_l[nxt] * hf) * modulus + ng
                        b = buckets.get(key)
                        if b is None:
                            buckets[key] = [nxt]
                            heappush(key_heap, key)
                        else:
                            b.append(nxt)
                nxt = node + 1
                a = add_l[nxt]
                if a != impassable:
                    ng = g + via + a
                    if st_l[nxt] != gen:
                        g_l[nxt] = ng
                        par_l[nxt] = node
                        st_l[nxt] = gen
                        key = (ng + h_l[nxt] * hf) * modulus + ng
                        b = buckets.get(key)
                        if b is None:
                            buckets[key] = [nxt]
                            heappush(key_heap, key)
                        else:
                            b.append(nxt)
                    elif ng < g_l[nxt]:
                        g_l[nxt] = ng
                        par_l[nxt] = node
                        key = (ng + h_l[nxt] * hf) * modulus + ng
                        b = buckets.get(key)
                        if b is None:
                            buckets[key] = [nxt]
                            heappush(key_heap, key)
                        else:
                            b.append(nxt)
                nxt = node - 1
                a = add_l[nxt]
                if a != impassable:
                    ng = g + via + a
                    if st_l[nxt] != gen:
                        g_l[nxt] = ng
                        par_l[nxt] = node
                        st_l[nxt] = gen
                        key = (ng + h_l[nxt] * hf) * modulus + ng
                        b = buckets.get(key)
                        if b is None:
                            buckets[key] = [nxt]
                            heappush(key_heap, key)
                        else:
                            b.append(nxt)
                    elif ng < g_l[nxt]:
                        g_l[nxt] = ng
                        par_l[nxt] = node
                        key = (ng + h_l[nxt] * hf) * modulus + ng
                        b = buckets.get(key)
                        if b is None:
                            buckets[key] = [nxt]
                            heappush(key_heap, key)
                        else:
                            b.append(nxt)
            if batch_size:
                b_count += 1
                b_sum += batch_size
                if b_min < 0 or batch_size < b_min:
                    b_min = batch_size
                if batch_size > b_max:
                    b_max = batch_size
            if found >= 0:
                break
        if b_count:
            for stats in (self.batch_stats, self.batch_window):
                stats["count"] += b_count
                stats["sum"] += b_sum
                if b_min < stats["min"]:
                    stats["min"] = b_min
                if b_max > stats["max"]:
                    stats["max"] = b_max
        self._note_expansions("bucketed", expansions)
        if reads is not None:
            self._absorb_reads(field, reads)
        if found < 0:
            return None
        return self._reconstruct_padded(field, par_l, found)

    def _expand_batch_vector(self, quantized, field, queue, nodes, g, gen,
                             state, expansions, max_expansions, reads):
        """Vectorized expansion of one large equal-priority batch.

        Returns ``(expansions, found, stop)``; exact emulation of popping
        the (sorted) batch nodes one by one from the reference heap.
        """
        g_l, par_l, st_l = state.g, state.parent, state.stamp
        t_set = field.target_nodes
        live = [n for n in nodes if g_l[n] == g]
        found = -1
        if not live:
            return expansions, found, False
        remaining = max_expansions - expansions
        first_hit = len(live)
        for i, n in enumerate(live):
            if n in t_set:
                first_hit = i
                break
        n_expand = min(first_hit, remaining)
        if first_hit < len(live) and first_hit < remaining:
            found = live[first_hit]
        if n_expand:
            self._observe_batch(n_expand)
            expansions += n_expand
            batch = np.asarray(live[:n_expand], dtype=np.int64)
            nlp = field.nlp
            strides = np.array([field.dix, -field.dix, nlp, -nlp, 1, -1],
                               dtype=np.int64)
            layer_idx = batch % nlp
            costs = np.empty((n_expand, 6), dtype=np.int64)
            costs[:, 0] = costs[:, 1] = quantized.step_x[layer_idx]
            costs[:, 2] = costs[:, 3] = quantized.step_y[layer_idx]
            costs[:, 4] = costs[:, 5] = quantized.via
            nb_flat = (batch[:, None] + strides[None, :]).ravel()
            add_flat = quantized.add[nb_flat]
            valid = add_flat < quantized.impassable
            if reads is not None:
                reads.update(nb_flat.tolist())
            nb_v = nb_flat[valid]
            if nb_v.size:
                ng_v = g + costs.ravel()[valid] + add_flat[valid]
                par_v = np.repeat(batch, 6)[valid]
                # Winner per neighbor: min new_g, earliest candidate in
                # sequential (node, direction) order on ties — exactly
                # the first writer the reference loop keeps.
                order = np.arange(nb_v.size)
                sel = np.lexsort((order, ng_v, nb_v))
                nb_s = nb_v[sel]
                keep = np.ones(nb_s.size, dtype=bool)
                keep[1:] = nb_s[1:] != nb_s[:-1]
                h_l = quantized.h_list
                hf = quantized.h_factor
                push = queue.push
                for nxt, ng, par in zip(nb_s[keep].tolist(),
                                        ng_v[sel][keep].tolist(),
                                        par_v[sel][keep].tolist()):
                    if st_l[nxt] != gen:
                        g_l[nxt] = ng
                        par_l[nxt] = par
                        st_l[nxt] = gen
                        push(ng + h_l[nxt] * hf, ng, nxt)
                    elif ng < g_l[nxt]:
                        g_l[nxt] = ng
                        par_l[nxt] = par
                        push(ng + h_l[nxt] * hf, ng, nxt)
        # Stop when the target was reached or the budget cut the batch
        # short (the reference loop would stop mid-heap too).
        stop = found >= 0 or n_expand < len(live)
        return expansions, found, stop

    # -- reference engine ---------------------------------------------------

    def _route_reference(self, net, sources, targets, guid, mult, soft,
                         max_expansions):
        """The seed router, verbatim: semantics oracle and perf baseline."""
        grid = self.grid
        p = self.params
        nx, ny, nl = grid.nx, grid.ny, grid.num_layers
        # Per-(layer, axis) planar step cost, and via step cost.
        planar_cost = [[0.0, 0.0] for _ in range(nl)]
        for layer in range(nl):
            pref_axis = grid.preferred_direction(layer).axis
            scale = 1.0 if mult is None else float(mult[layer])
            for axis in range(2):
                base = p.wire_cost if axis == pref_axis else (
                    p.wire_cost * p.wrong_way_penalty)
                planar_cost[layer][axis] = base * guid[axis] * scale
        via_cost = p.via_cost * guid[2]
        h_scale = min(min(row) for row in planar_cost)

        # Integer cell encoding matching C-order of the occupancy array.
        def encode(cell: GridNode) -> int:
            return (cell[0] * ny + cell[1]) * nl + cell[2]

        target_nodes = {encode(t) for t in targets}
        target_xy = [(t[0], t[1]) for t in targets]
        single_target = target_xy[0] if len(target_xy) == 1 else None
        if p.layer_aware_h:
            target_xyl = [(t[0], t[1], t[2]) for t in targets]

            def heuristic(ix: int, iy: int, l: int) -> float:
                return min(
                    (abs(tx - ix) + abs(ty - iy)) * h_scale
                    + abs(tl - l) * via_cost
                    for tx, ty, tl in target_xyl)
        else:
            def heuristic(ix: int, iy: int, l: int) -> float:
                if single_target is not None:
                    tx, ty = single_target
                    return (abs(tx - ix) + abs(ty - iy)) * h_scale
                return min(abs(tx - ix) + abs(ty - iy)
                           for tx, ty in target_xy) * h_scale

        occ = grid.occupancy.reshape(-1)
        history = grid.history.reshape(-1)
        net_idx = grid.net_index[net]
        hist_w = p.history_weight
        present = p.present_penalty
        free, blocked = FREE, BLOCKED

        open_heap: list[tuple[float, float, int]] = []
        state = self._get_ref_state()
        g_arr, parent_arr, stamp = state.g, state.parent, state.stamp
        gen = state.next_generation()
        # Sources are pushed in sorted order so tie-breaking (and therefore
        # the chosen path) is identical across processes regardless of set
        # iteration order / PYTHONHASHSEED.
        for s in sorted(sources):
            node = encode(s)
            g_arr[node] = 0.0
            parent_arr[node] = -1
            stamp[node] = gen
            heapq.heappush(open_heap, (heuristic(s[0], s[1], s[2]), 0.0, node))

        heappush, heappop = heapq.heappush, heapq.heappop
        expansions = 0
        found: list[GridNode] | None = None
        while open_heap and expansions < max_expansions:
            _, g, node = heappop(open_heap)
            if g > g_arr[node]:
                continue
            if node in target_nodes:
                found = self._reconstruct(parent_arr, node, ny, nl)
                break
            expansions += 1
            layer = node % nl
            rem = node // nl
            iy = rem % ny
            ix = rem // ny
            costs = planar_cost[layer]
            # (neighbor, step_cost, in_bounds)
            steps = (
                (node + ny * nl, costs[0], ix + 1 < nx),
                (node - ny * nl, costs[0], ix >= 1),
                (node + nl, costs[1], iy + 1 < ny),
                (node - nl, costs[1], iy >= 1),
                (node + 1, via_cost, layer + 1 < nl),
                (node - 1, via_cost, layer >= 1),
            )
            for nxt, step, ok in steps:
                if not ok:
                    continue
                owner = occ[nxt]
                if owner == blocked:
                    continue
                extra = 0.0
                if owner != free and owner != net_idx:
                    if not soft:
                        continue
                    extra = present
                new_g = g + step + extra + hist_w * history[nxt]
                if stamp[nxt] != gen or new_g < g_arr[nxt]:
                    g_arr[nxt] = new_g
                    parent_arr[nxt] = node
                    stamp[nxt] = gen
                    n_rem = nxt // nl
                    n_layer = nxt % nl
                    heappush(open_heap,
                             (new_g + heuristic(n_rem // ny, n_rem % ny,
                                                n_layer),
                              new_g, nxt))
        self._note_expansions("reference", expansions)
        return found

    # -- shared helpers -----------------------------------------------------

    def _absorb_reads(self, field: CostField, touched) -> None:
        """Union examined cells into :attr:`reads` (grid cells only)."""
        nx, ny, nl = field.nx, field.ny, field.nl
        for node in touched:
            cell = field.decode(node)
            if 0 <= cell[0] < nx and 0 <= cell[1] < ny and 0 <= cell[2] < nl:
                self.reads.add(cell)

    @staticmethod
    def _reconstruct_padded(field: CostField, parent, end: int
                            ) -> list[GridNode]:
        path: list[GridNode] = []
        node = end
        while node != -1:
            path.append(field.decode(node))
            node = int(parent[node])
        path.reverse()
        return path

    @staticmethod
    def _reconstruct(
        parent: np.ndarray, end: int, ny: int, nl: int
    ) -> list[GridNode]:
        path: list[GridNode] = []
        node = end
        while node != -1:
            layer = node % nl
            rem = node // nl
            path.append((rem // ny, rem % ny, layer))
            node = int(parent[node])
        path.reverse()
        return path
