"""Constraint-aware iterative routing (the paper's step (1), after [16]).

The router processes nets in criticality order — symmetric pairs first, then
signal nets by weight, then bias, then supplies.  Multi-terminal nets are
decomposed into 2-pin connections along a minimum spanning tree of their
access points.  Failed or conflicting nets trigger PathFinder-style
negotiation: the failing net routes in soft mode over other nets, the nets
it crossed are ripped up and re-queued, and history costs grow on the
contested cells.

Routing guidance enters through the cost function: each 2-pin connection is
routed with the blend of its endpoint access points' guidance vectors
(Section 3.2: "routing guidance C are honored via penalties in the cost
function along different directions for different pin access points").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.netlist.nets import Net, NetType
from repro.obs import NULL_CONTEXT, RunContext
from repro.reliability.faults import maybe_inject
from repro.router.astar import AStarRouter, CostParams
from repro.router.costfield import build_add_core
from repro.router.grid import GridNode, RoutingGrid
from repro.router.guidance import AccessPoint, RoutingGuidance
from repro.router.result import NetRoute, RoutingResult
from repro.router.symmetry import mirror_route


@dataclass
class RouterConfig:
    """Iterative router knobs.

    Attributes:
        cost: A* cost parameters.
        max_iterations: rip-up-and-reroute rounds before giving up.
        history_increment: history cost added to contested cells per round.
        max_expansions: A* search budget per connection.
        layer_cost_by_type: optional per-net-type planar-cost multipliers
            per layer, e.g. ``{NetType.POWER: (2.0, 2.0, 1.0, 1.0)}`` to
            push supply routing onto the thick upper metals.
        engine: A* engine selection (see
            :class:`~repro.router.astar.AStarRouter`).
        workers: route independent nets of a rip-up round speculatively on
            worker processes (0 = serial).  Routed paths are bit-identical
            to serial for any worker count.
    """

    cost: CostParams = field(default_factory=CostParams)
    max_iterations: int = 8
    history_increment: float = 2.0
    max_expansions: int = 200_000
    layer_cost_by_type: dict[NetType, tuple[float, ...]] | None = None
    engine: str = "auto"
    workers: int = 0


@dataclass
class SpeculativeNetOutcome:
    """Everything a speculative (worker-side) net route hands back.

    The parent accepts the outcome only when ``reads`` is disjoint from
    the cells mutated since the snapshot the worker routed against; the
    fields then *replay* the exact side effects a serial
    :meth:`IterativeRouter._route_net` call would have had.

    Attributes:
        net: the routed net.
        route: the routed paths, or None when routing failed.
        conflicts: nets whose cells a soft-mode path crossed.
        reads: every grid cell whose occupancy / history the route
            examined (search probes plus sources/targets), packed into a
            sorted int64 array (``(x * ny + y) * nl + l``).
        history_updates: ``(cell, new_value)`` pairs for every history
            cell the soft fallback bumped.
        expansions: per-engine-mode expansion counts.
        batch_stats: frontier-batch summary (count/sum/min/max).
    """

    net: str
    route: NetRoute | None
    conflicts: set[str]
    reads: np.ndarray
    history_updates: tuple
    expansions: dict[str, int]
    batch_stats: dict[str, float]


#: Net ordering classes: lower routes earlier.
_TYPE_PRIORITY = {
    NetType.INPUT: 0,
    NetType.OUTPUT: 0,
    NetType.SIGNAL: 1,
    NetType.CLOCK: 1,
    NetType.BIAS: 2,
    NetType.POWER: 3,
    NetType.GROUND: 3,
}


class IterativeRouter:
    """Routes a whole circuit on a grid, honoring symmetry and guidance."""

    def __init__(
        self,
        grid: RoutingGrid,
        guidance: RoutingGuidance | None = None,
        config: RouterConfig | None = None,
        obs: RunContext | None = None,
    ) -> None:
        self.grid = grid
        self.guidance = guidance or RoutingGuidance()
        self.config = config or RouterConfig()
        self.obs = obs if obs is not None else NULL_CONTEXT
        self.astar = AStarRouter(grid, self.config.cost,
                                 engine=self.config.engine)
        self.circuit = grid.placement.circuit

    # -- public API ---------------------------------------------------------------

    def route_all(self) -> RoutingResult:
        """Route every net with >= 2 terminals; returns the full solution.

        With an enabled obs context, every routing attempt emits a
        ``route.net`` span (outcome ``ok`` / ``mirrored`` / ``failed``)
        and the run's A* expansion total feeds the ``astar_expansions``
        counter.

        Raises :class:`~repro.reliability.errors.RoutingError` under an
        active fault-injection plan for the ``"routing"`` stage.
        """
        maybe_inject("routing")
        result = RoutingResult()
        order = self._net_order()
        queue: list[str] = list(order)
        routed: dict[str, NetRoute] = {}
        mirrored_from: dict[str, str] = self._mirror_partners()
        iterations = 0
        expansions_before = self.astar.expansions_total

        pool = None
        if self.config.workers > 0:
            from repro.perf.parallel import NetPool
            pool = NetPool(self.grid, self.guidance, self.config,
                           workers=self.config.workers)
        try:
            while queue and iterations < self.config.max_iterations:
                iterations += 1
                futures = self._speculate_round(pool, queue, routed)
                # Cells whose occupancy or history changed since the
                # round-start snapshot the speculative routes saw; only
                # tracked while there are outcomes left to validate.
                dirty: set[GridNode] = set()
                track = bool(futures)
                requeue: list[str] = []
                for net_name in queue:
                    if net_name in routed:
                        continue
                    with self.obs.span("route.net", net=net_name,
                                       iteration=iterations) as span:
                        partner = mirrored_from.get(net_name)
                        if partner is not None and partner in routed:
                            # Try exact mirror of the already-routed left
                            # partner.
                            mirror = mirror_route(self.grid, routed[partner],
                                                  net_name)
                            if mirror is not None:
                                self._commit(mirror)
                                routed[net_name] = mirror
                                if track:
                                    dirty |= mirror.cells()
                                span.set(outcome="mirrored")
                                continue
                        route, conflicts = self._merge_net(
                            net_name, futures, dirty, track)
                        if route is None:
                            span.set(outcome="failed")
                            requeue.append(net_name)
                            continue
                        if conflicts:
                            span.set(conflicts=len(conflicts))
                            # Sorted for cross-process determinism (set
                            # order varies with string hash randomization).
                            for victim in sorted(conflicts):
                                if victim in routed:
                                    victim_route = routed.pop(victim)
                                    if track:
                                        dirty |= victim_route.cells()
                                    self._rip_up(victim_route)
                                    requeue.append(victim)
                        if partner is not None and partner not in routed:
                            route.symmetric_ok = False
                        self._commit(route)
                        if track:
                            dirty |= route.cells()
                        routed[net_name] = route
                queue = requeue
        finally:
            if pool is not None:
                pool.close()
        self.obs.counter("astar_expansions").inc(
            self.astar.expansions_total - expansions_before)

        # Mark right-side nets that had to route independently.
        for right, left in mirrored_from.items():
            right_route = routed.get(right)
            left_route = routed.get(left)
            if right_route is None or left_route is None:
                continue
            mirrored = {self.grid.mirror_cell(c) for c in left_route.cells()}
            right_route.symmetric_ok = mirrored == right_route.cells()

        result.routes = routed
        result.iterations = iterations
        result.failed_nets = sorted(
            n for n in self._routable_names() if n not in routed
        )
        return result

    # -- ordering -------------------------------------------------------------------

    def _routable_names(self) -> list[str]:
        return [n.name for n in self.circuit.nets.values() if n.degree >= 2]

    def _net_order(self) -> list[str]:
        symmetric = self.circuit.symmetric_net_names()

        def sort_key(net: Net) -> tuple:
            prio = _TYPE_PRIORITY.get(net.net_type, 2)
            sym_first = 0 if net.name in symmetric or net.self_symmetric else 1
            return (prio, sym_first, -net.weight, net.name)

        nets = [self.circuit.net(n) for n in self._routable_names()]
        ordered = sorted(nets, key=sort_key)

        # Keep symmetry pairs adjacent, left net first.
        names: list[str] = []
        for net in ordered:
            if net.name in names:
                continue
            names.append(net.name)
            pair = self.circuit.symmetry_pair_of(net.name)
            if pair is not None:
                other = pair.partner(net.name)
                if other not in names and other in {n.name for n in nets}:
                    names.append(other)
        return names

    def _mirror_partners(self) -> dict[str, str]:
        """Map right-side net -> left-side net for each symmetry pair.

        "Left" is whichever net routes first per :meth:`_net_order`.
        """
        order = {name: i for i, name in enumerate(self._net_order())}
        partners: dict[str, str] = {}
        for pair in self.circuit.symmetry_pairs:
            a, b = pair.net_a, pair.net_b
            if a not in order or b not in order:
                continue
            first, second = (a, b) if order[a] < order[b] else (b, a)
            partners[second] = first
        return partners

    # -- speculative net-parallel routing ----------------------------------------------

    def _speculate_round(self, pool, queue: list[str],
                         routed: dict[str, NetRoute]) -> dict:
        """Submit every net of a rip-up round against a grid snapshot.

        Returns ``net -> future`` of :class:`SpeculativeNetOutcome`;
        empty when routing serially or the round has nothing to overlap.
        """
        if pool is None or len(queue) < 2:
            return {}
        occupancy = self.grid.occupancy.copy()
        history = self.grid.history.copy()
        futures: dict[str, Any] = {}
        for net_name in dict.fromkeys(queue):
            if net_name not in routed:
                futures[net_name] = pool.submit(net_name, occupancy, history)
        return futures

    def _merge_net(self, net_name: str, futures: dict,
                   dirty: "set[GridNode]", track: bool
                   ) -> tuple[NetRoute | None, set[str]]:
        """One net's turn in the committed merge order.

        Accepts the speculative outcome when every cell it examined is
        untouched since the round snapshot — the serial route would have
        seen identical costs, so replaying the outcome is bit-identical —
        and falls back to an in-process route otherwise.  A future that
        is not done by its turn in the merge order is bypassed rather
        than awaited: blocking would serialize on the worker, and the
        fallback computes the identical result anyway.
        """
        future = futures.pop(net_name, None)
        outcome = None
        if future is not None:
            if future.done():
                try:
                    outcome = future.result()
                except Exception:  # repro-lint: disable=EXC001 -- serial fallback recomputes and re-raises real errors
                    # A worker failure is never fatal: the serial
                    # fallback recomputes and re-raises any real
                    # routing error, so nothing is swallowed here.
                    self.obs.counter("route_speculation_total",
                                     outcome="error").inc()
            else:
                future.cancel()
                self.obs.counter("route_speculation_total",
                                 outcome="bypassed").inc()
        if outcome is not None:
            if self._reads_clean(outcome.reads, dirty):
                self.obs.counter("route_speculation_total",
                                 outcome="accepted").inc()
                return self._apply_outcome(outcome, dirty, track)
            self.obs.counter("route_speculation_total",
                             outcome="rejected").inc()

        astar = self.astar
        exp_before = dict(astar.expansions_by_mode)
        astar.take_batch_window()
        history_before = self.grid.history.copy() if track else None
        route, conflicts = self._route_net(net_name)
        if track:
            changed = np.argwhere(self.grid.history != history_before)
            for i, j, k in changed:
                dirty.add((int(i), int(j), int(k)))
        expansions = {
            mode: count - exp_before.get(mode, 0)
            for mode, count in astar.expansions_by_mode.items()
            if count - exp_before.get(mode, 0)
        }
        self._emit_route_metrics(expansions, astar.take_batch_window())
        return route, conflicts

    def _pack_cells(self, cells) -> np.ndarray:
        """Pack grid cells into flat int64 codes (``(x*ny + y)*nl + l``)."""
        ny, nl = self.grid.ny, self.grid.num_layers
        return np.fromiter(
            ((c[0] * ny + c[1]) * nl + c[2] for c in cells),
            dtype=np.int64, count=len(cells))

    def _reads_clean(self, reads: np.ndarray,
                     dirty: "set[GridNode]") -> bool:
        """True when no examined cell changed since the round snapshot."""
        if reads.size == 0 or not dirty:
            return True
        packed = self._pack_cells(dirty)
        idx = np.searchsorted(reads, packed)
        idx[idx == reads.size] = 0
        return not bool(np.any(reads[idx] == packed))

    def _apply_outcome(self, outcome: SpeculativeNetOutcome,
                       dirty: "set[GridNode]", track: bool
                       ) -> tuple[NetRoute | None, set[str]]:
        """Replay an accepted speculative route's side effects."""
        for cell, value in outcome.history_updates:
            self.grid.history[cell] = value
            if track:
                dirty.add(cell)
        astar = self.astar
        astar.expansions_total += sum(outcome.expansions.values())
        for mode, count in outcome.expansions.items():
            astar.expansions_by_mode[mode] = (
                astar.expansions_by_mode.get(mode, 0) + count)
        batch = outcome.batch_stats
        if batch["count"]:
            stats = astar.batch_stats
            stats["count"] += batch["count"]
            stats["sum"] += batch["sum"]
            if batch["min"] < stats["min"]:
                stats["min"] = batch["min"]
            if batch["max"] > stats["max"]:
                stats["max"] = batch["max"]
        self._emit_route_metrics(outcome.expansions, batch)
        return outcome.route, outcome.conflicts

    def _emit_route_metrics(self, expansions: dict[str, int],
                            batch: dict[str, float]) -> None:
        """Per-net observability: expansion counters and batch histogram."""
        for mode in sorted(expansions):
            self.obs.counter("route_expansions_total",
                             mode=mode).inc(expansions[mode])
        if batch["count"]:
            self.obs.histogram("route_frontier_batch").merge_summary(
                int(batch["count"]), batch["sum"],
                batch["min"], batch["max"])

    def speculate_net(self, net_name: str, occupancy: np.ndarray,
                      history: np.ndarray) -> SpeculativeNetOutcome:
        """Route one net against a snapshot grid state (worker side).

        Resets this router's grid to the snapshot, records every cell the
        search examines, and packages the route plus its side effects so
        the parent can validate and replay them (see :meth:`_merge_net`).
        """
        grid = self.grid
        grid.occupancy[...] = occupancy
        grid.history[...] = history
        astar = self.astar
        astar.record_reads = True
        astar.reads.clear()
        astar.expansions_total = 0
        astar.expansions_by_mode = {}
        astar.batch_stats = {"count": 0, "sum": 0.0,
                             "min": float("inf"), "max": float("-inf")}
        route, conflicts = self._route_net(net_name)
        changed = np.argwhere(grid.history != history)
        updates = tuple(
            ((int(i), int(j), int(k)), float(grid.history[i, j, k]))
            for i, j, k in changed
        )
        reads = self._pack_cells(astar.reads)
        reads.sort()
        return SpeculativeNetOutcome(
            net=net_name,
            route=route,
            conflicts=conflicts,
            reads=reads,
            history_updates=updates,
            expansions=dict(astar.expansions_by_mode),
            batch_stats=dict(astar.batch_stats),
        )

    # -- single-net routing -----------------------------------------------------------

    def _route_net(self, net_name: str) -> tuple[NetRoute | None, set[str]]:
        """Route one net; returns (route, conflicting nets ripped through).

        First tries hard-blocked routing; when a connection fails, falls
        back to soft (negotiation) mode and reports the nets whose cells the
        path crosses so the caller can rip them up.
        """
        aps = self.grid.access_points[net_name]
        route = NetRoute(net=net_name, access_points=aps)
        if len(aps) < 2:
            return route, set()

        layer_mult = None
        if self.config.layer_cost_by_type is not None:
            net_type = self.circuit.net(net_name).net_type
            spec = self.config.layer_cost_by_type.get(net_type)
            if spec is not None:
                layer_mult = np.asarray(spec, dtype=float)

        conflicts: set[str] = set()
        tree_cells: set[GridNode] = {aps[0].cell}
        remaining = list(self._mst_order(aps))
        # The hard-mode additive cost field only depends on (net, grid
        # state); reuse it across this net's connections, rebuilding after
        # any history bump from a soft fallback.
        hard_core = None
        for target_ap in remaining:
            if target_ap.cell in tree_cells:
                continue
            guid = self._connection_guidance(target_ap, aps)
            if hard_core is None:
                hard_core = build_add_core(
                    self.grid, net=net_name, soft=False,
                    present_penalty=self.config.cost.present_penalty,
                    history_weight=self.config.cost.history_weight)
            path = self.astar.route_connection(
                net_name, tree_cells, {target_ap.cell}, guidance_vec=guid,
                soft=False, max_expansions=self.config.max_expansions,
                layer_multipliers=layer_mult, add_core=hard_core,
            )
            if path is None:
                path = self.astar.route_connection(
                    net_name, tree_cells, {target_ap.cell}, guidance_vec=guid,
                    soft=True, max_expansions=self.config.max_expansions,
                    layer_multipliers=layer_mult,
                )
                if path is None:
                    return None, conflicts
                for cell in path:
                    owner = self.grid.owner(cell)
                    if owner >= 0 and self.grid.net_names[owner] != net_name:
                        conflicts.add(self.grid.net_names[owner])
                        self.grid.history[cell] += self.config.history_increment
                hard_core = None
            route.paths.append(path)
            tree_cells.update(path)
        return route, conflicts

    def _mst_order(self, aps: list[AccessPoint]) -> list[AccessPoint]:
        """Order terminals by nearest-neighbour growth from the first AP."""
        if len(aps) <= 1:
            return []
        pending = list(aps[1:])
        anchor_cells = [aps[0].cell]
        ordered: list[AccessPoint] = []
        while pending:
            best_i, best_d = 0, float("inf")
            for i, ap in enumerate(pending):
                d = min(
                    abs(ap.cell[0] - c[0]) + abs(ap.cell[1] - c[1])
                    for c in anchor_cells
                )
                if d < best_d:
                    best_i, best_d = i, d
            nxt = pending.pop(best_i)
            ordered.append(nxt)
            anchor_cells.append(nxt.cell)
        return ordered

    def _connection_guidance(
        self, target_ap: AccessPoint, aps: list[AccessPoint]
    ) -> np.ndarray:
        """Blend of the target AP's guidance and the net-mean guidance."""
        net_mean = self.guidance.net_vector(aps)
        target_vec = self.guidance.get(target_ap.key)
        return 0.5 * (net_mean + target_vec)

    # -- occupancy management ------------------------------------------------------------

    def _commit(self, route: NetRoute) -> None:
        for cell in route.cells():
            self.grid.claim(cell, route.net)

    def _rip_up(self, route: NetRoute) -> None:
        self.grid.release_net(route.net)
        route.paths.clear()
