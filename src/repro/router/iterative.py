"""Constraint-aware iterative routing (the paper's step (1), after [16]).

The router processes nets in criticality order — symmetric pairs first, then
signal nets by weight, then bias, then supplies.  Multi-terminal nets are
decomposed into 2-pin connections along a minimum spanning tree of their
access points.  Failed or conflicting nets trigger PathFinder-style
negotiation: the failing net routes in soft mode over other nets, the nets
it crossed are ripped up and re-queued, and history costs grow on the
contested cells.

Routing guidance enters through the cost function: each 2-pin connection is
routed with the blend of its endpoint access points' guidance vectors
(Section 3.2: "routing guidance C are honored via penalties in the cost
function along different directions for different pin access points").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.netlist.nets import Net, NetType
from repro.obs import NULL_CONTEXT, RunContext
from repro.reliability.faults import maybe_inject
from repro.router.astar import AStarRouter, CostParams
from repro.router.grid import GridNode, RoutingGrid
from repro.router.guidance import AccessPoint, RoutingGuidance
from repro.router.result import NetRoute, RoutingResult
from repro.router.symmetry import mirror_route


@dataclass
class RouterConfig:
    """Iterative router knobs.

    Attributes:
        cost: A* cost parameters.
        max_iterations: rip-up-and-reroute rounds before giving up.
        history_increment: history cost added to contested cells per round.
        max_expansions: A* search budget per connection.
        layer_cost_by_type: optional per-net-type planar-cost multipliers
            per layer, e.g. ``{NetType.POWER: (2.0, 2.0, 1.0, 1.0)}`` to
            push supply routing onto the thick upper metals.
    """

    cost: CostParams = field(default_factory=CostParams)
    max_iterations: int = 8
    history_increment: float = 2.0
    max_expansions: int = 200_000
    layer_cost_by_type: dict[NetType, tuple[float, ...]] | None = None


#: Net ordering classes: lower routes earlier.
_TYPE_PRIORITY = {
    NetType.INPUT: 0,
    NetType.OUTPUT: 0,
    NetType.SIGNAL: 1,
    NetType.CLOCK: 1,
    NetType.BIAS: 2,
    NetType.POWER: 3,
    NetType.GROUND: 3,
}


class IterativeRouter:
    """Routes a whole circuit on a grid, honoring symmetry and guidance."""

    def __init__(
        self,
        grid: RoutingGrid,
        guidance: RoutingGuidance | None = None,
        config: RouterConfig | None = None,
        obs: RunContext | None = None,
    ) -> None:
        self.grid = grid
        self.guidance = guidance or RoutingGuidance()
        self.config = config or RouterConfig()
        self.obs = obs if obs is not None else NULL_CONTEXT
        self.astar = AStarRouter(grid, self.config.cost)
        self.circuit = grid.placement.circuit

    # -- public API ---------------------------------------------------------------

    def route_all(self) -> RoutingResult:
        """Route every net with >= 2 terminals; returns the full solution.

        With an enabled obs context, every routing attempt emits a
        ``route.net`` span (outcome ``ok`` / ``mirrored`` / ``failed``)
        and the run's A* expansion total feeds the ``astar_expansions``
        counter.

        Raises :class:`~repro.reliability.errors.RoutingError` under an
        active fault-injection plan for the ``"routing"`` stage.
        """
        maybe_inject("routing")
        result = RoutingResult()
        order = self._net_order()
        queue: list[str] = list(order)
        routed: dict[str, NetRoute] = {}
        mirrored_from: dict[str, str] = self._mirror_partners()
        iterations = 0
        expansions_before = self.astar.expansions_total

        while queue and iterations < self.config.max_iterations:
            iterations += 1
            requeue: list[str] = []
            for net_name in queue:
                if net_name in routed:
                    continue
                with self.obs.span("route.net", net=net_name,
                                   iteration=iterations) as span:
                    partner = mirrored_from.get(net_name)
                    if partner is not None and partner in routed:
                        # Try exact mirror of the already-routed left
                        # partner.
                        mirror = mirror_route(self.grid, routed[partner],
                                              net_name)
                        if mirror is not None:
                            self._commit(mirror)
                            routed[net_name] = mirror
                            span.set(outcome="mirrored")
                            continue
                    route, conflicts = self._route_net(net_name)
                    if route is None:
                        span.set(outcome="failed")
                        requeue.append(net_name)
                        continue
                    if conflicts:
                        span.set(conflicts=len(conflicts))
                        # Sorted for cross-process determinism (set order
                        # varies with string hash randomization).
                        for victim in sorted(conflicts):
                            if victim in routed:
                                self._rip_up(routed.pop(victim))
                                requeue.append(victim)
                    if partner is not None and partner not in routed:
                        route.symmetric_ok = False
                    self._commit(route)
                    routed[net_name] = route
            queue = requeue
        self.obs.counter("astar_expansions").inc(
            self.astar.expansions_total - expansions_before)

        # Mark right-side nets that had to route independently.
        for right, left in mirrored_from.items():
            right_route = routed.get(right)
            left_route = routed.get(left)
            if right_route is None or left_route is None:
                continue
            mirrored = {self.grid.mirror_cell(c) for c in left_route.cells()}
            right_route.symmetric_ok = mirrored == right_route.cells()

        result.routes = routed
        result.iterations = iterations
        result.failed_nets = sorted(
            n for n in self._routable_names() if n not in routed
        )
        return result

    # -- ordering -------------------------------------------------------------------

    def _routable_names(self) -> list[str]:
        return [n.name for n in self.circuit.nets.values() if n.degree >= 2]

    def _net_order(self) -> list[str]:
        symmetric = self.circuit.symmetric_net_names()

        def sort_key(net: Net) -> tuple:
            prio = _TYPE_PRIORITY.get(net.net_type, 2)
            sym_first = 0 if net.name in symmetric or net.self_symmetric else 1
            return (prio, sym_first, -net.weight, net.name)

        nets = [self.circuit.net(n) for n in self._routable_names()]
        ordered = sorted(nets, key=sort_key)

        # Keep symmetry pairs adjacent, left net first.
        names: list[str] = []
        for net in ordered:
            if net.name in names:
                continue
            names.append(net.name)
            pair = self.circuit.symmetry_pair_of(net.name)
            if pair is not None:
                other = pair.partner(net.name)
                if other not in names and other in {n.name for n in nets}:
                    names.append(other)
        return names

    def _mirror_partners(self) -> dict[str, str]:
        """Map right-side net -> left-side net for each symmetry pair.

        "Left" is whichever net routes first per :meth:`_net_order`.
        """
        order = {name: i for i, name in enumerate(self._net_order())}
        partners: dict[str, str] = {}
        for pair in self.circuit.symmetry_pairs:
            a, b = pair.net_a, pair.net_b
            if a not in order or b not in order:
                continue
            first, second = (a, b) if order[a] < order[b] else (b, a)
            partners[second] = first
        return partners

    # -- single-net routing -----------------------------------------------------------

    def _route_net(self, net_name: str) -> tuple[NetRoute | None, set[str]]:
        """Route one net; returns (route, conflicting nets ripped through).

        First tries hard-blocked routing; when a connection fails, falls
        back to soft (negotiation) mode and reports the nets whose cells the
        path crosses so the caller can rip them up.
        """
        aps = self.grid.access_points[net_name]
        route = NetRoute(net=net_name, access_points=aps)
        if len(aps) < 2:
            return route, set()

        layer_mult = None
        if self.config.layer_cost_by_type is not None:
            net_type = self.circuit.net(net_name).net_type
            spec = self.config.layer_cost_by_type.get(net_type)
            if spec is not None:
                layer_mult = np.asarray(spec, dtype=float)

        conflicts: set[str] = set()
        tree_cells: set[GridNode] = {aps[0].cell}
        remaining = list(self._mst_order(aps))
        for target_ap in remaining:
            if target_ap.cell in tree_cells:
                continue
            guid = self._connection_guidance(target_ap, aps)
            path = self.astar.route_connection(
                net_name, tree_cells, {target_ap.cell}, guidance_vec=guid,
                soft=False, max_expansions=self.config.max_expansions,
                layer_multipliers=layer_mult,
            )
            if path is None:
                path = self.astar.route_connection(
                    net_name, tree_cells, {target_ap.cell}, guidance_vec=guid,
                    soft=True, max_expansions=self.config.max_expansions,
                    layer_multipliers=layer_mult,
                )
                if path is None:
                    return None, conflicts
                for cell in path:
                    owner = self.grid.owner(cell)
                    if owner >= 0 and self.grid.net_names[owner] != net_name:
                        conflicts.add(self.grid.net_names[owner])
                        self.grid.history[cell] += self.config.history_increment
            route.paths.append(path)
            tree_cells.update(path)
        return route, conflicts

    def _mst_order(self, aps: list[AccessPoint]) -> list[AccessPoint]:
        """Order terminals by nearest-neighbour growth from the first AP."""
        if len(aps) <= 1:
            return []
        pending = list(aps[1:])
        anchor_cells = [aps[0].cell]
        ordered: list[AccessPoint] = []
        while pending:
            best_i, best_d = 0, float("inf")
            for i, ap in enumerate(pending):
                d = min(
                    abs(ap.cell[0] - c[0]) + abs(ap.cell[1] - c[1])
                    for c in anchor_cells
                )
                if d < best_d:
                    best_i, best_d = i, d
            nxt = pending.pop(best_i)
            ordered.append(nxt)
            anchor_cells.append(nxt.cell)
        return ordered

    def _connection_guidance(
        self, target_ap: AccessPoint, aps: list[AccessPoint]
    ) -> np.ndarray:
        """Blend of the target AP's guidance and the net-mean guidance."""
        net_mean = self.guidance.net_vector(aps)
        target_vec = self.guidance.get(target_ap.key)
        return 0.5 * (net_mean + target_vec)

    # -- occupancy management ------------------------------------------------------------

    def _commit(self, route: NetRoute) -> None:
        for cell in route.cells():
            self.grid.claim(cell, route.net)

    def _rip_up(self, route: NetRoute) -> None:
        self.grid.release_net(route.net)
        route.paths.clear()
