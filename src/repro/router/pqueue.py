"""Bucketed (Dial-style) priority queue for quantized A* costs.

When the step-cost alphabet quantizes onto an integer lattice (see
:meth:`repro.router.costfield.CostField.quantize`), the A* open set needs
far less machinery than a binary heap of ``(float, float, int)`` tuples:

* keys become integers, and the full ``(f, g)`` priority packs into a
  single Python int ``f * modulus + g`` — one int comparison replaces a
  float-tuple comparison;
* the queue is **monotone**: every pushed key is >= the key currently
  being popped (step costs are non-negative and relaxations out of the
  current bucket strictly increase ``g``), so buckets can be retired in
  order and never revisited;
* all nodes sharing one ``(f, g)`` key form a *batch* that the expansion
  loop can process with vectorized numpy (see
  ``repro.router.astar.AStarRouter``), because no member of the batch can
  relax another member (that would need a zero-cost step).

The structure is a dict from packed key to its node bucket plus a small
binary heap over the *distinct* packed keys — one heap entry per occupied
bucket rather than one per pushed node, which is where the tuple churn of
the seed router went.

When costs do not quantize (arbitrary continuous guidance vectors), the
router falls back to its scalar engine built directly on ``heapq`` — the
fallback trigger is simply ``CostField.quantize()`` returning ``None``.
"""

from __future__ import annotations

import heapq


class BucketQueue:
    """Monotone bucket queue over packed integer ``(f, g)`` keys.

    Args:
        modulus: exclusive upper bound on any ``g`` value; keys pack as
            ``f * modulus + g``.

    Nodes are grouped per distinct key; :meth:`pop_batch` retires the
    smallest occupied bucket wholesale.  Push order within a bucket is
    preserved (callers sort when they need node-order batches).

    ``modulus`` / ``buckets`` / ``key_heap`` are deliberately public: the
    router's expansion loop inlines :meth:`push` to skip the call overhead
    (hundreds of thousands of pushes per route).
    """

    __slots__ = ("modulus", "buckets", "key_heap")

    def __init__(self, modulus: int) -> None:
        if modulus <= 0:
            raise ValueError(f"modulus must be positive, got {modulus}")
        self.modulus = modulus
        self.buckets: dict[int, list[int]] = {}
        self.key_heap: list[int] = []

    def __len__(self) -> int:
        return sum(len(b) for b in self.buckets.values())

    def __bool__(self) -> bool:
        return bool(self.buckets)

    def push(self, f: int, g: int, node: int) -> None:
        """Add a node under priority ``(f, g)``."""
        key = f * self.modulus + g
        bucket = self.buckets.get(key)
        if bucket is None:
            self.buckets[key] = [node]
            heapq.heappush(self.key_heap, key)
        else:
            bucket.append(node)

    def pop_batch(self) -> tuple[int, int, list[int]]:
        """Remove and return the lowest bucket as ``(f, g, nodes)``.

        Raises ``IndexError`` when empty.
        """
        key = heapq.heappop(self.key_heap)
        nodes = self.buckets.pop(key)
        f, g = divmod(key, self.modulus)
        return f, g, nodes
