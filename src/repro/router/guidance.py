"""Non-uniform routing guidance: per-pin-access-point 1x3 cost vectors.

This is the paper's central data structure (Problem 2): each pin access
point ``i`` carries a cost vector ``C_i`` of size 1x3, where ``C_i[d]`` is
the inferred routing cost along direction ``d`` (0 = x/horizontal,
1 = y/vertical, 2 = z/layer).  Lower cost encourages the router to extend
wires from that access point along that direction (Figure 1(a)).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Number of guidance directions (x, y, z).
NUM_DIRECTIONS = 3

#: Default guidance value: neutral (no preference).
NEUTRAL_COST = 1.0


@dataclass(frozen=True)
class AccessPoint:
    """A pin access point: intersection of pin geometry and routing grid.

    Attributes:
        net: owning net name.
        device: owning device name.
        pin: pin name on the device.
        cell: grid cell (ix, iy, layer).
        position: physical center (x, y) in micrometers.
    """

    net: str
    device: str
    pin: str
    cell: tuple[int, int, int]
    position: tuple[float, float]

    @property
    def key(self) -> tuple[str, str]:
        """Stable identity of the underlying pin."""
        return (self.device, self.pin)


@dataclass
class RoutingGuidance:
    """Guidance vectors ``C`` for a set of access points.

    Attributes:
        vectors: mapping from AccessPoint.key -> length-3 numpy array.
        c_max: upper bound of the feasible guidance region (Eq. 8).
    """

    vectors: dict[tuple[str, str], np.ndarray] = field(default_factory=dict)
    c_max: float = 4.0

    def __post_init__(self) -> None:
        for key, vec in list(self.vectors.items()):
            # Guidance vectors are float64 domain data by contract;
            # serve endpoints cast to float32 at the endpoint boundary.
            # repro-lint: disable-next-line=PRE001 -- float64 domain data
            arr = np.asarray(vec, dtype=float)
            if arr.shape != (NUM_DIRECTIONS,):
                raise ValueError(
                    f"guidance vector for {key} has shape {arr.shape}, want (3,)"
                )
            self.vectors[key] = arr

    def get(self, key: tuple[str, str]) -> np.ndarray:
        """Guidance for a pin, neutral if unset."""
        vec = self.vectors.get(key)
        if vec is None:
            return np.full(NUM_DIRECTIONS, NEUTRAL_COST)
        return vec

    def set(self, key: tuple[str, str], vec: np.ndarray) -> None:
        # Float64 domain data by contract (see __post_init__).
        # repro-lint: disable-next-line=PRE001 -- float64 domain data
        arr = np.asarray(vec, dtype=float)
        if arr.shape != (NUM_DIRECTIONS,):
            raise ValueError(f"guidance vector must have shape (3,), got {arr.shape}")
        self.vectors[key] = arr

    def net_vector(self, access_points: list[AccessPoint]) -> np.ndarray:
        """Aggregate guidance over a net's access points (mean).

        The model predicts per-AP vectors; the router applies a
        per-connection blend of source/target AP vectors, and falls back to
        this per-net mean for Steiner extensions.
        """
        if not access_points:
            return np.full(NUM_DIRECTIONS, NEUTRAL_COST)
        stacked = np.stack([self.get(ap.key) for ap in access_points])
        return stacked.mean(axis=0)

    def as_array(self, keys: list[tuple[str, str]]) -> np.ndarray:
        """Stack guidance vectors for ``keys`` into an (n, 3) array."""
        return np.stack([self.get(k) for k in keys]) if keys else np.zeros((0, 3))

    def clip_to_feasible(self, margin: float = 1e-3) -> None:
        """Clamp all vectors into the open feasible region (0, c_max)."""
        for key in self.vectors:
            self.vectors[key] = np.clip(self.vectors[key], margin, self.c_max - margin)

    def copy(self) -> "RoutingGuidance":
        return RoutingGuidance(
            vectors={k: v.copy() for k, v in self.vectors.items()}, c_max=self.c_max
        )


def uniform_guidance(
    keys: list[tuple[str, str]] | None = None, value: float = NEUTRAL_COST,
    c_max: float = 4.0,
) -> RoutingGuidance:
    """Guidance with the same cost in every direction for every pin."""
    vectors = {}
    if keys:
        for key in keys:
            vectors[key] = np.full(NUM_DIRECTIONS, float(value))
    return RoutingGuidance(vectors=vectors, c_max=c_max)


def random_guidance(
    keys: list[tuple[str, str]],
    rng: np.random.Generator,
    c_max: float = 4.0,
    low: float = 0.2,
    high: float | None = None,
) -> RoutingGuidance:
    """Sample guidance uniformly in the feasible region (dataset generation)."""
    hi = c_max - 0.2 if high is None else high
    vectors = {key: rng.uniform(low, hi, size=NUM_DIRECTIONS) for key in keys}
    return RoutingGuidance(vectors=vectors, c_max=c_max)
