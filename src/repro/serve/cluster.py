"""Fault-tolerant multi-worker serving: the ``ServeCluster`` facade.

A :class:`ServeCluster` runs ``workers`` supervised
:class:`~repro.serve.service.ScoringService` processes behind one
synchronous API.  Each component owns one concern:

* :class:`~repro.serve.dispatch.Dispatcher` — admission, graph-affinity
  routing, deadlines, circuit breakers, load shedding, at-least-once
  re-dispatch with request-id dedup;
* :class:`~repro.serve.supervisor.Supervisor` — process lifecycle,
  heartbeats, capped-backoff restarts;
* :mod:`~repro.serve.worker` — the per-process scoring loop.

The cluster's single-threaded ``pump`` stitches them together, so every
state transition is observable and deterministic enough to chaos-test:
``benchmarks/bench_chaos.py`` drives this exact loop under injected
worker kills, stalls, and checkpoint corruption and gates on the
resulting availability.

Guarantees (proven in ``tests/test_serve_cluster.py``):

* an acknowledged request always reaches exactly one terminal outcome
  (``ok`` / ``failed`` / ``timeout`` / ``shed``), kills or not;
* results are bit-identical to a single-process
  :class:`ScoringService` for any worker count (same model, same math —
  batching composition does not change a score);
* a checkpoint that fails integrity verification never serves a
  request: rollover quarantines it in the registry and rolls the
  cluster back to the last good version.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.graph.hetero import HeteroGraph
from repro.obs import NULL_CONTEXT, RunContext
from repro.reliability.errors import ServeError, ServeTimeoutError
from repro.reliability.faults import active_plans
from repro.reliability.retry import RetryPolicy
from repro.serve.dispatch import ClusterResult, ClusterStats, Dispatcher
from repro.serve.registry import ModelRegistry
from repro.serve.service import ScoreRequest, ServeConfig
from repro.serve.supervisor import (
    RELOAD_FAILED,
    RELOAD_OK,
    RELOAD_PENDING,
    Supervisor,
)
from repro.serve.worker import WorkerContext


@dataclass(frozen=True)
class ClusterConfig:
    """Serving-cluster knobs.

    Attributes:
        workers: worker-process slots.
        max_queue: global bound on acknowledged-but-undispatched
            requests; beyond it the earliest-deadline entry is shed.
        worker_window: in-flight cap per worker.
        default_deadline_s: per-request deadline when the caller gives
            none (``None`` disables deadlines entirely).
        hang_grace_s: how long a worker may sit on an expired request
            without any message before it is declared hung and killed.
        breaker_threshold: consecutive failures that open a worker's
            circuit breaker.
        breaker_cooldown_s: open-breaker cooldown before the half-open
            probe.
        heartbeat_interval_s / heartbeat_timeout_s: liveness pinging.
        restart_backoff_base_s / restart_backoff_max_s: capped
            full-jitter backoff between a worker death and its respawn.
        start_timeout_s: bound on :meth:`ServeCluster.start` and on each
            rollover handshake.
        serve: per-worker :class:`ServeConfig` (micro-batching knobs).
        start_method: multiprocessing start method (fork-preferred).
        tick_s: pump granularity while waiting for messages.
    """

    workers: int = 2
    max_queue: int = 64
    worker_window: int = 4
    default_deadline_s: float | None = 30.0
    hang_grace_s: float = 0.5
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 1.0
    heartbeat_interval_s: float = 5.0
    heartbeat_timeout_s: float = 10.0
    restart_backoff_base_s: float = 0.05
    restart_backoff_max_s: float = 2.0
    start_timeout_s: float = 60.0
    serve: ServeConfig = field(default_factory=ServeConfig)
    start_method: str | None = None
    tick_s: float = 0.02

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.default_deadline_s is not None \
                and self.default_deadline_s <= 0:
            raise ValueError(
                "default_deadline_s must be positive or None, got "
                f"{self.default_deadline_s}")
        if self.hang_grace_s < 0:
            raise ValueError(
                f"hang_grace_s must be >= 0, got {self.hang_grace_s}")
        if self.tick_s <= 0:
            raise ValueError(f"tick_s must be > 0, got {self.tick_s}")


@dataclass(frozen=True)
class RolloverResult:
    """Outcome of one :meth:`ServeCluster.rollover`.

    ``ok`` with ``to_version == from_version`` means a no-op (already
    serving the target).  ``rolled_back`` reports that a partial switch
    was undone after a worker rejected the new checkpoint.
    """

    ok: bool
    model: str
    from_version: str
    to_version: str
    rolled_back: bool = False
    quarantined: str | None = None
    reason: str | None = None


class ServeCluster:
    """A supervised pool of scoring workers behind one dispatch queue.

    Usage::

        cluster = ServeCluster(registry_root, config)
        cluster.add_endpoint("ota1", "fold-ota", graph)
        with cluster:                      # start() .. close()
            acked = cluster.submit("ota1", guidance, deadline_s=2.0)
            results = cluster.drain()

    All pumping happens on the caller's thread — the cluster makes
    progress inside ``submit`` / ``drain`` / ``pump`` calls, never in
    the background.
    """

    def __init__(
        self,
        registry: ModelRegistry | str | Path,
        config: ClusterConfig | None = None,
        obs: RunContext | None = None,
        fault_plans: Sequence | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.config = config or ClusterConfig()
        self.obs = obs if obs is not None else NULL_CONTEXT
        self.registry = (registry if isinstance(registry, ModelRegistry)
                         else ModelRegistry(registry, obs=self.obs))
        self.clock = clock
        #: Plans shipped to workers; defaults to the plans active in the
        #: parent at start() time, mirroring SamplePool's inheritance.
        self._fault_plans = fault_plans
        self._endpoints: list[tuple[str, str]] = []
        self._graphs: dict[str, HeteroGraph] = {}
        self._versions: dict[str, str] = {}
        self._dispatcher: Dispatcher | None = None
        self._supervisor: Supervisor | None = None
        self._started = False
        self._deferred_error: ServeError | None = None

    # -- setup --------------------------------------------------------------------

    def add_endpoint(self, graph_id: str, model_name: str,
                     graph: HeteroGraph) -> None:
        """Declare an endpoint before :meth:`start`."""
        if self._started:
            raise ServeError(
                "cannot add endpoints to a started cluster", stage="serve")
        if graph_id in self._graphs:
            raise ServeError(
                f"endpoint {graph_id!r} already declared", stage="serve")
        self._endpoints.append((graph_id, model_name))
        self._graphs[graph_id] = graph

    def _worker_context(self, index: int) -> WorkerContext:
        return WorkerContext(
            index=index,
            registry_root=str(self.registry.root),
            endpoints=tuple(self._endpoints),
            graphs=dict(self._graphs),
            versions=dict(self._versions),
            serve=self.config.serve,
            fault_plans=tuple(self._fault_plans
                              if self._fault_plans is not None
                              else active_plans()),
        )

    def start(self) -> None:
        """Resolve versions, spawn workers, wait until all are serving.

        A worker that reports a checkpoint-integrity failure gets that
        version quarantined; the cluster re-resolves and the slot
        respawns on the previous good version — startup succeeds as
        long as *some* servable version exists per model.
        """
        if self._started:
            raise ServeError("cluster already started", stage="serve")
        if not self._endpoints:
            raise ServeError("no endpoints declared", stage="serve")
        for _, name in self._endpoints:
            if name not in self._versions:
                self._versions[name] = self.registry.latest(name)
        cfg = self.config
        self._dispatcher = Dispatcher(
            workers=cfg.workers, max_queue=cfg.max_queue,
            worker_window=cfg.worker_window,
            breaker_threshold=cfg.breaker_threshold,
            breaker_cooldown_s=cfg.breaker_cooldown_s,
            obs=self.obs, clock=self.clock)
        self._supervisor = Supervisor(
            make_context=self._worker_context, workers=cfg.workers,
            restart_policy=RetryPolicy(
                max_attempts=1,
                backoff_base=cfg.restart_backoff_base_s,
                backoff_factor=2.0,
                backoff_max=cfg.restart_backoff_max_s,
                jitter="full"),
            heartbeat_interval_s=cfg.heartbeat_interval_s,
            heartbeat_timeout_s=cfg.heartbeat_timeout_s,
            obs=self.obs, clock=self.clock,
            start_method=cfg.start_method)
        self._supervisor.start()
        self._started = True
        deadline = self.clock() + cfg.start_timeout_s
        while not self._supervisor.all_ready():
            self.pump()
            try:
                self._raise_deferred()
            except ServeError:
                self.close()
                raise
            if self.clock() >= deadline:
                self.close()
                raise ServeError(
                    f"cluster start timed out after {cfg.start_timeout_s}s",
                    stage="serve")

    def close(self) -> None:
        if self._supervisor is not None:
            self._supervisor.close()
        self._started = False

    def __enter__(self) -> "ServeCluster":
        if not self._started:
            self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- submission ---------------------------------------------------------------

    @property
    def stats(self) -> ClusterStats:
        if self._dispatcher is None:
            return ClusterStats()
        stats = self._dispatcher.stats
        if self._supervisor is not None:
            stats.restarts = self._supervisor.restarts
        return stats

    @property
    def versions(self) -> dict[str, str]:
        """Currently served ``model -> version`` map."""
        return dict(self._versions)

    def _require_started(self) -> None:
        if not self._started or self._dispatcher is None:
            raise ServeError("cluster is not started", stage="serve")

    def submit(self, graph_id: str, guidance: np.ndarray,
               request_id: str | None = None,
               deadline_s: float | None = None) -> ScoreRequest:
        """Acknowledge one request; returns it with an id assigned.

        Validation (unknown graph, misshaped or non-finite guidance)
        rejects *before* acknowledgement with a :class:`ServeError`;
        everything acknowledged is guaranteed a terminal outcome.
        """
        self._require_started()
        graph = self._graphs.get(graph_id)
        if graph is None:
            self._dispatcher.reject()
            raise ServeError(
                f"unknown graph_id {graph_id!r} (registered: "
                f"{sorted(self._graphs)})", stage="serve")
        guidance = np.asarray(guidance, dtype=float)
        expected = (graph.num_aps, 3)
        if guidance.shape != expected:
            self._dispatcher.reject()
            raise ServeError(
                f"guidance shape {guidance.shape} != {expected} for "
                f"graph {graph_id!r}", stage="serve")
        if not np.isfinite(guidance).all():
            self._dispatcher.reject()
            raise ServeError(
                f"non-finite guidance for graph {graph_id!r}",
                stage="serve")
        if deadline_s is None:
            deadline_s = self.config.default_deadline_s
        deadline = (None if deadline_s is None
                    else self.clock() + deadline_s)
        pending = self._dispatcher.ack(
            ScoreRequest(graph_id=graph_id, guidance=guidance,
                         request_id=request_id),
            deadline=deadline)
        self.pump(wait_s=0.0)
        return pending.request

    def score(self, graph_id: str, guidance: np.ndarray,
              request_id: str | None = None,
              deadline_s: float | None = None) -> ClusterResult:
        """Submit one request and pump until *its* outcome is terminal.

        Raises :class:`ServeTimeoutError` when the outcome is a missed
        deadline; shed cannot happen to the only outstanding request of
        a compliant queue, but would also raise as a timeout would.
        """
        acked = self.submit(graph_id, guidance, request_id=request_id,
                            deadline_s=deadline_s)
        while self._dispatcher.result_for(acked.request_id) is None:
            self.pump()
            self._raise_deferred()
        result = self._dispatcher.result_for(acked.request_id)
        if result.status == "timeout":
            raise ServeTimeoutError(result.error or "deadline exceeded",
                                    stage="serve",
                                    details={"request_id": acked.request_id})
        if result.status == "shed":
            raise ServeError(result.error or "request shed", stage="serve",
                             details={"request_id": acked.request_id})
        return result

    def drain(self) -> list[ClusterResult]:
        """Pump until nothing is outstanding; results in submit order.

        Termination is guaranteed when deadlines are enabled: even with
        every worker down, outstanding requests eventually time out.
        """
        self._require_started()
        while self._dispatcher.outstanding() > 0:
            self.pump()
            self._raise_deferred()
        self.pump(wait_s=0.0)
        return self._dispatcher.take_completed()

    def take_completed(self) -> list[ClusterResult]:
        """Non-blocking: whatever finished since the last take."""
        self._require_started()
        return self._dispatcher.take_completed()

    def outstanding(self) -> int:
        """Acknowledged requests without a terminal outcome yet."""
        self._require_started()
        return self._dispatcher.outstanding()

    def recovery_times(self) -> list[float]:
        """Seconds from each worker death to its slot serving again."""
        if self._supervisor is None:
            return []
        return list(self._supervisor.recoveries)

    # -- chaos hooks --------------------------------------------------------------

    def kill_worker(self, index: int) -> None:
        """SIGKILL a worker (chaos harness hook); it will be restarted
        and its acknowledged in-flight work re-dispatched."""
        self._require_started()
        self._supervisor.kill(index, reason="chaos_kill")

    # -- pump ---------------------------------------------------------------------

    def pump(self, wait_s: float | None = None) -> None:
        """One supervision/dispatch/receive cycle.

        Safe to call at any frequency; blocks at most ``wait_s``
        (default ``tick_s``) waiting for worker messages.
        """
        self._require_started()
        supervisor, dispatcher = self._supervisor, self._dispatcher
        for kind, index in supervisor.poll_events():
            if kind == "down":
                dispatcher.worker_down(index)
        for index in dispatcher.expire(self.config.hang_grace_s):
            dispatcher.stats.hung_kills += 1
            supervisor.kill(index, reason="hung")
        for index in supervisor.heartbeat():
            dispatcher.stats.hung_kills += 1
            supervisor.kill(index, reason="hung")
        for index, pending in dispatcher.assign(supervisor.ready_indices()):
            supervisor.send(index, ("score", {
                "id": pending.request.request_id,
                "graph_id": pending.request.graph_id,
                "guidance": pending.request.guidance,
                "unit": pending.unit}))
            # A failed send marked the slot down; the queued "down"
            # event re-dispatches this request on the next cycle.
        timeout = self.config.tick_s if wait_s is None else wait_s
        for index, message in supervisor.receive(timeout):
            self._handle(index, message)

    def _handle(self, index: int, message: tuple) -> None:
        supervisor, dispatcher = self._supervisor, self._dispatcher
        kind = message[0]
        if kind == "result":
            dispatcher.record_result(index, message[2])
        elif kind == "pong":
            supervisor.note_pong(index, message[2])
        elif kind == "started":
            versions = message[2]
            supervisor.note_ready(index, versions)
            # A slot that restarted across a rollover comes up on the
            # stale map it was spawned with; converge it.
            for name, version in self._versions.items():
                if versions.get(name) != version:
                    supervisor.begin_reload(index)
                    supervisor.send(index, ("reload", name, version))
        elif kind == "start_failed":
            _, _, name, version, error = message
            self._on_start_failed(name, version, error)
        elif kind == "reloaded":
            _, _, name, version = message
            supervisor.note_reload(index, name, version, None)
        elif kind == "reload_failed":
            _, _, name, version, error = message
            supervisor.note_reload(index, name, version, error)

    def _on_start_failed(self, name: str, version: str,
                         error: str) -> None:
        """A spawning worker rejected a checkpoint: quarantine it and
        re-resolve, so the slot's scheduled respawn picks up the
        previous good version."""
        if name in self._versions and version == self._versions[name] \
                and not self.registry.is_quarantined(name, version):
            self.registry.quarantine(name, version, reason=error)
            self.stats.rollbacks += 1
            self.obs.counter("serve_rollback_total", model=name).inc()
        try:
            self._versions[name] = self.registry.latest(name)
        except ServeError as exc:
            # Nothing servable remains; surface on the next API call
            # instead of swallowing the failure inside the pump.
            self._deferred_error = exc

    def _raise_deferred(self) -> None:
        if self._deferred_error is not None:
            error, self._deferred_error = self._deferred_error, None
            raise error

    # -- rollover -----------------------------------------------------------------

    def rollover(self, model_name: str | None = None,
                 version: str | None = None) -> RolloverResult:
        """Zero-downtime switch of one model to another version.

        Workers reload sequentially — the rest of the pool keeps
        serving — and a reload that fails integrity checks quarantines
        the target version, rolls every already-switched worker back to
        the prior version, and reports ``rolled_back=True``.  The bad
        checkpoint never scores a request on any worker.
        """
        self._require_started()
        names = sorted({name for _, name in self._endpoints})
        if model_name is None:
            if len(names) != 1:
                raise ServeError(
                    f"rollover needs an explicit model among {names}",
                    stage="serve")
            model_name = names[0]
        if model_name not in self._versions:
            raise ServeError(
                f"unknown model {model_name!r} (serving {names})",
                stage="serve")
        current = self._versions[model_name]
        target = version or self.registry.latest(model_name)
        if target == current:
            return RolloverResult(ok=True, model=model_name,
                                  from_version=current, to_version=target)
        switched: list[int] = []
        for index in list(self._supervisor.ready_indices()):
            verdict, detail = self._reload_worker(index, model_name, target)
            if verdict == "ok":
                switched.append(index)
                continue
            # Quarantine only on an explicit checkpoint rejection — a
            # worker that died or timed out mid-reload says nothing
            # about the artifact, and quarantining a good version on an
            # infrastructure hiccup would burn it forever.
            quarantined = None
            if verdict == "rejected" \
                    and not self.registry.is_quarantined(model_name,
                                                         target):
                self.registry.quarantine(model_name, target, reason=detail)
                quarantined = target
            self._versions[model_name] = current
            for back in switched:
                undo, _ = self._reload_worker(back, model_name, current)
                if undo != "ok":
                    # Cannot serve the old version either: restart the
                    # slot; it respawns on self._versions (= current).
                    self._supervisor.kill(back, reason="rollback")
            self.stats.rollbacks += 1
            self.obs.counter("serve_rollback_total",
                             model=model_name).inc()
            return RolloverResult(
                ok=False, model=model_name, from_version=current,
                to_version=target, rolled_back=bool(switched),
                quarantined=quarantined, reason=detail)
        self._versions[model_name] = target
        self.stats.rollovers += 1
        self.obs.counter("serve_rollover_total", model=model_name).inc()
        return RolloverResult(ok=True, model=model_name,
                              from_version=current, to_version=target)

    def _reload_worker(self, index: int, name: str,
                       version: str) -> tuple[str, str | None]:
        """Reload one worker; returns ``(verdict, detail)``.

        Verdicts: ``"ok"`` (switched), ``"rejected"`` (the worker
        verified the checkpoint and refused it — the artifact is bad),
        ``"died"`` / ``"timeout"`` (infrastructure failure; the artifact
        is unjudged).  The pool keeps serving throughout — this pumps
        the whole cluster while waiting for the one acknowledgement.
        """
        supervisor = self._supervisor
        supervisor.begin_reload(index)
        if not supervisor.send(index, ("reload", name, version)):
            return "died", f"worker {index} died before the reload was sent"
        deadline = self.clock() + self.config.start_timeout_s
        while True:
            state, error = supervisor.reload_state(index)
            if state == RELOAD_OK:
                supervisor.end_reload(index)
                return "ok", None
            if state == RELOAD_FAILED:
                supervisor.end_reload(index)
                return "rejected", error or "reload failed"
            if state != RELOAD_PENDING:
                # The slot died mid-reload and was reset by _mark_down.
                return "died", f"worker {index} died during reload"
            if self.clock() >= deadline:
                supervisor.kill(index, reason="reload_timeout")
                return "timeout", f"worker {index} reload timed out"
            self.pump()
