"""Dispatch core of the serving cluster: pure state, no processes.

The :class:`Dispatcher` owns every request between acknowledgement and
terminal outcome: the bounded pending queue (with oldest-deadline-first
load shedding), graph-affinity worker selection, per-worker in-flight
tracking, deadline expiry, per-worker :class:`CircuitBreaker` routing,
and the at-least-once re-dispatch of work stranded on a dead worker —
deduplicated by request id so a request is never double-scored.

It deliberately knows nothing about pipes or processes: callers (the
cluster's pump loop in :mod:`repro.serve.cluster`, or a simulated
harness in tests) feed it events — ``ack``, ``assign``, ``record_result``,
``worker_down``, ``expire`` — and it maintains the one invariant the
chaos gate checks: **every acknowledged request reaches exactly one
terminal outcome** (``ok`` / ``failed`` / ``timeout`` / ``shed``), so

    ok + failed + timeout + shed + rejected == submitted

holds at quiescence for any interleaving of kills and restarts.  Time is
injected (a ``clock`` callable, default ``time.perf_counter``) so tests
drive virtual time instead of sleeping.
"""

from __future__ import annotations

import hashlib
import math
import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.obs import NULL_CONTEXT, RunContext
from repro.serve.service import ScoreRequest

#: Breaker states, in escalation order.  The ``serve_breaker_state``
#: gauge reports the numeric value.
BREAKER_CLOSED = 0
BREAKER_HALF_OPEN = 1
BREAKER_OPEN = 2

_STATE_NAMES = {BREAKER_CLOSED: "closed", BREAKER_HALF_OPEN: "half_open",
                BREAKER_OPEN: "open"}


class CircuitBreaker:
    """Per-worker breaker: open after K consecutive failures, half-open
    probe after a cooldown, close again on a successful probe.

    All transitions are driven by the caller's clock value, so the
    breaker itself never reads time.
    """

    def __init__(self, threshold: int = 3, cooldown_s: float = 1.0) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, got {cooldown_s}")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._state = BREAKER_CLOSED
        self._consecutive_failures = 0
        self._open_until = 0.0
        self._probe_outstanding = False

    def state(self, now: float) -> int:
        if self._state == BREAKER_OPEN and now >= self._open_until:
            self._state = BREAKER_HALF_OPEN
            self._probe_outstanding = False
        return self._state

    def state_name(self, now: float) -> str:
        return _STATE_NAMES[self.state(now)]

    def allows(self, now: float) -> bool:
        """Whether a request may be routed to this worker right now.

        In half-open state only a single probe is allowed out at a time;
        the caller must report its fate via :meth:`record_success` /
        :meth:`record_failure`.
        """
        state = self.state(now)
        if state == BREAKER_CLOSED:
            return True
        if state == BREAKER_OPEN:
            return False
        if self._probe_outstanding:
            return False
        self._probe_outstanding = True
        return True

    def record_success(self) -> None:
        self._consecutive_failures = 0
        self._probe_outstanding = False
        self._state = BREAKER_CLOSED

    def record_failure(self, now: float) -> None:
        self._consecutive_failures += 1
        self._probe_outstanding = False
        if (self._state == BREAKER_HALF_OPEN
                or self._consecutive_failures >= self.threshold):
            self._state = BREAKER_OPEN
            self._open_until = now + self.cooldown_s


@dataclass(eq=False)
class PendingRequest:
    """One acknowledged request travelling through the dispatcher.

    Attributes:
        request: the acknowledged :class:`ScoreRequest` (id assigned).
        unit: monotonically increasing acknowledgement ordinal; doubles
            as the fault-injection unit so injected serve faults address
            requests identically regardless of which worker serves them.
        submitted_at: clock reading at acknowledgement.
        deadline: absolute clock value after which the request times
            out; ``inf`` when the caller set none.
        attempts: dispatch attempts so far (re-dispatches increment).
    """

    request: ScoreRequest
    unit: int
    submitted_at: float
    deadline: float = math.inf
    attempts: int = 0


@dataclass(frozen=True)
class ClusterResult:
    """Terminal outcome of one acknowledged cluster request.

    ``status`` is one of ``"ok"``, ``"failed"`` (scored but unusable),
    ``"timeout"`` (missed its deadline; the error text carries the typed
    :class:`~repro.reliability.errors.ServeTimeoutError` message), or
    ``"shed"`` (dropped by admission control under saturation).
    """

    request_id: str
    graph_id: str
    status: str
    metrics: np.ndarray | None = None
    fom: float | None = None
    worker: int | None = None
    version: str | None = None
    batch_size: int = 0
    degraded: bool = False
    error: str | None = None
    latency_s: float = 0.0
    attempts: int = 1

    def to_dict(self) -> dict:
        """JSON-ready record (the CLI's output-JSONL line)."""
        return {
            "id": self.request_id,
            "graph_id": self.graph_id,
            "status": self.status,
            "metrics": (None if self.metrics is None
                        else [float(m) for m in self.metrics]),
            "fom": None if self.fom is None else float(self.fom),
            "worker": self.worker,
            "version": self.version,
            "batch_size": self.batch_size,
            "degraded": self.degraded,
            "error": self.error,
            "latency_s": round(float(self.latency_s), 6),
            "attempts": self.attempts,
        }


@dataclass
class ClusterStats:
    """Cumulative accounting; mirrors the obs counters so the invariant
    is checkable even without a recording context.

    Invariant at quiescence:
    ``ok + failed + timeout + shed + rejected == submitted``.
    """

    submitted: int = 0
    rejected: int = 0
    ok: int = 0
    failed: int = 0
    timeout: int = 0
    shed: int = 0
    redispatched: int = 0
    duplicates: int = 0
    restarts: int = 0
    hung_kills: int = 0
    rollovers: int = 0
    rollbacks: int = 0

    def completed(self) -> int:
        return self.ok + self.failed + self.timeout + self.shed

    def accounted(self) -> int:
        return self.completed() + self.rejected


def affinity(graph_id: str, workers: int) -> int:
    """Stable preferred worker for a graph: keeps that graph's forward
    cache warm in one process instead of cold in all of them."""
    digest = hashlib.blake2b(graph_id.encode("utf-8"),
                             digest_size=4).digest()
    return int.from_bytes(digest, "big") % workers


class Dispatcher:
    """Routes acknowledged requests to workers and accounts outcomes.

    Args:
        workers: fixed worker-slot count (slots restart in place).
        max_queue: bound on *queued* (acknowledged, undispatched)
            requests; beyond it the earliest-deadline entry is shed.
        worker_window: in-flight cap per worker slot.
        breaker_threshold / breaker_cooldown_s: circuit-breaker knobs.
        obs: observability context for the ``serve_*`` cluster metrics.
        clock: monotonic time source (injected for tests).
    """

    def __init__(
        self,
        workers: int,
        max_queue: int = 64,
        worker_window: int = 4,
        breaker_threshold: int = 3,
        breaker_cooldown_s: float = 1.0,
        obs: RunContext | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if worker_window < 1:
            raise ValueError(
                f"worker_window must be >= 1, got {worker_window}")
        self.workers = workers
        self.max_queue = max_queue
        self.worker_window = worker_window
        self.obs = obs if obs is not None else NULL_CONTEXT
        self.clock = clock
        self.stats = ClusterStats()
        self.breakers = [CircuitBreaker(breaker_threshold,
                                        breaker_cooldown_s)
                         for _ in range(workers)]
        self._queued: list[PendingRequest] = []
        self._inflight: dict[int, dict[str, PendingRequest]] = {
            index: {} for index in range(workers)}
        #: Terminal ids (outcome recorded); late results for them drop.
        self._terminal: set[str] = set()
        #: worker -> deadline of its earliest timed-out-but-unreturned
        #: request; a worker overdue past the hang grace is declared
        #: hung.  Cleared by any message from the worker or its death.
        self._overdue: dict[int, float] = {}
        self._results: dict[str, ClusterResult] = {}
        #: Acknowledgement order, for returning results in submit order.
        self._order: list[str] = []
        self._returned = 0
        self._next_unit = 0

    # -- admission ----------------------------------------------------------------

    def reject(self) -> None:
        """Count a request refused before acknowledgement."""
        self.stats.submitted += 1
        self.stats.rejected += 1
        self.obs.counter("serve_cluster_requests_total",
                         status="rejected").inc()

    def ack(self, request: ScoreRequest,
            deadline: float | None = None) -> PendingRequest:
        """Acknowledge one request into the pending queue.

        When the queue is saturated the entry with the earliest deadline
        is shed (terminal ``"shed"`` outcome) — possibly the one just
        admitted — so the cluster degrades by dropping the least likely
        to make it instead of failing closed.
        """
        now = self.clock()
        request_id = request.request_id
        if request_id is None:
            request_id = f"creq-{self._next_unit}"
        if request_id in self._terminal or request_id in self._results \
                or any(p.request.request_id == request_id
                       for p in self._queued) \
                or any(request_id in flights
                       for flights in self._inflight.values()):
            raise ValueError(f"duplicate request id {request_id!r}")
        pending = PendingRequest(
            request=ScoreRequest(graph_id=request.graph_id,
                                 guidance=request.guidance,
                                 request_id=request_id),
            unit=self._next_unit, submitted_at=now,
            deadline=math.inf if deadline is None else deadline)
        self._next_unit += 1
        self.stats.submitted += 1
        self._order.append(request_id)
        self._queued.append(pending)
        self.obs.counter("serve_cluster_requests_total",
                         status="accepted").inc()
        while len(self._queued) > self.max_queue:
            victim = min(self._queued,
                         key=lambda p: (p.deadline, p.unit))
            # Remove by identity: dataclass == would compare the numpy
            # guidance arrays, which is ambiguous (and wrong here).
            self._queued = [p for p in self._queued if p is not victim]
            self._finish(victim, ClusterResult(
                request_id=victim.request.request_id,
                graph_id=victim.request.graph_id, status="shed",
                error="shed under saturation (earliest deadline first)",
                latency_s=now - victim.submitted_at,
                attempts=victim.attempts))
            self.obs.counter("serve_shed_total", reason="queue_full").inc()
        self.obs.gauge("serve_cluster_queue_depth").set(len(self._queued))
        return pending

    # -- assignment ---------------------------------------------------------------

    def _pick_worker(self, graph_id: str, ready: Sequence[int],
                     now: float) -> int | None:
        """First healthy worker on the affinity ring with window room."""
        if not ready:
            return None
        ready_set = set(ready)
        start = affinity(graph_id, self.workers)
        for offset in range(self.workers):
            index = (start + offset) % self.workers
            if index not in ready_set:
                continue
            if len(self._inflight[index]) >= self.worker_window:
                continue
            if not self.breakers[index].allows(now):
                continue
            return index
        return None

    def assign(self, ready: Sequence[int]) -> list[tuple[int,
                                                         PendingRequest]]:
        """Move queued requests onto ready workers; returns the batch of
        ``(worker, pending)`` the caller must actually transmit."""
        now = self.clock()
        assignments: list[tuple[int, PendingRequest]] = []
        remaining: list[PendingRequest] = []
        for pending in self._queued:
            index = self._pick_worker(pending.request.graph_id, ready, now)
            if index is None:
                remaining.append(pending)
                continue
            pending.attempts += 1
            self._inflight[index][pending.request.request_id] = pending
            assignments.append((index, pending))
        self._queued = remaining
        self.obs.gauge("serve_cluster_queue_depth").set(len(self._queued))
        self._publish_breaker_states(now)
        return assignments

    def _publish_breaker_states(self, now: float) -> None:
        for index, breaker in enumerate(self.breakers):
            self.obs.gauge("serve_breaker_state",
                           worker=index).set(breaker.state(now))

    # -- outcomes -----------------------------------------------------------------

    def _finish(self, pending: PendingRequest, result: ClusterResult) -> None:
        self._terminal.add(result.request_id)
        self._results[result.request_id] = result
        count = getattr(self.stats, result.status)
        setattr(self.stats, result.status, count + 1)
        self.obs.counter("serve_cluster_requests_total",
                         status=result.status).inc()
        self.obs.histogram("serve_request_seconds").observe(result.latency_s)

    def record_result(self, worker: int, payload: dict[str, Any]) -> bool:
        """Absorb one worker result message; False when dropped as a
        duplicate (late result for an already-terminal request)."""
        now = self.clock()
        request_id = payload["id"]
        self._overdue.pop(worker, None)
        pending = self._inflight[worker].pop(request_id, None)
        if pending is None or request_id in self._terminal:
            self.stats.duplicates += 1
            self.obs.counter("serve_duplicates_total", worker=worker).inc()
            return False
        self.breakers[worker].record_success()
        self._finish(pending, ClusterResult(
            request_id=request_id,
            graph_id=payload.get("graph_id", pending.request.graph_id),
            status=payload.get("status", "failed"),
            metrics=(None if payload.get("metrics") is None
                     else np.asarray(payload["metrics"], dtype=float)),
            fom=payload.get("fom"),
            worker=worker,
            version=payload.get("version"),
            batch_size=int(payload.get("batch_size", 1)),
            degraded=bool(payload.get("degraded", False)),
            error=payload.get("error"),
            latency_s=now - pending.submitted_at,
            attempts=pending.attempts))
        return True

    def worker_down(self, worker: int) -> int:
        """A worker died or was killed: trip its breaker and re-dispatch
        the stranded in-flight work (expired entries time out instead).

        Returns the number of requests re-queued.  At-least-once:
        a request whose result was already recorded stays terminal and
        any late duplicate from a restarted worker is dropped.
        """
        now = self.clock()
        self.breakers[worker].record_failure(now)
        self._overdue.pop(worker, None)
        stranded = self._inflight[worker]
        self._inflight[worker] = {}
        requeued = 0
        for pending in sorted(stranded.values(), key=lambda p: p.unit):
            if now >= pending.deadline:
                self._timeout(pending, now, where=f"worker {worker} died")
                continue
            requeued += 1
            self.stats.redispatched += 1
            self.obs.counter("serve_redispatch_total", worker=worker).inc()
            self._queued.append(pending)
        self._queued.sort(key=lambda p: p.unit)
        self._publish_breaker_states(now)
        return requeued

    def _timeout(self, pending: PendingRequest, now: float,
                 where: str) -> None:
        self.obs.counter("serve_shed_total", reason="deadline").inc()
        self._finish(pending, ClusterResult(
            request_id=pending.request.request_id,
            graph_id=pending.request.graph_id, status="timeout",
            error=(f"deadline exceeded after "
                   f"{now - pending.submitted_at:.3f}s ({where})"),
            latency_s=now - pending.submitted_at,
            attempts=pending.attempts))

    def expire(self, hang_grace_s: float = math.inf) -> set[int]:
        """Time out every request past its deadline.

        Queued ones finish immediately.  An in-flight one also finishes
        (the client stops waiting), and its worker is marked *overdue*:
        if the worker produces no message for ``hang_grace_s`` past that
        first missed deadline it is returned as hung, for the supervisor
        to kill (its non-expired in-flight work is re-dispatched through
        :meth:`worker_down` once the kill is observed).  A merely-slow
        worker clears the marker by delivering its late result, which is
        dropped as a duplicate.
        """
        now = self.clock()
        still_queued: list[PendingRequest] = []
        for pending in self._queued:
            if now >= pending.deadline:
                self._timeout(pending, now, where="queued")
            else:
                still_queued.append(pending)
        self._queued = still_queued
        for worker, flights in self._inflight.items():
            expired = [p for p in flights.values() if now >= p.deadline]
            for pending in expired:
                del flights[pending.request.request_id]
                self._timeout(pending, now, where=f"worker {worker}")
                self._overdue.setdefault(worker, pending.deadline)
        hung = {worker for worker, since in self._overdue.items()
                if now >= since + hang_grace_s}
        self.obs.gauge("serve_cluster_queue_depth").set(len(self._queued))
        return hung

    # -- introspection ------------------------------------------------------------

    def outstanding(self) -> int:
        return len(self._queued) + sum(len(f) for f in
                                       self._inflight.values())

    def inflight_ids(self, worker: int) -> list[str]:
        return sorted(self._inflight[worker])

    def queued_ids(self) -> list[str]:
        return [p.request.request_id for p in self._queued]

    def overdue_since(self, worker: int) -> float | None:
        """Deadline of the worker's earliest unreturned timed-out
        request, or ``None`` when the worker owes nothing overdue."""
        return self._overdue.get(worker)

    def result_for(self, request_id: str) -> ClusterResult | None:
        return self._results.get(request_id)

    def take_completed(self) -> list[ClusterResult]:
        """Completed results not yet taken, in acknowledgement order.

        Only the maximal completed *prefix* beyond what was already
        returned is released when earlier requests are still pending, so
        callers always see submission order.
        """
        taken: list[ClusterResult] = []
        while self._returned < len(self._order):
            request_id = self._order[self._returned]
            result = self._results.get(request_id)
            if result is None:
                break
            taken.append(result)
            self._returned += 1
        return taken
